#!/bin/bash
# Regenerates every table and figure of the paper (see EXPERIMENTS.md).
set -u
cd "$(dirname "$0")"
BINS="exp_hw_cost exp_fig09_absolute_power exp_fig06_true_false_rates \
exp_fig07_energy_breakdown exp_fig08_performance exp_fig04_zombie_ratio \
exp_table1 exp_fig01_cache_size_motivation exp_fig10_replacement_policy \
exp_fig11_cache_size exp_fig12_associativity exp_fig13_nvm_technology \
exp_fig14_memory_size exp_fig15_energy_conditions exp_fig16_capacitor_size \
exp_fig17_sensitivity_summary exp_fig18_icache exp_ablation_adaptation \
exp_ablation_policy exp_other_predictors"
for b in $BINS; do
  echo "=== running $b ==="
  ./target/release/$b "${1:-small}" > results/$b.txt 2>&1 || echo "$b FAILED"
done
echo "all experiments done"
