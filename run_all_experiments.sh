#!/bin/bash
# Regenerates every table and figure of the paper (see EXPERIMENTS.md).
#
# Delegates to the exp_all suite planner: one process collects every
# experiment's job requests, dedups identical simulations across figures,
# runs the unique set once (longest-estimated-job-first) and writes each
# figure to results/<binary-name>.txt — byte-identical to what the
# standalone binary prints. Results persist in results/.runcache/, so
# re-running after a partial edit — or after an interruption, even kill -9;
# completed work is journaled and replayed — only simulates what is missing.
# Pass --no-cache to force a fully fresh pass.
set -eu
cd "$(dirname "$0")"
mkdir -p results
./target/release/exp_all "${1:-small}" "${@:2}"
echo "all experiments done"
