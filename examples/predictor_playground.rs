//! Library-level usage: drive a cache and the EDBP predictor by hand, no
//! full-system simulator — useful for studying the predictor's decisions in
//! isolation (unit-test style exploration).
//!
//! Run with: `cargo run --release --example predictor_playground`

use edbp_repro::cache::{AccessKind, Cache, CacheConfig};
use edbp_repro::edbp::{Edbp, EdbpConfig, LeakagePredictor};
use edbp_repro::units::Voltage;

fn main() {
    let mut cache = Cache::new(CacheConfig::paper_dcache());
    let mut edbp = Edbp::new(EdbpConfig::for_cache(&cache));
    println!(
        "armed thresholds: {:?} V",
        edbp.thresholds()
            .iter()
            .map(|t| t.as_volts())
            .collect::<Vec<_>>()
    );

    // Fill one set completely: addresses 0x400 apart collide (64 sets, 16 B).
    for (i, addr) in [0x000u64, 0x400, 0x800, 0xC00].iter().enumerate() {
        cache.lookup(*addr, AccessKind::Read);
        let frame = cache.fill(*addr, &[i as u8; 16], false);
        edbp.on_fill(&cache, frame, *addr);
    }
    // Touch 0x000 so it becomes MRU.
    if let edbp_repro::cache::LookupOutcome::Hit(h) = cache.lookup(0x000, AccessKind::Read) {
        edbp.on_hit(&cache, h.block, 0x000);
    }

    println!("\nvoltage decays toward the outage:");
    for millivolts in [3450, 3290, 3260, 3230] {
        let v = Voltage::from_milli_volts(f64::from(millivolts));
        let outcome = edbp.tick(&mut cache, v, 0);
        let gated: Vec<String> = outcome
            .gated
            .iter()
            .map(|g| format!("{:#05x}{}", g.addr, if g.dirty { " (dirty)" } else { "" }))
            .collect();
        println!(
            "  {:.2} V -> level {} gated {:?} ({} frames dark)",
            v.as_volts(),
            edbp.level(),
            gated,
            cache.gated_blocks()
        );
    }
    println!(
        "\nMRU block 0x000 still resident: {}",
        cache.contains(0x000).is_some()
    );

    // Power failure: the cache dies, EDBP re-arms and adapts.
    cache.power_fail();
    edbp.on_reboot(&cache);
    println!(
        "after reboot: level {} | FPR of last cycle {:.1}%",
        edbp.level(),
        edbp.false_positive_rate() * 100.0
    );
}
