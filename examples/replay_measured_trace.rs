//! Replay your own measured harvested-power trace.
//!
//! Users with real harvester measurements replay them through
//! [`SampledTrace`]; this example synthesizes a "measurement" (a diurnal
//! solar profile sampled at 1 ms) to show the plumbing end to end, driving
//! the energy subsystem directly — no full-system simulation needed to
//! study power-cycle behaviour.
//!
//! Run with: `cargo run --release --example replay_measured_trace`

use edbp_repro::energy::{EnergySystem, EnergySystemConfig, SampledTrace, StepEvent};
use edbp_repro::units::{Power, Time};

fn main() {
    // A 200-sample "measurement": a cloud passes over a solar harvester.
    let samples: Vec<Power> = (0..200)
        .map(|i| {
            let t = i as f64 / 200.0;
            let cloud = if (0.4..0.6).contains(&t) { 0.15 } else { 1.0 };
            Power::from_milli_watts(26.0 * cloud)
        })
        .collect();
    let trace = SampledTrace::new("field-measurement", Time::from_millis(1.0), samples);

    let mut system =
        EnergySystem::new(EnergySystemConfig::paper_default(), trace).expect("valid configuration");

    // A constant 20 mW load, stepped at 50 us.
    let dt = Time::from_micros(50.0);
    let load = Power::from_milli_watts(20.0) * dt;
    let mut outage_times = Vec::new();
    while system.now() < Time::from_millis(400.0) {
        match system.step(dt, load) {
            StepEvent::CheckpointRequested => {
                outage_times.push(system.now().as_millis());
                let outcome = system.power_off_and_recharge();
                assert!(outcome.recovered, "solar recovers after the cloud");
            }
            StepEvent::BrownOut => unreachable!("JIT margin prevents brown-out"),
            StepEvent::Running => {}
        }
    }

    let stats = system.stats();
    let preview: Vec<String> = outage_times
        .iter()
        .take(4)
        .map(|t| format!("{t:.0} ms"))
        .collect();
    println!("replayed 400 ms against the measured trace:");
    println!(
        "  outages:   {} (first at {})",
        stats.outages,
        preview.join(", ")
    );
    println!("  on time:   {:.1} ms", stats.on_time.as_millis());
    println!("  off time:  {:.1} ms", stats.off_time.as_millis());
    println!(
        "  harvested: {:.1} uJ, consumed: {:.1} uJ",
        stats.harvested.as_micro_joules(),
        stats.consumed.as_micro_joules()
    );
    // The 200 ms trace wraps, so the cloud (40-60% of each period) covers
    // t = 80-120 ms and t = 280-320 ms.
    println!("\nOutages cluster under the cloud (t = 80-120 ms of each period).");
}
