//! Sensitivity to the ambient environment: runs one application across the
//! four harvested-energy environments of the paper (RFHome, RFOffice, solar,
//! thermal) and shows how outage frequency drives EDBP's opportunity —
//! Fig. 15 in miniature.
//!
//! Run with: `cargo run --release --example energy_environments`

use edbp_repro::energy::TracePreset;
use edbp_repro::sim::{run_app, Scheme, SourceKind, SystemConfig};
use edbp_repro::workloads::{AppId, Scale};

fn main() {
    println!(
        "{:<10} {:>9} {:>14} {:>13} {:>13}",
        "trace", "outages", "base time(ms)", "edbp speedup", "d+e speedup"
    );
    for preset in TracePreset::ALL {
        let mut config = SystemConfig::paper_default();
        config.source = SourceKind::Preset {
            preset,
            seed: 42,
            scale: 1.0,
        };
        let base = run_app(&config, Scheme::Baseline, AppId::Dijkstra, Scale::Small);
        let edbp = run_app(&config, Scheme::Edbp, AppId::Dijkstra, Scale::Small);
        let combined = run_app(&config, Scheme::DecayEdbp, AppId::Dijkstra, Scale::Small);
        println!(
            "{:<10} {:>9} {:>14.3} {:>13.3} {:>13.3}",
            preset.name(),
            base.outages,
            base.total_time().as_millis(),
            base.total_time() / edbp.total_time(),
            base.total_time() / combined.total_time(),
        );
    }
    println!(
        "\nWeaker sources mean more outages, more zombie blocks, and more \
         opportunity for EDBP (paper Section VI-H6)."
    );
}
