//! Bring your own program: write a kernel in the mini-RISC assembly, run it
//! through the full intermittent-computing stack, and compare predictors.
//!
//! The kernel is a streaming checksum with a deliberately cold tail buffer —
//! a zombie-block factory: the tail is written once and never re-read before
//! the next power outage destroys it.
//!
//! Run with: `cargo run --release --example custom_workload`

use edbp_repro::cpu::{ProgramBuilder, Reg};
use edbp_repro::sim::{run_workload, Scheme, SystemConfig};
use edbp_repro::workloads::{AppId, Workload};

fn build_program() -> Workload {
    let mut b = ProgramBuilder::new("checksum+coldtail");
    // Outer pass loop (r13/r14).
    b.li(Reg::R13, 0);
    b.li(Reg::R14, 24);
    let pass = b.label_here();
    {
        // Hot phase: checksum a 1 kB buffer (reused every pass).
        b.li(Reg::R1, 0x0010_0000);
        b.li(Reg::R2, 0x0010_0000 + 1024);
        let hot = b.label_here();
        b.load(Reg::R3, Reg::R1, 0);
        b.add(Reg::R4, Reg::R4, Reg::R3);
        b.xor(Reg::R4, Reg::R4, Reg::R3);
        b.addi(Reg::R1, Reg::R1, 4);
        b.blt(Reg::R1, Reg::R2, hot);

        // Cold tail: log 256 B of results, never read back.
        b.li(Reg::R1, 0x0018_0000);
        b.li(Reg::R2, 0x0018_0000 + 256);
        let cold = b.label_here();
        b.store(Reg::R4, Reg::R1, 0);
        b.addi(Reg::R1, Reg::R1, 4);
        b.blt(Reg::R1, Reg::R2, cold);
    }
    b.addi(Reg::R13, Reg::R13, 1);
    b.blt(Reg::R13, Reg::R14, pass);
    b.halt();

    Workload {
        app: AppId::Crc32, // closest stand-in label for reporting
        program: b.build_at(0x0100_0000).into(),
        data_footprint_bytes: 1024 + 256,
    }
}

fn main() {
    let config = SystemConfig::paper_default();
    println!("custom kernel: hot 1 kB checksum + cold 256 B log tail\n");
    println!(
        "{:<22} {:>10} {:>11} {:>8}",
        "scheme", "time (ms)", "energy(uJ)", "outages"
    );
    let mut baseline_time = None;
    for scheme in [
        Scheme::Baseline,
        Scheme::Decay,
        Scheme::Edbp,
        Scheme::DecayEdbp,
    ] {
        let r = run_workload(&config, scheme, build_program());
        println!(
            "{:<22} {:>10.3} {:>11.1} {:>8}",
            scheme.name(),
            r.total_time().as_millis(),
            r.energy.total().as_micro_joules(),
            r.outages,
        );
        if scheme == Scheme::Baseline {
            baseline_time = Some(r.total_time());
        } else if let Some(base) = baseline_time {
            println!(
                "{:<22} {:>10}",
                "",
                format!("({:.3}x)", base / r.total_time())
            );
        }
    }
}
