//! Quickstart: simulate one benchmark on the paper's platform, with and
//! without EDBP, and print what changed.
//!
//! Run with: `cargo run --release --example quickstart`

use edbp_repro::sim::{run_app, Scheme, SystemConfig};
use edbp_repro::workloads::{AppId, Scale};

fn main() {
    // The paper's Table II platform: 4 kB SRAM D$, 4 kB ReRAM I$, 16 MB
    // ReRAM memory, RFHome harvesting, 25 MHz in-order core.
    let config = SystemConfig::paper_default();

    println!("Simulating jpeg_enc on the RFHome trace...\n");
    let baseline = run_app(&config, Scheme::Baseline, AppId::JpegEnc, Scale::Small);
    let edbp = run_app(&config, Scheme::Edbp, AppId::JpegEnc, Scale::Small);
    let combined = run_app(&config, Scheme::DecayEdbp, AppId::JpegEnc, Scale::Small);

    println!(
        "{:<22} {:>10} {:>10} {:>10} {:>9}",
        "scheme", "time (ms)", "energy(uJ)", "outages", "d$ miss"
    );
    for r in [&baseline, &edbp, &combined] {
        println!(
            "{:<22} {:>10.3} {:>10.1} {:>10} {:>8.2}%",
            r.scheme.name(),
            r.total_time().as_millis(),
            r.energy.total().as_micro_joules(),
            r.outages,
            r.dcache_miss_rate() * 100.0,
        );
    }

    println!(
        "\nEDBP alone:        {:+.1}% energy, {:.3}x speedup",
        (1.0 - edbp.energy.total() / baseline.energy.total()) * 100.0,
        baseline.total_time() / edbp.total_time(),
    );
    println!(
        "Cache Decay + EDBP: {:+.1}% energy, {:.3}x speedup",
        (1.0 - combined.energy.total() / baseline.energy.total()) * 100.0,
        baseline.total_time() / combined.total_time(),
    );
    println!(
        "\nZombie accounting (EDBP): {} gated correctly (TP), {} wrong kills (FP), \
         {} zombies missed",
        edbp.prediction.true_positives,
        edbp.prediction.false_positives,
        edbp.prediction.missed_zombies,
    );
}
