//! Workspace root crate for the EDBP reproduction.
//!
//! This crate re-exports the public APIs of every member crate so that the
//! `examples/` and `tests/` at the repository root can exercise the whole
//! system through a single dependency. Library users should normally depend
//! on the individual crates (`edbp-core`, `ehs-sim`, ...) directly.

pub use edbp_core as edbp;
pub use ehs_cache as cache;
pub use ehs_cpu as cpu;
pub use ehs_energy as energy;
pub use ehs_nvm as nvm;
pub use ehs_sim as sim;
pub use ehs_units as units;
pub use ehs_workloads as workloads;
