//! Synthetic MiBench / Mediabench workloads for the EDBP reproduction.
//!
//! The paper evaluates 20 applications from MiBench \[25\] and Mediabench \[39\]
//! compiled for ARM and run under gem5. Real binaries cannot run on this
//! crate's mini-RISC substrate, so each application is *synthesized*: a small
//! assembly program (built with [`ehs_cpu::ProgramBuilder`]) whose memory
//! behaviour matches the real application along the axes this study is
//! sensitive to —
//!
//! * **load/store fraction** of committed instructions (Fig. 7's bottom
//!   panel drives how many dead/zombie blocks exist),
//! * **data footprint** relative to the 4 kB data cache (hit rate, thrash),
//! * **access structure** (streaming, blocked 2-D, strided butterflies,
//!   pointer-chasing, table lookups),
//! * **code footprint** relative to the 4 kB instruction cache.
//!
//! EDBP never inspects data values — only the address/reuse stream and power
//! schedule — so matching these distributions preserves the paper's
//! comparisons. See `DESIGN.md` §4 for the substitution argument.
//!
//! # Example
//!
//! ```
//! use ehs_workloads::{build, AppId, Scale};
//!
//! let wl = build(AppId::Crc32, Scale::Tiny);
//! assert_eq!(wl.app.name(), "crc32");
//! assert!(wl.program.len() > 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod apps;
mod kernels;

pub use apps::{build, AppId, Scale, Suite, Workload};
