//! Parameterized assembly kernels — the building blocks of the synthetic
//! applications.
//!
//! Each kernel emits a self-contained loop nest into a [`ProgramBuilder`].
//! Kernels may clobber registers `R0..=R12` and `R15` but must leave
//! `R13`/`R14` alone — those carry the application's outer pass loop.

use ehs_cpu::{ProgramBuilder, Reg};

/// Sequential array walk: load, compute, occasionally store.
///
/// Models streaming codecs (ADPCM, CRC32, SHA hashing passes, GSM frames).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamCfg {
    /// Byte address of the array.
    pub base: u32,
    /// Array length in bytes (multiple of `stride * unroll`).
    pub bytes: u32,
    /// Distance between consecutive elements in bytes (≥ 4).
    pub stride: u32,
    /// Emit a store after every `store_every`-th unrolled load (0 = never).
    pub store_every: u32,
    /// ALU operations per load.
    pub alu_ops: u32,
    /// Loop unroll factor (≥ 1); also scales the code footprint.
    pub unroll: u32,
}

/// Emits the streaming kernel.
pub fn stream(b: &mut ProgramBuilder, cfg: &StreamCfg) {
    assert!(cfg.stride >= 4 && cfg.unroll >= 1);
    assert!(cfg.bytes.is_multiple_of(cfg.stride * cfg.unroll));
    b.li(Reg::R1, cfg.base);
    b.li(Reg::R2, cfg.base + cfg.bytes);
    let top = b.label_here();
    for u in 0..cfg.unroll {
        let off = (u * cfg.stride) as i32;
        b.load(Reg::R3, Reg::R1, off);
        emit_alu(b, cfg.alu_ops, Reg::R4, Reg::R3);
        if cfg.store_every > 0 && (u + 1) % cfg.store_every == 0 {
            b.store(Reg::R4, Reg::R1, off);
        }
    }
    b.addi(Reg::R1, Reg::R1, (cfg.unroll * cfg.stride) as i32);
    b.blt(Reg::R1, Reg::R2, top);
}

/// Blocked 2-D image traversal: visit `block × block` tiles row by row.
///
/// Models JPEG's 8×8 DCT blocks and SUSAN's neighbourhood scans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockedCfg {
    /// Byte address of the image (row-major u32 pixels).
    pub base: u32,
    /// Image width in elements (multiple of `block`).
    pub width: u32,
    /// Image height in elements (multiple of `block`).
    pub height: u32,
    /// Tile edge in elements.
    pub block: u32,
    /// ALU operations per loaded pixel.
    pub alu_ops: u32,
    /// Store after every `store_every`-th pixel of a row (0 = never).
    pub store_every: u32,
}

/// Emits the blocked kernel.
pub fn blocked(b: &mut ProgramBuilder, cfg: &BlockedCfg) {
    assert!(
        cfg.block >= 1
            && cfg.width.is_multiple_of(cfg.block)
            && cfg.height.is_multiple_of(cfg.block)
    );
    // Constants.
    b.li(Reg::R2, cfg.block * cfg.width * 4); // bytes per block-row of tiles
    b.li(Reg::R3, cfg.block * 4); // bytes per tile column step
    b.li(Reg::R12, cfg.width * 4); // bytes per pixel row
    b.li(Reg::R15, cfg.block); // rows per tile
    b.li(Reg::R6, cfg.base);
    // by loop.
    b.li(Reg::R8, 0);
    b.li(Reg::R9, cfg.height / cfg.block);
    let by_top = b.label_here();
    {
        b.li(Reg::R10, 0);
        b.li(Reg::R11, cfg.width / cfg.block);
        let bx_top = b.label_here();
        {
            // Tile base = base + by * (block*width*4) + bx * (block*4).
            b.mul(Reg::R5, Reg::R8, Reg::R2);
            b.add(Reg::R5, Reg::R5, Reg::R6);
            b.mul(Reg::R1, Reg::R10, Reg::R3);
            b.add(Reg::R5, Reg::R5, Reg::R1);
            // Row loop within the tile.
            b.li(Reg::R7, 0);
            let row_top = b.label_here();
            {
                b.mul(Reg::R1, Reg::R7, Reg::R12);
                b.add(Reg::R1, Reg::R1, Reg::R5);
                for ix in 0..cfg.block {
                    let off = (ix * 4) as i32;
                    b.load(Reg::R0, Reg::R1, off);
                    emit_alu(b, cfg.alu_ops, Reg::R4, Reg::R0);
                    if cfg.store_every > 0 && (ix + 1) % cfg.store_every == 0 {
                        b.store(Reg::R4, Reg::R1, off);
                    }
                }
                b.addi(Reg::R7, Reg::R7, 1);
                b.blt(Reg::R7, Reg::R15, row_top);
            }
            b.addi(Reg::R10, Reg::R10, 1);
            b.blt(Reg::R10, Reg::R11, bx_top);
        }
        b.addi(Reg::R8, Reg::R8, 1);
        b.blt(Reg::R8, Reg::R9, by_top);
    }
}

/// FFT-style strided butterflies: per stage, walk the array touching pairs
/// `(i, i + stride)` with the stride doubling every stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StridedCfg {
    /// Byte address of the array (u32 elements).
    pub base: u32,
    /// Number of elements (power of two).
    pub words: u32,
    /// Number of butterfly stages (≤ log2(words)).
    pub stages: u32,
    /// Store both halves of each pair (`true` for FFT, `false` models an
    /// inverse pass that accumulates instead).
    pub store_pairs: bool,
    /// Extra ALU operations per pair.
    pub alu_ops: u32,
}

/// Emits the strided butterfly kernel.
pub fn strided(b: &mut ProgramBuilder, cfg: &StridedCfg) {
    assert!(cfg.words.is_power_of_two());
    assert!(cfg.stages >= 1 && (1u32 << cfg.stages) <= cfg.words);
    b.li(Reg::R6, cfg.base);
    b.li(Reg::R2, cfg.base + cfg.words * 4); // array end
    b.li(Reg::R11, 4); // stride in bytes, doubles per stage
    b.li(Reg::R8, 0);
    b.li(Reg::R9, cfg.stages);
    let stage_top = b.label_here();
    {
        b.add(Reg::R12, Reg::R11, Reg::R11); // step = 2 * stride
        b.sub(Reg::R10, Reg::R2, Reg::R11); // bound so i + stride stays in range
        b.li(Reg::R1, cfg.base);
        let inner_top = b.label_here();
        {
            b.load(Reg::R0, Reg::R1, 0);
            b.add(Reg::R5, Reg::R1, Reg::R11);
            b.load(Reg::R3, Reg::R5, 0);
            b.xor(Reg::R4, Reg::R0, Reg::R3);
            emit_alu(b, cfg.alu_ops, Reg::R4, Reg::R0);
            b.store(Reg::R4, Reg::R1, 0);
            if cfg.store_pairs {
                b.store(Reg::R4, Reg::R5, 0);
            }
            b.add(Reg::R1, Reg::R1, Reg::R12);
            b.blt(Reg::R1, Reg::R10, inner_top);
        }
        b.add(Reg::R11, Reg::R11, Reg::R11);
        b.addi(Reg::R8, Reg::R8, 1);
        b.blt(Reg::R8, Reg::R9, stage_top);
    }
}

/// Pseudo-random pointer chasing over a footprint, driven by an in-register
/// xorshift32. Models Dijkstra's frontier, Patricia trie walks, qsort's
/// partition exchanges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomCfg {
    /// Byte address of the footprint.
    pub base: u32,
    /// Footprint size in bytes (power of two ≥ 8).
    pub bytes: u32,
    /// Iterations of the walk.
    pub iters: u32,
    /// Store after every `store_every`-th iteration (0 = never).
    pub store_every: u32,
    /// ALU operations per access (beyond the xorshift itself).
    pub alu_ops: u32,
    /// Xorshift seed (nonzero).
    pub seed: u32,
}

/// Emits the random-walk kernel.
pub fn random(b: &mut ProgramBuilder, cfg: &RandomCfg) {
    assert!(cfg.bytes.is_power_of_two() && cfg.bytes >= 8);
    assert!(cfg.seed != 0);
    let unroll = if cfg.store_every > 0 {
        cfg.store_every
    } else {
        1
    };
    b.li(Reg::R6, cfg.base);
    b.li(Reg::R15, cfg.bytes - 4); // word-aligned byte mask
    b.li(Reg::R7, cfg.seed);
    b.li(Reg::R1, 0);
    b.li(Reg::R2, cfg.iters / unroll);
    let top = b.label_here();
    for u in 0..unroll {
        // xorshift32
        b.shl(Reg::R5, Reg::R7, 13);
        b.xor(Reg::R7, Reg::R7, Reg::R5);
        b.shr(Reg::R5, Reg::R7, 17);
        b.xor(Reg::R7, Reg::R7, Reg::R5);
        b.shl(Reg::R5, Reg::R7, 5);
        b.xor(Reg::R7, Reg::R7, Reg::R5);
        // addr = base + (state & mask)
        b.and(Reg::R5, Reg::R7, Reg::R15);
        b.add(Reg::R5, Reg::R5, Reg::R6);
        b.load(Reg::R0, Reg::R5, 0);
        emit_alu(b, cfg.alu_ops, Reg::R4, Reg::R0);
        if cfg.store_every > 0 && u + 1 == unroll {
            b.store(Reg::R4, Reg::R5, 0);
        }
    }
    b.addi(Reg::R1, Reg::R1, 1);
    b.blt(Reg::R1, Reg::R2, top);
}

/// Streaming walk with a table lookup per element (index derived from the
/// cursor, so the table is revisited heavily). Models ADPCM step tables and
/// GSM codebooks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableStreamCfg {
    /// Byte address of the streamed array.
    pub base: u32,
    /// Streamed bytes.
    pub bytes: u32,
    /// Byte address of the lookup table.
    pub table_base: u32,
    /// Table size in bytes (power of two).
    pub table_bytes: u32,
    /// ALU operations per element.
    pub alu_ops: u32,
    /// Store after every `store_every`-th element (0 = never).
    pub store_every: u32,
}

/// Emits the table-lookup streaming kernel.
pub fn table_stream(b: &mut ProgramBuilder, cfg: &TableStreamCfg) {
    assert!(cfg.table_bytes.is_power_of_two() && cfg.table_bytes >= 8);
    b.li(Reg::R1, cfg.base);
    b.li(Reg::R2, cfg.base + cfg.bytes);
    b.li(Reg::R12, cfg.table_base);
    b.li(Reg::R15, cfg.table_bytes - 4);
    let unroll = if cfg.store_every > 0 {
        cfg.store_every
    } else {
        1
    };
    let top = b.label_here();
    for u in 0..unroll {
        let off = (u * 4) as i32;
        b.load(Reg::R0, Reg::R1, off);
        // Table index from the cursor (deterministic, data-independent).
        b.and(Reg::R5, Reg::R1, Reg::R15);
        b.add(Reg::R5, Reg::R5, Reg::R12);
        b.load(Reg::R3, Reg::R5, 0);
        b.add(Reg::R4, Reg::R0, Reg::R3);
        emit_alu(b, cfg.alu_ops, Reg::R4, Reg::R3);
        if cfg.store_every > 0 && u + 1 == unroll {
            b.store(Reg::R4, Reg::R1, off);
        }
    }
    b.addi(Reg::R1, Reg::R1, (unroll * 4) as i32);
    b.blt(Reg::R1, Reg::R2, top);
}

/// Compute-dominated loop with rare memory touches over a tiny footprint.
/// Models bitcount and basicmath.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ComputeCfg {
    /// Loop iterations.
    pub iters: u32,
    /// ALU operations per iteration (before the single load/store pair).
    pub alu_ops: u32,
    /// Byte address of the small working buffer.
    pub base: u32,
    /// Buffer size in bytes (power of two ≥ 8).
    pub bytes: u32,
}

/// Emits the compute-heavy kernel.
pub fn compute(b: &mut ProgramBuilder, cfg: &ComputeCfg) {
    assert!(cfg.bytes.is_power_of_two() && cfg.bytes >= 8);
    assert!(cfg.alu_ops >= 1);
    b.li(Reg::R6, cfg.base);
    b.li(Reg::R15, cfg.bytes - 4);
    b.li(Reg::R1, 0);
    b.li(Reg::R2, cfg.iters);
    let top = b.label_here();
    emit_alu(b, cfg.alu_ops, Reg::R4, Reg::R1);
    b.shl(Reg::R5, Reg::R1, 2);
    b.and(Reg::R5, Reg::R5, Reg::R15);
    b.add(Reg::R5, Reg::R5, Reg::R6);
    b.load(Reg::R0, Reg::R5, 0);
    b.store(Reg::R4, Reg::R5, 0);
    b.addi(Reg::R1, Reg::R1, 1);
    b.blt(Reg::R1, Reg::R2, top);
}

/// Emits `count` ALU instructions folding `src` into `acc`, cycling through
/// a deterministic op mix.
fn emit_alu(b: &mut ProgramBuilder, count: u32, acc: Reg, src: Reg) {
    for k in 0..count {
        match k % 4 {
            0 => b.add(acc, acc, src),
            1 => b.xor(acc, acc, src),
            2 => b.shr(acc, acc, 1),
            _ => b.or(acc, acc, src),
        }
    }
}

#[cfg(test)]
pub(crate) mod test_util {
    use ehs_cpu::{Core, Effect, Program};
    use std::collections::HashMap;

    /// Executes a program to completion (or `max_steps`), returning the core
    /// and the set of touched data addresses.
    pub fn run(program: &Program, max_steps: u64) -> (Core, HashMap<u32, u32>, Vec<u32>) {
        let mut core = Core::new(program);
        let mut mem: HashMap<u32, u32> = HashMap::new();
        let mut touched = Vec::new();
        for _ in 0..max_steps {
            match core.step(program) {
                Effect::Compute => {}
                Effect::Load { addr, dst } => {
                    touched.push(addr);
                    let v = mem.get(&addr).copied().unwrap_or(0);
                    core.finish_load(dst, v);
                }
                Effect::Store { addr, value } => {
                    touched.push(addr);
                    mem.insert(addr, value);
                }
                Effect::Halted => break,
            }
        }
        (core, mem, touched)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ehs_cpu::ProgramBuilder;
    use test_util::run;

    fn finish(mut b: ProgramBuilder) -> ehs_cpu::Program {
        b.halt();
        b.build()
    }

    #[test]
    fn stream_touches_every_element_in_order() {
        let mut b = ProgramBuilder::new("s");
        stream(
            &mut b,
            &StreamCfg {
                base: 0x1000,
                bytes: 256,
                stride: 4,
                store_every: 2,
                alu_ops: 2,
                unroll: 4,
            },
        );
        let p = finish(b);
        let (core, _, touched) = run(&p, 100_000);
        assert!(core.halted());
        let loads: Vec<u32> = touched.iter().copied().step_by(1).collect();
        assert!(loads.contains(&0x1000));
        assert!(loads.contains(&0x10FC));
        assert!(!loads.contains(&0x1100));
        assert_eq!(core.loads(), 64);
        assert_eq!(core.stores(), 32, "store_every=2 stores half the loads");
    }

    #[test]
    fn blocked_visits_whole_image_with_tile_locality() {
        let mut b = ProgramBuilder::new("b");
        blocked(
            &mut b,
            &BlockedCfg {
                base: 0x2000,
                width: 16,
                height: 8,
                block: 4,
                alu_ops: 1,
                store_every: 4,
            },
        );
        let p = finish(b);
        let (core, _, touched) = run(&p, 200_000);
        assert!(core.halted());
        assert_eq!(core.loads(), 16 * 8, "every pixel loaded once");
        // First tile's rows come before the second tile's columns.
        assert_eq!(touched[0], 0x2000);
        let mut distinct: Vec<u32> = touched.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(distinct.len(), 16 * 8);
    }

    #[test]
    fn strided_doubles_stride_each_stage() {
        let mut b = ProgramBuilder::new("f");
        strided(
            &mut b,
            &StridedCfg {
                base: 0x3000,
                words: 64,
                stages: 3,
                store_pairs: true,
                alu_ops: 2,
            },
        );
        let p = finish(b);
        let (core, _, touched) = run(&p, 100_000);
        assert!(core.halted());
        // Stage 1 pairs are 4 bytes apart, stage 2 pairs 8 bytes apart.
        assert_eq!(touched[1] - touched[0], 4);
        assert!(core.loads() > 0 && core.stores() > 0);
        // Stores and loads are paired (store_pairs = true).
        assert_eq!(core.loads(), core.stores());
    }

    #[test]
    fn random_stays_in_footprint_and_spreads() {
        let mut b = ProgramBuilder::new("r");
        random(
            &mut b,
            &RandomCfg {
                base: 0x4000,
                bytes: 4096,
                iters: 512,
                store_every: 4,
                alu_ops: 1,
                seed: 0xBEEF,
            },
        );
        let p = finish(b);
        let (core, _, touched) = run(&p, 200_000);
        assert!(core.halted());
        for &a in &touched {
            assert!((0x4000..0x5000).contains(&a), "addr {a:#x} escaped");
            assert_eq!(a % 4, 0, "addresses stay word-aligned");
        }
        let mut distinct: Vec<u32> = touched.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert!(
            distinct.len() > 200,
            "walk must spread, got {}",
            distinct.len()
        );
        assert_eq!(core.stores() * 4, core.loads());
    }

    #[test]
    fn table_stream_hits_both_regions() {
        let mut b = ProgramBuilder::new("t");
        table_stream(
            &mut b,
            &TableStreamCfg {
                base: 0x8000,
                bytes: 512,
                table_base: 0x100,
                table_bytes: 64,
                alu_ops: 2,
                store_every: 2,
            },
        );
        let p = finish(b);
        let (core, _, touched) = run(&p, 100_000);
        assert!(core.halted());
        assert!(touched.iter().any(|&a| a >= 0x8000));
        assert!(touched.iter().any(|&a| (0x100..0x140).contains(&a)));
        assert_eq!(core.loads(), 256, "stream + table load per element");
    }

    #[test]
    fn compute_kernel_is_alu_dominated() {
        let mut b = ProgramBuilder::new("c");
        compute(
            &mut b,
            &ComputeCfg {
                iters: 256,
                alu_ops: 16,
                base: 0x9000,
                bytes: 256,
            },
        );
        let p = finish(b);
        let (core, _, _) = run(&p, 100_000);
        assert!(core.halted());
        let mem_ops = core.loads() + core.stores();
        let ratio = mem_ops as f64 / core.committed() as f64;
        assert!(ratio < 0.12, "compute kernel too memory-heavy: {ratio}");
    }
}
