//! The 20 synthetic applications and their parameter table.

use crate::kernels::{
    blocked, compute, random, stream, table_stream, BlockedCfg, ComputeCfg, RandomCfg, StreamCfg,
    TableStreamCfg,
};
use ehs_cpu::{Program, ProgramBuilder, Reg};
use std::fmt;
use std::sync::Arc;

/// Byte address programs are fetched from (instruction-cache address space).
const CODE_BASE: u32 = 0x0100_0000;
/// Data-region bases (one application runs at a time, so regions are shared).
const STREAM_BASE: u32 = 0x0010_0000;
const TABLE_BASE: u32 = 0x0011_0000;
const RANDOM_BASE: u32 = 0x0012_0000;
const IMAGE_BASE: u32 = 0x0014_0000;
const AUX_BASE: u32 = 0x0016_0000;

/// Which benchmark suite an application models (paper Section VI-A2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// MiBench \[25\].
    MiBench,
    /// Mediabench \[39\].
    Mediabench,
}

/// The 20 applications of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum AppId {
    AdpcmEnc,
    AdpcmDec,
    Crc32,
    Sha,
    Dijkstra,
    Patricia,
    StringSearch,
    Bitcount,
    BasicMath,
    Qsort,
    SusanSmoothing,
    SusanEdges,
    SusanCorners,
    Fft,
    Ifft,
    JpegEnc,
    JpegDec,
    GsmEnc,
    GsmDec,
    Mpeg2Dec,
}

impl AppId {
    /// All 20 applications, in the order used by reports.
    pub const ALL: [AppId; 20] = [
        AppId::AdpcmEnc,
        AppId::AdpcmDec,
        AppId::Crc32,
        AppId::Sha,
        AppId::Dijkstra,
        AppId::Patricia,
        AppId::StringSearch,
        AppId::Bitcount,
        AppId::BasicMath,
        AppId::Qsort,
        AppId::SusanSmoothing,
        AppId::SusanEdges,
        AppId::SusanCorners,
        AppId::Fft,
        AppId::Ifft,
        AppId::JpegEnc,
        AppId::JpegDec,
        AppId::GsmEnc,
        AppId::GsmDec,
        AppId::Mpeg2Dec,
    ];

    /// Canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            AppId::AdpcmEnc => "adpcm_enc",
            AppId::AdpcmDec => "adpcm_dec",
            AppId::Crc32 => "crc32",
            AppId::Sha => "sha",
            AppId::Dijkstra => "dijkstra",
            AppId::Patricia => "patricia",
            AppId::StringSearch => "stringsearch",
            AppId::Bitcount => "bitcount",
            AppId::BasicMath => "basicmath",
            AppId::Qsort => "qsort",
            AppId::SusanSmoothing => "susan_s",
            AppId::SusanEdges => "susan_e",
            AppId::SusanCorners => "susan_c",
            AppId::Fft => "fft",
            AppId::Ifft => "ifft",
            AppId::JpegEnc => "jpeg_enc",
            AppId::JpegDec => "jpeg_dec",
            AppId::GsmEnc => "gsm_enc",
            AppId::GsmDec => "gsm_dec",
            AppId::Mpeg2Dec => "mpeg2_dec",
        }
    }

    /// Which suite the modelled application comes from.
    pub fn suite(self) -> Suite {
        match self {
            AppId::AdpcmEnc
            | AppId::AdpcmDec
            | AppId::JpegEnc
            | AppId::JpegDec
            | AppId::GsmEnc
            | AppId::GsmDec
            | AppId::Mpeg2Dec => Suite::Mediabench,
            _ => Suite::MiBench,
        }
    }
}

impl fmt::Display for AppId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How much work to synthesize. The access *patterns* are identical across
/// scales; only the outer pass count changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// ~10–40 k committed instructions: unit tests.
    Tiny,
    /// ~150–500 k committed instructions: the default for experiments.
    Small,
    /// ~1.5–5 M committed instructions: closest to the paper's full runs.
    Full,
}

impl Scale {
    fn passes(self) -> u32 {
        match self {
            Scale::Tiny => 2,
            Scale::Small => 16,
            Scale::Full => 160,
        }
    }
}

/// A synthesized benchmark: the program plus its declared data footprint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Workload {
    /// Which application this is.
    pub app: AppId,
    /// The executable program, shared so cloning a workload (memoized
    /// reruns, per-seed sweeps) never copies the instruction vector.
    pub program: Arc<Program>,
    /// Bytes of data the program touches (cache-pressure indicator).
    pub data_footprint_bytes: u32,
}

/// Builds one of the paper's 20 applications at the requested scale.
pub fn build(app: AppId, scale: Scale) -> Workload {
    let passes = scale.passes();
    let (program, footprint) = match app {
        // ADPCM encode: stream audio in, consult the step-size table, write
        // one compressed word per four samples.
        AppId::AdpcmEnc => (
            wrap(app, passes, |b| {
                table_stream(
                    b,
                    &TableStreamCfg {
                        base: STREAM_BASE,
                        bytes: 2 * 1024,
                        table_base: TABLE_BASE,
                        table_bytes: 256,
                        alu_ops: 4,
                        store_every: 4,
                    },
                );
            }),
            2 * 1024 + 256,
        ),
        // ADPCM decode: shorter compressed input, expands with more stores.
        AppId::AdpcmDec => (
            wrap(app, passes, |b| {
                table_stream(
                    b,
                    &TableStreamCfg {
                        base: STREAM_BASE,
                        bytes: 1024,
                        table_base: TABLE_BASE,
                        table_bytes: 256,
                        alu_ops: 3,
                        store_every: 2,
                    },
                );
            }),
            1024 + 256,
        ),
        // CRC32: byte stream folded through a 1 kB lookup table, no stores.
        AppId::Crc32 => (
            wrap(app, passes, |b| {
                table_stream(
                    b,
                    &TableStreamCfg {
                        base: STREAM_BASE,
                        bytes: 2 * 1024,
                        table_base: TABLE_BASE,
                        table_bytes: 1024,
                        alu_ops: 4,
                        store_every: 0,
                    },
                );
            }),
            2 * 1024 + 1024,
        ),
        // SHA: heavy ALU per word, small hot message-schedule buffer.
        AppId::Sha => (
            wrap(app, passes, |b| {
                stream(
                    b,
                    &StreamCfg {
                        base: STREAM_BASE,
                        bytes: 2 * 1024,
                        stride: 4,
                        store_every: 8,
                        alu_ops: 12,
                        unroll: 16,
                    },
                );
                compute(
                    b,
                    &ComputeCfg {
                        iters: 256,
                        alu_ops: 8,
                        base: AUX_BASE,
                        bytes: 256,
                    },
                );
            }),
            2 * 1024 + 256,
        ),
        // Dijkstra: random frontier pokes into the adjacency structure plus
        // a sequential relaxation sweep over the distance array.
        AppId::Dijkstra => (
            wrap(app, passes, |b| {
                random(
                    b,
                    &RandomCfg {
                        base: RANDOM_BASE,
                        bytes: 4 * 1024,
                        iters: 2048,
                        store_every: 4,
                        alu_ops: 2,
                        seed: 0x1234_5678,
                    },
                );
                stream(
                    b,
                    &StreamCfg {
                        base: AUX_BASE,
                        bytes: 2 * 1024,
                        stride: 4,
                        store_every: 2,
                        alu_ops: 2,
                        unroll: 4,
                    },
                );
            }),
            4 * 1024 + 2 * 1024,
        ),
        // Patricia: pure pointer chasing over a big trie, few stores.
        AppId::Patricia => (
            wrap(app, passes, |b| {
                random(
                    b,
                    &RandomCfg {
                        base: RANDOM_BASE,
                        bytes: 8 * 1024,
                        iters: 2560,
                        store_every: 8,
                        alu_ops: 3,
                        seed: 0x9E37_79B9,
                    },
                );
            }),
            8 * 1024,
        ),
        // Stringsearch: two scan passes over the text, read-only.
        AppId::StringSearch => (
            wrap(app, passes, |b| {
                for _ in 0..2 {
                    stream(
                        b,
                        &StreamCfg {
                            base: STREAM_BASE,
                            bytes: 2 * 1024,
                            stride: 4,
                            store_every: 0,
                            alu_ops: 2,
                            unroll: 4,
                        },
                    );
                }
            }),
            2 * 1024,
        ),
        // Bitcount: ALU-bound, tiny footprint.
        AppId::Bitcount => (
            wrap(app, passes, |b| {
                compute(
                    b,
                    &ComputeCfg {
                        iters: 2048,
                        alu_ops: 16,
                        base: AUX_BASE,
                        bytes: 256,
                    },
                );
            }),
            256,
        ),
        // Basicmath: ALU-bound with a slightly larger working buffer and a
        // short coefficient scan.
        AppId::BasicMath => (
            wrap(app, passes, |b| {
                compute(
                    b,
                    &ComputeCfg {
                        iters: 1536,
                        alu_ops: 20,
                        base: AUX_BASE,
                        bytes: 1024,
                    },
                );
                stream(
                    b,
                    &StreamCfg {
                        base: STREAM_BASE,
                        bytes: 1024,
                        stride: 4,
                        store_every: 0,
                        alu_ops: 8,
                        unroll: 4,
                    },
                );
            }),
            2 * 1024,
        ),
        // Qsort: random exchanges plus a sequential partition sweep.
        AppId::Qsort => (
            wrap(app, passes, |b| {
                random(
                    b,
                    &RandomCfg {
                        base: RANDOM_BASE,
                        bytes: 4 * 1024,
                        iters: 1536,
                        store_every: 2,
                        alu_ops: 3,
                        seed: 0x0BAD_F00D,
                    },
                );
                stream(
                    b,
                    &StreamCfg {
                        base: RANDOM_BASE,
                        bytes: 4 * 1024,
                        stride: 4,
                        store_every: 4,
                        alu_ops: 2,
                        unroll: 4,
                    },
                );
            }),
            4 * 1024,
        ),
        // SUSAN smoothing: 4x4 neighbourhood tiles, writes every few pixels.
        AppId::SusanSmoothing => (
            wrap(app, passes, |b| {
                blocked(
                    b,
                    &BlockedCfg {
                        base: IMAGE_BASE,
                        width: 32,
                        height: 32,
                        block: 4,
                        alu_ops: 6,
                        store_every: 4,
                    },
                );
            }),
            32 * 32 * 4,
        ),
        // SUSAN edges: bigger tiles, more arithmetic, denser writes.
        AppId::SusanEdges => (
            wrap(app, passes, |b| {
                blocked(
                    b,
                    &BlockedCfg {
                        base: IMAGE_BASE,
                        width: 32,
                        height: 32,
                        block: 8,
                        alu_ops: 8,
                        store_every: 8,
                    },
                );
            }),
            32 * 32 * 4,
        ),
        // SUSAN corners: read-mostly tile scan.
        AppId::SusanCorners => (
            wrap(app, passes, |b| {
                blocked(
                    b,
                    &BlockedCfg {
                        base: IMAGE_BASE,
                        width: 32,
                        height: 32,
                        block: 8,
                        alu_ops: 10,
                        store_every: 0,
                    },
                );
            }),
            32 * 32 * 4,
        ),
        // FFT: butterfly stages over a 4 kB array, stores both halves.
        AppId::Fft => (
            wrap(app, passes, |b| {
                strided_kernel(b, true, 5);
            }),
            512 * 4,
        ),
        // IFFT: same array, accumulating variant with extra arithmetic.
        AppId::Ifft => (
            wrap(app, passes, |b| {
                strided_kernel(b, false, 6);
            }),
            512 * 4,
        ),
        // JPEG encode: three DCT-ish tile phases plus an entropy-output
        // stream; large code footprint pressures the instruction cache.
        AppId::JpegEnc => (
            wrap(app, passes, |b| {
                for phase in 0..3u32 {
                    blocked(
                        b,
                        &BlockedCfg {
                            base: IMAGE_BASE,
                            width: 32,
                            height: 32,
                            block: 8,
                            alu_ops: 6 + phase,
                            store_every: 4,
                        },
                    );
                }
                stream(
                    b,
                    &StreamCfg {
                        base: STREAM_BASE,
                        bytes: 2 * 1024,
                        stride: 4,
                        store_every: 2,
                        alu_ops: 4,
                        unroll: 8,
                    },
                );
            }),
            32 * 32 * 4 + 2 * 1024,
        ),
        // JPEG decode: two tile phases, expansion stream with more stores.
        AppId::JpegDec => (
            wrap(app, passes, |b| {
                for _ in 0..2 {
                    blocked(
                        b,
                        &BlockedCfg {
                            base: IMAGE_BASE,
                            width: 32,
                            height: 32,
                            block: 8,
                            alu_ops: 6,
                            store_every: 2,
                        },
                    );
                }
                stream(
                    b,
                    &StreamCfg {
                        base: STREAM_BASE,
                        bytes: 4 * 1024,
                        stride: 4,
                        store_every: 2,
                        alu_ops: 3,
                        unroll: 8,
                    },
                );
            }),
            32 * 32 * 4 + 4 * 1024,
        ),
        // GSM encode: six codebook-search phases — long code, hot table.
        AppId::GsmEnc => (
            wrap(app, passes, |b| {
                for _ in 0..6 {
                    table_stream(
                        b,
                        &TableStreamCfg {
                            base: STREAM_BASE,
                            bytes: 1024,
                            table_base: TABLE_BASE,
                            table_bytes: 512,
                            alu_ops: 10,
                            store_every: 4,
                        },
                    );
                }
            }),
            1024 + 512,
        ),
        // GSM decode: four shorter synthesis phases.
        AppId::GsmDec => (
            wrap(app, passes, |b| {
                for _ in 0..4 {
                    table_stream(
                        b,
                        &TableStreamCfg {
                            base: STREAM_BASE,
                            bytes: 1024,
                            table_base: TABLE_BASE,
                            table_bytes: 512,
                            alu_ops: 6,
                            store_every: 2,
                        },
                    );
                }
            }),
            1024 + 512,
        ),
        // MPEG-2 decode: random motion-compensation fetches over a wide
        // reference frame, tile reconstruction, sequential frame output.
        AppId::Mpeg2Dec => (
            wrap(app, passes, |b| {
                random(
                    b,
                    &RandomCfg {
                        base: RANDOM_BASE,
                        bytes: 16 * 1024,
                        iters: 1024,
                        store_every: 0,
                        alu_ops: 3,
                        seed: 0xFEED_FACE,
                    },
                );
                blocked(
                    b,
                    &BlockedCfg {
                        base: IMAGE_BASE,
                        width: 32,
                        height: 32,
                        block: 8,
                        alu_ops: 4,
                        store_every: 4,
                    },
                );
                stream(
                    b,
                    &StreamCfg {
                        base: STREAM_BASE,
                        bytes: 4 * 1024,
                        stride: 4,
                        store_every: 4,
                        alu_ops: 2,
                        unroll: 8,
                    },
                );
            }),
            16 * 1024 + 32 * 32 * 4 + 4 * 1024,
        ),
    };
    Workload {
        app,
        program: Arc::new(program),
        data_footprint_bytes: footprint,
    }
}

/// Shared FFT/IFFT body.
fn strided_kernel(b: &mut ProgramBuilder, store_pairs: bool, alu_ops: u32) {
    crate::kernels::strided(
        b,
        &crate::kernels::StridedCfg {
            base: AUX_BASE,
            words: 512,
            stages: 7,
            store_pairs,
            alu_ops,
        },
    );
}

/// Wraps a body in the outer pass loop (`R13`/`R14`) and finalizes.
fn wrap(app: AppId, passes: u32, emit_body: impl Fn(&mut ProgramBuilder)) -> Program {
    let mut b = ProgramBuilder::new(app.name());
    b.li(Reg::R13, 0);
    b.li(Reg::R14, passes);
    let top = b.label_here();
    emit_body(&mut b);
    b.addi(Reg::R13, Reg::R13, 1);
    b.blt(Reg::R13, Reg::R14, top);
    b.halt();
    b.build_at(CODE_BASE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::test_util::run;

    #[test]
    fn all_apps_build_and_halt_at_tiny_scale() {
        for app in AppId::ALL {
            let wl = build(app, Scale::Tiny);
            let (core, _, _) = run(&wl.program, 3_000_000);
            assert!(core.halted(), "{app} did not halt");
            assert!(
                core.committed() > 4_000,
                "{app} too small: {} instructions",
                core.committed()
            );
            assert!(
                core.committed() < 1_000_000,
                "{app} too big for Tiny: {} instructions",
                core.committed()
            );
        }
    }

    #[test]
    fn load_store_ratios_are_low_and_diverse() {
        // Fig. 7: MiBench/Mediabench load/store ratios are "relatively low".
        let mut ratios = Vec::new();
        for app in AppId::ALL {
            let wl = build(app, Scale::Tiny);
            let (core, _, _) = run(&wl.program, 3_000_000);
            let ratio = (core.loads() + core.stores()) as f64 / core.committed() as f64;
            assert!(
                (0.02..=0.50).contains(&ratio),
                "{app}: implausible ld/st ratio {ratio:.3}"
            );
            ratios.push(ratio);
        }
        let min = ratios.iter().cloned().fold(f64::MAX, f64::min);
        let max = ratios.iter().cloned().fold(0.0, f64::max);
        assert!(max / min > 2.5, "ratios not diverse: {min:.3}..{max:.3}");
    }

    #[test]
    fn footprints_span_cache_sizes() {
        let footprints: Vec<u32> = AppId::ALL
            .iter()
            .map(|&a| build(a, Scale::Tiny).data_footprint_bytes)
            .collect();
        assert!(
            footprints.iter().any(|&f| f <= 1024),
            "need cache-resident apps"
        );
        assert!(
            footprints.iter().any(|&f| f >= 8 * 1024),
            "need apps that thrash the 4 kB cache"
        );
    }

    #[test]
    fn scales_change_work_not_structure() {
        let tiny = build(AppId::Crc32, Scale::Tiny);
        let small = build(AppId::Crc32, Scale::Small);
        assert_eq!(tiny.program.len(), small.program.len());
        let (c_tiny, _, _) = run(&tiny.program, 10_000_000);
        let (c_small, _, _) = run(&small.program, 10_000_000);
        // Small uses 8x the passes of Tiny.
        assert!(c_small.committed() > 7 * c_tiny.committed());
    }

    #[test]
    fn builds_are_deterministic() {
        let a = build(AppId::JpegEnc, Scale::Tiny);
        let b = build(AppId::JpegEnc, Scale::Tiny);
        assert_eq!(a.program, b.program);
    }

    #[test]
    fn code_footprints_are_diverse() {
        let small_code = build(AppId::Crc32, Scale::Tiny).program.len();
        let big_code = build(AppId::JpegEnc, Scale::Tiny).program.len();
        assert!(
            big_code > 3 * small_code,
            "jpeg_enc ({big_code}) should dwarf crc32 ({small_code})"
        );
    }

    #[test]
    fn suites_are_assigned() {
        assert_eq!(AppId::Crc32.suite(), Suite::MiBench);
        assert_eq!(AppId::JpegEnc.suite(), Suite::Mediabench);
        assert_eq!(AppId::ALL.len(), 20);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = AppId::ALL.iter().map(|a| a.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 20);
    }
}
