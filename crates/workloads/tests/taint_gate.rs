//! Stream-invariance gate for every shipped workload kernel.
//!
//! The transposed lockstep path in `ehs-sim` replays one lane's recorded
//! `(pc, kind, addr)` stream for its siblings, which is only sound for
//! programs whose access stream is independent of loaded data values
//! (`ehs_cpu::stream_is_data_independent`). Every kernel in the roster is
//! deliberately written that way — induction variables, addresses and
//! loop bounds derive from constants, and loaded data only flows into
//! accumulators and store values. This test pins that property so a
//! future kernel edit that silently makes a stream data-dependent (and
//! thereby drops the app out of the wide path) is a visible decision, not
//! an accident.

use ehs_cpu::stream_is_data_independent;
use ehs_workloads::{build, AppId, Scale};

#[test]
fn every_shipped_kernel_has_a_data_independent_stream() {
    for &app in &AppId::ALL {
        for scale in [Scale::Tiny, Scale::Small] {
            let workload = build(app, scale);
            assert!(
                stream_is_data_independent(&workload.program),
                "{app:?} at {scale:?} has a data-dependent access stream; \
                 it would silently fall off the transposed lockstep path"
            );
        }
    }
}
