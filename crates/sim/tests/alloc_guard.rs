//! Zero-allocation hot-loop guard.
//!
//! The packed-state redesign (nibble-packed policy words, paged shadow
//! tables, writeback arenas, the pooled tick scratch) exists so that the
//! per-access simulator kernels never touch the heap once warm. This test
//! enforces that property end to end: a counting global allocator wraps the
//! system allocator, each scenario runs a warm-up prefix that reaches every
//! pool's high-water capacity (footprint touched, checkpoints taken,
//! outages survived), and the measured window that follows must perform
//! ZERO heap allocations while committing tens of thousands of
//! instructions.
//!
//! Scenarios cover the three paper configurations with distinct hot paths:
//! NVSRAMCache/EDBP (voltage-threshold gating + NV parking), Decay+EDBP
//! (per-epoch sweeps + combined predictor), and a zombie-instrumented run
//! (per-instruction sampling on the cycle-by-cycle reference path).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use ehs_sim::{Scheme, Simulation, SystemConfig};
use ehs_workloads::{build, AppId, Scale};

/// Wraps the system allocator, counting every allocation (alloc, realloc
/// and alloc_zeroed all count; frees do not — a free in the hot loop would
/// imply an earlier allocation anyway).
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Runs the scenario once to learn its total committed-instruction count,
/// then re-runs it with a warm-up prefix (55 % of the run) and asserts the
/// measured window that follows (up to 85 %) performs zero allocations.
fn assert_alloc_free_window(config: &SystemConfig, scheme: Scheme, app: AppId, label: &str) {
    let probe = Simulation::new(config, scheme, build(app, Scale::Small), None);
    let total = probe.run().0.committed;

    let mut sim = Simulation::new(config, scheme, build(app, Scale::Small), None);
    let warmup = total * 55 / 100;
    let until = total * 85 / 100;
    sim.advance_until(warmup);
    assert!(
        sim.committed() >= warmup && !sim.halted(),
        "{label}: warm-up must end mid-run (committed {} of {total})",
        sim.committed()
    );
    sim.reserve_zombie_capacity(4096);

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    sim.advance_until(until);
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    let committed = sim.committed();

    assert_eq!(
        after - before,
        0,
        "{label}: {} heap allocations while committing instructions \
         {warmup}..{committed} (the hot loop must be allocation-free once warm)",
        after - before,
    );
    assert!(
        committed > warmup + 1000,
        "{label}: measured window too short ({warmup}..{committed}) to be meaningful"
    );
}

#[test]
fn hot_loop_is_allocation_free_once_warm() {
    // NVSRAMCache (EDBP): threshold gating, NV parking, burst stepping.
    assert_alloc_free_window(
        &SystemConfig::paper_default(),
        Scheme::Edbp,
        AppId::AdpcmEnc,
        "edbp",
    );

    // Decay+EDBP: epoch sweeps through the combined predictor, plus
    // conventional main-memory spills of gated dirty blocks.
    assert_alloc_free_window(
        &SystemConfig::paper_default(),
        Scheme::DecayEdbp,
        AppId::Crc32,
        "decay+edbp",
    );

    // Zombie-instrumented run: burst stepping disabled, per-instruction
    // sampling walks the resident set and feeds the pooled chain arena.
    let mut config = SystemConfig::paper_default();
    config.zombie_sample_interval = Some(500);
    assert_alloc_free_window(
        &config,
        Scheme::DecayEdbp,
        AppId::Sha,
        "zombie-instrumented",
    );
}
