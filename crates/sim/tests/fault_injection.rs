//! In-process fault-injection: panic containment, store-failure degradation,
//! and journal honesty, with a deterministic single-threaded schedule.
//!
//! Everything lives in ONE `#[test]`: the fault plan, the installed
//! persistent cache, and the fault-site counters are all process-wide, so
//! parallel test functions would race on them. Sequencing inside one
//! function keeps the occurrence arithmetic exact.
//!
//! The heavyweight end-to-end campaigns (kill -9 + resume, concurrent
//! `exp_all` processes) live in `tests/fault_tolerance.rs` behind
//! `#[ignore]`; this test is the fast always-on slice.

use ehs_sim::fault::{self, FailPlan};
use ehs_sim::runcache::{self, entry_stem, RunCache};
use ehs_sim::runner::{effective_fingerprint, try_run_jobs_outputs, Job};
use ehs_sim::{run_app, Scheme, SystemConfig};
use ehs_workloads::{AppId, Scale};
use std::path::PathBuf;
use std::sync::Arc;

#[test]
fn panics_are_contained_and_failed_stores_stay_unjournaled() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("fault-injection");
    let _ = std::fs::remove_dir_all(&dir);
    assert!(runcache::install(&dir), "first cache install wins");

    // With one worker thread the schedule is the longest-first cost order,
    // so the fault sites land deterministically: Bitcount, BasicMath,
    // Dijkstra, Crc32 (descending committed-instruction weight).
    //   exec hit 2  = BasicMath  -> panics (no store, no journal line)
    //   store hit 3 = Crc32      -> injected EIO (simulated fine, not persisted)
    assert!(
        fault::install(FailPlan::parse("panic@exec=2,io@store=3").unwrap()),
        "first plan install wins"
    );

    let config = Arc::new(SystemConfig::paper_default());
    let job = |app| Job {
        config: Arc::clone(&config),
        scheme: Scheme::Baseline,
        app,
        scale: Scale::Tiny,
    };
    let jobs = [
        job(AppId::Crc32),
        job(AppId::Dijkstra),
        job(AppId::BasicMath),
        job(AppId::Bitcount),
    ];
    let fp = effective_fingerprint(&config, Scheme::Baseline);
    let stem = |app| entry_stem(fp, Scheme::Baseline, app, Scale::Tiny);

    // Pass 1: exactly the planned job fails; every sibling completes.
    let first = try_run_jobs_outputs(&jobs, 1);
    assert!(first[0].is_ok(), "crc32 must survive its neighbor's panic");
    assert!(
        first[1].is_ok(),
        "dijkstra must survive its neighbor's panic"
    );
    assert!(
        first[3].is_ok(),
        "bitcount must survive its neighbor's panic"
    );
    let err = first[2].as_ref().expect_err("basicmath hits panic@exec=2");
    assert_eq!(err.app, AppId::BasicMath);
    assert!(
        err.message.contains("fault injection: panic"),
        "panic payload must be carried into the JobError, got {:?}",
        err.message
    );
    assert!(
        err.to_string().contains(&stem(AppId::BasicMath)),
        "the error must identify the job by its cache-entry stem"
    );

    // Pass 2: the same jobs again, same process. The panicked job's memo
    // slot was left uninitialized, so it retries and succeeds; nothing is
    // wedged behind a poisoned lock (the pre-fault-tolerance latency bomb).
    let second = try_run_jobs_outputs(&jobs, 1);
    for (i, r) in second.iter().enumerate() {
        assert!(r.is_ok(), "job {i} must succeed once the plan is spent");
    }
    let fresh = run_app(&config, Scheme::Baseline, AppId::BasicMath, Scale::Tiny);
    assert_eq!(
        second[2].as_ref().unwrap().result,
        fresh,
        "the retried job must produce the fault-free result"
    );

    // Disk state, via a fresh handle (not the installed one): the panicked
    // job was stored by its pass-2 retry; the EIO-injected store left no
    // entry — and, critically, no journal line promising one.
    let cache = RunCache::new(&dir).expect("reopen cache dir");
    let load = |app| cache.load(fp, Scheme::Baseline, app, Scale::Tiny);
    assert!(load(AppId::Bitcount).is_some());
    assert!(load(AppId::Dijkstra).is_some());
    assert!(load(AppId::BasicMath).is_some(), "retry stored the entry");
    assert!(
        load(AppId::Crc32).is_none(),
        "the EIO-injected store must not leave an entry"
    );
    let journal = cache.journal_entries();
    assert!(journal.contains(&stem(AppId::Bitcount)));
    assert!(journal.contains(&stem(AppId::Dijkstra)));
    assert!(journal.contains(&stem(AppId::BasicMath)));
    assert!(
        !journal.contains(&stem(AppId::Crc32)),
        "a failed store must not be journaled: journaled means replayable"
    );
}
