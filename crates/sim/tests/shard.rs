//! Property tests for the fleet shard planner ([`ehs_sim::runner::shard_jobs`]).
//!
//! The partition is pure arithmetic over the job list, so N processes that
//! plan the same suite agree on it with no coordination. These tests pin
//! the three properties the fleet depends on, over random subsets of the
//! real suite plan:
//!
//! 1. **Exactly-one**: the shards tile `unique_jobs` — every unique job in
//!    exactly one shard, nothing invented.
//! 2. **Determinism**: the partition is a pure function of the job *set* —
//!    recomputation and input reordering change nothing.
//! 3. **Balance**: no shard's estimated cost exceeds
//!    `total/count + max_group` (the documented greedy bound), where a
//!    group is a job plus any oracle baseline that must travel with it.

use ehs_sim::planner::plan_suite;
use ehs_sim::runcache::entry_stem;
use ehs_sim::runner::{count_unique, effective_fingerprint, shard_jobs, unique_jobs, Job};
use ehs_sim::Scheme;
use ehs_workloads::Scale;
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

fn stem_of(job: &Job) -> String {
    entry_stem(
        effective_fingerprint(&job.config, job.scheme),
        job.scheme,
        job.app,
        job.scale,
    )
}

/// A deterministic pool of real jobs: the whole Tiny suite plan.
fn pool() -> Vec<Job> {
    plan_suite(Scale::Tiny).jobs
}

/// Samples a non-empty subset of `pool` from the seeds.
fn subset(pool: &[Job], seeds: &[u64]) -> Vec<Job> {
    let mut jobs: Vec<Job> = seeds
        .iter()
        .map(|&s| pool[(s as usize) % pool.len()].clone())
        .collect();
    if jobs.is_empty() {
        jobs.push(pool[0].clone());
    }
    jobs
}

/// The affinity-group cost ceiling: each job's cost, plus its oracle
/// baseline's when the scheme needs one (the planner keeps those together).
fn max_group_cost(jobs: &[Job]) -> f64 {
    let unique = unique_jobs(jobs);
    let mut baseline_cost: HashMap<String, f64> = HashMap::new();
    for job in &unique {
        if job.scheme == Scheme::Baseline {
            baseline_cost.insert(stem_of(job), job.estimated_cost());
        }
    }
    let mut group: HashMap<String, f64> = HashMap::new();
    for job in &unique {
        let anchor = if job.scheme.needs_oracle_trace() {
            let mut base = job.clone();
            base.scheme = Scheme::Baseline;
            stem_of(&base)
        } else {
            stem_of(job)
        };
        let cost = if job.scheme == Scheme::Baseline && baseline_cost.contains_key(&anchor) {
            0.0 // counted once via the map below
        } else {
            job.estimated_cost()
        };
        *group
            .entry(anchor.clone())
            .or_insert_with(|| baseline_cost.get(&anchor).copied().unwrap_or(0.0)) += cost;
    }
    group.values().fold(0.0f64, |a, &b| a.max(b))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn every_unique_job_lands_in_exactly_one_shard(
        seeds in proptest::collection::vec(any::<u64>(), 1..40),
        count_seed in 1u64..8,
    ) {
        let pool = pool();
        let jobs = subset(&pool, &seeds);
        let count = count_seed as usize;
        let expected: HashSet<String> = unique_jobs(&jobs).iter().map(stem_of).collect();
        prop_assert_eq!(expected.len(), count_unique(&jobs));
        let mut seen: HashMap<String, usize> = HashMap::new();
        for index in 0..count {
            for job in shard_jobs(&jobs, index, count) {
                *seen.entry(stem_of(&job)).or_insert(0) += 1;
            }
        }
        for stem in &expected {
            prop_assert_eq!(
                seen.get(stem).copied().unwrap_or(0),
                1,
                "unique job {} must land in exactly one shard",
                stem
            );
        }
        prop_assert_eq!(seen.len(), expected.len(), "no shard may invent jobs");
    }

    #[test]
    fn partition_is_deterministic_and_order_invariant(
        seeds in proptest::collection::vec(any::<u64>(), 1..40),
        count_seed in 1u64..8,
        rotation in any::<u64>(),
    ) {
        let pool = pool();
        let jobs = subset(&pool, &seeds);
        let count = count_seed as usize;
        let mut rotated = jobs.clone();
        rotated.rotate_left(rotation as usize % jobs.len().max(1));
        for index in 0..count {
            let a: HashSet<String> =
                shard_jobs(&jobs, index, count).iter().map(stem_of).collect();
            let b: HashSet<String> =
                shard_jobs(&jobs, index, count).iter().map(stem_of).collect();
            let c: HashSet<String> =
                shard_jobs(&rotated, index, count).iter().map(stem_of).collect();
            prop_assert_eq!(&a, &b, "recomputation must agree (shard {})", index);
            prop_assert_eq!(&a, &c, "input order must not matter (shard {})", index);
        }
    }

    #[test]
    fn shard_cost_imbalance_stays_within_the_greedy_bound(
        seeds in proptest::collection::vec(any::<u64>(), 1..60),
        count_seed in 1u64..8,
    ) {
        let pool = pool();
        let jobs = subset(&pool, &seeds);
        let count = count_seed as usize;
        let unique = unique_jobs(&jobs);
        let total: f64 = unique.iter().map(Job::estimated_cost).sum();
        let bound = total / count as f64 + max_group_cost(&jobs);
        for index in 0..count {
            let load: f64 = shard_jobs(&jobs, index, count)
                .iter()
                .map(Job::estimated_cost)
                .sum();
            prop_assert!(
                load <= bound * (1.0 + 1e-9),
                "shard {}/{} load {} exceeds bound {} (total {})",
                index,
                count,
                load,
                bound,
                total
            );
        }
    }
}

#[test]
fn oracle_baselines_travel_with_their_ideal_jobs() {
    // An Ideal job's oracle pass replays its baseline's stored entry; the
    // planner must therefore never split the pair across shards.
    let jobs: Vec<Job> = pool()
        .into_iter()
        .filter(|j| j.scheme == Scheme::Ideal || j.scheme == Scheme::Baseline)
        .collect();
    assert!(
        jobs.iter().any(|j| j.scheme == Scheme::Ideal),
        "suite must contain Ideal jobs"
    );
    for count in [2usize, 3, 5] {
        for index in 0..count {
            let shard = shard_jobs(&jobs, index, count);
            let stems: HashSet<String> = shard.iter().map(stem_of).collect();
            for job in &shard {
                if job.scheme.needs_oracle_trace() {
                    let mut base = job.clone();
                    base.scheme = Scheme::Baseline;
                    assert!(
                        stems.contains(&stem_of(&base)),
                        "shard {index}/{count}: Ideal job {} separated from its baseline",
                        stem_of(job)
                    );
                }
            }
        }
    }
}
