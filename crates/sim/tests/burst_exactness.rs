//! Differential suite: burst stepping vs the cycle-accurate reference.
//!
//! The burst fast path (`DESIGN.md` §8) is required to be **bit-exact**:
//! every [`RunResult`] field except the host-wall-clock `sim_mips` must be
//! identical whether the loop coalesces compute bursts or steps one cycle
//! at a time. These tests run the same (scheme, app, seed) matrix under
//! both [`SystemConfig::force_cycle_accurate`] settings — plus the
//! speculative energy kernel forced off via
//! [`SystemConfig::force_no_speculate`] — and compare with `==`
//! (`sim_mips` is excluded from `RunResult`'s `PartialEq`).

use ehs_nvm::MemoryTechnology;
use ehs_sim::runner::{default_threads, run_matrix};
use ehs_sim::{run_app, Scheme, Simulation, SourceKind, SystemConfig};
use ehs_units::{Capacitance, Energy, Power, Voltage};
use ehs_workloads::{build, AppId, Scale};

const ALL_SCHEMES: [Scheme; 9] = [
    Scheme::Baseline,
    Scheme::Sdbp,
    Scheme::Decay,
    Scheme::Edbp,
    Scheme::DecayEdbp,
    Scheme::Amc,
    Scheme::AmcEdbp,
    Scheme::Ideal,
    Scheme::LeakageOff80,
];

const APPS: [AppId; 3] = [AppId::Crc32, AppId::Patricia, AppId::JpegEnc];
const SEEDS: [u64; 2] = [42, 7];

/// `config` with the trace seed replaced and the stepping regime set.
fn variant(config: &SystemConfig, seed: u64, cycle_accurate: bool) -> SystemConfig {
    let mut c = config.clone();
    if let SourceKind::Preset { preset, scale, .. } = c.source {
        c.source = SourceKind::Preset {
            preset,
            seed,
            scale,
        };
    }
    c.force_cycle_accurate = cycle_accurate;
    c
}

/// Runs `schemes` × `apps` under both regimes for every seed and asserts
/// cell-wise equality.
fn assert_matrix_bit_exact(base: &SystemConfig, schemes: &[Scheme], apps: &[AppId]) {
    let threads = default_threads();
    for &seed in &SEEDS {
        let burst = run_matrix(
            &variant(base, seed, false),
            schemes,
            apps,
            Scale::Tiny,
            threads,
        );
        let exact = run_matrix(
            &variant(base, seed, true),
            schemes,
            apps,
            Scale::Tiny,
            threads,
        );
        let no_speculate = {
            let mut c = variant(base, seed, false);
            c.force_no_speculate = true;
            run_matrix(&c, schemes, apps, Scale::Tiny, threads)
        };
        for ((b_row, e_row), n_row) in burst.iter().zip(&exact).zip(&no_speculate) {
            for ((b, e), n) in b_row.iter().zip(e_row).zip(n_row) {
                assert_eq!(
                    b, e,
                    "burst vs cycle-accurate divergence: scheme {} app {:?} seed {seed}",
                    b.scheme, b.app
                );
                assert_eq!(
                    b, n,
                    "speculative vs guarded energy kernel divergence: \
                     scheme {} app {:?} seed {seed}",
                    b.scheme, b.app
                );
            }
        }
    }
}

#[test]
fn every_scheme_is_bit_exact_across_apps_and_seeds() {
    assert_matrix_bit_exact(&SystemConfig::paper_default(), &ALL_SCHEMES, &APPS);
}

#[test]
fn icache_prediction_path_is_bit_exact() {
    // A volatile (SRAM) I-cache with prediction enabled exercises the
    // i_pred hooks, the merged wake hint and the I-cache leg of the leakage
    // cache.
    let mut config = SystemConfig::paper_default();
    config.icache_tech = MemoryTechnology::Sram;
    config.predict_icache = true;
    assert_matrix_bit_exact(
        &config,
        &[Scheme::Decay, Scheme::Edbp, Scheme::DecayEdbp, Scheme::Amc],
        &[AppId::Crc32, AppId::Bitcount, AppId::StringSearch],
    );
}

#[test]
fn zombie_instrumented_runs_are_bit_exact() {
    // Zombie sampling disables bursting but leaves hint-based tick skipping
    // active; both the results and the resolved samples must match the
    // reference.
    let mut config = SystemConfig::paper_default();
    config.zombie_sample_interval = Some(500);
    for scheme in [Scheme::Baseline, Scheme::DecayEdbp] {
        let run = |cycle_accurate: bool, no_speculate: bool| {
            let mut c = variant(&config, 42, cycle_accurate);
            c.force_no_speculate = no_speculate;
            Simulation::new(&c, scheme, build(AppId::Crc32, Scale::Tiny), None)
                .run_with_zombie_analysis()
        };
        let (b_result, b_samples) = run(false, false);
        let (e_result, e_samples) = run(true, false);
        let (n_result, n_samples) = run(false, true);
        assert_eq!(b_result, e_result, "zombie run diverged for {scheme}");
        assert_eq!(b_samples, e_samples, "zombie samples diverged for {scheme}");
        assert_eq!(
            b_result, n_result,
            "guarded-kernel zombie run diverged for {scheme}"
        );
        assert_eq!(
            b_samples, n_samples,
            "guarded-kernel zombie samples diverged for {scheme}"
        );
    }
}

/// A configuration whose per-cycle draw exceeds the `V_ckpt → V_min`
/// reserve, so voltage regularly jumps straight from above the checkpoint
/// threshold to below brown-out within a single cycle — frequently in the
/// middle of a burst.
fn brownout_prone_config() -> SystemConfig {
    let mut config = SystemConfig::paper_default();
    // Steady weak source: drains during compute, recovers while off.
    config.source = SourceKind::Constant(Power::from_milli_watts(1.0));
    // Tiny buffer with a razor-thin checkpoint reserve (~105 pJ at 47 nF)
    // against a ~200 pJ/cycle draw.
    config.energy.capacitor.capacitance = Capacitance::from_micro_farads(0.047);
    config.energy.thresholds.v_ckpt = Voltage::from_volts(2.8008);
    config.energy.thresholds.v_rst = Voltage::from_volts(3.2);
    config.energy.checkpoint_budget = Energy::from_pico_joules(50.0);
    // Brown-outs replay work from the last checkpoint; bound the run so a
    // replay-heavy schedule still terminates quickly (equality holds for
    // incomplete runs too).
    config.max_instructions = 300_000;
    config
}

#[test]
fn brownout_landing_mid_burst_is_bit_exact() {
    let config = brownout_prone_config();
    for scheme in [Scheme::Baseline, Scheme::DecayEdbp] {
        let run = |cycle_accurate: bool| {
            let mut c = config.clone();
            c.force_cycle_accurate = cycle_accurate;
            run_app(&c, scheme, AppId::Bitcount, Scale::Tiny)
        };
        let burst = run(false);
        let exact = run(true);
        let guarded_kernel = {
            let mut c = config.clone();
            c.force_no_speculate = true;
            run_app(&c, scheme, AppId::Bitcount, Scale::Tiny)
        };
        assert_eq!(
            burst, guarded_kernel,
            "speculative vs guarded energy kernel divergence for {scheme}"
        );
        assert!(
            burst.brownouts > 0,
            "configuration must provoke brown-outs ({scheme} saw none)"
        );
        assert_eq!(
            burst.brownouts, exact.brownouts,
            "brown-out count diverged for {scheme}"
        );
        assert_eq!(
            burst.outages, exact.outages,
            "outage count diverged for {scheme}"
        );
        assert_eq!(
            burst.energy, exact.energy,
            "energy breakdown diverged for {scheme}"
        );
        assert_eq!(
            burst, exact,
            "burst vs cycle-accurate divergence for {scheme}"
        );
    }
}
