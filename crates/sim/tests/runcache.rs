//! Persistent result-cache round-trip and rejection tests.
//!
//! These exercise [`ehs_sim::runcache::RunCache`] directly against private
//! temp directories (`CARGO_TARGET_TMPDIR`), without installing a
//! process-wide cache — so they compose with the rest of the test suite,
//! which must keep running purely in-process. The end-to-end fallback path
//! (a rejected entry triggering re-simulation inside the planner) is
//! covered by `tests/planner.rs`.

use ehs_sim::runcache::{checksum, ClaimOutcome, RunCache, SCHEMA_VERSION};
use ehs_sim::runner::effective_fingerprint;
use ehs_sim::{run_app, Scheme, SystemConfig, ZombieSample};
use ehs_workloads::{AppId, Scale};
use std::path::PathBuf;

const ALL_SCHEMES: [Scheme; 9] = [
    Scheme::Baseline,
    Scheme::Sdbp,
    Scheme::Decay,
    Scheme::Edbp,
    Scheme::DecayEdbp,
    Scheme::Amc,
    Scheme::AmcEdbp,
    Scheme::Ideal,
    Scheme::LeakageOff80,
];

fn tmp_cache(name: &str) -> RunCache {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    // A fresh directory per test: stale entries from a previous test run
    // would turn round-trip tests into replay tests.
    let _ = std::fs::remove_dir_all(&dir);
    RunCache::new(dir).expect("create temp cache")
}

/// The disk round-trip is lossless for every scheme × app at Tiny: a
/// `RunResult` loaded back compares equal (bit-for-bit on every field that
/// participates in `PartialEq`; the wall-clock `sim_mips` is excluded there
/// by design) to the freshly simulated one.
#[test]
fn round_trip_is_bit_identical_for_every_scheme_and_app() {
    let cache = tmp_cache("roundtrip");
    let config = SystemConfig::paper_default();
    for scheme in ALL_SCHEMES {
        let fp = effective_fingerprint(&config, scheme);
        for app in AppId::ALL {
            let fresh = run_app(&config, scheme, app, Scale::Tiny);
            cache.store(fp, scheme, app, Scale::Tiny, &fresh, None);
            let replayed = cache
                .load(fp, scheme, app, Scale::Tiny)
                .unwrap_or_else(|| panic!("{}/{} round-trip missed", scheme.name(), app.name()));
            assert_eq!(
                replayed.result,
                fresh,
                "{}/{} diverged across the disk round-trip",
                scheme.name(),
                app.name()
            );
            assert!(replayed.zombie_samples.is_none());
        }
    }
}

/// Zombie samples ride along and round-trip exactly.
#[test]
fn round_trip_preserves_zombie_samples() {
    let cache = tmp_cache("zombies");
    let config = SystemConfig::paper_default();
    let fp = effective_fingerprint(&config, Scheme::Baseline);
    let result = run_app(&config, Scheme::Baseline, AppId::Crc32, Scale::Tiny);
    let samples = vec![
        ZombieSample {
            voltage: 3.4375,
            zombie: true,
        },
        ZombieSample {
            voltage: 3.2,
            zombie: false,
        },
    ];
    cache.store(
        fp,
        Scheme::Baseline,
        AppId::Crc32,
        Scale::Tiny,
        &result,
        Some(&samples),
    );
    let replayed = cache
        .load(fp, Scheme::Baseline, AppId::Crc32, Scale::Tiny)
        .expect("zombie entry loads");
    assert_eq!(replayed.result, result);
    assert_eq!(replayed.zombie_samples.as_deref(), Some(samples.as_slice()));
}

fn seed_one_entry(cache: &RunCache) -> (u64, PathBuf) {
    let config = SystemConfig::paper_default();
    let fp = effective_fingerprint(&config, Scheme::Baseline);
    let result = run_app(&config, Scheme::Baseline, AppId::Crc32, Scale::Tiny);
    cache.store(
        fp,
        Scheme::Baseline,
        AppId::Crc32,
        Scale::Tiny,
        &result,
        None,
    );
    let path = cache
        .dir()
        .join(format!("{fp:016x}-nvsramcache-crc32-tiny.run"));
    assert!(path.exists(), "entry landed at the documented path");
    (fp, path)
}

/// A truncated file is rejected (load returns `None`, no panic).
#[test]
fn truncated_entry_is_rejected() {
    let cache = tmp_cache("truncated");
    let (fp, path) = seed_one_entry(&cache);
    let bytes = std::fs::read(&path).expect("read stored entry");
    std::fs::write(&path, &bytes[..bytes.len() - 9]).expect("truncate entry");
    assert!(
        cache
            .load(fp, Scheme::Baseline, AppId::Crc32, Scale::Tiny)
            .is_none(),
        "truncated entry must be rejected"
    );
}

/// An entry written by a different (future or past) schema version is
/// rejected even when its checksum is valid for its bytes.
#[test]
fn wrong_schema_version_is_rejected() {
    let cache = tmp_cache("version");
    let (fp, path) = seed_one_entry(&cache);
    let mut bytes = std::fs::read(&path).expect("read stored entry");
    // The version is the u32 after the 8-byte magic; bump it and re-seal
    // the trailing checksum so only the version check can reject it.
    bytes[8..12].copy_from_slice(&(SCHEMA_VERSION + 1).to_le_bytes());
    let body = bytes.len() - 8;
    let seal = checksum(&bytes[..body]);
    bytes[body..].copy_from_slice(&seal.to_le_bytes());
    std::fs::write(&path, &bytes).expect("rewrite entry");
    assert!(
        cache
            .load(fp, Scheme::Baseline, AppId::Crc32, Scale::Tiny)
            .is_none(),
        "wrong-schema entry must be rejected"
    );
}

/// An entry renamed to another fingerprint's path (or equivalently a hash
/// collision in the file name) is rejected by the embedded fingerprint.
#[test]
fn fingerprint_mismatch_is_rejected() {
    let cache = tmp_cache("fingerprint");
    let (fp, path) = seed_one_entry(&cache);
    let other_fp = fp ^ 0xdead_beef;
    let other_path = cache
        .dir()
        .join(format!("{other_fp:016x}-nvsramcache-crc32-tiny.run"));
    std::fs::rename(&path, &other_path).expect("rename entry");
    assert!(
        cache
            .load(other_fp, Scheme::Baseline, AppId::Crc32, Scale::Tiny)
            .is_none(),
        "entry must be rejected under a different fingerprint"
    );
    // And it no longer loads from the original key either (file moved).
    assert!(cache
        .load(fp, Scheme::Baseline, AppId::Crc32, Scale::Tiny)
        .is_none());
}

/// Plain garbage — wrong magic — is rejected.
#[test]
fn garbage_file_is_rejected() {
    let cache = tmp_cache("garbage");
    let (fp, path) = seed_one_entry(&cache);
    std::fs::write(&path, b"not a cache entry at all").expect("overwrite entry");
    assert!(cache
        .load(fp, Scheme::Baseline, AppId::Crc32, Scale::Tiny)
        .is_none());
}

/// Advisory claims exclude a second claimant while held, and release on
/// drop — the cross-process dedup protocol, exercised through two handles
/// on one directory (exactly what two concurrent `exp_all`s look like).
#[test]
fn claims_exclude_second_claimant_until_dropped() {
    let cache = tmp_cache("claims");
    let other = RunCache::new(cache.dir()).expect("second handle");
    let config = SystemConfig::paper_default();
    let fp = effective_fingerprint(&config, Scheme::Baseline);
    let claim = |c: &RunCache| c.claim(fp, Scheme::Baseline, AppId::Crc32, Scale::Tiny);

    let ClaimOutcome::Held(guard) = claim(&cache) else {
        panic!("first claim on a fresh entry must be held");
    };
    assert!(
        matches!(claim(&other), ClaimOutcome::Busy),
        "a held claim must read as busy to a second claimant"
    );
    drop(guard);
    assert!(
        matches!(claim(&other), ClaimOutcome::Held(_)),
        "a released claim must be claimable again"
    );
}

/// `wait_for_entry` returns the entry as soon as it lands (the concurrent
/// claimant's fast path), and `None` after the timeout when it never does.
#[test]
fn wait_for_entry_sees_a_store_and_times_out_without_one() {
    let cache = tmp_cache("wait");
    let config = SystemConfig::paper_default();
    let fp = effective_fingerprint(&config, Scheme::Baseline);
    let timeout = std::time::Duration::from_millis(300);
    assert!(cache
        .wait_for_entry(fp, Scheme::Baseline, AppId::Crc32, Scale::Tiny, timeout)
        .is_none());
    seed_one_entry(&cache);
    assert!(cache
        .wait_for_entry(fp, Scheme::Baseline, AppId::Crc32, Scale::Tiny, timeout)
        .is_some());
}

/// The journal deduplicates complete lines and skips a torn final line —
/// the exact artifact of a process killed mid-append.
#[test]
fn journal_skips_a_torn_final_line() {
    let cache = tmp_cache("journal");
    cache.journal_append("aaaa-edbp-crc32-tiny");
    cache.journal_append("bbbb-edbp-sha-tiny");
    cache.journal_append("aaaa-edbp-crc32-tiny"); // duplicate: folded
    use std::io::Write as _;
    std::fs::OpenOptions::new()
        .append(true)
        .open(cache.journal_path())
        .expect("open journal")
        .write_all(b"cccc-torn-mid-app")
        .expect("append torn line");
    let entries = cache.journal_entries();
    assert_eq!(entries.len(), 2);
    assert!(entries.contains("aaaa-edbp-crc32-tiny"));
    assert!(entries.contains("bbbb-edbp-sha-tiny"));
    assert!(
        !entries.iter().any(|e| e.starts_with("cccc")),
        "a torn (newline-less) final line must be ignored"
    );
}
