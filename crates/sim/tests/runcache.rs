//! Persistent result-cache round-trip and rejection tests.
//!
//! These exercise [`ehs_sim::runcache::RunCache`] directly against private
//! temp directories (`CARGO_TARGET_TMPDIR`), without installing a
//! process-wide cache — so they compose with the rest of the test suite,
//! which must keep running purely in-process. The end-to-end fallback path
//! (a rejected entry triggering re-simulation inside the planner) is
//! covered by `tests/planner.rs`.

use ehs_sim::runcache::{
    checksum, entry_stem, ClaimOutcome, LeaseParams, RunCache, SCHEMA_VERSION,
};
use ehs_sim::runner::effective_fingerprint;
use ehs_sim::{run_app, Scheme, SystemConfig, ZombieSample};
use ehs_workloads::{AppId, Scale};
use std::path::PathBuf;
use std::time::Duration;

const ALL_SCHEMES: [Scheme; 9] = [
    Scheme::Baseline,
    Scheme::Sdbp,
    Scheme::Decay,
    Scheme::Edbp,
    Scheme::DecayEdbp,
    Scheme::Amc,
    Scheme::AmcEdbp,
    Scheme::Ideal,
    Scheme::LeakageOff80,
];

fn tmp_cache(name: &str) -> RunCache {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    // A fresh directory per test: stale entries from a previous test run
    // would turn round-trip tests into replay tests.
    let _ = std::fs::remove_dir_all(&dir);
    RunCache::new(dir).expect("create temp cache")
}

/// The disk round-trip is lossless for every scheme × app at Tiny: a
/// `RunResult` loaded back compares equal (bit-for-bit on every field that
/// participates in `PartialEq`; the wall-clock `sim_mips` is excluded there
/// by design) to the freshly simulated one.
#[test]
fn round_trip_is_bit_identical_for_every_scheme_and_app() {
    let cache = tmp_cache("roundtrip");
    let config = SystemConfig::paper_default();
    for scheme in ALL_SCHEMES {
        let fp = effective_fingerprint(&config, scheme);
        for app in AppId::ALL {
            let fresh = run_app(&config, scheme, app, Scale::Tiny);
            cache.store(fp, scheme, app, Scale::Tiny, &fresh, None);
            let replayed = cache
                .load(fp, scheme, app, Scale::Tiny)
                .unwrap_or_else(|| panic!("{}/{} round-trip missed", scheme.name(), app.name()));
            assert_eq!(
                replayed.result,
                fresh,
                "{}/{} diverged across the disk round-trip",
                scheme.name(),
                app.name()
            );
            assert!(replayed.zombie_samples.is_none());
        }
    }
}

/// Zombie samples ride along and round-trip exactly.
#[test]
fn round_trip_preserves_zombie_samples() {
    let cache = tmp_cache("zombies");
    let config = SystemConfig::paper_default();
    let fp = effective_fingerprint(&config, Scheme::Baseline);
    let result = run_app(&config, Scheme::Baseline, AppId::Crc32, Scale::Tiny);
    let samples = vec![
        ZombieSample {
            voltage: 3.4375,
            zombie: true,
        },
        ZombieSample {
            voltage: 3.2,
            zombie: false,
        },
    ];
    cache.store(
        fp,
        Scheme::Baseline,
        AppId::Crc32,
        Scale::Tiny,
        &result,
        Some(&samples),
    );
    let replayed = cache
        .load(fp, Scheme::Baseline, AppId::Crc32, Scale::Tiny)
        .expect("zombie entry loads");
    assert_eq!(replayed.result, result);
    assert_eq!(replayed.zombie_samples.as_deref(), Some(samples.as_slice()));
}

fn seed_one_entry(cache: &RunCache) -> (u64, PathBuf) {
    let config = SystemConfig::paper_default();
    let fp = effective_fingerprint(&config, Scheme::Baseline);
    let result = run_app(&config, Scheme::Baseline, AppId::Crc32, Scale::Tiny);
    cache.store(
        fp,
        Scheme::Baseline,
        AppId::Crc32,
        Scale::Tiny,
        &result,
        None,
    );
    let path = cache
        .dir()
        .join(format!("{fp:016x}-nvsramcache-crc32-tiny.run"));
    assert!(path.exists(), "entry landed at the documented path");
    (fp, path)
}

/// A truncated file is rejected (load returns `None`, no panic).
#[test]
fn truncated_entry_is_rejected() {
    let cache = tmp_cache("truncated");
    let (fp, path) = seed_one_entry(&cache);
    let bytes = std::fs::read(&path).expect("read stored entry");
    std::fs::write(&path, &bytes[..bytes.len() - 9]).expect("truncate entry");
    assert!(
        cache
            .load(fp, Scheme::Baseline, AppId::Crc32, Scale::Tiny)
            .is_none(),
        "truncated entry must be rejected"
    );
}

/// An entry written by a different (future or past) schema version is
/// rejected even when its checksum is valid for its bytes.
#[test]
fn wrong_schema_version_is_rejected() {
    let cache = tmp_cache("version");
    let (fp, path) = seed_one_entry(&cache);
    let mut bytes = std::fs::read(&path).expect("read stored entry");
    // The version is the u32 after the 8-byte magic; bump it and re-seal
    // the trailing checksum so only the version check can reject it.
    bytes[8..12].copy_from_slice(&(SCHEMA_VERSION + 1).to_le_bytes());
    let body = bytes.len() - 8;
    let seal = checksum(&bytes[..body]);
    bytes[body..].copy_from_slice(&seal.to_le_bytes());
    std::fs::write(&path, &bytes).expect("rewrite entry");
    assert!(
        cache
            .load(fp, Scheme::Baseline, AppId::Crc32, Scale::Tiny)
            .is_none(),
        "wrong-schema entry must be rejected"
    );
}

/// An entry renamed to another fingerprint's path (or equivalently a hash
/// collision in the file name) is rejected by the embedded fingerprint.
#[test]
fn fingerprint_mismatch_is_rejected() {
    let cache = tmp_cache("fingerprint");
    let (fp, path) = seed_one_entry(&cache);
    let other_fp = fp ^ 0xdead_beef;
    let other_path = cache
        .dir()
        .join(format!("{other_fp:016x}-nvsramcache-crc32-tiny.run"));
    std::fs::rename(&path, &other_path).expect("rename entry");
    assert!(
        cache
            .load(other_fp, Scheme::Baseline, AppId::Crc32, Scale::Tiny)
            .is_none(),
        "entry must be rejected under a different fingerprint"
    );
    // And it no longer loads from the original key either (file moved).
    assert!(cache
        .load(fp, Scheme::Baseline, AppId::Crc32, Scale::Tiny)
        .is_none());
}

/// Plain garbage — wrong magic — is rejected.
#[test]
fn garbage_file_is_rejected() {
    let cache = tmp_cache("garbage");
    let (fp, path) = seed_one_entry(&cache);
    std::fs::write(&path, b"not a cache entry at all").expect("overwrite entry");
    assert!(cache
        .load(fp, Scheme::Baseline, AppId::Crc32, Scale::Tiny)
        .is_none());
}

/// Advisory claims exclude a second claimant while held, and release on
/// drop — the cross-process dedup protocol, exercised through two handles
/// on one directory (exactly what two concurrent `exp_all`s look like).
#[test]
fn claims_exclude_second_claimant_until_dropped() {
    let cache = tmp_cache("claims");
    let other = RunCache::new(cache.dir()).expect("second handle");
    let config = SystemConfig::paper_default();
    let fp = effective_fingerprint(&config, Scheme::Baseline);
    let claim = |c: &RunCache| c.claim(fp, Scheme::Baseline, AppId::Crc32, Scale::Tiny);

    let ClaimOutcome::Held(guard) = claim(&cache) else {
        panic!("first claim on a fresh entry must be held");
    };
    assert!(
        matches!(claim(&other), ClaimOutcome::Busy),
        "a held claim must read as busy to a second claimant"
    );
    drop(guard);
    assert!(
        matches!(claim(&other), ClaimOutcome::Held(_)),
        "a released claim must be claimable again"
    );
}

/// `wait_for_entry` returns the entry as soon as it lands (the concurrent
/// claimant's fast path), and `None` after the timeout when it never does.
#[test]
fn wait_for_entry_sees_a_store_and_times_out_without_one() {
    let cache = tmp_cache("wait");
    let config = SystemConfig::paper_default();
    let fp = effective_fingerprint(&config, Scheme::Baseline);
    let timeout = std::time::Duration::from_millis(300);
    assert!(cache
        .wait_for_entry(fp, Scheme::Baseline, AppId::Crc32, Scale::Tiny, timeout)
        .is_none());
    seed_one_entry(&cache);
    assert!(cache
        .wait_for_entry(fp, Scheme::Baseline, AppId::Crc32, Scale::Tiny, timeout)
        .is_some());
}

/// A holder whose heartbeat keeps renewing the lease is never preempted,
/// no matter how many TTLs its job outlasts — the live-claim theft hazard
/// of the old fixed-staleness scheme, pinned shut.
#[test]
fn a_renewing_holder_is_never_preempted() {
    let mut cache = tmp_cache("lease-renew");
    let params = LeaseParams {
        heartbeat: Duration::from_millis(50),
        ttl: Duration::from_millis(250),
    };
    cache.set_lease_params(params);
    let mut other = RunCache::new(cache.dir()).expect("second handle");
    other.set_lease_params(params);
    let config = SystemConfig::paper_default();
    let fp = effective_fingerprint(&config, Scheme::Baseline);
    let claim = |c: &RunCache| c.claim(fp, Scheme::Baseline, AppId::Crc32, Scale::Tiny);

    let ClaimOutcome::Held(guard) = claim(&cache) else {
        panic!("first claim on a fresh entry must be held");
    };
    // The "slow job": hold the lease across several TTLs while a rival
    // polls for it. Every poll must read Busy — never a steal.
    let deadline = std::time::Instant::now() + Duration::from_millis(900);
    while std::time::Instant::now() < deadline {
        let outcome = claim(&other);
        assert!(
            matches!(outcome, ClaimOutcome::Busy),
            "a heartbeat-renewed lease must never be preempted"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(
        guard.heartbeats_sent() >= 3,
        "the holder must have renewed across the hold ({} heartbeats)",
        guard.heartbeats_sent()
    );
    drop(guard);
    assert!(
        matches!(claim(&other), ClaimOutcome::Held(_)),
        "a released lease must be claimable again"
    );
}

/// A lease whose holder died (no heartbeat thread ever renews it) is
/// reclaimed promptly after the TTL — and the reclaim is visible on the
/// guard, so worker reports can count steals.
#[test]
fn a_dead_holders_lease_is_reclaimed_after_the_ttl() {
    let mut cache = tmp_cache("lease-reclaim");
    let params = LeaseParams {
        heartbeat: Duration::from_millis(50),
        ttl: Duration::from_millis(150),
    };
    cache.set_lease_params(params);
    let config = SystemConfig::paper_default();
    let fp = effective_fingerprint(&config, Scheme::Baseline);
    let stem = entry_stem(fp, Scheme::Baseline, AppId::Crc32, Scale::Tiny);
    // A kill -9'd holder: its lease file exists, its heartbeats stopped.
    let lease_path = cache.dir().join(format!("{stem}.claim"));
    std::fs::write(
        &lease_path,
        "pid=0 host=dead-worker epoch=0 token=0000000000000000\n",
    )
    .expect("plant dead lease");
    assert!(
        matches!(
            cache.claim(fp, Scheme::Baseline, AppId::Crc32, Scale::Tiny),
            ClaimOutcome::Busy
        ),
        "a lease within its TTL reads busy even if the holder is dead"
    );
    std::thread::sleep(params.ttl + Duration::from_millis(100));
    match cache.claim(fp, Scheme::Baseline, AppId::Crc32, Scale::Tiny) {
        ClaimOutcome::Held(guard) => {
            assert!(
                guard.stole_stale_lease(),
                "the reclaim must be visible as a steal"
            );
        }
        other => panic!("expired dead lease must be reclaimable, got {other:?}"),
    }
}

/// Token arbitration on release: a guard whose lease was stolen and
/// re-acquired by someone else must not remove the new holder's file.
#[test]
fn drop_after_a_steal_leaves_the_new_holders_lease_intact() {
    let mut cache = tmp_cache("lease-token");
    // Huge heartbeat: the holder never renews during the test, so the
    // manual overwrite below cannot race the heartbeat thread.
    cache.set_lease_params(LeaseParams {
        heartbeat: Duration::from_secs(10),
        ttl: Duration::from_secs(30),
    });
    let config = SystemConfig::paper_default();
    let fp = effective_fingerprint(&config, Scheme::Baseline);
    let stem = entry_stem(fp, Scheme::Baseline, AppId::Crc32, Scale::Tiny);
    let lease_path = cache.dir().join(format!("{stem}.claim"));

    let ClaimOutcome::Held(guard) = cache.claim(fp, Scheme::Baseline, AppId::Crc32, Scale::Tiny)
    else {
        panic!("fresh claim must be held");
    };
    // Simulate a steal + re-acquisition: the file now carries a different
    // holder's token.
    let new_holder = "pid=1 host=rival epoch=0 token=ffffffffffffffff\n";
    std::fs::write(&lease_path, new_holder).expect("overwrite lease");
    drop(guard);
    let survived = std::fs::read_to_string(&lease_path).expect("lease file must survive the drop");
    assert_eq!(survived, new_holder, "a foreign token must not be removed");

    // And the ordinary case: a drop with our own token still on file
    // removes it (pinned here so the arbitration test cannot pass vacuously).
    let ClaimOutcome::Held(guard) = cache.claim(fp, Scheme::Edbp, AppId::Crc32, Scale::Tiny) else {
        panic!("fresh claim must be held");
    };
    let own_path = cache.dir().join(format!(
        "{}.claim",
        entry_stem(fp, Scheme::Edbp, AppId::Crc32, Scale::Tiny)
    ));
    assert!(own_path.exists());
    drop(guard);
    assert!(!own_path.exists(), "an unstolen lease is removed on drop");
}

/// `wait_for_entry`'s jittered backoff still catches a store that lands
/// mid-wait (the polling is sparse, not absent).
#[test]
fn wait_for_entry_backs_off_and_still_catches_a_late_store() {
    let cache = tmp_cache("wait-backoff");
    let config = SystemConfig::paper_default();
    let fp = effective_fingerprint(&config, Scheme::Baseline);
    let result = run_app(&config, Scheme::Baseline, AppId::Crc32, Scale::Tiny);
    std::thread::scope(|scope| {
        scope.spawn(|| {
            std::thread::sleep(Duration::from_millis(150));
            cache.store(
                fp,
                Scheme::Baseline,
                AppId::Crc32,
                Scale::Tiny,
                &result,
                None,
            );
        });
        let hit = cache.wait_for_entry(
            fp,
            Scheme::Baseline,
            AppId::Crc32,
            Scale::Tiny,
            Duration::from_secs(10),
        );
        assert!(hit.is_some(), "the late store must be observed");
    });
}

/// Compaction folds duplicate lines (first-seen order), drops the torn
/// tail, rewrites atomically, and is idempotent; `journal_occurrences`
/// exposes the raw pre-compaction counts the fleet tests assert on.
#[test]
fn journal_compaction_dedups_and_drops_the_torn_tail() {
    let cache = tmp_cache("journal-compact");
    for stem in ["aaaa-a", "bbbb-b", "aaaa-a", "cccc-c", "bbbb-b"] {
        cache.journal_append(stem);
    }
    use std::io::Write as _;
    std::fs::OpenOptions::new()
        .append(true)
        .open(cache.journal_path())
        .expect("open journal")
        .write_all(b"dddd-torn")
        .expect("append torn line");

    let occurrences = cache.journal_occurrences();
    assert_eq!(occurrences.get("aaaa-a"), Some(&2));
    assert_eq!(occurrences.get("bbbb-b"), Some(&2));
    assert_eq!(occurrences.get("cccc-c"), Some(&1));
    assert_eq!(
        occurrences.get("dddd-torn"),
        None,
        "torn line is not a record"
    );

    let removed = cache.compact_journal().expect("compaction succeeds");
    assert_eq!(removed, 3, "two duplicates + one torn line removed");
    let text = std::fs::read_to_string(cache.journal_path()).expect("journal readable");
    assert_eq!(
        text, "aaaa-a\nbbbb-b\ncccc-c\n",
        "first-seen order, complete lines"
    );
    assert_eq!(
        cache.compact_journal().expect("second compaction succeeds"),
        0,
        "compaction is idempotent"
    );

    // A concurrent compactor's breaker lock makes compaction a no-op
    // instead of a race.
    cache.journal_append("aaaa-a");
    std::fs::write(cache.dir().join("journal.lock"), b"").expect("plant breaker");
    assert_eq!(cache.compact_journal().expect("locked compaction skips"), 0);
    assert_eq!(cache.journal_occurrences().get("aaaa-a"), Some(&2));
}

/// The journal deduplicates complete lines and skips a torn final line —
/// the exact artifact of a process killed mid-append.
#[test]
fn journal_skips_a_torn_final_line() {
    let cache = tmp_cache("journal");
    cache.journal_append("aaaa-edbp-crc32-tiny");
    cache.journal_append("bbbb-edbp-sha-tiny");
    cache.journal_append("aaaa-edbp-crc32-tiny"); // duplicate: folded
    use std::io::Write as _;
    std::fs::OpenOptions::new()
        .append(true)
        .open(cache.journal_path())
        .expect("open journal")
        .write_all(b"cccc-torn-mid-app")
        .expect("append torn line");
    let entries = cache.journal_entries();
    assert_eq!(entries.len(), 2);
    assert!(entries.contains("aaaa-edbp-crc32-tiny"));
    assert!(entries.contains("bbbb-edbp-sha-tiny"));
    assert!(
        !entries.iter().any(|e| e.starts_with("cccc")),
        "a torn (newline-less) final line must be ignored"
    );
}
