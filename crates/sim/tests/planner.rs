//! Suite-planner dedup accounting, end-to-end.
//!
//! Everything lives in ONE `#[test]`: the execution counters and the
//! installed persistent cache are process-wide, so parallel test functions
//! would race on them. Sequencing inside one function keeps the arithmetic
//! exact.

use ehs_sim::experiments::ExperimentOptions;
use ehs_sim::planner::{plan_suite, run_suite};
use ehs_sim::runcache::{self, workload_fingerprint};
use ehs_sim::runner::{count_unique, effective_fingerprint, simulations_executed};
use ehs_sim::{Scheme, SystemConfig};
use ehs_workloads::{AppId, Scale};
use std::path::PathBuf;

#[test]
fn suite_dedup_accounting_is_exact() {
    let opts = ExperimentOptions {
        scale: Scale::Tiny,
        threads: 2,
    };

    // Install a private persistent cache seeded with corrupt entries: one
    // file of plain garbage at a real entry's path, plus junk that matches
    // no key at all. The planner must reject both and fall back to
    // re-simulation — the dedup arithmetic below only holds if it does.
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("planner-cache");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create cache dir");
    let fp = effective_fingerprint(&SystemConfig::paper_default(), Scheme::Baseline);
    std::fs::write(
        dir.join(format!("{fp:016x}-nvsramcache-crc32-tiny.run")),
        b"garbage where a cache entry should be",
    )
    .expect("seed corrupt entry");
    std::fs::write(dir.join("unrelated.run"), b"junk").expect("seed junk file");
    assert!(
        runcache::install(&dir),
        "first install wins in this process"
    );

    let plan = plan_suite(opts.scale);
    let unique = count_unique(&plan.jobs);
    assert!(unique < plan.jobs.len(), "cross-experiment dedup must fold");

    // Cold pass: every unique request simulates exactly once — no more
    // (dedup works), no less (corrupt cache entries rejected, not trusted).
    let before = simulations_executed();
    let cold = run_suite(opts);
    assert_eq!(cold.total_requested, plan.jobs.len());
    assert_eq!(cold.unique, unique);
    assert_eq!(cold.executed, simulations_executed() - before);
    assert_eq!(
        cold.executed, unique as u64,
        "cold suite must simulate exactly the unique request set"
    );

    // A fault-free pass has an empty structured failure summary.
    assert!(cold.failures().is_empty(), "no failures without faults");

    // Every simulated-and-stored job was journaled (the resume contract's
    // write half): executed stems ⊆ journal, and the counts line up with
    // the dedup arithmetic.
    let cache = runcache::RunCache::new(&dir).expect("reopen cache dir");
    let journal = cache.journal_entries();
    assert_eq!(
        journal.len(),
        unique,
        "every unique simulation must be journaled once"
    );
    let executed_stems = ehs_sim::runner::executed_entry_stems();
    assert_eq!(executed_stems.len(), unique);
    for stem in &executed_stems {
        assert!(journal.contains(stem), "executed {stem} missing in journal");
    }

    // The in-process memo makes a second pass in the same process free;
    // its reports must match the cold pass exactly.
    let warm = run_suite(opts);
    assert_eq!(warm.executed, 0, "second pass is a pure memo replay");
    for (c, w) in cold.tables.iter().zip(&warm.tables) {
        let (c, w) = (c.as_ref().expect("cold table"), w.as_ref().expect("warm"));
        assert_eq!(c.render(), w.render(), "replayed table diverged");
    }

    // The persistent cache was repopulated over the corrupt seed entry:
    // it loads cleanly now and carries the workload fingerprint guard.
    let _ = workload_fingerprint(AppId::Crc32, Scale::Tiny);
    let entry = runcache::RunCache::new(&dir)
        .expect("reopen cache dir")
        .load(fp, Scheme::Baseline, AppId::Crc32, Scale::Tiny);
    assert!(entry.is_some(), "cold pass overwrote the corrupt entry");
}
