//! Lockstep-vs-independent differential suite.
//!
//! [`run_lockstep`] drives N scheme lanes over one shared workload replay,
//! advancing each in bounded chunks — lane-major ("interleaved") or
//! access-major ("transposed", where one lane records its instruction
//! stream and the siblings replay it without decoding). In both modes the
//! group driving must be **invisible**: every lane's [`RunResult`] (minus
//! the wall-clock `sim_mips`, which `PartialEq` excludes) must be
//! bit-identical to running that lane alone. These tests assert it across
//! the full scheme roster, three apps and two trace seeds, in both modes
//! explicitly (plus whatever `run_lockstep` defaults to under the ambient
//! `EHS_NO_SIMD`).

use ehs_sim::{
    build_lane, record_generation_trace, run_lane, run_lockstep, run_lockstep_with, LaneRun,
    LockstepMode, Scheme, SourceKind, SystemConfig,
};
use ehs_workloads::{build, AppId, Scale, Workload};

const APPS: [AppId; 3] = [AppId::Crc32, AppId::Patricia, AppId::JpegEnc];
const SEEDS: [u64; 2] = [42, 7];

/// Paper defaults with the trace seed replaced and the run bounded (bit
/// equality holds for truncated runs too; the bound keeps 9-lane × 3-app ×
/// 2-seed affordable in tier-1).
fn config_with_seed(seed: u64) -> SystemConfig {
    let mut c = SystemConfig::paper_default();
    c.max_instructions = 120_000;
    if let SourceKind::Preset { preset, scale, .. } = c.source {
        c.source = SourceKind::Preset {
            preset,
            seed,
            scale,
        };
    }
    c
}

/// Builds one lane per scheme in `schemes`, recording the oracle trace once.
fn lanes_for(
    config: &SystemConfig,
    schemes: &[Scheme],
    workload: &Workload,
) -> Vec<Box<dyn LaneRun>> {
    let oracle = schemes
        .iter()
        .any(|s| s.needs_oracle_trace())
        .then(|| record_generation_trace(config, workload.clone()));
    schemes
        .iter()
        .map(|&scheme| {
            let trace = scheme.needs_oracle_trace().then(|| {
                oracle
                    .clone()
                    .expect("oracle trace recorded for Ideal lanes")
            });
            build_lane(config, scheme, workload.clone(), trace, false)
                .expect("paper-default energy configuration is valid")
        })
        .collect()
}

#[test]
fn lockstep_matches_independent_for_every_scheme_app_seed() {
    for &seed in &SEEDS {
        let config = config_with_seed(seed);
        for &app in &APPS {
            let workload = build(app, Scale::Tiny);
            let grouped = run_lockstep(lanes_for(&config, &Scheme::ALL, &workload));
            assert_eq!(grouped.len(), Scheme::ALL.len());
            let solo = lanes_for(&config, &Scheme::ALL, &workload);
            for (scheme, (joint, lane)) in Scheme::ALL.iter().zip(grouped.iter().zip(solo)) {
                let alone = run_lane(lane);
                assert_eq!(
                    joint.result, alone.result,
                    "lockstep divergence: scheme {scheme} app {app:?} seed {seed}"
                );
            }
        }
    }
}

#[test]
fn transposed_and_interleaved_modes_agree_for_every_scheme() {
    // Mode-explicit variant of the matrix above (one seed): the transposed
    // stream-replay path and the interleaved per-lane stepper must produce
    // byte-identical results for every scheme, regardless of what mode the
    // ambient `EHS_NO_SIMD` selects for `run_lockstep`.
    let config = config_with_seed(42);
    for &app in &APPS {
        let workload = build(app, Scale::Tiny);
        let transposed = run_lockstep_with(
            lanes_for(&config, &Scheme::ALL, &workload),
            LockstepMode::Transposed,
        );
        let interleaved = run_lockstep_with(
            lanes_for(&config, &Scheme::ALL, &workload),
            LockstepMode::Interleaved,
        );
        for (scheme, (t, i)) in Scheme::ALL
            .iter()
            .zip(transposed.iter().zip(interleaved.iter()))
        {
            assert_eq!(
                t.result, i.result,
                "transposed/interleaved divergence: scheme {scheme} app {app:?}"
            );
        }
    }
}

#[test]
fn transposed_mode_handles_zombie_sampling_lanes() {
    // A zombie-sampling lane is ineligible for stream replay (its samples
    // key off exact per-lane instruction positions) and must fall to the
    // live stepper inside a transposed group without perturbing anyone.
    let mut config = config_with_seed(7);
    config.zombie_sample_interval = Some(10_000);
    let workload = build(AppId::Crc32, Scale::Tiny);
    let schemes = [Scheme::Baseline, Scheme::DecayEdbp];
    let grouped = run_lockstep_with(
        lanes_for(&config, &schemes, &workload),
        LockstepMode::Transposed,
    );
    for (scheme, (joint, lane)) in schemes
        .iter()
        .zip(grouped.iter().zip(lanes_for(&config, &schemes, &workload)))
    {
        let alone = run_lane(lane);
        assert_eq!(
            joint.result, alone.result,
            "zombie-lane divergence under transposed lockstep: scheme {scheme}"
        );
        assert_eq!(
            joint.zombie_samples, alone.zombie_samples,
            "zombie samples diverged under transposed lockstep: scheme {scheme}"
        );
    }
}

#[test]
fn single_lane_lockstep_matches_run_lane() {
    let config = config_with_seed(42);
    let workload = build(AppId::Crc32, Scale::Tiny);
    let schemes = [Scheme::DecayEdbp];
    let grouped = run_lockstep(lanes_for(&config, &schemes, &workload));
    let solo = run_lane(
        lanes_for(&config, &schemes, &workload)
            .pop()
            .expect("one lane"),
    );
    assert_eq!(grouped[0].result, solo.result);
}

#[test]
fn heterogeneous_subset_lockstep_is_bit_exact() {
    // A mixed group (epoch-driven, voltage-driven, oracle, null) exercises
    // lanes whose bursts end for different reasons at different times.
    let schemes = [Scheme::Baseline, Scheme::Decay, Scheme::Edbp, Scheme::Ideal];
    let config = config_with_seed(7);
    let workload = build(AppId::Bitcount, Scale::Tiny);
    let grouped = run_lockstep(lanes_for(&config, &schemes, &workload));
    for (scheme, (joint, lane)) in schemes
        .iter()
        .zip(grouped.iter().zip(lanes_for(&config, &schemes, &workload)))
    {
        assert_eq!(
            joint.result,
            run_lane(lane).result,
            "lockstep divergence in mixed group: scheme {scheme}"
        );
    }
}
