//! Exhaustive kernel-matrix suite for the monomorphized dispatch table.
//!
//! [`build_lane`] resolves every (`Scheme`, `ReplacementPolicy`) pair to a
//! fully monomorphized `Simulation<P>` once per run; these tests prove the
//! table is **exhaustive** (every pair builds and runs — a missing match arm
//! is a compile error, a mis-wired one fails here) and **faithful**: each
//! monomorphized lane's [`RunResult`] is bit-identical to the
//! dynamic-dispatch `Simulation::new` construction path it replaced on the
//! hot paths.

use ehs_cache::ReplacementPolicy;
use ehs_sim::{
    build_lane, record_generation_trace, run_lane, Scheme, Simulation, SourceKind, SystemConfig,
};
use ehs_workloads::{build, AppId, Scale};
use proptest::prelude::*;

/// Paper defaults with the D-cache policy swapped and the run bounded so the
/// 45-cell matrix stays fast; equality holds for truncated runs too.
fn config_with(policy: ReplacementPolicy, seed: u64) -> SystemConfig {
    let mut c = SystemConfig::paper_default();
    c.dcache.policy = policy;
    c.max_instructions = 120_000;
    if let SourceKind::Preset { preset, scale, .. } = c.source {
        c.source = SourceKind::Preset {
            preset,
            seed,
            scale,
        };
    }
    c
}

/// Runs one (scheme, policy) cell both ways and asserts bit-equality.
fn assert_mono_matches_dyn(config: &SystemConfig, scheme: Scheme, app: AppId) {
    let workload = build(app, Scale::Tiny);
    let oracle = scheme
        .needs_oracle_trace()
        .then(|| record_generation_trace(config, workload.clone()));
    let lane = build_lane(config, scheme, workload.clone(), oracle.clone(), false)
        .expect("paper-default energy configuration is valid");
    assert_eq!(
        lane.scheme(),
        scheme,
        "dispatch table routed {scheme} to the wrong lane"
    );
    let mono = run_lane(lane).result;
    let dyn_result = Simulation::new(config, scheme, workload, oracle)
        .run_collecting()
        .result;
    assert_eq!(
        mono, dyn_result,
        "monomorphized lane diverged from dyn dispatch: scheme {scheme} policy {:?}",
        config.dcache.policy
    );
}

#[test]
fn every_scheme_policy_pair_monomorphizes_and_matches_dyn() {
    for policy in ReplacementPolicy::ALL {
        let config = config_with(policy, 42);
        for scheme in Scheme::ALL {
            assert_mono_matches_dyn(&config, scheme, AppId::Crc32);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // Randomized corner of the same property: arbitrary trace seeds and
    // matrix cells, on a second app, must also agree bit for bit.
    #[test]
    fn mono_matches_dyn_under_random_seeds(
        seed in 0u64..10_000,
        scheme_idx in 0usize..Scheme::ALL.len(),
        policy_idx in 0usize..ReplacementPolicy::ALL.len(),
    ) {
        let config = config_with(ReplacementPolicy::ALL[policy_idx], seed);
        assert_mono_matches_dyn(&config, Scheme::ALL[scheme_idx], AppId::Bitcount);
    }
}
