//! End-to-end fault campaigns against the real `exp_all` binary: concurrent
//! suite processes sharing one cache, kill -9 mid-run + resume, and a
//! panicking job that must fail exactly its own figure.
//!
//! Each campaign spawns full `exp_all --scale tiny` suites (seconds each in
//! release, minutes in debug), so every test here is `#[ignore]`d out of
//! the default `cargo test` pass. The CI fault-injection job runs them
//! with:
//!
//! ```text
//! cargo test --release -p ehs-sim --test fault_tolerance -- --ignored
//! ```
//!
//! The kill points are randomized per campaign but seeded (`EHS_FAULT_SEED`,
//! default below), so a CI failure is reproducible by exporting the seed it
//! prints. The always-on, fast in-process slice of the fault matrix lives
//! in `tests/fault_injection.rs`.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::{Command, Output, Stdio};

const EXP_ALL: &str = env!("CARGO_BIN_EXE_exp_all");
const DEFAULT_SEED: u64 = 0x0ed6_b10c_4bad_5eed;

fn seed() -> u64 {
    let seed = std::env::var("EHS_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED);
    eprintln!("fault campaign seed: {seed} (reproduce with EHS_FAULT_SEED={seed})");
    seed
}

/// Deterministic PRNG for kill-point selection (splitmix-style step).
fn next_rand(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6_364_136_223_846_793_005)
        .wrapping_add(1_442_695_040_888_963_407);
    *state >> 17
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create test dir");
    dir
}

fn exp_all_command(
    results: &Path,
    cache: &Path,
    failplan: Option<&str>,
    extra: &[&str],
) -> Command {
    let mut cmd = Command::new(EXP_ALL);
    cmd.arg("tiny")
        .args(["--threads", "2"])
        .args(extra)
        .env("EHS_RESULTS_DIR", results)
        .env("EHS_RUNCACHE_DIR", cache)
        .env_remove("EHS_FAILPLAN");
    if let Some(plan) = failplan {
        cmd.env("EHS_FAILPLAN", plan);
    }
    cmd
}

fn run_exp_all(results: &Path, cache: &Path, failplan: Option<&str>, extra: &[&str]) -> Output {
    exp_all_command(results, cache, failplan, extra)
        .output()
        .expect("spawn exp_all")
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn assert_clean_exit(out: &Output, what: &str) {
    assert!(
        out.status.success(),
        "{what} failed ({}):\n{}",
        out.status,
        stderr_of(out)
    );
}

/// Every written figure, name -> bytes.
fn figures(results: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut map = BTreeMap::new();
    let Ok(entries) = std::fs::read_dir(results) else {
        return map;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().is_some_and(|e| e == "txt") {
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            map.insert(name, std::fs::read(&path).expect("read figure"));
        }
    }
    map
}

/// The `{n} simulated` field of the final `suite: ...` summary line.
fn simulated_count(stdout: &str) -> u64 {
    let line = stdout
        .lines()
        .find(|l| l.starts_with("suite:"))
        .unwrap_or_else(|| panic!("no suite summary in:\n{stdout}"));
    line.split(',')
        .find_map(|part| part.trim().strip_suffix(" simulated"))
        .and_then(|n| n.parse().ok())
        .unwrap_or_else(|| panic!("unparseable suite summary: {line}"))
}

fn suite_unique_at_tiny() -> u64 {
    let plan = ehs_sim::planner::plan_suite(ehs_workloads::Scale::Tiny);
    ehs_sim::runner::count_unique(&plan.jobs) as u64
}

/// Two `exp_all` processes racing on one shared run cache must both
/// succeed, produce byte-identical figures, and leave a cache with no torn
/// entries, no orphan temp files, and no leaked claims — validated by a
/// third run that must replay it without a single simulation.
#[test]
#[ignore = "spawns full exp_all suites; CI fault-injection job runs with --release --ignored"]
fn concurrent_suites_share_one_cache_without_corruption() {
    let cache = fresh_dir("conc-cache");
    let results_a = fresh_dir("conc-results-a");
    let results_b = fresh_dir("conc-results-b");

    let spawn = |results: &Path| {
        exp_all_command(results, &cache, None, &[])
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn exp_all")
    };
    let child_a = spawn(&results_a);
    let child_b = spawn(&results_b);
    let out_a = child_a.wait_with_output().expect("wait for exp_all A");
    let out_b = child_b.wait_with_output().expect("wait for exp_all B");
    assert_clean_exit(&out_a, "concurrent exp_all A");
    assert_clean_exit(&out_b, "concurrent exp_all B");

    let figs_a = figures(&results_a);
    let figs_b = figures(&results_b);
    assert_eq!(figs_a.len(), 20, "all figures written by A");
    assert_eq!(figs_a, figs_b, "concurrent runs diverged");

    // No debris: a finished pair leaves only entries + the journal.
    for entry in std::fs::read_dir(&cache).expect("read cache dir").flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        assert!(
            name.ends_with(".run") || name == "journal.log",
            "leftover cache debris: {name}"
        );
    }

    // The shared cache replays cleanly: zero simulations, same figures.
    let results_c = fresh_dir("conc-results-c");
    let warm = run_exp_all(&results_c, &cache, None, &["--expect-cached"]);
    assert_clean_exit(&warm, "warm validation pass");
    assert_eq!(simulated_count(&stdout_of(&warm)), 0);
    assert_eq!(figures(&results_c), figs_a, "warm replay diverged");
}

/// A suite killed (exit as-if-SIGKILLed) at seeded random store points must,
/// on re-invocation, replay every journaled job from cache (the
/// `--expect-resumable` contract) and still produce figures byte-identical
/// to a never-interrupted run.
#[test]
#[ignore = "spawns full exp_all suites; CI fault-injection job runs with --release --ignored"]
fn killed_suite_resumes_byte_identical() {
    let mut rng = seed();
    let unique = suite_unique_at_tiny();

    let golden_results = fresh_dir("kill-golden-results");
    let golden = run_exp_all(&golden_results, &fresh_dir("kill-golden-cache"), None, &[]);
    assert_clean_exit(&golden, "uninterrupted reference run");
    let golden_figs = figures(&golden_results);
    assert_eq!(golden_figs.len(), 20);

    // Two kill points: one early, one past the midpoint. Both in
    // [2, unique] so at least one store lands before the kill.
    let early = 2 + next_rand(&mut rng) % (unique / 4).max(1);
    let late = (unique / 2 + next_rand(&mut rng) % (unique / 4).max(1)).min(unique);
    for (label, kill_at) in [("early", early), ("late", late)] {
        let cache = fresh_dir(&format!("kill-{label}-cache"));
        let results = fresh_dir(&format!("kill-{label}-results"));

        let plan = format!("kill@store={kill_at}");
        let killed = run_exp_all(&results, &cache, Some(&plan), &[]);
        assert_eq!(
            killed.status.code(),
            Some(137),
            "{label} kill at store {kill_at} must die with the SIGKILL code, got {}:\n{}",
            killed.status,
            stderr_of(&killed)
        );
        assert!(
            stderr_of(&killed).contains("fault injection: kill"),
            "{label}: kill must announce itself on stderr"
        );

        let resumed = run_exp_all(&results, &cache, None, &["--expect-resumable"]);
        assert_clean_exit(&resumed, "resumed run");
        let stdout = stdout_of(&resumed);
        assert!(
            stdout.contains("resume:"),
            "{label}: resumed run must report the journal it picked up:\n{stdout}"
        );
        let resimulated = simulated_count(&stdout);
        assert!(
            resimulated < unique,
            "{label}: resume must replay journaled work, not redo all {unique} jobs"
        );
        assert_eq!(
            figures(&results),
            golden_figs,
            "{label}: resumed figures diverged from the uninterrupted run"
        );

        // And the recovered cache is fully valid: a pure replay succeeds.
        let warm = run_exp_all(&results, &cache, None, &["--expect-cached"]);
        assert_clean_exit(&warm, "post-resume warm validation");
    }
}

/// `--finalize` on an empty shared directory must report the job set as
/// incomplete with its dedicated exit code — the distinct-exit-code
/// contract of the merge step, cheap enough to run in the default pass.
#[test]
fn finalize_times_out_with_the_incomplete_journal_exit_code() {
    let cache = fresh_dir("finalize-empty-cache");
    let results = fresh_dir("finalize-empty-results");
    let out = run_exp_all(&results, &cache, None, &["--finalize", "--wait", "0"]);
    assert_eq!(
        out.status.code(),
        Some(3),
        "an incomplete job set must exit 3, got {}:\n{}",
        out.status,
        stderr_of(&out)
    );
    assert!(
        stderr_of(&out).contains("incomplete"),
        "finalize must say what it was missing:\n{}",
        stderr_of(&out)
    );
    assert!(
        figures(&results).is_empty(),
        "no figures may be written from an incomplete job set"
    );
}

/// The numeric value of `field=` in a worker report line.
fn report_field(line: &str, field: &str) -> u64 {
    line.split_whitespace()
        .find_map(|part| part.strip_prefix(field)?.parse().ok())
        .unwrap_or_else(|| panic!("no {field} field in worker report: {line}"))
}

/// The `worker pid=...` report lines of a set of captured stdouts.
fn worker_reports(outputs: &[Output]) -> Vec<String> {
    outputs
        .iter()
        .flat_map(|o| stdout_of(o).lines().map(str::to_owned).collect::<Vec<_>>())
        .filter(|l| l.starts_with("worker pid="))
        .collect()
}

/// The fleet acceptance campaign: 4 workers share one cache directory
/// under a seeded kill/EIO plan (workers murdered mid-store, heartbeats
/// killed, lease acquisitions failing), a clean recovery wave finishes the
/// job set, and `--finalize --verify` proves the merged figures are
/// byte-identical to a single-process run. The journal must show no job
/// executed to completion twice, and the per-worker summaries must show
/// the retry/backoff and lease-steal machinery actually firing.
#[test]
#[ignore = "spawns full exp_all suites; CI fault-injection job runs with --release --ignored"]
fn four_workers_under_seeded_kills_merge_byte_identical() {
    let mut rng = seed();

    // The single-process reference.
    let golden_results = fresh_dir("fleet-golden-results");
    let golden = run_exp_all(&golden_results, &fresh_dir("fleet-golden-cache"), None, &[]);
    assert_clean_exit(&golden, "uninterrupted reference run");
    let golden_figs = figures(&golden_results);
    assert_eq!(golden_figs.len(), 20);

    let cache = fresh_dir("fleet-cache");
    let results = fresh_dir("fleet-results");
    let spawn_worker = |failplan: Option<&str>| {
        let mut cmd = exp_all_command(
            &results,
            &cache,
            failplan,
            &["--worker", "--max-retries", "5"],
        );
        // Fast leases so the campaign reclaims dead workers in ~0.5s
        // instead of the production-default seconds.
        cmd.env("EHS_LEASE_HEARTBEAT_MS", "100")
            .env("EHS_LEASE_TTL_MS", "500")
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn worker")
    };

    // Wave 1: 4 workers, each with its own seeded fault plan. Early
    // occurrence numbers so every plan actually fires: two workers are
    // killed outright (mid-store / on a heartbeat), two absorb injected
    // I/O faults through the retry machinery.
    let plans = [
        format!("kill@store={}", 2 + next_rand(&mut rng) % 8),
        format!("io@store={}", 1 + next_rand(&mut rng) % 4),
        format!("kill@heartbeat={}", 1 + next_rand(&mut rng) % 3),
        format!("io@lease={}", 1 + next_rand(&mut rng) % 4),
    ];
    eprintln!("fleet fail plans: {plans:?}");
    let wave1: Vec<Output> = plans
        .iter()
        .map(|p| spawn_worker(Some(p)))
        .collect::<Vec<_>>()
        .into_iter()
        .map(|c| c.wait_with_output().expect("wait for worker"))
        .collect();
    // A kill plan that fired exits 137; plans whose site was never reached
    // (a heartbeat that never ticked on a fast job) or whose faults were
    // absorbed exit 0. Anything else is a real failure.
    for (plan, out) in plans.iter().zip(&wave1) {
        assert!(
            matches!(out.status.code(), Some(0) | Some(137)),
            "worker with plan {plan} exited {}:\n{}",
            out.status,
            stderr_of(out)
        );
    }

    // Wave 2: a clean recovery fleet finishes (and steals) whatever the
    // murdered workers left behind. All must succeed.
    let wave2: Vec<Output> = (0..4)
        .map(|_| spawn_worker(None))
        .collect::<Vec<_>>()
        .into_iter()
        .map(|c| c.wait_with_output().expect("wait for worker"))
        .collect();
    for out in &wave2 {
        assert_clean_exit(out, "recovery worker");
    }

    // Zero duplicated completions: no entry stem may be journaled twice.
    // (A worker killed between store and journal loses the line, never
    // duplicates it — the finalize step accepts loadable-but-unjournaled.)
    let cache_handle = ehs_sim::runcache::RunCache::new(&cache).expect("open campaign cache");
    for (stem, count) in cache_handle.journal_occurrences() {
        assert_eq!(
            count, 1,
            "{stem} journaled {count} times: a job was executed to completion twice"
        );
    }

    // Retries/backoff and lease reclaim are observable in the structured
    // per-worker summaries.
    let any_kill_fired = wave1.iter().any(|o| o.status.code() == Some(137));
    let reports = worker_reports(&[wave1, wave2].concat());
    assert!(
        !reports.is_empty(),
        "workers must print structured summaries"
    );
    let total_retries: u64 = reports.iter().map(|l| report_field(l, "retries=")).sum();
    let total_steals: u64 = reports
        .iter()
        .map(|l| report_field(l, "stolen_leases="))
        .sum();
    let total_failed: u64 = reports.iter().map(|l| report_field(l, "failed=")).sum();
    assert!(
        total_retries >= 1,
        "injected I/O faults must surface as retries in the summaries:\n{reports:#?}"
    );
    if any_kill_fired {
        assert!(
            total_steals >= 1,
            "a killed worker's lease must be reclaimed and counted:\n{reports:#?}"
        );
    }
    assert_eq!(
        total_failed, 0,
        "no job may exhaust its retries in this campaign:\n{reports:#?}"
    );

    // Merge: byte-identity against the single-process reference, asserted
    // both by --verify (exit code) and directly.
    let finalized = run_exp_all(
        &results,
        &cache,
        None,
        &[
            "--finalize",
            "--wait",
            "60",
            "--verify",
            golden_results.to_str().expect("utf-8 path"),
        ],
    );
    assert_clean_exit(&finalized, "finalize with byte-verify");
    assert!(
        stdout_of(&finalized).contains("verify: every figure byte-identical"),
        "finalize must report the verification:\n{}",
        stdout_of(&finalized)
    );
    assert_eq!(
        figures(&results),
        golden_figs,
        "fleet-merged figures diverged from the single-process run"
    );
}

/// A worker panic (plus a torn cache write) fails exactly the one figure
/// whose plan contains the panicked job; every other figure is written, the
/// run exits 1 with a structured summary, and the re-invocation simulates
/// only the work actually lost to the faults.
#[test]
#[ignore = "spawns full exp_all suites; CI fault-injection job runs with --release --ignored"]
fn panicking_job_fails_only_its_own_figure() {
    let mut rng = seed();
    let cache = fresh_dir("panic-cache");
    let results = fresh_dir("panic-results");

    // Only Fig. 4 runs zombie-instrumented jobs, so `panic@zombie=1` is a
    // precision strike on one figure. The torn store lands wherever the
    // seeded point falls — its job completes in-memory, so only the resumed
    // run notices the entry is unusable.
    let torn_at = 2 + next_rand(&mut rng) % suite_unique_at_tiny().max(2) / 2;
    let plan = format!("panic@zombie=1,short@store={torn_at}");
    let faulted = run_exp_all(&results, &cache, Some(&plan), &[]);
    assert_eq!(
        faulted.status.code(),
        Some(1),
        "a failed figure must exit 1, got {}:\n{}",
        faulted.status,
        stderr_of(&faulted)
    );
    let stderr = stderr_of(&faulted);
    assert!(
        stderr.contains("failure summary (1 figure(s) not written):"),
        "structured failure summary missing:\n{stderr}"
    );
    assert!(
        stderr.contains("exp_fig04_zombie_ratio"),
        "the summary must name the failed figure:\n{stderr}"
    );

    let partial = figures(&results);
    assert!(
        !partial.contains_key("exp_fig04_zombie_ratio.txt"),
        "the failed figure must not be written"
    );
    assert_eq!(
        partial.len(),
        19,
        "every unaffected figure must still be written"
    );

    // Re-invocation completes the suite, resimulating only the lost work:
    // the panicked zombie job, the torn-store job, and (only when the torn
    // entry was an Ideal run) its oracle-trace refill.
    let resumed = run_exp_all(&results, &cache, None, &["--expect-resumable"]);
    assert_clean_exit(&resumed, "resumed run after contained panic");
    let resimulated = simulated_count(&stdout_of(&resumed));
    assert!(
        (2..=3).contains(&resimulated),
        "resume must simulate only the jobs lost to faults, simulated {resimulated}"
    );
    let complete = figures(&results);
    assert!(complete.contains_key("exp_fig04_zombie_ratio.txt"));
    assert_eq!(complete.len(), 20);
    for (name, bytes) in &partial {
        assert_eq!(
            complete.get(name),
            Some(bytes),
            "{name} changed across the resumed run"
        );
    }
}
