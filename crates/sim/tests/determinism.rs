//! Regression tests for the two properties the run infrastructure promises:
//!
//! 1. **Determinism** — `run_matrix` produces bit-identical simulated
//!    outcomes regardless of worker-thread count, and results served from
//!    the memoization cache equal fresh uncached executions
//!    (`RunResult::PartialEq` deliberately excludes the wall-clock
//!    `sim_mips` field, so `==` is exactly "same simulated outcome").
//! 2. **Baseline sharing** — a matrix containing the Ideal scheme performs
//!    exactly one baseline execution per (app, config, seed): the oracle's
//!    trace-recording pass *is* the baseline column's run.

use ehs_sim::runner::{baseline_executions, run_matrix};
use ehs_sim::{run_app, Scheme, SourceKind, SystemConfig};
use ehs_workloads::{AppId, Scale};
use std::sync::{Mutex, MutexGuard};

const APPS: [AppId; 2] = [AppId::Crc32, AppId::Bitcount];

/// The execution counter is process-wide, so tests in this binary must not
/// run baseline simulations concurrently while another test counts them.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A config keyed by seed, so each test gets its own memoization entries.
fn config_with_seed(seed: u64) -> SystemConfig {
    let mut config = SystemConfig::paper_default();
    if let SourceKind::Preset { preset, scale, .. } = config.source {
        config.source = SourceKind::Preset {
            preset,
            seed,
            scale,
        };
    }
    config
}

#[test]
fn matrix_is_identical_across_thread_counts() {
    let _guard = serial();
    let config = config_with_seed(101);
    let schemes = [Scheme::Baseline, Scheme::DecayEdbp, Scheme::Sdbp];
    let eight = run_matrix(&config, &schemes, &APPS, Scale::Tiny, 8);
    let one = run_matrix(&config, &schemes, &APPS, Scale::Tiny, 1);
    assert_eq!(eight, one, "thread count must never change the outcome");
}

#[test]
fn memoized_results_equal_fresh_uncached_runs() {
    let _guard = serial();
    let config = config_with_seed(102);
    let schemes = [Scheme::Baseline, Scheme::Edbp, Scheme::Ideal];
    let matrix = run_matrix(&config, &schemes, &APPS, Scale::Tiny, 4);
    // Running the same matrix again is served from the cache.
    let cached = run_matrix(&config, &schemes, &APPS, Scale::Tiny, 4);
    assert_eq!(matrix, cached);
    // Every cell must equal a from-scratch, cache-bypassing execution.
    for (s, &scheme) in schemes.iter().enumerate() {
        for (a, &app) in APPS.iter().enumerate() {
            let fresh = run_app(&config, scheme, app, Scale::Tiny);
            assert_eq!(
                matrix[s][a], fresh,
                "memoized {scheme:?}/{app:?} diverged from an uncached run"
            );
        }
    }
}

#[test]
fn ideal_matrix_runs_baseline_exactly_once_per_cell() {
    let _guard = serial();
    let config = config_with_seed(103);
    let before = baseline_executions();
    // Baseline column + Ideal column: the oracle pass must reuse the
    // baseline execution, not add a second one.
    let matrix = run_matrix(
        &config,
        &[Scheme::Baseline, Scheme::Ideal],
        &APPS,
        Scale::Tiny,
        4,
    );
    let after = baseline_executions();
    assert_eq!(
        after - before,
        APPS.len() as u64,
        "expected exactly one baseline execution per app"
    );
    assert_eq!(matrix[0].len(), APPS.len());

    // Re-running the matrix adds no executions at all.
    let again = run_matrix(
        &config,
        &[Scheme::Baseline, Scheme::Ideal],
        &APPS,
        Scale::Tiny,
        4,
    );
    assert_eq!(baseline_executions(), after);
    assert_eq!(matrix, again);
}

#[test]
fn ideal_only_matrix_still_runs_one_baseline_per_app() {
    let _guard = serial();
    let config = config_with_seed(104);
    let before = baseline_executions();
    // No explicit baseline column: the oracle pass is the only baseline
    // execution, and it happens once per app.
    run_matrix(&config, &[Scheme::Ideal], &APPS, Scale::Tiny, 2);
    assert_eq!(baseline_executions() - before, APPS.len() as u64);
}
