//! Plain-text table formatting for the experiment harness.

use std::fmt::Write as _;

/// A simple fixed-width text table: header + rows, printed with aligned
/// columns. Keeps the experiment binaries free of formatting noise.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let emit = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>w$}", w = widths[i]);
            }
            out.push('\n');
        };
        emit(&mut out, &self.header);
        let rule: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(rule));
        out.push('\n');
        for row in &self.rows {
            emit(&mut out, row);
        }
        out
    }
}

impl Table {
    /// Renders as RFC-4180-style CSV (quotes only where needed), for piping
    /// experiment outputs into plotting tools.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let emit = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if cell.contains([',', '"', '\n']) {
                    out.push('"');
                    out.push_str(&cell.replace('"', "\"\""));
                    out.push('"');
                } else {
                    out.push_str(cell);
                }
            }
            out.push('\n');
        };
        emit(&mut out, &self.header);
        for row in &self.rows {
            emit(&mut out, row);
        }
        out
    }
}

/// Formats a ratio as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a speedup/factor with three decimals.
pub fn factor(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["app", "speedup"]);
        t.row(["crc32", "1.069"]);
        t.row(["jpeg_enc", "1.120"]);
        let s = t.render();
        assert!(s.contains("app"));
        assert!(s.lines().count() == 4);
        assert!(!t.is_empty());
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn helpers_format() {
        assert_eq!(pct(0.0653), "6.5%");
        assert_eq!(factor(1.069_4), "1.069");
    }

    #[test]
    fn csv_escapes_only_where_needed() {
        let mut t = Table::new(["app", "note"]);
        t.row(["crc32", "plain"]);
        t.row(["jpeg,enc", "has \"quotes\""]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "app,note");
        assert_eq!(lines[1], "crc32,plain");
        assert_eq!(lines[2], "\"jpeg,enc\",\"has \"\"quotes\"\"\"");
    }
}
