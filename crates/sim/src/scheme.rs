//! The evaluated schemes (paper Section VI-A1).

use std::fmt;

/// Which architecture/predictor combination a run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// NVSRAMCache: JIT checkpoint of registers + dirty blocks, no dead
    /// block prediction. Everything is normalized to this.
    Baseline,
    /// SDBP \[44\]: reuse-filtered checkpointing — saves/restores the blocks
    /// predicted to be reused, writes dirty dead blocks back to memory.
    Sdbp,
    /// Cache Decay \[32\] on the baseline.
    Decay,
    /// EDBP alone on the baseline (the paper's contribution).
    Edbp,
    /// Cache Decay + EDBP (the paper's headline combination).
    DecayEdbp,
    /// Adaptive Mode Control \[74\] on the baseline (extension predictor).
    Amc,
    /// AMC + EDBP (Section VII-A: EDBP composes with any predictor).
    AmcEdbp,
    /// The oracle with perfect knowledge of block deaths ("Ideal").
    Ideal,
    /// Baseline with the data-cache leakage magically scaled by 0.2
    /// ("80% Leakage Off", Figs. 1 and 8).
    LeakageOff80,
}

impl Scheme {
    /// Every scheme, in declaration order. The kernel-matrix test pins
    /// that each entry resolves to a monomorphized lane, and the lockstep
    /// throughput row replays all of them over one workload.
    pub const ALL: [Scheme; 9] = [
        Scheme::Baseline,
        Scheme::Sdbp,
        Scheme::Decay,
        Scheme::Edbp,
        Scheme::DecayEdbp,
        Scheme::Amc,
        Scheme::AmcEdbp,
        Scheme::Ideal,
        Scheme::LeakageOff80,
    ];

    /// The five schemes of the paper's headline comparison (Figs. 7–8 order).
    pub const HEADLINE: [Scheme; 5] = [
        Scheme::Baseline,
        Scheme::Sdbp,
        Scheme::Decay,
        Scheme::Edbp,
        Scheme::DecayEdbp,
    ];

    /// Everything shown in Fig. 8 (headline plus the two bounds).
    pub const FIG8: [Scheme; 7] = [
        Scheme::Baseline,
        Scheme::Sdbp,
        Scheme::Decay,
        Scheme::Edbp,
        Scheme::DecayEdbp,
        Scheme::LeakageOff80,
        Scheme::Ideal,
    ];

    /// Canonical name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Scheme::Baseline => "nvsramcache",
            Scheme::Sdbp => "sdbp",
            Scheme::Decay => "cache-decay",
            Scheme::Edbp => "edbp",
            Scheme::DecayEdbp => "decay+edbp",
            Scheme::Amc => "amc",
            Scheme::AmcEdbp => "amc+edbp",
            Scheme::Ideal => "ideal",
            Scheme::LeakageOff80 => "80%-leakage-off",
        }
    }

    /// Whether this scheme needs the two-pass oracle trace.
    pub fn needs_oracle_trace(self) -> bool {
        matches!(self, Scheme::Ideal)
    }

    /// Whether EDBP is part of this scheme.
    pub fn uses_edbp(self) -> bool {
        matches!(self, Scheme::Edbp | Scheme::DecayEdbp | Scheme::AmcEdbp)
    }
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique() {
        let all = [
            Scheme::Baseline,
            Scheme::Sdbp,
            Scheme::Decay,
            Scheme::Edbp,
            Scheme::DecayEdbp,
            Scheme::Amc,
            Scheme::AmcEdbp,
            Scheme::Ideal,
            Scheme::LeakageOff80,
        ];
        let mut names: Vec<&str> = all.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len());
    }

    #[test]
    fn flags() {
        assert!(Scheme::Ideal.needs_oracle_trace());
        assert!(!Scheme::Edbp.needs_oracle_trace());
        assert!(Scheme::DecayEdbp.uses_edbp());
        assert!(!Scheme::Decay.uses_edbp());
    }
}
