//! Shared command-line parsing for the experiment binaries.
//!
//! Every `exp_*` binary accepts the same surface:
//!
//! ```text
//! exp_<name> [tiny|small|full] [--csv] [--threads N] [--no-cache]
//! ```
//!
//! Unknown arguments are an error (usage on stderr, exit code 2) — a typo
//! must not silently fall back to the default scale.

use crate::experiments::ExperimentOptions;
use crate::runner::default_threads;
use ehs_workloads::Scale;

/// Options shared by every experiment binary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliOptions {
    /// Workload scale (positional `tiny` / `small` / `full`; default small).
    pub scale: Scale,
    /// Worker threads (`--threads N`; default all-but-one hardware thread).
    pub threads: usize,
    /// Emit CSV instead of the rendered table (`--csv`).
    pub csv: bool,
    /// Skip installing the persistent result cache (`--no-cache`).
    pub no_cache: bool,
}

impl Default for CliOptions {
    fn default() -> Self {
        Self {
            scale: Scale::Small,
            threads: default_threads(),
            csv: false,
            no_cache: false,
        }
    }
}

impl CliOptions {
    /// The experiment-layer view of these options.
    pub fn experiment_options(&self) -> ExperimentOptions {
        ExperimentOptions {
            scale: self.scale,
            threads: self.threads,
        }
    }
}

/// A parse failure (or an explicit `--help` request).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// `--help` / `-h`: print usage on stdout and exit 0.
    Help,
    /// Anything unparseable: print the message + usage on stderr, exit 2.
    Invalid(String),
}

/// The usage line for binary `name`.
pub fn usage(name: &str) -> String {
    format!("usage: {name} [tiny|small|full] [--csv] [--threads N] [--no-cache]")
}

/// Parses an argument list (without the leading program name).
pub fn parse<I>(args: I) -> Result<CliOptions, CliError>
where
    I: IntoIterator,
    I::Item: Into<String>,
{
    let mut opts = CliOptions::default();
    let mut args = args.into_iter().map(Into::into);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "tiny" => opts.scale = Scale::Tiny,
            "small" => opts.scale = Scale::Small,
            "full" => opts.scale = Scale::Full,
            "--csv" => opts.csv = true,
            "--no-cache" => opts.no_cache = true,
            "--threads" => {
                let value = args
                    .next()
                    .ok_or_else(|| CliError::Invalid("--threads needs a value".into()))?;
                opts.threads =
                    value
                        .parse::<usize>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| {
                            CliError::Invalid(format!(
                                "--threads needs a positive integer, got {value:?}"
                            ))
                        })?;
            }
            "--help" | "-h" => return Err(CliError::Help),
            other => {
                return Err(CliError::Invalid(format!("unknown argument {other:?}")));
            }
        }
    }
    Ok(opts)
}

/// How a `exp_all` invocation participates in a fleet run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetMode {
    /// Plan, run and report everything in this one process (the historical
    /// behavior). Compacts the shared journal at startup.
    Coordinator,
    /// Work-steal the deduplicated job set through the shared cache
    /// directory; produce entries, not figures (`--worker`).
    Worker,
    /// Like `Worker`, but restricted to one deterministic cost-balanced
    /// shard of the job set (`--shard I/N`, 0-based).
    Shard {
        /// This process's shard (0-based).
        index: usize,
        /// Total number of shards.
        count: usize,
    },
    /// Wait for the job set to be complete in the shared directory, then
    /// render and verify every figure (`--finalize`).
    Finalize,
}

/// The full `exp_all` option surface: the shared [`CliOptions`] plus the
/// fleet-mode flags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuiteOptions {
    /// The options every experiment binary shares.
    pub cli: CliOptions,
    /// Fleet participation mode.
    pub mode: FleetMode,
    /// `--expect-cached`: fail unless the run was a pure cache replay.
    pub expect_cached: bool,
    /// `--expect-resumable`: fail if a journaled job re-simulated.
    pub expect_resumable: bool,
    /// `--wait SECS`: how long `--finalize` waits for completeness.
    pub wait: std::time::Duration,
    /// `--verify DIR`: reference directory for per-figure byte comparison.
    pub verify: Option<std::path::PathBuf>,
    /// `--max-retries N`: transient-fault retry bound for worker modes.
    pub max_retries: Option<u32>,
}

/// The usage line for `exp_all`.
pub fn suite_usage() -> String {
    format!(
        "{}\n       exp_all [scale] --worker | --shard I/N | --finalize [--wait SECS] \
         [--verify DIR] [--max-retries N] [--expect-cached] [--expect-resumable]",
        usage("exp_all")
    )
}

/// Parses the `exp_all` argument list (without the leading program name):
/// the fleet flags documented on [`SuiteOptions`], with everything else
/// delegated to [`parse`].
pub fn parse_suite<I>(args: I) -> Result<SuiteOptions, CliError>
where
    I: IntoIterator,
    I::Item: Into<String>,
{
    let mut rest: Vec<String> = Vec::new();
    let mut worker = false;
    let mut finalize = false;
    let mut shard: Option<(usize, usize)> = None;
    let mut expect_cached = false;
    let mut expect_resumable = false;
    let mut wait = std::time::Duration::from_secs(60);
    let mut verify = None;
    let mut max_retries = None;
    let mut args = args.into_iter().map(Into::into);
    while let Some(arg) = args.next() {
        let mut value_of = |flag: &str| {
            args.next()
                .ok_or_else(|| CliError::Invalid(format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--worker" => worker = true,
            "--finalize" => finalize = true,
            "--expect-cached" => expect_cached = true,
            "--expect-resumable" => expect_resumable = true,
            "--shard" => {
                let value = value_of("--shard")?;
                let parsed = value.split_once('/').and_then(|(i, n)| {
                    let index = i.parse::<usize>().ok()?;
                    let count = n.parse::<usize>().ok()?;
                    (count >= 1 && index < count).then_some((index, count))
                });
                shard = Some(parsed.ok_or_else(|| {
                    CliError::Invalid(format!("--shard needs I/N with 0 <= I < N, got {value:?}"))
                })?);
            }
            "--wait" => {
                let value = value_of("--wait")?;
                wait = value
                    .parse::<u64>()
                    .ok()
                    .map(std::time::Duration::from_secs)
                    .ok_or_else(|| {
                        CliError::Invalid(format!("--wait needs whole seconds, got {value:?}"))
                    })?;
            }
            "--verify" => verify = Some(std::path::PathBuf::from(value_of("--verify")?)),
            "--max-retries" => {
                let value = value_of("--max-retries")?;
                max_retries = Some(value.parse::<u32>().map_err(|_| {
                    CliError::Invalid(format!(
                        "--max-retries needs a non-negative integer, got {value:?}"
                    ))
                })?);
            }
            _ => rest.push(arg),
        }
    }
    if finalize && (worker || shard.is_some()) {
        return Err(CliError::Invalid(
            "--finalize cannot combine with --worker/--shard".into(),
        ));
    }
    let mode = match (shard, worker, finalize) {
        (Some((index, count)), _, _) => FleetMode::Shard { index, count },
        (None, true, _) => FleetMode::Worker,
        (None, false, true) => FleetMode::Finalize,
        (None, false, false) => FleetMode::Coordinator,
    };
    Ok(SuiteOptions {
        cli: parse(rest)?,
        mode,
        expect_cached,
        expect_resumable,
        wait,
        verify,
        max_retries,
    })
}

/// Parses [`std::env::args`] for binary `name`; prints usage and exits on
/// `--help` (code 0) or any invalid argument (code 2).
pub fn parse_or_exit(name: &str) -> CliOptions {
    match parse(std::env::args().skip(1)) {
        Ok(opts) => opts,
        Err(CliError::Help) => {
            println!("{}", usage(name));
            std::process::exit(0);
        }
        Err(CliError::Invalid(msg)) => {
            eprintln!("{msg}");
            eprintln!("{}", usage(name));
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_experiment_defaults() {
        let opts = parse(Vec::<String>::new()).unwrap();
        assert_eq!(opts.scale, Scale::Small);
        assert_eq!(opts.threads, default_threads());
        assert!(!opts.csv);
        assert!(!opts.no_cache);
    }

    #[test]
    fn parses_every_flag() {
        let opts = parse(["tiny", "--csv", "--threads", "3", "--no-cache"]).unwrap();
        assert_eq!(opts.scale, Scale::Tiny);
        assert_eq!(opts.threads, 3);
        assert!(opts.csv);
        assert!(opts.no_cache);
    }

    #[test]
    fn last_scale_wins() {
        let opts = parse(["tiny", "full"]).unwrap();
        assert_eq!(opts.scale, Scale::Full);
    }

    #[test]
    fn rejects_unknown_arguments() {
        assert!(matches!(parse(["smol"]), Err(CliError::Invalid(_))));
        assert!(matches!(parse(["--jobs", "4"]), Err(CliError::Invalid(_))));
    }

    #[test]
    fn rejects_bad_thread_counts() {
        assert!(matches!(parse(["--threads"]), Err(CliError::Invalid(_))));
        assert!(matches!(
            parse(["--threads", "0"]),
            Err(CliError::Invalid(_))
        ));
        assert!(matches!(
            parse(["--threads", "x"]),
            Err(CliError::Invalid(_))
        ));
    }

    #[test]
    fn help_is_not_an_error_message() {
        assert_eq!(parse(["--help"]), Err(CliError::Help));
        assert_eq!(parse(["-h"]), Err(CliError::Help));
    }

    #[test]
    fn suite_defaults_to_coordinator_mode() {
        let opts = parse_suite(["tiny"]).unwrap();
        assert_eq!(opts.mode, FleetMode::Coordinator);
        assert_eq!(opts.cli.scale, Scale::Tiny);
        assert!(!opts.expect_cached && !opts.expect_resumable);
        assert_eq!(opts.wait, std::time::Duration::from_secs(60));
        assert_eq!(opts.verify, None);
        assert_eq!(opts.max_retries, None);
    }

    #[test]
    fn suite_parses_fleet_modes() {
        assert_eq!(parse_suite(["--worker"]).unwrap().mode, FleetMode::Worker);
        assert_eq!(
            parse_suite(["--shard", "2/4"]).unwrap().mode,
            FleetMode::Shard { index: 2, count: 4 }
        );
        let fin = parse_suite(["--finalize", "--wait", "5", "--verify", "/tmp/ref"]).unwrap();
        assert_eq!(fin.mode, FleetMode::Finalize);
        assert_eq!(fin.wait, std::time::Duration::from_secs(5));
        assert_eq!(fin.verify, Some(std::path::PathBuf::from("/tmp/ref")));
        let retried = parse_suite(["--worker", "--max-retries", "0"]).unwrap();
        assert_eq!(retried.max_retries, Some(0));
    }

    #[test]
    fn suite_rejects_bad_fleet_flags() {
        assert!(matches!(
            parse_suite(["--shard", "4/4"]),
            Err(CliError::Invalid(_))
        ));
        assert!(matches!(
            parse_suite(["--shard", "x"]),
            Err(CliError::Invalid(_))
        ));
        assert!(matches!(
            parse_suite(["--finalize", "--worker"]),
            Err(CliError::Invalid(_))
        ));
        assert!(matches!(parse_suite(["--wait"]), Err(CliError::Invalid(_))));
        // Unknown arguments still fall through to the shared parser.
        assert!(matches!(
            parse_suite(["--bogus"]),
            Err(CliError::Invalid(_))
        ));
    }
}
