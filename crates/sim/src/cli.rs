//! Shared command-line parsing for the experiment binaries.
//!
//! Every `exp_*` binary accepts the same surface:
//!
//! ```text
//! exp_<name> [tiny|small|full] [--csv] [--threads N] [--no-cache]
//! ```
//!
//! Unknown arguments are an error (usage on stderr, exit code 2) — a typo
//! must not silently fall back to the default scale.

use crate::experiments::ExperimentOptions;
use crate::runner::default_threads;
use ehs_workloads::Scale;

/// Options shared by every experiment binary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliOptions {
    /// Workload scale (positional `tiny` / `small` / `full`; default small).
    pub scale: Scale,
    /// Worker threads (`--threads N`; default all-but-one hardware thread).
    pub threads: usize,
    /// Emit CSV instead of the rendered table (`--csv`).
    pub csv: bool,
    /// Skip installing the persistent result cache (`--no-cache`).
    pub no_cache: bool,
}

impl Default for CliOptions {
    fn default() -> Self {
        Self {
            scale: Scale::Small,
            threads: default_threads(),
            csv: false,
            no_cache: false,
        }
    }
}

impl CliOptions {
    /// The experiment-layer view of these options.
    pub fn experiment_options(&self) -> ExperimentOptions {
        ExperimentOptions {
            scale: self.scale,
            threads: self.threads,
        }
    }
}

/// A parse failure (or an explicit `--help` request).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// `--help` / `-h`: print usage on stdout and exit 0.
    Help,
    /// Anything unparseable: print the message + usage on stderr, exit 2.
    Invalid(String),
}

/// The usage line for binary `name`.
pub fn usage(name: &str) -> String {
    format!("usage: {name} [tiny|small|full] [--csv] [--threads N] [--no-cache]")
}

/// Parses an argument list (without the leading program name).
pub fn parse<I>(args: I) -> Result<CliOptions, CliError>
where
    I: IntoIterator,
    I::Item: Into<String>,
{
    let mut opts = CliOptions::default();
    let mut args = args.into_iter().map(Into::into);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "tiny" => opts.scale = Scale::Tiny,
            "small" => opts.scale = Scale::Small,
            "full" => opts.scale = Scale::Full,
            "--csv" => opts.csv = true,
            "--no-cache" => opts.no_cache = true,
            "--threads" => {
                let value = args
                    .next()
                    .ok_or_else(|| CliError::Invalid("--threads needs a value".into()))?;
                opts.threads =
                    value
                        .parse::<usize>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| {
                            CliError::Invalid(format!(
                                "--threads needs a positive integer, got {value:?}"
                            ))
                        })?;
            }
            "--help" | "-h" => return Err(CliError::Help),
            other => {
                return Err(CliError::Invalid(format!("unknown argument {other:?}")));
            }
        }
    }
    Ok(opts)
}

/// Parses [`std::env::args`] for binary `name`; prints usage and exits on
/// `--help` (code 0) or any invalid argument (code 2).
pub fn parse_or_exit(name: &str) -> CliOptions {
    match parse(std::env::args().skip(1)) {
        Ok(opts) => opts,
        Err(CliError::Help) => {
            println!("{}", usage(name));
            std::process::exit(0);
        }
        Err(CliError::Invalid(msg)) => {
            eprintln!("{msg}");
            eprintln!("{}", usage(name));
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_experiment_defaults() {
        let opts = parse(Vec::<String>::new()).unwrap();
        assert_eq!(opts.scale, Scale::Small);
        assert_eq!(opts.threads, default_threads());
        assert!(!opts.csv);
        assert!(!opts.no_cache);
    }

    #[test]
    fn parses_every_flag() {
        let opts = parse(["tiny", "--csv", "--threads", "3", "--no-cache"]).unwrap();
        assert_eq!(opts.scale, Scale::Tiny);
        assert_eq!(opts.threads, 3);
        assert!(opts.csv);
        assert!(opts.no_cache);
    }

    #[test]
    fn last_scale_wins() {
        let opts = parse(["tiny", "full"]).unwrap();
        assert_eq!(opts.scale, Scale::Full);
    }

    #[test]
    fn rejects_unknown_arguments() {
        assert!(matches!(parse(["smol"]), Err(CliError::Invalid(_))));
        assert!(matches!(parse(["--jobs", "4"]), Err(CliError::Invalid(_))));
    }

    #[test]
    fn rejects_bad_thread_counts() {
        assert!(matches!(parse(["--threads"]), Err(CliError::Invalid(_))));
        assert!(matches!(
            parse(["--threads", "0"]),
            Err(CliError::Invalid(_))
        ));
        assert!(matches!(
            parse(["--threads", "x"]),
            Err(CliError::Invalid(_))
        ));
    }

    #[test]
    fn help_is_not_an_error_message() {
        assert_eq!(parse(["--help"]), Err(CliError::Help));
        assert_eq!(parse(["-h"]), Err(CliError::Help));
    }
}
