//! Full-system intermittent-computing simulator for the EDBP reproduction.
//!
//! This crate wires every substrate together into the paper's evaluation
//! platform (Section VI-A): a 25 MHz in-order core (`ehs-cpu`) running a
//! synthetic MiBench/Mediabench workload (`ehs-workloads`) over an SRAM data
//! cache and ReRAM instruction cache (`ehs-cache` + `ehs-nvm`), backed by
//! ReRAM main memory, powered by a capacitor charged from an ambient source
//! (`ehs-energy`), with JIT checkpointing in the NVSRAMCache style and a
//! pluggable dead/zombie-block predictor (`edbp-core`).
//!
//! The crate exposes three layers:
//!
//! * [`SystemConfig`] / [`Scheme`] / [`run_app`] — run one application under
//!   one scheme and get a [`RunResult`] (timings, energy breakdown, cache
//!   stats, prediction accounting).
//! * [`runner`] — fan a set of runs out across threads, deterministically.
//! * [`experiments`] — one entry point per table/figure of the paper, each
//!   printing the rows the paper reports (see `EXPERIMENTS.md`).
//!
//! # Example
//!
//! ```no_run
//! use ehs_sim::{run_app, Scheme, SystemConfig};
//! use ehs_workloads::{AppId, Scale};
//!
//! let config = SystemConfig::paper_default();
//! let base = run_app(&config, Scheme::Baseline, AppId::Crc32, Scale::Tiny);
//! let edbp = run_app(&config, Scheme::Edbp, AppId::Crc32, Scale::Tiny);
//! println!(
//!     "EDBP speedup on crc32: {:.3}",
//!     base.total_time() / edbp.total_time()
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
mod config;
pub mod experiments;
pub mod fault;
mod fingerprint;
mod memory_system;
pub mod planner;
mod replay;
pub mod report;
pub mod runcache;
pub mod runner;
mod scheme;
mod stats;
mod system;
mod zombie;

pub use config::{CheckpointCosts, SourceKind, SystemConfig};
pub use fingerprint::config_fingerprint;
pub use memory_system::MemorySystem;
pub use replay::StreamWindow;
pub use scheme::Scheme;
pub use stats::{EnergyBreakdown, RunResult};
pub use system::{
    build_lane, default_lockstep_mode, record_generation_trace, run_app, run_baseline_with_trace,
    run_lane, run_lockstep, run_lockstep_with, run_workload, LaneRun, LockstepMode, RunOutcome,
    Simulation,
};
pub use zombie::{zombie_ratio_by_voltage, ZombieAnalysis, ZombieSample};
