//! Shared-stream recording for transposed lockstep execution.
//!
//! When several lanes simulate the same workload, every lane decodes and
//! executes the identical instruction stream — the *data* differs per lane
//! (outage histories diverge) but, for programs that pass
//! [`ehs_cpu::stream_is_data_independent`], the `(pc, effect kind,
//! address)` sequence is a pure function of the architectural position.
//! The transposed lockstep path exploits that: one lane (the *recorder*)
//! runs live and appends each committed instruction to a [`StreamWindow`];
//! every other lane then replays the window against its own caches,
//! predictors and energy system without touching its core at all, and
//! re-synchronizes its architectural state at the window end.
//!
//! The recorder's hot loop is generic over [`StreamSink`] so the solo path
//! instantiates it with `()` — every recording call compiles to nothing
//! and the allocation-free hot loop is untouched.

use ehs_cpu::CoreState;

/// Record kinds stored in [`StreamWindow::kinds`]. One byte per committed
/// instruction; loads and stores carry an address (and stores a value) in
/// the parallel columns.
pub(crate) const REC_COMPUTE: u8 = 0;
pub(crate) const REC_LOAD: u8 = 1;
pub(crate) const REC_STORE: u8 = 2;
/// `Halt` commits no work (the core nets its counter back out) but costs a
/// fetch cycle; it is always a window's final record.
pub(crate) const REC_HALT: u8 = 3;

/// Spacing, in records, between recorder core snapshots inside a window.
/// A replayer that must re-synchronize its core mid-window (outage, window
/// exit without an end state) adopts the closest snapshot and re-decodes
/// only the tail, so this bounds its worst-case re-decode length — without
/// it, outage-heavy runs re-decode nearly every record and the transposed
/// drive degenerates to live stepping plus replay overhead.
pub(crate) const SNAP_INTERVAL: usize = 1024;

/// One recorded chunk of the canonical instruction stream, column-major:
/// record `i` describes the instruction at architectural position
/// `start + i`. Buffers are pooled — `begin` clears without freeing, so a
/// round-driving loop reuses one window's high-water capacity forever.
#[derive(Debug, Default)]
pub struct StreamWindow {
    /// Architectural position (committed instructions since entry on the
    /// canonical, rewind-free stream) of the first record.
    start: u64,
    /// Per-record kind (`REC_*`).
    pub(crate) kinds: Vec<u8>,
    /// Per-record pc *before* execution.
    pub(crate) pcs: Vec<u32>,
    /// Data address for loads/stores (0 otherwise).
    pub(crate) addrs: Vec<u32>,
    /// Store value (0 otherwise). Load values are *not* recorded — each
    /// replaying lane reads its own memory.
    pub(crate) values: Vec<u32>,
    /// The recorder's architectural state at `start + len()`, present only
    /// for unsealed windows. Registers may hold lane-specific load-derived
    /// data; the taint gate guarantees no such register can influence the
    /// stream, which is what makes adopting this snapshot sound.
    end_state: Option<CoreState>,
    /// Recorder core snapshots at [`SNAP_INTERVAL`]-spaced record indices:
    /// `(i, state)` is the recorder's architectural state immediately
    /// before executing record `i`. Sound to adopt for the same reason as
    /// `end_state`; snapshots taken before a seal stay valid because their
    /// indices lie inside the frozen committed prefix.
    snaps: Vec<(usize, CoreState)>,
    /// Record index of the most recent snapshot (drives `snapshot_due`).
    last_snap_at: usize,
    /// Set when the recorder hit an outage: its architectural position may
    /// rewind, so the window must not grow past the committed prefix.
    sealed: bool,
}

impl StreamWindow {
    /// Resets the window to record a fresh round starting at architectural
    /// position `start`. Keeps buffer capacity.
    pub fn begin(&mut self, start: u64) {
        self.start = start;
        self.kinds.clear();
        self.pcs.clear();
        self.addrs.clear();
        self.values.clear();
        self.end_state = None;
        self.snaps.clear();
        self.last_snap_at = 0;
        self.sealed = false;
    }

    /// Discards all records (used when a recorder panicked mid-round and
    /// the window contents cannot be trusted).
    pub fn invalidate(&mut self) {
        self.begin(0);
        self.sealed = true;
    }

    /// Architectural position of the first record.
    pub fn start(&self) -> u64 {
        self.start
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// True when no records were captured.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// True once an outage stopped recording.
    pub fn sealed(&self) -> bool {
        self.sealed
    }

    /// The recorder's end-of-window snapshot, absent for sealed windows.
    pub(crate) fn end_state(&self) -> Option<&CoreState> {
        self.end_state.as_ref()
    }

    /// Stores the recorder's architectural state at the window end. Ignored
    /// after a seal: the recorder kept running live past the recorded
    /// prefix, so its final state no longer corresponds to `start + len()`.
    pub(crate) fn finish(&mut self, state: CoreState) {
        if !self.sealed {
            self.end_state = Some(state);
        }
    }

    /// The latest recorder snapshot usable to re-synchronize records
    /// `[from, to)`: the largest snapshot index `i` with `from < i <= to`
    /// (a snapshot at `i` is the state *before* record `i`, so adopting it
    /// leaves only `[i, to)` to re-decode).
    pub(crate) fn best_snapshot(&self, from: usize, to: usize) -> Option<(usize, &CoreState)> {
        let hi = self.snaps.partition_point(|(i, _)| *i <= to);
        match &self.snaps[..hi] {
            [.., (i, state)] if *i > from => Some((*i, state)),
            _ => None,
        }
    }

    #[inline]
    fn push(&mut self, kind: u8, pc: u32, addr: u32, value: u32) {
        self.kinds.push(kind);
        self.pcs.push(pc);
        self.addrs.push(addr);
        self.values.push(value);
    }
}

/// Receiver for the committed-instruction stream inside the recorder's hot
/// loop. The solo path uses the `()` implementation (`ACTIVE = false`), so
/// every call site folds to nothing and the loop stays allocation-free.
pub(crate) trait StreamSink {
    /// Whether this sink records anything (lets call sites skip argument
    /// computation entirely when the optimizer needs help).
    const ACTIVE: bool;

    /// `taken` consecutive compute instructions starting at `pc0`. Burst
    /// instructions fetch sequentially (a branch can only *close* a run),
    /// so the pcs are `pc0 .. pc0 + taken`.
    fn record_burst(&mut self, pc0: u32, taken: u64);
    /// A committed compute (or control-flow) instruction at `pc`.
    fn record_compute(&mut self, pc: u32);
    /// A committed load at `pc` from `addr`.
    fn record_load(&mut self, pc: u32, addr: u32);
    /// A committed store at `pc` to `addr` of `value` (the recorder's own
    /// value: replayers write it verbatim — data values are invisible to
    /// every statistic, and per-lane value divergence is already implied by
    /// differing outage histories).
    fn record_store(&mut self, pc: u32, addr: u32, value: u32);
    /// The halt instruction at `pc` (always the final record).
    fn record_halt(&mut self, pc: u32);
    /// True when the sink wants a [`StreamSink::snapshot`] at the current
    /// record boundary. Checked only at points where the core is fully
    /// stepped through the last recorded instruction (including
    /// `finish_load`), which is what makes the snapshot adoptable.
    fn snapshot_due(&self) -> bool;
    /// Stores the recorder's architectural state at the current record
    /// boundary for replayers to adopt mid-window.
    fn snapshot(&mut self, state: CoreState);
    /// An outage is about to run: freeze the window at the committed
    /// prefix. Further records are discarded.
    fn seal(&mut self);
}

impl StreamSink for () {
    const ACTIVE: bool = false;

    #[inline(always)]
    fn record_burst(&mut self, _pc0: u32, _taken: u64) {}
    #[inline(always)]
    fn record_compute(&mut self, _pc: u32) {}
    #[inline(always)]
    fn record_load(&mut self, _pc: u32, _addr: u32) {}
    #[inline(always)]
    fn record_store(&mut self, _pc: u32, _addr: u32, _value: u32) {}
    #[inline(always)]
    fn record_halt(&mut self, _pc: u32) {}
    #[inline(always)]
    fn snapshot_due(&self) -> bool {
        false
    }
    #[inline(always)]
    fn snapshot(&mut self, _state: CoreState) {}
    #[inline(always)]
    fn seal(&mut self) {}
}

impl StreamSink for StreamWindow {
    const ACTIVE: bool = true;

    fn record_burst(&mut self, pc0: u32, taken: u64) {
        if self.sealed {
            return;
        }
        for k in 0..taken {
            self.push(REC_COMPUTE, pc0 + k as u32, 0, 0);
        }
    }

    fn record_compute(&mut self, pc: u32) {
        if !self.sealed {
            self.push(REC_COMPUTE, pc, 0, 0);
        }
    }

    fn record_load(&mut self, pc: u32, addr: u32) {
        if !self.sealed {
            self.push(REC_LOAD, pc, addr, 0);
        }
    }

    fn record_store(&mut self, pc: u32, addr: u32, value: u32) {
        if !self.sealed {
            self.push(REC_STORE, pc, addr, value);
        }
    }

    fn record_halt(&mut self, pc: u32) {
        if !self.sealed {
            self.push(REC_HALT, pc, 0, 0);
        }
    }

    fn snapshot_due(&self) -> bool {
        !self.sealed && self.kinds.len() - self.last_snap_at >= SNAP_INTERVAL
    }

    fn snapshot(&mut self, state: CoreState) {
        if !self.sealed {
            self.last_snap_at = self.kinds.len();
            self.snaps.push((self.kinds.len(), state));
        }
    }

    fn seal(&mut self) {
        self.sealed = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn begin_resets_but_seal_freezes() {
        let mut w = StreamWindow::default();
        w.begin(100);
        w.record_burst(7, 3);
        w.record_load(10, 0x40);
        assert_eq!(w.len(), 4);
        assert_eq!(w.pcs, vec![7, 8, 9, 10]);
        w.seal();
        w.record_store(11, 0x44, 5);
        assert_eq!(w.len(), 4, "sealed window ignores records");
        w.finish(CoreState {
            regs: [0; 16],
            pc: 11,
            halted: false,
        });
        assert!(w.end_state().is_none(), "sealed window has no end state");

        w.begin(200);
        assert!(w.is_empty());
        assert!(!w.sealed());
        assert_eq!(w.start(), 200);
        w.record_halt(12);
        w.finish(CoreState {
            regs: [0; 16],
            pc: 12,
            halted: true,
        });
        assert_eq!(w.kinds, vec![REC_HALT]);
        assert!(w.end_state().is_some_and(|s| s.halted));
    }

    #[test]
    fn snapshots_pace_by_interval_and_resolve_by_range() {
        let state = |pc| CoreState {
            regs: [0; 16],
            pc,
            halted: false,
        };
        let mut w = StreamWindow::default();
        w.begin(0);
        assert!(!w.snapshot_due(), "empty window never wants a snapshot");
        w.record_burst(0, SNAP_INTERVAL as u64);
        assert!(w.snapshot_due());
        w.snapshot(state(1));
        assert!(!w.snapshot_due(), "snapshot resets the interval pacing");
        w.record_burst(0, SNAP_INTERVAL as u64);
        w.snapshot(state(2));

        // best_snapshot: largest index in (from, to].
        let mid = SNAP_INTERVAL;
        let end = 2 * SNAP_INTERVAL;
        assert_eq!(
            w.best_snapshot(0, end).map(|(i, s)| (i, s.pc)),
            Some((end, 2))
        );
        assert_eq!(
            w.best_snapshot(0, end - 1).map(|(i, s)| (i, s.pc)),
            Some((mid, 1))
        );
        assert_eq!(w.best_snapshot(mid, end - 1), None, "from-exclusive");
        assert_eq!(w.best_snapshot(0, mid - 1), None);

        // Sealing freezes snapshots but keeps the committed-prefix ones.
        w.record_burst(0, SNAP_INTERVAL as u64);
        w.seal();
        assert!(!w.snapshot_due());
        w.snapshot(state(3));
        assert_eq!(
            w.best_snapshot(0, 3 * SNAP_INTERVAL).map(|(i, _)| i),
            Some(end)
        );

        w.begin(0);
        assert_eq!(
            w.best_snapshot(0, usize::MAX),
            None,
            "begin clears snapshots"
        );
    }
}
