//! Zombie-ratio instrumentation (paper Fig. 4).
//!
//! Fig. 4 plots, as a function of the capacitor voltage, the fraction of
//! resident cache blocks that are *zombies* — blocks that will receive no
//! further access before the upcoming power outage (or their own eviction)
//! and therefore only burn leakage. Classification needs the future, so the
//! analysis is retroactive: samples are held pending and resolved when the
//! sampled block's generation ends.

use edbp_core::PagedTable;

/// Null index in the pooled sample-node arena.
const NIL: u32 = u32::MAX;

/// One resolved sample: a resident block observed at `voltage`, and whether
/// it turned out to be a zombie.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZombieSample {
    /// Capacitor voltage at the sampling instant (volts).
    pub voltage: f64,
    /// True if the block received no further access before its generation
    /// ended (outage, eviction or gating).
    pub zombie: bool,
}

/// The live generation of one block address: its access count and the chain
/// of pending samples taken during it (indices into the node pool, in
/// chronological order).
#[derive(Debug, Clone, Copy)]
struct GenState {
    count: u32,
    head: u32,
    tail: u32,
}

impl Default for GenState {
    fn default() -> Self {
        Self {
            count: 0,
            head: NIL,
            tail: NIL,
        }
    }
}

/// One pending sample in the pooled chain arena.
#[derive(Debug, Clone, Copy)]
struct SampleNode {
    voltage: f64,
    /// The generation's access count at the sampling instant.
    at_sample: u32,
    /// Next node of the same chain (or the free list), [`NIL`]-terminated.
    next: u32,
}

/// Retroactive zombie classifier.
///
/// Per-address generation state lives in a paged direct-index table and
/// pending samples in one pooled node arena with an intrusive free list —
/// the steady-state hot path (fill / hit / generation end / sample) touches
/// no hash map and performs no allocation once the pools reach their
/// high-water capacity.
///
/// Resolution order is explicitly deterministic: samples resolve in
/// generation-end order while running, and both [`ZombieAnalysis::on_power_fail`]
/// and [`ZombieAnalysis::finish`] drain the remaining generations in
/// ascending address order (each generation's samples chronologically).
#[derive(Debug, Clone)]
pub struct ZombieAnalysis {
    /// Sampling period in committed instructions.
    interval: u64,
    next_sample_at: u64,
    /// Live generation per block address.
    gens: PagedTable<GenState>,
    /// Pooled pending-sample nodes (chains + free list).
    nodes: Vec<SampleNode>,
    /// Head of the free list threaded through `nodes`.
    free_head: u32,
    resolved: Vec<ZombieSample>,
}

impl ZombieAnalysis {
    /// Creates the analysis with a sampling period in committed
    /// instructions.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn new(interval: u64) -> Self {
        assert!(interval > 0, "sampling interval must be positive");
        Self {
            interval,
            next_sample_at: interval,
            gens: PagedTable::new(0),
            nodes: Vec::new(),
            free_head: NIL,
            resolved: Vec::new(),
        }
    }

    /// Pre-sizes the sample pools so a bounded run performs no further
    /// growth (testing/benchmarking aid): room for `samples` resolved
    /// samples and as many in-flight pending nodes.
    pub fn reserve(&mut self, samples: usize) {
        self.resolved.reserve(samples);
        self.nodes.reserve(samples);
    }

    /// A block for `addr` was installed (or restored): new generation.
    pub fn on_fill(&mut self, addr: u64) {
        if let Some(g) = self.gens.get_mut(addr) {
            // Refill without an observed generation end — possible only
            // through direct API use, never from the simulator. The stale
            // generation's samples can no longer see a reuse, so they
            // resolve as zombies (exactly how the drain used to classify
            // a serial mismatch).
            let stale = g.head;
            *g = GenState {
                count: 1,
                head: NIL,
                tail: NIL,
            };
            self.resolve_chain(stale, None);
        } else {
            self.gens.insert(
                addr,
                GenState {
                    count: 1,
                    head: NIL,
                    tail: NIL,
                },
            );
        }
    }

    /// A lookup hit `addr`.
    pub fn on_hit(&mut self, addr: u64) {
        if let Some(g) = self.gens.get_mut(addr) {
            g.count += 1;
        }
    }

    /// The generation of `addr` ended (eviction or gating).
    pub fn on_generation_end(&mut self, addr: u64) {
        let Some(g) = self.gens.remove(addr) else {
            return;
        };
        self.resolve_chain(g.head, Some(g.count));
    }

    /// A power outage ended every resident generation. Generations resolve
    /// in ascending address order.
    pub fn on_power_fail(&mut self) {
        let Self {
            gens,
            nodes,
            resolved,
            ..
        } = self;
        gens.for_each(|_, g| {
            let mut node = g.head;
            while node != NIL {
                let n = &nodes[node as usize];
                resolved.push(ZombieSample {
                    voltage: n.voltage,
                    zombie: n.at_sample == g.count,
                });
                node = n.next;
            }
        });
        // Every chain was consumed above, so the whole pool is free.
        gens.clear();
        nodes.clear();
        self.free_head = NIL;
    }

    /// Resolves one pending chain and returns its nodes to the free list.
    /// `final_count == None` forces the zombie classification (stale
    /// generation that can never be reused).
    fn resolve_chain(&mut self, head: u32, final_count: Option<u32>) {
        let mut node = head;
        while node != NIL {
            let n = self.nodes[node as usize];
            self.resolved.push(ZombieSample {
                voltage: n.voltage,
                zombie: final_count.is_none_or(|c| n.at_sample == c),
            });
            self.nodes[node as usize].next = self.free_head;
            self.free_head = node;
            node = n.next;
        }
    }

    /// Whether the sampling period has elapsed. The per-cycle guard in the
    /// simulation loop: only when this returns true is it worth walking the
    /// resident set at all.
    pub fn due(&self, committed: u64) -> bool {
        committed >= self.next_sample_at
    }

    /// Takes a snapshot of every resident block. Call only when
    /// [`ZombieAnalysis::due`] returned true.
    pub fn sample(
        &mut self,
        committed: u64,
        voltage: f64,
        resident: impl IntoIterator<Item = u64>,
    ) {
        self.next_sample_at = committed + self.interval;
        for addr in resident {
            let Some(g) = self.gens.get_mut(addr) else {
                continue;
            };
            let node = SampleNode {
                voltage,
                at_sample: g.count,
                next: NIL,
            };
            let idx = if self.free_head == NIL {
                let idx = self.nodes.len() as u32;
                self.nodes.push(node);
                idx
            } else {
                let idx = self.free_head;
                self.free_head = self.nodes[idx as usize].next;
                self.nodes[idx as usize] = node;
                idx
            };
            if g.tail == NIL {
                g.head = idx;
            } else {
                self.nodes[g.tail as usize].next = idx;
            }
            g.tail = idx;
        }
    }

    /// Called once per committed instruction; takes a snapshot of every
    /// resident block when the sampling period elapses. Convenience wrapper
    /// over [`ZombieAnalysis::due`] + [`ZombieAnalysis::sample`] for callers
    /// that already hold a resident set.
    pub fn maybe_sample<'a>(
        &mut self,
        committed: u64,
        voltage: f64,
        resident: impl IntoIterator<Item = &'a u64>,
    ) {
        if self.due(committed) {
            self.sample(committed, voltage, resident.into_iter().copied());
        }
    }

    /// Finalizes: unresolved samples belong to generations that never ended
    /// (the program finished first); a block unused since its sample is
    /// classified as a zombie-to-be. Remaining generations drain in
    /// ascending address order.
    pub fn finish(self) -> Vec<ZombieSample> {
        let Self {
            gens,
            nodes,
            mut resolved,
            ..
        } = self;
        gens.for_each(|_, g| {
            let mut node = g.head;
            while node != NIL {
                let n = &nodes[node as usize];
                resolved.push(ZombieSample {
                    voltage: n.voltage,
                    zombie: n.at_sample == g.count,
                });
                node = n.next;
            }
        });
        resolved
    }

    /// Samples resolved so far.
    pub fn resolved(&self) -> &[ZombieSample] {
        &self.resolved
    }
}

/// Bins resolved samples by voltage and returns `(bin centre, zombie ratio,
/// sample count)` rows — the series of Fig. 4.
pub fn zombie_ratio_by_voltage(
    samples: &[ZombieSample],
    v_min: f64,
    v_max: f64,
    bins: usize,
) -> Vec<(f64, f64, usize)> {
    assert!(bins > 0 && v_max > v_min);
    let width = (v_max - v_min) / bins as f64;
    let mut zombie = vec![0usize; bins];
    let mut total = vec![0usize; bins];
    for s in samples {
        if s.voltage < v_min || s.voltage >= v_max {
            continue;
        }
        let b = ((s.voltage - v_min) / width) as usize;
        let b = b.min(bins - 1);
        total[b] += 1;
        if s.zombie {
            zombie[b] += 1;
        }
    }
    (0..bins)
        .map(|b| {
            let centre = v_min + (b as f64 + 0.5) * width;
            let ratio = if total[b] == 0 {
                0.0
            } else {
                zombie[b] as f64 / total[b] as f64
            };
            (centre, ratio, total[b])
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_unused_after_sample_is_zombie() {
        let mut z = ZombieAnalysis::new(1);
        z.on_fill(0x40);
        z.maybe_sample(1, 3.3, [0x40u64].iter());
        z.on_power_fail();
        let s = z.finish();
        assert_eq!(s.len(), 1);
        assert!(s[0].zombie);
        assert_eq!(s[0].voltage, 3.3);
    }

    #[test]
    fn block_reused_after_sample_is_live() {
        let mut z = ZombieAnalysis::new(1);
        z.on_fill(0x40);
        z.maybe_sample(1, 3.4, [0x40u64].iter());
        z.on_hit(0x40); // reuse after the sample
        z.on_power_fail();
        let s = z.finish();
        assert_eq!(s.len(), 1);
        assert!(!s[0].zombie);
    }

    #[test]
    fn samples_respect_interval() {
        let mut z = ZombieAnalysis::new(100);
        z.on_fill(0x40);
        z.maybe_sample(50, 3.4, [0x40u64].iter()); // too early
        z.maybe_sample(100, 3.4, [0x40u64].iter()); // fires
        z.maybe_sample(150, 3.4, [0x40u64].iter()); // too early again
        z.on_power_fail();
        assert_eq!(z.finish().len(), 1);
    }

    #[test]
    fn eviction_resolves_like_outage() {
        let mut z = ZombieAnalysis::new(1);
        z.on_fill(0x40);
        z.maybe_sample(1, 3.45, [0x40u64].iter());
        z.on_generation_end(0x40); // evicted unused
        let s = z.finish();
        assert!(s[0].zombie);
    }

    #[test]
    fn generations_do_not_leak_across_refills() {
        let mut z = ZombieAnalysis::new(1);
        z.on_fill(0x40);
        z.maybe_sample(1, 3.4, [0x40u64].iter());
        z.on_generation_end(0x40);
        // New generation of the same address, gets a hit.
        z.on_fill(0x40);
        z.on_hit(0x40);
        z.on_power_fail();
        let s = z.finish();
        assert_eq!(s.len(), 1);
        assert!(
            s[0].zombie,
            "sample belongs to the first, unused generation"
        );
    }

    #[test]
    fn unfinished_generation_with_later_hit_is_live() {
        let mut z = ZombieAnalysis::new(1);
        z.on_fill(0x40);
        z.maybe_sample(1, 3.4, [0x40u64].iter());
        z.on_hit(0x40);
        // Program ends without outage or eviction.
        let s = z.finish();
        assert!(!s[0].zombie);
    }

    #[test]
    fn binning_computes_ratios() {
        let samples = vec![
            ZombieSample {
                voltage: 3.25,
                zombie: true,
            },
            ZombieSample {
                voltage: 3.26,
                zombie: true,
            },
            ZombieSample {
                voltage: 3.27,
                zombie: false,
            },
            ZombieSample {
                voltage: 3.45,
                zombie: false,
            },
        ];
        let rows = zombie_ratio_by_voltage(&samples, 3.2, 3.5, 3);
        assert_eq!(rows.len(), 3);
        assert!((rows[0].1 - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(rows[0].2, 3);
        assert_eq!(rows[2].1, 0.0);
    }
}
