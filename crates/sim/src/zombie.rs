//! Zombie-ratio instrumentation (paper Fig. 4).
//!
//! Fig. 4 plots, as a function of the capacitor voltage, the fraction of
//! resident cache blocks that are *zombies* — blocks that will receive no
//! further access before the upcoming power outage (or their own eviction)
//! and therefore only burn leakage. Classification needs the future, so the
//! analysis is retroactive: samples are held pending and resolved when the
//! sampled block's generation ends.

use edbp_core::FxHashMap;

/// (block address, generation serial).
type GenerationKey = (u64, u64);
/// (voltage at sample, access count at sample).
type PendingSample = (f64, u32);

/// One resolved sample: a resident block observed at `voltage`, and whether
/// it turned out to be a zombie.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZombieSample {
    /// Capacitor voltage at the sampling instant (volts).
    pub voltage: f64,
    /// True if the block received no further access before its generation
    /// ended (outage, eviction or gating).
    pub zombie: bool,
}

/// Retroactive zombie classifier.
#[derive(Debug, Clone)]
pub struct ZombieAnalysis {
    /// Sampling period in committed instructions.
    interval: u64,
    next_sample_at: u64,
    /// Current generation serial per address.
    serial: FxHashMap<u64, u64>,
    next_serial: u64,
    /// Access count of the current generation per address.
    count: FxHashMap<u64, u32>,
    /// Pending samples keyed by (addr, serial): (voltage, count at sample).
    pending: FxHashMap<GenerationKey, Vec<PendingSample>>,
    resolved: Vec<ZombieSample>,
}

impl ZombieAnalysis {
    /// Creates the analysis with a sampling period in committed
    /// instructions.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn new(interval: u64) -> Self {
        assert!(interval > 0, "sampling interval must be positive");
        Self {
            interval,
            next_sample_at: interval,
            serial: FxHashMap::default(),
            next_serial: 0,
            count: FxHashMap::default(),
            pending: FxHashMap::default(),
            resolved: Vec::new(),
        }
    }

    /// A block for `addr` was installed (or restored): new generation.
    pub fn on_fill(&mut self, addr: u64) {
        self.next_serial += 1;
        self.serial.insert(addr, self.next_serial);
        self.count.insert(addr, 1);
    }

    /// A lookup hit `addr`.
    pub fn on_hit(&mut self, addr: u64) {
        if let Some(c) = self.count.get_mut(&addr) {
            *c += 1;
        }
    }

    /// The generation of `addr` ended (eviction or gating).
    pub fn on_generation_end(&mut self, addr: u64) {
        let (Some(serial), Some(final_count)) =
            (self.serial.remove(&addr), self.count.remove(&addr))
        else {
            return;
        };
        self.resolve(addr, serial, final_count);
    }

    /// A power outage ended every resident generation.
    pub fn on_power_fail(&mut self) {
        let addrs: Vec<u64> = self.serial.keys().copied().collect();
        for addr in addrs {
            self.on_generation_end(addr);
        }
    }

    fn resolve(&mut self, addr: u64, serial: u64, final_count: u32) {
        if let Some(samples) = self.pending.remove(&(addr, serial)) {
            for (voltage, at_sample) in samples {
                self.resolved.push(ZombieSample {
                    voltage,
                    zombie: at_sample == final_count,
                });
            }
        }
    }

    /// Whether the sampling period has elapsed. The per-cycle guard in the
    /// simulation loop: only when this returns true is it worth walking the
    /// resident set at all.
    pub fn due(&self, committed: u64) -> bool {
        committed >= self.next_sample_at
    }

    /// Takes a snapshot of every resident block. Call only when
    /// [`ZombieAnalysis::due`] returned true.
    pub fn sample(
        &mut self,
        committed: u64,
        voltage: f64,
        resident: impl IntoIterator<Item = u64>,
    ) {
        self.next_sample_at = committed + self.interval;
        for addr in resident {
            let (Some(&serial), Some(&count)) = (self.serial.get(&addr), self.count.get(&addr))
            else {
                continue;
            };
            self.pending
                .entry((addr, serial))
                .or_default()
                .push((voltage, count));
        }
    }

    /// Called once per committed instruction; takes a snapshot of every
    /// resident block when the sampling period elapses. Convenience wrapper
    /// over [`ZombieAnalysis::due`] + [`ZombieAnalysis::sample`] for callers
    /// that already hold a resident set.
    pub fn maybe_sample<'a>(
        &mut self,
        committed: u64,
        voltage: f64,
        resident: impl IntoIterator<Item = &'a u64>,
    ) {
        if self.due(committed) {
            self.sample(committed, voltage, resident.into_iter().copied());
        }
    }

    /// Finalizes: unresolved samples belong to generations that never ended
    /// (the program finished first); a block unused since its sample is
    /// classified as a zombie-to-be.
    pub fn finish(mut self) -> Vec<ZombieSample> {
        let pending: Vec<(GenerationKey, Vec<PendingSample>)> = self.pending.drain().collect();
        for ((addr, serial), samples) in pending {
            let current = if self.serial.get(&addr) == Some(&serial) {
                self.count.get(&addr).copied()
            } else {
                None
            };
            for (voltage, at_sample) in samples {
                self.resolved.push(ZombieSample {
                    voltage,
                    zombie: current.is_none_or(|c| c == at_sample),
                });
            }
        }
        self.resolved
    }

    /// Samples resolved so far.
    pub fn resolved(&self) -> &[ZombieSample] {
        &self.resolved
    }
}

/// Bins resolved samples by voltage and returns `(bin centre, zombie ratio,
/// sample count)` rows — the series of Fig. 4.
pub fn zombie_ratio_by_voltage(
    samples: &[ZombieSample],
    v_min: f64,
    v_max: f64,
    bins: usize,
) -> Vec<(f64, f64, usize)> {
    assert!(bins > 0 && v_max > v_min);
    let width = (v_max - v_min) / bins as f64;
    let mut zombie = vec![0usize; bins];
    let mut total = vec![0usize; bins];
    for s in samples {
        if s.voltage < v_min || s.voltage >= v_max {
            continue;
        }
        let b = ((s.voltage - v_min) / width) as usize;
        let b = b.min(bins - 1);
        total[b] += 1;
        if s.zombie {
            zombie[b] += 1;
        }
    }
    (0..bins)
        .map(|b| {
            let centre = v_min + (b as f64 + 0.5) * width;
            let ratio = if total[b] == 0 {
                0.0
            } else {
                zombie[b] as f64 / total[b] as f64
            };
            (centre, ratio, total[b])
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_unused_after_sample_is_zombie() {
        let mut z = ZombieAnalysis::new(1);
        z.on_fill(0x40);
        z.maybe_sample(1, 3.3, [0x40u64].iter());
        z.on_power_fail();
        let s = z.finish();
        assert_eq!(s.len(), 1);
        assert!(s[0].zombie);
        assert_eq!(s[0].voltage, 3.3);
    }

    #[test]
    fn block_reused_after_sample_is_live() {
        let mut z = ZombieAnalysis::new(1);
        z.on_fill(0x40);
        z.maybe_sample(1, 3.4, [0x40u64].iter());
        z.on_hit(0x40); // reuse after the sample
        z.on_power_fail();
        let s = z.finish();
        assert_eq!(s.len(), 1);
        assert!(!s[0].zombie);
    }

    #[test]
    fn samples_respect_interval() {
        let mut z = ZombieAnalysis::new(100);
        z.on_fill(0x40);
        z.maybe_sample(50, 3.4, [0x40u64].iter()); // too early
        z.maybe_sample(100, 3.4, [0x40u64].iter()); // fires
        z.maybe_sample(150, 3.4, [0x40u64].iter()); // too early again
        z.on_power_fail();
        assert_eq!(z.finish().len(), 1);
    }

    #[test]
    fn eviction_resolves_like_outage() {
        let mut z = ZombieAnalysis::new(1);
        z.on_fill(0x40);
        z.maybe_sample(1, 3.45, [0x40u64].iter());
        z.on_generation_end(0x40); // evicted unused
        let s = z.finish();
        assert!(s[0].zombie);
    }

    #[test]
    fn generations_do_not_leak_across_refills() {
        let mut z = ZombieAnalysis::new(1);
        z.on_fill(0x40);
        z.maybe_sample(1, 3.4, [0x40u64].iter());
        z.on_generation_end(0x40);
        // New generation of the same address, gets a hit.
        z.on_fill(0x40);
        z.on_hit(0x40);
        z.on_power_fail();
        let s = z.finish();
        assert_eq!(s.len(), 1);
        assert!(
            s[0].zombie,
            "sample belongs to the first, unused generation"
        );
    }

    #[test]
    fn unfinished_generation_with_later_hit_is_live() {
        let mut z = ZombieAnalysis::new(1);
        z.on_fill(0x40);
        z.maybe_sample(1, 3.4, [0x40u64].iter());
        z.on_hit(0x40);
        // Program ends without outage or eviction.
        let s = z.finish();
        assert!(!s[0].zombie);
    }

    #[test]
    fn binning_computes_ratios() {
        let samples = vec![
            ZombieSample {
                voltage: 3.25,
                zombie: true,
            },
            ZombieSample {
                voltage: 3.26,
                zombie: true,
            },
            ZombieSample {
                voltage: 3.27,
                zombie: false,
            },
            ZombieSample {
                voltage: 3.45,
                zombie: false,
            },
        ];
        let rows = zombie_ratio_by_voltage(&samples, 3.2, 3.5, 3);
        assert_eq!(rows.len(), 3);
        assert!((rows[0].1 - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(rows[0].2, 3);
        assert_eq!(rows[2].1, 0.0);
    }
}
