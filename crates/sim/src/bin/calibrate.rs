//! Calibration scratchpad: prints the headline quantities for a handful of
//! apps so model constants can be tuned against the paper's Table I / II
//! operating points. Not part of the documented experiment set.

use ehs_sim::{run_app, Scheme, SystemConfig};
use ehs_workloads::{AppId, Scale};

fn main() {
    let config = SystemConfig::paper_default();
    let apps = [
        AppId::Crc32,
        AppId::Sha,
        AppId::Bitcount,
        AppId::JpegEnc,
        AppId::Dijkstra,
        AppId::Fft,
    ];
    let scale = std::env::args()
        .nth(1)
        .map(|s| match s.as_str() {
            "small" => Scale::Small,
            "full" => Scale::Full,
            _ => Scale::Tiny,
        })
        .unwrap_or(Scale::Tiny);

    for app in apps {
        let base = run_app(&config, Scheme::Baseline, app, scale);
        println!(
            "\n=== {app} (baseline): completed={} committed={} outages={} brownouts={} ldst={:.1}%",
            base.completed,
            base.committed,
            base.outages,
            base.brownouts,
            base.load_store_ratio() * 100.0
        );
        println!(
            "  time: on={:.3}ms off={:.3}ms  d$miss={:.2}% i$miss={:.2}% avgP={:.3}mW",
            base.on_time.as_millis(),
            base.off_time.as_millis(),
            base.dcache_miss_rate() * 100.0,
            base.icache.miss_rate() * 100.0,
            base.average_power().as_milli_watts(),
        );
        let e = &base.energy;
        let t = e.total();
        println!(
            "  energy: total={:.3}uJ d$dyn={:.1}% d$st={:.1}% i$dyn={:.1}% i$st={:.1}% mem={:.1}% ckpt+rst={:.1}% other={:.1}% (d$static-ratio={:.1}%)",
            t.as_micro_joules(),
            e.dcache_dynamic / t * 100.0,
            e.dcache_static / t * 100.0,
            e.icache_dynamic / t * 100.0,
            e.icache_static / t * 100.0,
            e.memory / t * 100.0,
            e.checkpoint_restore() / t * 100.0,
            e.others() / t * 100.0,
            e.dcache_static_ratio() * 100.0,
        );
        for scheme in [
            Scheme::Sdbp,
            Scheme::Decay,
            Scheme::Edbp,
            Scheme::DecayEdbp,
            Scheme::Ideal,
            Scheme::LeakageOff80,
        ] {
            let r = run_app(&config, scheme, app, scale);
            let speedup = base.total_time() / r.total_time();
            let esave = 1.0 - r.energy.total() / base.energy.total();
            println!(
                "  {:>16}: speedup={:.4} esave={:+.2}% d$miss={:.2}% outages={} pred: TP={} FP={} TN={} FNd={} MZ={}",
                scheme.name(),
                speedup,
                esave * 100.0,
                r.dcache_miss_rate() * 100.0,
                r.outages,
                r.prediction.true_positives,
                r.prediction.false_positives,
                r.prediction.true_negatives,
                r.prediction.false_negatives_dead,
                r.prediction.missed_zombies,
            );
        }
    }
}
