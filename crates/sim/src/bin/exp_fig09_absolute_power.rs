//! Regenerates Fig. 9 (absolute power and total energy) of the paper. See `EXPERIMENTS.md` for recorded
//! paper-vs-measured results.
//!
//! Usage: `cargo run --release -p ehs-sim --bin exp_fig09_absolute_power [tiny|small|full] [--csv]`

use ehs_sim::experiments::{fig9_absolute, ExperimentOptions};

fn main() {
    let mut opts = ExperimentOptions::default();
    let mut csv = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "tiny" => opts.scale = ehs_workloads::Scale::Tiny,
            "small" => opts.scale = ehs_workloads::Scale::Small,
            "full" => opts.scale = ehs_workloads::Scale::Full,
            "--csv" => csv = true,
            other => eprintln!("ignoring unknown argument {other:?}"),
        }
    }
    let table = fig9_absolute(opts);
    if csv {
        print!("{}", table.to_csv());
    } else {
        println!("=== Fig. 9 (absolute power and total energy) ===");
        println!("{}", table.render());
    }
}
