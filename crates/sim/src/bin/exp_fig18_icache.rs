//! Regenerates Fig. 18 (EDBP for the instruction cache) of the paper. See `EXPERIMENTS.md` for recorded
//! paper-vs-measured results.
//!
//! Usage: `cargo run --release -p ehs-sim --bin exp_fig18_icache [tiny|small|full] [--csv]`

use ehs_sim::experiments::{fig18_icache, ExperimentOptions};

fn main() {
    let mut opts = ExperimentOptions::default();
    let mut csv = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "tiny" => opts.scale = ehs_workloads::Scale::Tiny,
            "small" => opts.scale = ehs_workloads::Scale::Small,
            "full" => opts.scale = ehs_workloads::Scale::Full,
            "--csv" => csv = true,
            other => eprintln!("ignoring unknown argument {other:?}"),
        }
    }
    let table = fig18_icache(opts);
    if csv {
        print!("{}", table.to_csv());
    } else {
        println!("=== Fig. 18 (EDBP for the instruction cache) ===");
        println!("{}", table.render());
    }
}
