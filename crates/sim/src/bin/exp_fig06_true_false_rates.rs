//! Regenerates Fig. 6 (true/false prediction rates) of the paper. See `EXPERIMENTS.md` for recorded
//! paper-vs-measured results.
//!
//! Usage: `cargo run --release -p ehs-sim --bin exp_fig06_true_false_rates [tiny|small|full] [--csv]`

use ehs_sim::experiments::{fig6_true_false_rates, ExperimentOptions};

fn main() {
    let mut opts = ExperimentOptions::default();
    let mut csv = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "tiny" => opts.scale = ehs_workloads::Scale::Tiny,
            "small" => opts.scale = ehs_workloads::Scale::Small,
            "full" => opts.scale = ehs_workloads::Scale::Full,
            "--csv" => csv = true,
            other => eprintln!("ignoring unknown argument {other:?}"),
        }
    }
    let table = fig6_true_false_rates(opts);
    if csv {
        print!("{}", table.to_csv());
    } else {
        println!("=== Fig. 6 (true/false prediction rates) ===");
        println!("{}", table.render());
    }
}
