//! Measures whole-suite regeneration time and records it in
//! `BENCH_suite.json` at the repo root, so the planner's dedup and cache
//! wins are tracked PR over PR. See DESIGN.md §8 for the methodology.
//!
//! Usage: `cargo run --release -p ehs-sim --bin exp_perf_suite [label] [scale]`
//!
//! Three configurations are timed, one full pass each (suite passes run for
//! minutes, so unlike the hot-loop microbenchmark there is no best-of-N):
//!
//! 1. `serial` — every `exp_*` binary run one after another with
//!    `--no-cache`, i.e. the pre-planner workflow: one process per figure,
//!    no cross-experiment sharing, no persistent cache.
//! 2. `cold` — `exp_all` with an empty `results/.runcache/`: one planner
//!    pass that dedups jobs across experiments before simulating.
//! 3. `warm` — `exp_all` again with the now-populated cache, with
//!    `--expect-cached` so the run fails unless it is a pure replay.
//!
//! Before recording anything, the per-figure outputs of all three
//! configurations are compared byte-for-byte; any divergence aborts with a
//! non-zero exit so CI fails rather than record a speedup bought with a
//! wrong figure.

use ehs_sim::planner::{results_dir, REGISTRY};
use ehs_sim::runcache;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::Instant;

/// Directory holding the sibling experiment binaries.
fn bin_dir() -> PathBuf {
    std::env::current_exe()
        .expect("locate current executable")
        .parent()
        .expect("executable has a parent directory")
        .to_path_buf()
}

fn run_to_stdout(bin: &Path, args: &[&str]) -> String {
    let out = Command::new(bin)
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("spawn {}: {e}", bin.display()));
    if !out.status.success() {
        eprintln!(
            "{} {} failed: {}",
            bin.display(),
            args.join(" "),
            out.status
        );
        eprint!("{}", String::from_utf8_lossy(&out.stderr));
        std::process::exit(1);
    }
    String::from_utf8(out.stdout).expect("experiment output is UTF-8")
}

fn main() {
    let mut args = std::env::args().skip(1);
    let label = args.next().unwrap_or_else(|| "current".to_string());
    let scale = args.next().unwrap_or_else(|| "small".to_string());
    assert!(
        matches!(scale.as_str(), "tiny" | "small" | "full"),
        "scale must be tiny|small|full"
    );
    let bins = bin_dir();
    let cache_dir = runcache::default_dir();

    // 1. Serial reference: the old one-process-per-figure workflow.
    eprintln!("serial: {} binaries, --no-cache ...", REGISTRY.len());
    let start = Instant::now();
    let serial_outputs: Vec<String> = REGISTRY
        .iter()
        .map(|exp| run_to_stdout(&bins.join(exp.name), &[&scale, "--no-cache"]))
        .collect();
    let serial_s = start.elapsed().as_secs_f64();
    eprintln!("serial: {serial_s:.1}s");

    // 2. Cold planner pass: empty cache, one deduplicated run.
    if cache_dir.exists() {
        std::fs::remove_dir_all(&cache_dir).expect("clear result cache");
    }
    let start = Instant::now();
    run_to_stdout(&bins.join("exp_all"), &[&scale]);
    let cold_s = start.elapsed().as_secs_f64();
    eprintln!("cold exp_all: {cold_s:.1}s");
    let cold_outputs: Vec<String> = REGISTRY
        .iter()
        .map(|exp| {
            std::fs::read_to_string(results_dir().join(format!("{}.txt", exp.name)))
                .expect("read cold figure output")
        })
        .collect();

    // 3. Warm replay: must execute zero simulations.
    let start = Instant::now();
    run_to_stdout(&bins.join("exp_all"), &[&scale, "--expect-cached"]);
    let warm_s = start.elapsed().as_secs_f64();
    eprintln!("warm exp_all: {warm_s:.1}s");

    // Byte-identity across all three configurations, per figure.
    let mut divergent = 0usize;
    for (i, exp) in REGISTRY.iter().enumerate() {
        let warm = std::fs::read_to_string(results_dir().join(format!("{}.txt", exp.name)))
            .expect("read warm figure output");
        if serial_outputs[i] != cold_outputs[i] {
            divergent += 1;
            eprintln!("DIVERGENCE in {}: serial stdout != cold exp_all", exp.name);
        }
        if cold_outputs[i] != warm {
            divergent += 1;
            eprintln!("DIVERGENCE in {}: cold exp_all != warm exp_all", exp.name);
        }
    }
    if divergent > 0 {
        eprintln!("{divergent} figure(s) diverged; refusing to record a benchmark row");
        std::process::exit(1);
    }
    eprintln!(
        "serial vs cold vs warm: all {} figures byte-identical",
        REGISTRY.len()
    );

    let mut line = String::new();
    write!(
        line,
        "    {{\"label\": \"{label}\", \"scale\": \"{scale}\", \
         \"serial_seconds\": {serial_s:.3}, \"cold_seconds\": {cold_s:.3}, \
         \"warm_seconds\": {warm_s:.3}, \"cold_speedup\": {:.2}, \
         \"warm_speedup\": {:.2}}}",
        serial_s / cold_s,
        cold_s / warm_s,
    )
    .expect("write to string");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_suite.json");
    let kept: Vec<String> = std::fs::read_to_string(path)
        .unwrap_or_default()
        .lines()
        .filter(|l| {
            l.trim_start().starts_with("{\"label\":")
                && !l.contains(&format!("\"label\": \"{label}\""))
        })
        .map(|l| l.trim_end_matches(',').to_string())
        .collect();

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"benchmark\": \"full experiment-suite regeneration\",\n");
    out.push_str(
        "  \"metric\": \"wall seconds for all 20 figures: serial per-binary --no-cache loop vs one cold deduplicated exp_all pass vs a warm cache replay; one full pass each, per-figure outputs verified byte-identical across the three\",\n",
    );
    out.push_str(
        "  \"suite\": \"every registered experiment (Table I, Figs. 1-18 sweeps, ablations, hw cost)\",\n",
    );
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    writeln!(
        out,
        "  \"machine\": \"{cores} logical core(s); with 1 core the shared worker pool degenerates to serial execution, so the cold speedup reflects cross-experiment dedup alone while multi-core machines add the pool's parallel speedup on top\",",
    )
    .expect("write to string");
    out.push_str("  \"runs\": [\n");
    for old in &kept {
        out.push_str(old);
        out.push_str(",\n");
    }
    out.push_str(&line);
    out.push_str("\n  ]\n}\n");
    std::fs::write(path, &out).expect("write BENCH_suite.json");

    println!(
        "{label} @ {scale}: serial {serial_s:.1}s, cold {cold_s:.1}s ({:.2}x), warm {warm_s:.1}s ({:.2}x over cold)",
        serial_s / cold_s,
        cold_s / warm_s,
    );
    println!("recorded in BENCH_suite.json");
}
