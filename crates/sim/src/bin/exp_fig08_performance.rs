//! Fig. 8 (performance and cache miss rate) — thin wrapper over the registered experiment.
//!
//! Planning and reporting live in the library (`ehs_sim::planner`); this
//! binary only parses the unified CLI and prints the table. Run `exp_all`
//! to regenerate every figure through one deduplicated planner pass.

fn main() {
    ehs_sim::planner::experiment_main("exp_fig08_performance");
}
