//! Regenerates every figure/table through one deduplicated planner pass.
//!
//! Collects all registered experiments' job requests, dedups them across
//! experiments by effective configuration fingerprint, runs the unique set
//! once on a shared worker pool (longest-estimated-first), and writes each
//! figure to `results/<name>.txt` byte-identically to what the standalone
//! binary prints. The persistent result cache under `results/.runcache/`
//! makes warm re-runs near-instant; `--no-cache` disables it and
//! `--expect-cached` fails the run if any simulation actually executed.
//!
//! Fleet execution over a shared cache directory (`EHS_RUNCACHE_DIR`):
//! `--worker` work-steals the job set via heartbeat-renewed leases,
//! `--shard I/N` runs one deterministic cost-balanced shard, and
//! `--finalize [--wait SECS] [--verify DIR]` waits for completeness, then
//! renders and byte-verifies every figure. See the multi-machine runbook
//! in `EXPERIMENTS.md`.

fn main() {
    ehs_sim::planner::suite_main();
}
