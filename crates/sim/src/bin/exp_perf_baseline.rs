//! Measures simulator hot-loop throughput and records it in
//! `BENCH_hotloop.json` at the repo root, so the performance trajectory is
//! tracked PR over PR. See DESIGN.md §8 for the methodology.
//!
//! Usage: `cargo run --release -p ehs-sim --bin exp_perf_baseline [label]`
//!
//! The suite runs the paper-default platform over a representative app/
//! scheme mix (one cache-resident streaming app, one thrashing
//! pointer-chaser, one large-code media app; baseline and the headline
//! predictor; plus a zombie-instrumented run, which exercises the per-cycle
//! sampling path). Throughput is reported as `sim_mips` — simulated
//! committed instructions per host wall-second, in millions — best of
//! `REPS` suite repetitions. Each labelled run is one line in the `runs`
//! array; re-running with an existing label replaces that line.
//!
//! Before timing anything, every case is also executed in every other
//! stepping regime — `force_cycle_accurate`, forced-scalar-probe burst,
//! the guarded energy kernel (`force_no_speculate`, the speculative
//! chunked advance disabled), and lockstep-burst in both group drives
//! (transposed stream replay and interleaved per-lane stepping, the
//! former also under the scalar probe) — and compared with the burst
//! result; any divergence aborts with a non-zero exit so CI fails rather
//! than record a number produced by an unsound fast path.
//!
//! Alongside the main suite row, a `<label>-lockstep9` row records the
//! aggregate throughput of replaying all nine schemes over one shared
//! workload per app — the multi-config throughput the suite planner's
//! lockstep grouping delivers.

use ehs_cache::probe::{force_impl, ProbeImpl};
use ehs_sim::{
    build_lane, config_fingerprint, record_generation_trace, run_app, run_lockstep,
    run_lockstep_with, LockstepMode, Scheme, SystemConfig,
};
use ehs_workloads::{build, AppId, Scale};
use std::fmt::Write as _;
use std::time::Instant;

const REPS: usize = 3;
const APPS: [AppId; 3] = [AppId::Crc32, AppId::Patricia, AppId::JpegEnc];
const SCHEMES: [Scheme; 2] = [Scheme::Baseline, Scheme::DecayEdbp];

struct Case {
    name: String,
    config: SystemConfig,
    scheme: Scheme,
    app: AppId,
}

fn cases() -> Vec<Case> {
    let default = SystemConfig::paper_default();
    let mut zombie = default.clone();
    zombie.zombie_sample_interval = Some(500);
    let mut cases = Vec::new();
    for scheme in SCHEMES {
        for app in APPS {
            cases.push(Case {
                name: format!("{}/{:?}", scheme.name(), app),
                config: default.clone(),
                scheme,
                app,
            });
        }
    }
    cases.push(Case {
        name: "zombie-instrumented/Crc32".to_string(),
        config: zombie,
        scheme: Scheme::Baseline,
        app: AppId::Crc32,
    });
    cases
}

/// Runs every case in all stepping regimes — burst (the measured default),
/// `force_cycle_accurate`, forced-scalar burst (`ProbeImpl::Scalar`, the
/// wide tag probe's semantic reference), the guarded energy kernel
/// (`force_no_speculate`), and lockstep-burst in both group drives
/// (interleaved per-lane stepping and transposed stream replay,
/// the latter also under the forced-scalar probe) — and aborts the
/// process if any [`ehs_sim::RunResult`] field (other than the wall-clock
/// `sim_mips`, which is excluded from `PartialEq`) diverges. This is the
/// CI-facing guard that the fast paths being measured below are still
/// bit-exact.
fn check_regime_exactness(cases: &[Case]) {
    let mut divergent = 0usize;
    let mut burst_results = Vec::with_capacity(cases.len());
    for case in cases {
        let burst = run_app(&case.config, case.scheme, case.app, Scale::Small);
        let mut exact_config = case.config.clone();
        exact_config.force_cycle_accurate = true;
        let exact = run_app(&exact_config, case.scheme, case.app, Scale::Small);
        if burst != exact {
            divergent += 1;
            eprintln!(
                "DIVERGENCE in {}: burst stepping and the cycle-accurate reference disagree",
                case.name
            );
            eprintln!("  burst:          {burst:?}");
            eprintln!("  cycle-accurate: {exact:?}");
        }
        force_impl(Some(ProbeImpl::Scalar));
        let scalar = run_app(&case.config, case.scheme, case.app, Scale::Small);
        force_impl(None);
        if scalar != burst {
            divergent += 1;
            eprintln!(
                "DIVERGENCE in {}: the wide tag probe and its scalar reference disagree",
                case.name
            );
            eprintln!("  wide probe:   {burst:?}");
            eprintln!("  scalar probe: {scalar:?}");
        }
        let mut guarded_config = case.config.clone();
        guarded_config.force_no_speculate = true;
        let guarded = run_app(&guarded_config, case.scheme, case.app, Scale::Small);
        if guarded != burst {
            divergent += 1;
            eprintln!(
                "DIVERGENCE in {}: the speculative energy kernel and the guarded \
                 per-cycle kernel disagree",
                case.name
            );
            eprintln!("  speculative: {burst:?}");
            eprintln!("  guarded:     {guarded:?}");
        }
        burst_results.push(burst);
    }

    // Lockstep-burst replay: cases sharing (config, app) become one lane
    // group over one shared workload, exactly as the runner groups them.
    // Both drives must match the independent runs, and the transposed
    // drive must survive the forced-scalar probe as well.
    let mut partitions: Vec<((u64, AppId), Vec<usize>)> = Vec::new();
    for (i, case) in cases.iter().enumerate() {
        let key = (config_fingerprint(&case.config), case.app);
        match partitions.iter_mut().find(|(k, _)| *k == key) {
            Some((_, members)) => members.push(i),
            None => partitions.push((key, vec![i])),
        }
    }
    for ((_, app), members) in &partitions {
        let workload = build(*app, Scale::Small);
        let lanes = || {
            members
                .iter()
                .map(|&i| {
                    build_lane(
                        &cases[i].config,
                        cases[i].scheme,
                        workload.clone(),
                        None,
                        false,
                    )
                    .expect("paper-default energy configuration is valid")
                })
                .collect()
        };
        for (regime, mode, scalar_probe) in [
            ("transposed lockstep-burst", LockstepMode::Transposed, false),
            (
                "interleaved lockstep-burst",
                LockstepMode::Interleaved,
                false,
            ),
            (
                "forced-scalar transposed lockstep-burst",
                LockstepMode::Transposed,
                true,
            ),
        ] {
            if scalar_probe {
                force_impl(Some(ProbeImpl::Scalar));
            }
            let outcomes = run_lockstep_with(lanes(), mode);
            force_impl(None);
            for (&i, outcome) in members.iter().zip(outcomes) {
                if outcome.result != burst_results[i] {
                    divergent += 1;
                    eprintln!(
                        "DIVERGENCE in {}: {regime} and the independent burst run disagree",
                        cases[i].name
                    );
                    eprintln!("  independent: {:?}", burst_results[i]);
                    eprintln!("  lockstep:    {:?}", outcome.result);
                }
            }
        }
    }

    if divergent > 0 {
        eprintln!("{divergent} case(s) diverged; refusing to record a benchmark row");
        std::process::exit(1);
    }
    eprintln!(
        "burst vs cycle-accurate vs scalar-probe vs guarded-energy-kernel vs \
         lockstep-burst (transposed, interleaved, forced-scalar): all {} cases bit-exact",
        cases.len()
    );
}

/// Replays all nine schemes over one shared workload per app as lockstep
/// lane groups and returns (total committed across lanes, total wall,
/// per-app aggregate sim-MIPS) — the multi-config throughput row.
fn lockstep_suite() -> (u64, f64, Vec<(String, f64)>) {
    let config = SystemConfig::paper_default();
    let mut committed = 0u64;
    let mut wall = 0.0f64;
    let mut per_group = Vec::new();
    for app in APPS {
        let workload = build(app, Scale::Small);
        // The Ideal lane's oracle pass is an input, not part of the replay
        // being measured (real suites memoize it), so record it untimed.
        let trace = record_generation_trace(&config, workload.clone());
        let start = Instant::now();
        let lanes = Scheme::ALL
            .iter()
            .map(|&scheme| {
                let trace = (scheme == Scheme::Ideal).then(|| trace.clone());
                build_lane(&config, scheme, workload.clone(), trace, false)
                    .expect("paper-default energy configuration is valid")
            })
            .collect();
        let group_committed: u64 = run_lockstep(lanes).iter().map(|o| o.result.committed).sum();
        let group_wall = start.elapsed().as_secs_f64();
        committed += group_committed;
        wall += group_wall;
        per_group.push((
            format!("lockstep9/{app:?}"),
            group_committed as f64 / group_wall / 1e6,
        ));
    }
    (committed, wall, per_group)
}

fn main() {
    let label = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "current".to_string());
    let cases = cases();
    check_regime_exactness(&cases);

    let mut best_wall = f64::INFINITY;
    let mut committed = 0u64;
    let mut per_case: Vec<(String, f64)> = Vec::new();
    for rep in 0..REPS {
        let start = Instant::now();
        let mut rep_committed = 0u64;
        let mut rep_cases = Vec::new();
        for case in &cases {
            let r = run_app(&case.config, case.scheme, case.app, Scale::Small);
            rep_committed += r.committed;
            rep_cases.push((case.name.clone(), r.sim_mips));
        }
        let wall = start.elapsed().as_secs_f64();
        eprintln!(
            "rep {}/{REPS}: {rep_committed} instructions in {wall:.3}s = {:.3} sim-MIPS",
            rep + 1,
            rep_committed as f64 / wall / 1e6
        );
        if wall < best_wall {
            best_wall = wall;
            committed = rep_committed;
            per_case = rep_cases;
        }
    }
    let sim_mips = committed as f64 / best_wall / 1e6;

    let lockstep_label = format!("{label}-lockstep9");
    let (ls_committed, ls_wall, ls_cases) = lockstep_suite();
    let ls_mips = ls_committed as f64 / ls_wall / 1e6;
    eprintln!(
        "lockstep 9-scheme suite: {ls_committed} instructions in {ls_wall:.3}s = {ls_mips:.3} sim-MIPS"
    );

    let rows = [
        (label.clone(), sim_mips, committed, best_wall, per_case),
        (lockstep_label, ls_mips, ls_committed, ls_wall, ls_cases),
    ];
    let mut lines = Vec::new();
    for (row_label, mips, instr, wall, cases) in &rows {
        let mut line = String::new();
        write!(
            line,
            "    {{\"label\": \"{row_label}\", \"sim_mips\": {mips:.3}, \
             \"committed_instructions\": {instr}, \"wall_seconds\": {wall:.3}, \
             \"per_case_mips\": {{"
        )
        .expect("write to string");
        for (i, (name, mips)) in cases.iter().enumerate() {
            if i > 0 {
                line.push_str(", ");
            }
            write!(line, "\"{name}\": {mips:.3}").expect("write to string");
        }
        line.push_str("}}");
        lines.push(line);
    }

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_hotloop.json");
    let kept: Vec<String> = std::fs::read_to_string(path)
        .unwrap_or_default()
        .lines()
        .filter(|l| {
            l.trim_start().starts_with("{\"label\":")
                && !rows
                    .iter()
                    .any(|(row_label, ..)| l.contains(&format!("\"label\": \"{row_label}\"")))
        })
        .map(|l| l.trim_end_matches(',').to_string())
        .collect();

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"benchmark\": \"simulator hot loop, paper-default platform\",\n");
    out.push_str(
        "  \"metric\": \"sim_mips = simulated committed instructions per host wall-second, in millions (best of 3 suite repetitions)\",\n",
    );
    out.push_str(
        "  \"suite\": \"crc32+patricia+jpeg_enc @ Small under nvsramcache and decay+edbp, plus a zombie-instrumented baseline run\",\n",
    );
    out.push_str("  \"runs\": [\n");
    for old in &kept {
        out.push_str(old);
        out.push_str(",\n");
    }
    out.push_str(&lines.join(",\n"));
    out.push_str("\n  ]\n}\n");
    std::fs::write(path, &out).expect("write BENCH_hotloop.json");

    println!("{label}: {sim_mips:.3} sim-MIPS ({committed} instructions in {best_wall:.3}s)");
    println!(
        "{}: {ls_mips:.3} sim-MIPS ({ls_committed} instructions in {ls_wall:.3}s)",
        rows[1].0
    );
    println!("recorded in BENCH_hotloop.json");
}
