//! System configuration (the paper's Table II).

use edbp_core::{DecayConfig, EdbpConfig};
use ehs_cache::CacheConfig;
use ehs_energy::{ConstantSource, EnergySource, EnergySystemConfig, SourceConfig, TracePreset};
use ehs_nvm::MemoryTechnology;
use ehs_units::{Energy, Frequency, Power, Time};

/// Which ambient source powers the run. An enum (rather than a boxed trait
/// object) so configurations stay `Clone + Send` and reproducible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SourceKind {
    /// One of the paper's four synthesized environments.
    Preset {
        /// Which environment.
        preset: TracePreset,
        /// RNG seed.
        seed: u64,
        /// Power scale factor (1.0 = nominal).
        scale: f64,
    },
    /// Constant power (e.g. the "infinite energy" limit of Section VIII).
    Constant(Power),
}

impl SourceKind {
    /// The paper's default: the RFHome trace.
    pub fn paper_default() -> Self {
        SourceKind::Preset {
            preset: TracePreset::RfHome,
            seed: 42,
            scale: 1.0,
        }
    }

    /// Builds the source.
    pub fn build(&self) -> Box<dyn EnergySource> {
        match *self {
            SourceKind::Preset {
                preset,
                seed,
                scale,
            } => Box::new(
                SourceConfig::preset(preset)
                    .with_seed(seed)
                    .with_power_scale(scale)
                    .build(),
            ),
            SourceKind::Constant(p) => Box::new(ConstantSource::new(p)),
        }
    }

    /// Human-readable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            SourceKind::Preset { preset, .. } => preset.name(),
            SourceKind::Constant(_) => "constant",
        }
    }
}

/// Costs of the NVSRAMCache in-place checkpoint/restore (Section II).
///
/// NVSRAM couples every SRAM cell to a nonvolatile twin, so a checkpoint is
/// a parallel in-place save: latency is a single NV write regardless of how
/// much is saved, while energy scales with the bytes saved.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckpointCosts {
    /// Energy to save one byte into its NV twin.
    pub save_energy_per_byte: Energy,
    /// Energy to restore one byte from its NV twin.
    pub restore_energy_per_byte: Energy,
    /// Fixed latency of the parallel save (one NV write).
    pub save_latency: Time,
    /// Fixed latency of the parallel restore.
    pub restore_latency: Time,
}

impl CheckpointCosts {
    /// Defaults calibrated for 180 nm FeRAM-style NVSRAM twins.
    pub fn paper_default() -> Self {
        Self {
            save_energy_per_byte: Energy::from_pico_joules(50.0),
            restore_energy_per_byte: Energy::from_pico_joules(25.0),
            save_latency: Time::from_nanos(250.0),
            restore_latency: Time::from_nanos(200.0),
        }
    }
}

/// Everything that defines the simulated platform. Defaults reproduce the
/// paper's Table II; the sensitivity experiments perturb one field at a time.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Data cache shape and policy (4 kB, 4-way, 16 B, LRU).
    pub dcache: CacheConfig,
    /// Data cache technology (SRAM; it is the leaky, volatile one).
    pub dcache_tech: MemoryTechnology,
    /// Instruction cache shape and policy.
    pub icache: CacheConfig,
    /// Instruction cache technology (ReRAM by default; SRAM in Fig. 18).
    pub icache_tech: MemoryTechnology,
    /// Main-memory technology.
    pub memory_tech: MemoryTechnology,
    /// Main-memory capacity in bytes (16 MB default).
    pub memory_bytes: u64,
    /// Harvesting subsystem (capacitor, thresholds).
    pub energy: EnergySystemConfig,
    /// Ambient source.
    pub source: SourceKind,
    /// Core clock (25 MHz).
    pub frequency: Frequency,
    /// MCU dynamic power per MHz (160 µW/MHz).
    pub mcu_power_per_mhz: Power,
    /// Scales the data-cache leakage (1.0 = real; 0.2 = the paper's
    /// "80% Leakage Off" stress test).
    pub dcache_leakage_scale: f64,
    /// Scales the instruction-cache leakage.
    pub icache_leakage_scale: f64,
    /// Calibration factor on the instruction cache's *dynamic* energies.
    ///
    /// Table II's per-access costs combined with a 25 MHz fetch stream would
    /// make the I-cache dwarf every other component; the paper's own Fig. 7
    /// attributes 58% of baseline energy to it. This factor (applied to the
    /// modelled I$ read/write/probe energies) is chosen so the baseline
    /// energy breakdown reproduces Fig. 7's shares. See `EXPERIMENTS.md`.
    pub icache_energy_scale: f64,
    /// Residual leakage of a gated block relative to an active one
    /// (gate-Vdd cuts ~97% of cell leakage).
    pub gated_leak_fraction: f64,
    /// NVSRAM checkpoint/restore cost model.
    pub ckpt: CheckpointCosts,
    /// Cache Decay configuration (for the schemes that use it).
    pub decay: DecayConfig,
    /// EDBP configuration; `None` derives [`EdbpConfig::for_cache`] defaults.
    pub edbp: Option<EdbpConfig>,
    /// Apply the scheme's predictor to the instruction cache too (Fig. 18's
    /// "both caches" design point; only meaningful with a volatile I$).
    pub predict_icache: bool,
    /// Record zombie samples every N committed instructions (Fig. 4);
    /// `None` disables the instrumentation.
    pub zombie_sample_interval: Option<u64>,
    /// Abort threshold: maximum committed instructions before declaring the
    /// run incomplete (guards against starved configurations).
    pub max_instructions: u64,
    /// Disables the burst-stepping fast path (and its hint-based predictor
    /// tick skipping), forcing the reference one-cycle-at-a-time loop.
    ///
    /// Burst stepping is bit-exact by construction — every [`crate::RunResult`]
    /// field except the wall-clock `sim_mips` is identical either way — and
    /// the differential test suite asserts exactly that by running both
    /// settings. Leave this `false` outside such tests; it exists so the
    /// reference semantics stay executable, not because results differ.
    pub force_cycle_accurate: bool,
    /// Disables the energy system's speculative chunked advance, forcing the
    /// guarded per-cycle kernel inside bursts and outage recharges
    /// (`EnergySystem::set_speculation(false)`).
    ///
    /// Like [`Self::force_cycle_accurate`] this changes no result bit — the
    /// speculative kernel commits only chunks it proves clamp- and
    /// event-free, and the divergence gate runs both settings — it exists so
    /// the guarded reference stays independently executable.
    /// `EHS_NO_SPECULATE=1` is the process-wide equivalent.
    pub force_no_speculate: bool,
}

impl SystemConfig {
    /// The paper's Table II defaults.
    pub fn paper_default() -> Self {
        Self {
            dcache: CacheConfig::paper_dcache(),
            dcache_tech: MemoryTechnology::Sram,
            icache: CacheConfig::paper_icache(),
            icache_tech: MemoryTechnology::ReRam,
            memory_tech: MemoryTechnology::ReRam,
            memory_bytes: 16 * 1024 * 1024,
            energy: EnergySystemConfig::paper_default(),
            source: SourceKind::paper_default(),
            frequency: Frequency::from_mega_hertz(25.0),
            mcu_power_per_mhz: Power::from_micro_watts(160.0),
            dcache_leakage_scale: 1.0,
            icache_leakage_scale: 1.0,
            icache_energy_scale: 0.5,
            gated_leak_fraction: 0.03,
            ckpt: CheckpointCosts::paper_default(),
            decay: DecayConfig::default(),
            edbp: None,
            predict_icache: false,
            zombie_sample_interval: None,
            max_instructions: 200_000_000,
            force_cycle_accurate: false,
            force_no_speculate: false,
        }
    }

    /// MCU dynamic power at the configured clock.
    pub fn mcu_power(&self) -> Power {
        self.mcu_power_per_mhz * self.frequency.as_mega_hertz()
    }

    /// One clock period.
    pub fn cycle_time(&self) -> Time {
        self.frequency.period()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_table2() {
        let c = SystemConfig::paper_default();
        assert_eq!(c.dcache.geometry.capacity_bytes, 4096);
        assert_eq!(c.dcache.geometry.associativity, 4);
        assert_eq!(c.dcache.geometry.block_bytes, 16);
        assert_eq!(c.memory_bytes, 16 * 1024 * 1024);
        assert!((c.mcu_power().as_milli_watts() - 4.0).abs() < 1e-9);
        assert!((c.cycle_time().as_nanos() - 40.0).abs() < 1e-9);
        assert!(c.energy.validate().is_ok());
    }

    #[test]
    fn source_kind_builds_and_names() {
        let s = SourceKind::paper_default();
        assert_eq!(s.name(), "rfhome");
        let src = s.build();
        assert_eq!(src.name(), "rfhome");
        let c = SourceKind::Constant(Power::from_milli_watts(5.0));
        assert_eq!(c.name(), "constant");
        assert_eq!(c.build().mean_power().as_milli_watts(), 5.0);
    }
}
