//! Deterministic fault injection for the experiment harness itself.
//!
//! The simulator's whole subject is surviving arbitrary power failure, so
//! the harness that runs it is held to the same bar: every recovery path —
//! panic containment in the worker pool, rejection of torn cache writes,
//! resumption after a mid-run kill — is *exercised* by injected faults, not
//! merely asserted. This module is the harness-side analogue of the
//! simulator's own brown-out injection: a seeded, deterministic [`FailPlan`]
//! that fires a chosen fault at the Nth occurrence of an instrumented site.
//!
//! # Activation
//!
//! Nothing is armed by default, and the disarmed fast path is one relaxed
//! atomic load (see [`armed`]) — production runs pay nothing. A plan is
//! installed either
//!
//! * from the environment: `EHS_FAILPLAN="panic@exec=3,short@store=7"`
//!   (read once by [`install_from_env`], which the experiment binaries call
//!   before running anything), or
//! * programmatically by tests: [`install`] (first install wins for the
//!   process, like the persistent cache).
//!
//! # Plan grammar
//!
//! A plan is a comma-separated list of `kind@site=N` specs; each spec fires
//! **once**, at the Nth hit (1-based) of its site:
//!
//! | kind    | effect at the site                                          |
//! |---------|-------------------------------------------------------------|
//! | `panic` | `panic!` — unwinds into the worker's `catch_unwind`          |
//! | `io`    | the operation reports an I/O error (store: entry not written)|
//! | `short` | store only: a torn entry is written straight to the final    |
//! |         | path, bypassing the atomic temp-file dance (simulates a      |
//! |         | pre-atomic writer or a filesystem losing tail bytes)         |
//! | `kill`  | `std::process::exit(137)` — the process dies on the spot,    |
//! |         | as if SIGKILLed (137 = 128 + SIGKILL, the shell convention)  |
//!
//! | site        | counted occurrence                                          |
//! |-------------|-------------------------------------------------------------|
//! | `exec`      | one real simulation execution (memo/cache hits don't count) |
//! | `zombie`    | one zombie-instrumented execution (only Fig. 4 runs these,  |
//! |             | so `panic@zombie=1` poisons exactly one figure of a suite)  |
//! | `store`     | one persistent-cache entry store                            |
//! | `lease`     | one lease acquisition attempt (`RunCache::claim`); `io`     |
//! |             | makes the attempt report `Unavailable` (claim contention)   |
//! | `steal`     | one expired-lease steal attempt; `io` loses the steal race, |
//! |             | `kill` dies holding the breaker lock (tests its staleness)  |
//! | `heartbeat` | one lease heartbeat renewal; `io` skips that renewal (a     |
//! |             | missed heartbeat), `panic` kills the heartbeat thread so    |
//! |             | the lease silently expires mid-run, `kill` dies on the spot |
//!
//! Counters are process-global and monotonic, so a plan is deterministic
//! for a deterministic workload ordering (e.g. `--threads 1`), and
//! *repeatable enough* under parallelism for the recovery properties the
//! tests assert (which never depend on *which* job was hit, only on the
//! suite surviving the hit). Randomized campaigns derive their `N`s from a
//! seed **outside** the plan (see `tests/fault_tolerance.rs` and the CI
//! job): the plan itself stays a pure, loggable description of the faults.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;

/// What an armed spec does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// `panic!` at the site (exercises worker panic isolation).
    Panic,
    /// Report an I/O error at the site (exercises degraded-mode paths).
    IoError,
    /// Write a torn (truncated, non-atomic) cache entry (store site only).
    ShortWrite,
    /// Exit the process immediately with status 137, like a SIGKILL.
    Kill,
}

impl FaultKind {
    fn name(self) -> &'static str {
        match self {
            Self::Panic => "panic",
            Self::IoError => "io",
            Self::ShortWrite => "short",
            Self::Kill => "kill",
        }
    }
}

/// An instrumented point in the harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Site {
    /// A real simulation execution (runner memo-miss path).
    Exec,
    /// A zombie-instrumented simulation execution (subset of [`Site::Exec`]).
    ZombieExec,
    /// A persistent-cache entry store.
    Store,
    /// A lease acquisition attempt (`RunCache::claim`).
    LeaseAcquire,
    /// An expired-lease steal attempt (breaker lock held).
    Steal,
    /// A lease heartbeat renewal.
    Heartbeat,
}

impl Site {
    fn name(self) -> &'static str {
        match self {
            Self::Exec => "exec",
            Self::ZombieExec => "zombie",
            Self::Store => "store",
            Self::LeaseAcquire => "lease",
            Self::Steal => "steal",
            Self::Heartbeat => "heartbeat",
        }
    }
}

/// One `kind@site=N` clause of a plan.
#[derive(Debug)]
struct Spec {
    kind: FaultKind,
    site: Site,
    /// 1-based occurrence at which this spec fires.
    nth: u64,
    fired: AtomicBool,
}

/// A parsed, installable fault plan.
#[derive(Debug, Default)]
pub struct FailPlan {
    specs: Vec<Spec>,
}

impl FailPlan {
    /// Parses the `kind@site=N,…` grammar documented at module level.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut specs = Vec::new();
        for clause in text.split(',').map(str::trim).filter(|c| !c.is_empty()) {
            let (kind_site, n) = clause
                .split_once('=')
                .ok_or_else(|| format!("fault spec {clause:?}: expected kind@site=N"))?;
            let (kind, site) = kind_site
                .split_once('@')
                .ok_or_else(|| format!("fault spec {clause:?}: expected kind@site=N"))?;
            let kind = match kind {
                "panic" => FaultKind::Panic,
                "io" => FaultKind::IoError,
                "short" => FaultKind::ShortWrite,
                "kill" => FaultKind::Kill,
                other => {
                    return Err(format!(
                        "fault spec {clause:?}: unknown kind {other:?} (panic|io|short|kill)"
                    ))
                }
            };
            let site = match site {
                "exec" => Site::Exec,
                "zombie" => Site::ZombieExec,
                "store" => Site::Store,
                "lease" => Site::LeaseAcquire,
                "steal" => Site::Steal,
                "heartbeat" => Site::Heartbeat,
                other => {
                    return Err(format!(
                        "fault spec {clause:?}: unknown site {other:?} \
                         (exec|zombie|store|lease|steal|heartbeat)"
                    ))
                }
            };
            if kind == FaultKind::ShortWrite && site != Site::Store {
                return Err(format!(
                    "fault spec {clause:?}: short writes only make sense at @store"
                ));
            }
            let nth: u64 =
                n.parse().ok().filter(|&n| n >= 1).ok_or_else(|| {
                    format!("fault spec {clause:?}: N must be a positive integer")
                })?;
            specs.push(Spec {
                kind,
                site,
                nth,
                fired: AtomicBool::new(false),
            });
        }
        Ok(Self { specs })
    }

    /// True when the plan has no clauses (installing it disarms nothing but
    /// also arms nothing).
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }
}

impl std::fmt::Display for FailPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, s) in self.specs.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{}@{}={}", s.kind.name(), s.site.name(), s.nth)?;
        }
        Ok(())
    }
}

/// Environment variable read by [`install_from_env`].
pub const ENV_VAR: &str = "EHS_FAILPLAN";

static PLAN: OnceLock<FailPlan> = OnceLock::new();
/// Fast disarmed check: set exactly when a non-empty plan is installed.
static ARMED: AtomicBool = AtomicBool::new(false);

static EXEC_HITS: AtomicU64 = AtomicU64::new(0);
static ZOMBIE_HITS: AtomicU64 = AtomicU64::new(0);
static STORE_HITS: AtomicU64 = AtomicU64::new(0);
static LEASE_HITS: AtomicU64 = AtomicU64::new(0);
static STEAL_HITS: AtomicU64 = AtomicU64::new(0);
static HEARTBEAT_HITS: AtomicU64 = AtomicU64::new(0);

/// Installs `plan` for the whole process. The first installation wins
/// (mirroring [`crate::runcache::install`]); returns `true` when this call
/// performed it.
pub fn install(plan: FailPlan) -> bool {
    let mut installed_here = false;
    let installed = PLAN.get_or_init(|| {
        installed_here = true;
        plan
    });
    if installed_here && !installed.is_empty() {
        ARMED.store(true, Ordering::Release);
    }
    installed_here
}

/// Installs the plan described by [`ENV_VAR`], if the variable is set.
/// A malformed plan is a hard, actionable error: a fault campaign that
/// silently runs fault-free would "pass" every gate it was meant to arm.
///
/// # Errors
///
/// Returns the parse failure message for a malformed plan.
pub fn install_from_env() -> Result<(), String> {
    match std::env::var(ENV_VAR) {
        Ok(text) => {
            let plan = FailPlan::parse(&text).map_err(|e| format!("{ENV_VAR}: {e}"))?;
            install(plan);
            Ok(())
        }
        Err(_) => Ok(()),
    }
}

/// True when a non-empty plan is armed — the only cost disarmed runs pay.
#[inline]
pub fn armed() -> bool {
    ARMED.load(Ordering::Acquire)
}

/// Counts one hit of `site` and returns the fault to inject, if any spec
/// fires here. The per-site counter increments even when no spec matches,
/// so `N` always means "the Nth occurrence since process start".
fn hit(site: Site) -> Option<FaultKind> {
    let counter = match site {
        Site::Exec => &EXEC_HITS,
        Site::ZombieExec => &ZOMBIE_HITS,
        Site::Store => &STORE_HITS,
        Site::LeaseAcquire => &LEASE_HITS,
        Site::Steal => &STEAL_HITS,
        Site::Heartbeat => &HEARTBEAT_HITS,
    };
    let occurrence = counter.fetch_add(1, Ordering::Relaxed) + 1;
    let plan = PLAN.get()?;
    plan.specs
        .iter()
        .filter(|s| s.site == site && s.nth == occurrence)
        .find(|s| !s.fired.swap(true, Ordering::Relaxed))
        .map(|s| s.kind)
}

/// Applies `kind` at a site that has no I/O failure mode of its own
/// (`IoError` degrades to a panic there — still a contained worker fault).
fn detonate(kind: FaultKind, occurrence_desc: &str) -> ! {
    match kind {
        FaultKind::Kill => {
            eprintln!("fault injection: kill at {occurrence_desc}");
            std::process::exit(137);
        }
        _ => panic!("fault injection: {} at {occurrence_desc}", kind.name()),
    }
}

/// Instrumentation hook for the runner's execute path. No-op unless armed.
/// Panics or kills the process when a matching spec fires.
pub(crate) fn on_execute(zombie_instrumented: bool) {
    if !armed() {
        return;
    }
    if zombie_instrumented {
        if let Some(kind) = hit(Site::ZombieExec) {
            detonate(kind, "zombie-instrumented execution");
        }
    }
    if let Some(kind) = hit(Site::Exec) {
        detonate(kind, "simulation execution");
    }
}

/// Instrumentation hook for persistent-cache stores. No-op unless armed.
/// `Panic` detonates in place; the other kinds are returned for the store
/// path to act out at their most damaging spot (`IoError`: skip the write;
/// `ShortWrite`: tear it; `Kill`: die after the temp write, before the
/// rename).
pub(crate) fn on_store() -> Option<FaultKind> {
    if !armed() {
        return None;
    }
    match hit(Site::Store)? {
        FaultKind::Panic => detonate(FaultKind::Panic, "cache store"),
        kind => Some(kind),
    }
}

/// Instrumentation hook for lease acquisition attempts. `Panic`/`Kill`
/// detonate in place; `IoError` flows back so the claim path reports
/// `Unavailable` (the shape of real claim contention / an unwritable
/// directory).
pub(crate) fn on_lease_acquire() -> Option<FaultKind> {
    if !armed() {
        return None;
    }
    match hit(Site::LeaseAcquire)? {
        kind @ (FaultKind::Panic | FaultKind::Kill) => detonate(kind, "lease acquisition"),
        kind => Some(kind),
    }
}

/// Instrumentation hook for expired-lease steal attempts, fired while the
/// breaker lock is held. `Kill` dies on the spot — leaving the breaker
/// behind, which the staleness sweep must recover — and `IoError` flows
/// back so the stealer loses the race (treated as `Busy`).
pub(crate) fn on_steal() -> Option<FaultKind> {
    if !armed() {
        return None;
    }
    match hit(Site::Steal)? {
        kind @ (FaultKind::Panic | FaultKind::Kill) => detonate(kind, "lease steal"),
        kind => Some(kind),
    }
}

/// Instrumentation hook for lease heartbeat renewals, fired on the
/// heartbeat thread. `IoError` flows back so the renewal is skipped (one
/// missed heartbeat — the lease must survive it while within its TTL);
/// `Panic` kills only the heartbeat thread, so the lease silently expires
/// while its job keeps running; `Kill` dies on the spot.
pub(crate) fn on_heartbeat() -> Option<FaultKind> {
    if !armed() {
        return None;
    }
    match hit(Site::Heartbeat)? {
        kind @ (FaultKind::Panic | FaultKind::Kill) => detonate(kind, "lease heartbeat"),
        kind => Some(kind),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_documented_grammar() {
        let plan = FailPlan::parse("panic@exec=3, short@store=7,kill@store=1").unwrap();
        assert_eq!(plan.specs.len(), 3);
        assert_eq!(plan.to_string(), "panic@exec=3,short@store=7,kill@store=1");
        assert!(FailPlan::parse("").unwrap().is_empty());
        assert!(FailPlan::parse("  ").unwrap().is_empty());
    }

    #[test]
    fn parses_the_lease_protocol_sites() {
        let plan =
            FailPlan::parse("io@lease=1,kill@steal=2,io@heartbeat=3,kill@heartbeat=4").unwrap();
        assert_eq!(plan.specs.len(), 4);
        assert_eq!(
            plan.to_string(),
            "io@lease=1,kill@steal=2,io@heartbeat=3,kill@heartbeat=4"
        );
        // Short writes stay a store-only concept, even at the new sites.
        for bad in ["short@lease=1", "short@steal=1", "short@heartbeat=1"] {
            assert!(FailPlan::parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "panic",
            "panic@exec",
            "panic@exec=0",
            "panic@exec=x",
            "explode@exec=1",
            "panic@nowhere=1",
            "short@exec=1", // short writes are a store-only concept
        ] {
            assert!(FailPlan::parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn disarmed_process_stays_disarmed_cheaply() {
        // This test must not install a plan (the whole test binary shares
        // the process-wide slot); it only checks the fast path contract.
        if PLAN.get().is_none() {
            assert!(!armed());
            on_execute(false); // must be a no-op, not a panic
        }
    }
}
