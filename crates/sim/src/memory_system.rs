//! The memory hierarchy: D-cache + I-cache over a sparse backing store,
//! with per-access cost accounting.

use crate::SystemConfig;
use edbp_core::{FxHashMap, PagedTable};
use ehs_cache::{
    with_policy_kernel, AccessKind, BlockId, Cache, LookupOutcome, LookupResult, PolicyKernel,
    Writeback,
};
use ehs_nvm::{ArrayCharacteristics, CacheArrayModel, MainMemoryModel, MemoryCharacteristics};
use ehs_units::{Energy, Power, Time};

/// Cost and event record of one data access.
#[derive(Debug, Clone, PartialEq)]
pub struct DataAccess {
    /// Whether the D-cache hit.
    pub hit: bool,
    /// Block-aligned address of the accessed block.
    pub block_addr: u64,
    /// Frame that now holds the block (hit or freshly filled).
    pub frame: BlockId,
    /// Address of a valid block evicted to make room, if any.
    pub evicted: Option<u64>,
    /// Stall time beyond the execute cycle.
    pub stall: Time,
    /// Dynamic D-cache energy.
    pub dcache_energy: Energy,
    /// Main-memory energy (victim write-back + line fill).
    pub memory_energy: Energy,
    /// The loaded word (0 for stores).
    pub value: u32,
}

/// Cost and event record of one instruction fetch.
#[derive(Debug, Clone, PartialEq)]
pub struct Fetch {
    /// Whether the I-cache hit (true for buffered fetches too).
    pub hit: bool,
    /// Whether the fetch was satisfied by the fetch buffer without touching
    /// the I-cache at all.
    pub buffered: bool,
    /// Block-aligned address of the fetched block.
    pub block_addr: u64,
    /// Frame that now holds the block.
    pub frame: BlockId,
    /// Address of a valid block evicted to make room, if any.
    pub evicted: Option<u64>,
    /// Stall time beyond the execute cycle.
    pub stall: Time,
    /// Dynamic I-cache energy.
    pub icache_energy: Energy,
    /// Main-memory energy.
    pub memory_energy: Energy,
}

/// The D-cache + I-cache + main-memory stack.
///
/// Hit latencies are hidden inside the 40 ns machine cycle (both caches are
/// faster than the clock); misses stall for the probe, the memory transfer
/// and the line fill; dirty evictions additionally pay the memory write.
/// All dynamic energies are charged unconditionally.
#[derive(Debug)]
pub struct MemorySystem {
    /// The SRAM write-back data cache.
    pub dcache: Cache,
    /// The instruction cache (ReRAM by default).
    pub icache: Cache,
    d_chars: ArrayCharacteristics,
    i_chars: ArrayCharacteristics,
    mem_chars: MemoryCharacteristics,
    /// Sparse main memory, keyed by D-cache-block-aligned address.
    backing: FxHashMap<u64, Vec<u8>>,
    d_block: u64,
    /// Fetch buffer: the block the front-end last read from the I-cache.
    /// Sequential fetches within it are free (no I-cache access), which is
    /// how MCU front-ends amortize a block-wide instruction read.
    fetch_buffer: Option<u64>,
    /// Reusable zero image for I-cache fills (instruction bytes are never
    /// inspected, so every fill shares this one buffer).
    i_zero: Box<[u8]>,
    /// Blocks parked in their NVSRAM twins by a predictor: re-referencing
    /// one is a cheap in-place recall, not a main-memory transfer.
    parked: PagedTable<()>,
    /// Cost of recalling one parked block from its twin.
    recall_energy: Energy,
    recall_latency: Time,
}

impl MemorySystem {
    /// Builds the hierarchy described by `config`.
    pub fn new(config: &SystemConfig) -> Self {
        let dcache = Cache::new(config.dcache);
        let icache = Cache::new(config.icache);
        let d_chars =
            CacheArrayModel::new(config.dcache_tech, config.dcache.geometry).characteristics();
        let mut i_chars =
            CacheArrayModel::new(config.icache_tech, config.icache.geometry).characteristics();
        i_chars.read_energy = i_chars.read_energy * config.icache_energy_scale;
        i_chars.write_energy = i_chars.write_energy * config.icache_energy_scale;
        i_chars.probe_energy = i_chars.probe_energy * config.icache_energy_scale;
        let mem_chars =
            MainMemoryModel::new(config.memory_tech, config.memory_bytes).characteristics();
        let d_block = u64::from(config.dcache.geometry.block_bytes);
        Self {
            dcache,
            icache,
            d_chars,
            i_chars,
            mem_chars,
            backing: FxHashMap::default(),
            d_block,
            fetch_buffer: None,
            i_zero: vec![0u8; config.icache.geometry.block_bytes as usize].into_boxed_slice(),
            parked: PagedTable::for_block_bytes(config.dcache.geometry.block_bytes),
            recall_energy: config.ckpt.restore_energy_per_byte
                * f64::from(config.dcache.geometry.block_bytes),
            recall_latency: config.ckpt.restore_latency,
        }
    }

    /// Parks a dirty block in its NVSRAM twin: the data is retained (moved
    /// to the backing image for bookkeeping) and future misses on it become
    /// cheap recalls. Returns nothing; the caller charges the save cost.
    pub fn park(&mut self, wb: &Writeback) {
        self.park_from(wb.addr, &wb.data);
    }

    /// [`MemorySystem::park`] from a borrowed block image — the hot-path
    /// variant that needs no `Writeback` allocation.
    pub fn park_from(&mut self, addr: u64, data: &[u8]) {
        self.backing_block(addr).copy_from_slice(data);
        self.parked.insert(addr, ());
    }

    /// Drains every parked block in ascending address order, handing each
    /// `(addr, image)` to `f`, then clears the parked set. This is the
    /// reboot path: the checkpoint machinery re-adopts the parked twins.
    pub fn drain_parked(&mut self, mut f: impl FnMut(u64, &[u8])) {
        let Self {
            parked,
            backing,
            d_block,
            ..
        } = self;
        let len = *d_block as usize;
        parked.for_each(|addr, ()| {
            let data = backing.entry(addr).or_insert_with(|| vec![0u8; len]);
            f(addr, data);
        });
        parked.clear();
    }

    /// Reads the backing image of a block (for checkpoint assembly).
    pub fn backing_data(&mut self, block_addr: u64) -> Vec<u8> {
        self.backing_block(block_addr).clone()
    }

    /// Borrows the backing image of a block (zero-filled on first touch).
    pub fn backing_slice(&mut self, block_addr: u64) -> &[u8] {
        self.backing_block(block_addr)
    }

    /// D-cache array characteristics (for leakage integration).
    pub fn dcache_characteristics(&self) -> &ArrayCharacteristics {
        &self.d_chars
    }

    /// I-cache array characteristics.
    pub fn icache_characteristics(&self) -> &ArrayCharacteristics {
        &self.i_chars
    }

    /// Main-memory standby power.
    pub fn memory_standby(&self) -> Power {
        self.mem_chars.standby
    }

    fn block_of(&self, addr: u64) -> u64 {
        addr & !(self.d_block - 1)
    }

    /// Reads a block from the backing store (zero-filled on first touch).
    fn backing_block(&mut self, block_addr: u64) -> &mut Vec<u8> {
        let len = self.d_block as usize;
        self.backing
            .entry(block_addr)
            .or_insert_with(|| vec![0u8; len])
    }

    /// Writes one evicted/gated dirty block to main memory and returns its
    /// (latency, energy) cost.
    pub fn write_back(&mut self, wb: &Writeback) -> (Time, Energy) {
        self.write_back_from(wb.addr, &wb.data)
    }

    /// [`MemorySystem::write_back`] from a borrowed block image.
    pub fn write_back_from(&mut self, addr: u64, data: &[u8]) -> (Time, Energy) {
        self.backing_block(addr).copy_from_slice(data);
        (self.mem_chars.write_latency, self.mem_chars.write_energy)
    }

    /// Performs a data access (word-aligned), filling on miss.
    ///
    /// Dispatches once on the D-cache's configured replacement policy and
    /// forwards to [`MemorySystem::data_access_k`]; hot loops that have
    /// already resolved the policy kernel should call the generic form
    /// directly so the probe and rank update inline.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 4-byte aligned.
    pub fn data_access(&mut self, addr: u32, kind: AccessKind, store_value: u32) -> DataAccess {
        with_policy_kernel!(self.dcache.config().policy, K => {
            self.data_access_k::<K>(addr, kind, store_value)
        })
    }

    /// [`MemorySystem::data_access`] monomorphized over the D-cache's
    /// replacement-policy kernel `K`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 4-byte aligned, or (debug builds) if
    /// `K::POLICY` does not match the D-cache's configured policy.
    pub fn data_access_k<K: PolicyKernel>(
        &mut self,
        addr: u32,
        kind: AccessKind,
        store_value: u32,
    ) -> DataAccess {
        assert_eq!(addr % 4, 0, "unaligned data access at {addr:#x}");
        let addr = u64::from(addr);
        let block_addr = self.block_of(addr);
        let offset = (addr - block_addr) as usize;

        let mut stall = Time::ZERO;
        let mut dcache_energy = Energy::ZERO;
        let mut memory_energy = Energy::ZERO;
        let mut evicted = None;
        let mut hit = false;

        // The victim write-back (if any) lands straight in the backing
        // store via the sink — no `Writeback` allocation — and its cost is
        // captured here so it can be charged at the exact point the
        // accounting order demands (after the probe, before the fill).
        let mut wb_cost: Option<(Time, Energy)> = None;
        let outcome = {
            let Self {
                dcache,
                backing,
                d_block,
                mem_chars,
                ..
            } = self;
            let len = *d_block as usize;
            dcache.lookup_with_k::<K>(addr, kind, |wb_addr, data| {
                backing
                    .entry(wb_addr)
                    .or_insert_with(|| vec![0u8; len])
                    .copy_from_slice(data);
                wb_cost = Some((mem_chars.write_latency, mem_chars.write_energy));
            })
        };
        let frame = match outcome {
            LookupResult::Hit(h) => {
                hit = true;
                dcache_energy += self.d_chars.read_energy;
                h.block
            }
            LookupResult::Miss(miss) => {
                dcache_energy += self.d_chars.probe_energy;
                stall += self.d_chars.probe_latency;
                evicted = miss.evicted;
                if let Some((t, e)) = wb_cost {
                    stall += t;
                    memory_energy += e;
                }
                if self.parked.remove(block_addr).is_some() {
                    // In-place recall from the block's NVSRAM twin.
                    stall += self.recall_latency;
                    dcache_energy += self.recall_energy;
                } else {
                    // Fetch the line from memory.
                    stall += self.mem_chars.read_latency;
                    memory_energy += self.mem_chars.read_energy;
                }
                // Disjoint borrows: fill the D-cache straight from the
                // backing image, no per-miss block clone.
                let Self {
                    dcache,
                    backing,
                    d_block,
                    ..
                } = self;
                let len = *d_block as usize;
                let data = backing.entry(block_addr).or_insert_with(|| vec![0u8; len]);
                let frame = dcache.fill_k::<K>(block_addr, data, kind == AccessKind::Write);
                dcache_energy += self.d_chars.write_energy;
                stall += self.d_chars.write_latency;
                frame
            }
        };

        // Perform the word operation against the cached copy.
        let value = match kind {
            AccessKind::Read => {
                let data = self.dcache.data(frame);
                u32::from_le_bytes([
                    data[offset],
                    data[offset + 1],
                    data[offset + 2],
                    data[offset + 3],
                ])
            }
            AccessKind::Write => {
                self.dcache
                    .write_data(frame, offset, &store_value.to_le_bytes());
                0
            }
        };

        DataAccess {
            hit,
            block_addr,
            frame,
            evicted,
            stall,
            dcache_energy,
            memory_energy,
            value,
        }
    }

    /// Performs an instruction fetch.
    ///
    /// Fetches within the buffered block are free; a new block costs one
    /// I-cache access (hit) or a fill from memory (miss).
    pub fn ifetch(&mut self, addr: u32) -> Fetch {
        let addr = u64::from(addr);
        let i_block = u64::from(self.icache.block_bytes());
        let block_addr = addr & !(i_block - 1);

        if self.fetch_buffer == Some(block_addr) {
            return Fetch {
                hit: true,
                buffered: true,
                block_addr,
                frame: BlockId { set: 0, way: 0 },
                evicted: None,
                stall: Time::ZERO,
                icache_energy: Energy::ZERO,
                memory_energy: Energy::ZERO,
            };
        }
        self.fetch_buffer = Some(block_addr);

        match self.icache.lookup(addr, AccessKind::Read) {
            LookupOutcome::Hit(h) => Fetch {
                hit: true,
                buffered: false,
                block_addr,
                frame: h.block,
                evicted: None,
                stall: Time::ZERO,
                icache_energy: self.i_chars.read_energy,
                memory_energy: Energy::ZERO,
            },
            LookupOutcome::Miss(miss) => {
                // Instructions are read-only: no dirty victims possible.
                debug_assert!(miss.writeback.is_none(), "I-cache blocks are clean");
                let frame = self.icache.fill(block_addr, &self.i_zero, false);
                Fetch {
                    hit: false,
                    buffered: false,
                    block_addr,
                    frame,
                    evicted: None,
                    stall: self.i_chars.probe_latency
                        + self.mem_chars.read_latency
                        + self.i_chars.write_latency,
                    icache_energy: self.i_chars.probe_energy + self.i_chars.write_energy,
                    memory_energy: self.mem_chars.read_energy,
                }
            }
        }
    }

    /// Block-aligned address currently held by the fetch buffer, if any.
    /// Fetches inside it are guaranteed free (no I-cache access, no stall,
    /// no predictor hooks) — the burst fast path keys off this.
    pub fn buffered_block(&self) -> Option<u64> {
        self.fetch_buffer
    }

    /// Clears the volatile fetch buffer (power outage).
    pub fn reset_fetch_buffer(&mut self) {
        self.fetch_buffer = None;
    }

    /// Restores a checkpointed block into the D-cache at reboot.
    pub fn restore_block(&mut self, addr: u64, data: &[u8], dirty: bool) -> BlockId {
        self.dcache.fill(addr, data, dirty)
    }

    /// Verifies the architectural memory image against an expected map
    /// (testing aid: flushes nothing, reads through the hierarchy).
    pub fn word_at(&mut self, addr: u64) -> u32 {
        let block_addr = self.block_of(addr);
        let offset = (addr - block_addr) as usize;
        // Dirty cached copy wins over the backing store.
        if let Some(frame) = self.dcache.contains(addr) {
            let data = self.dcache.data(frame);
            return u32::from_le_bytes([
                data[offset],
                data[offset + 1],
                data[offset + 2],
                data[offset + 3],
            ]);
        }
        let data = self.backing_block(block_addr);
        u32::from_le_bytes([
            data[offset],
            data[offset + 1],
            data[offset + 2],
            data[offset + 3],
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk() -> MemorySystem {
        MemorySystem::new(&SystemConfig::paper_default())
    }

    #[test]
    fn store_then_load_round_trips_through_cache() {
        let mut m = mk();
        m.data_access(0x1000, AccessKind::Write, 0xCAFE_BABE);
        let out = m.data_access(0x1000, AccessKind::Read, 0);
        assert_eq!(out.value, 0xCAFE_BABE);
        assert!(out.hit);
    }

    #[test]
    fn miss_costs_more_than_hit() {
        let mut m = mk();
        let miss = m.data_access(0x2000, AccessKind::Read, 0);
        let hit = m.data_access(0x2000, AccessKind::Read, 0);
        assert!(!miss.hit && hit.hit);
        assert!(miss.stall > hit.stall);
        assert!(miss.memory_energy > hit.memory_energy);
    }

    #[test]
    fn dirty_eviction_reaches_backing_store() {
        let mut m = mk();
        m.data_access(0x0, AccessKind::Write, 77);
        // Evict it by filling the set (4-way, 64 sets, 16 B: addresses
        // 0x400 apart collide).
        for i in 1..=4u32 {
            m.data_access(i * 0x400, AccessKind::Read, 0);
        }
        assert!(m.dcache.contains(0x0).is_none(), "should be evicted");
        assert_eq!(m.word_at(0x0), 77, "write-back must have landed");
    }

    #[test]
    fn ifetch_miss_then_hits_within_block() {
        let mut m = mk();
        let miss = m.ifetch(0x0100_0000);
        assert!(!miss.hit);
        // Next three instructions share the 16 B block.
        for k in 1..4u32 {
            let f = m.ifetch(0x0100_0000 + k * 4);
            assert!(f.hit, "instruction {k} should hit");
            assert!(f.stall.is_zero());
        }
    }

    #[test]
    fn word_at_sees_dirty_cached_data() {
        let mut m = mk();
        m.data_access(0x3000, AccessKind::Write, 42);
        assert_eq!(m.word_at(0x3000), 42);
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn rejects_unaligned_access() {
        let mut m = mk();
        m.data_access(0x1001, AccessKind::Read, 0);
    }
}
