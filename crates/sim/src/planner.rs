//! The suite planner: a registry of every experiment's plan/report pair,
//! plus the global orchestrator behind the `exp_all` binary.
//!
//! A registered [`Experiment`] is the library form of one `exp_*` binary:
//! `plan` maps a workload scale to the flat, deterministically ordered
//! [`Job`] list the figure needs, and `report` turns those jobs' outputs
//! (in plan order) back into the figure's table. The thin binaries call
//! [`experiment_main`]; [`run_suite`] instead concatenates *every*
//! experiment's plan, runs the union once on one shared worker pool —
//! where the memoization layer collapses all cross-experiment duplicates
//! (see [`crate::runner::effective_fingerprint`]) and the longest-first
//! queue kills the straggler tail — and then dispatches each experiment's
//! slice of the outputs to its reporter in registry order.
//!
//! Invariants (see `DESIGN.md` §8):
//!
//! * Reports are pure functions of their output slice, so per-figure tables
//!   are byte-identical whether an experiment ran standalone, inside
//!   `exp_all` cache-cold, or replayed cache-warm.
//! * Dedup accounting is exact: a cache-cold `run_suite` executes exactly
//!   [`crate::runner::count_unique`] simulations (asserted by a test).

use crate::cli::{self, FleetMode, SuiteOptions};
use crate::experiments::ExperimentOptions;
use crate::experiments::{headline, motivation, sensitivity};
use crate::fault;
use crate::report::Table;
use crate::runcache;
use crate::runner::{
    count_unique, effective_fingerprint, executed_entry_stems, run_workers, shard_jobs,
    simulations_executed, try_run_jobs_outputs, unique_jobs, Job, JobError, JobOutput, RetryPolicy,
};
use ehs_workloads::Scale;
use std::collections::HashSet;
use std::ops::Range;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Exit code: one or more jobs failed (a figure was not written, a worker
/// exhausted retries, or a `--expect-*` assertion tripped).
pub const EXIT_JOB_FAILURE: i32 = 1;
/// Exit code: bad usage or a malformed `$EHS_FAILPLAN`.
pub const EXIT_USAGE: i32 = 2;
/// Exit code: `--finalize` timed out waiting for the job set to become
/// complete in the shared directory.
pub const EXIT_INCOMPLETE_JOURNAL: i32 = 3;
/// Exit code: `--finalize --verify` found a figure whose bytes differ from
/// the reference directory.
pub const EXIT_MERGE_MISMATCH: i32 = 4;

/// One registered experiment: the library form of an `exp_*` binary.
pub struct Experiment {
    /// Binary / output-file stem, e.g. `exp_fig08_performance`.
    pub name: &'static str,
    /// Human title printed above the table, e.g.
    /// `Fig. 8 (performance and cache miss rate)`.
    pub title: &'static str,
    /// The jobs this experiment needs, in deterministic order.
    pub plan: fn(Scale) -> Vec<Job>,
    /// Pure reporter over the planned jobs' outputs (same order).
    pub report: fn(&[JobOutput]) -> Table,
}

/// Every experiment, in the order `run_all_experiments.sh` has always
/// produced them.
pub const REGISTRY: &[Experiment] = &[
    Experiment {
        name: "exp_hw_cost",
        title: "Section VI-B (hardware cost analysis)",
        plan: sensitivity::hw_cost_plan,
        report: sensitivity::hw_cost_report,
    },
    Experiment {
        name: "exp_fig09_absolute_power",
        title: "Fig. 9 (absolute power and total energy)",
        plan: headline::fig9_plan,
        report: headline::fig9_report,
    },
    Experiment {
        name: "exp_fig06_true_false_rates",
        title: "Fig. 6 (true/false prediction rates)",
        plan: headline::fig6_plan,
        report: headline::fig6_report,
    },
    Experiment {
        name: "exp_fig07_energy_breakdown",
        title: "Fig. 7 (energy breakdown and load/store ratio)",
        plan: headline::fig7_plan,
        report: headline::fig7_report,
    },
    Experiment {
        name: "exp_fig08_performance",
        title: "Fig. 8 (performance and cache miss rate)",
        plan: headline::fig8_plan,
        report: headline::fig8_report,
    },
    Experiment {
        name: "exp_fig04_zombie_ratio",
        title: "Fig. 4 (zombie ratio vs capacitor voltage)",
        plan: motivation::fig4_plan,
        report: motivation::fig4_report,
    },
    Experiment {
        name: "exp_table1",
        title: "Table I (SRAM leakage and static-energy ratio)",
        plan: motivation::table1_plan,
        report: motivation::table1_report,
    },
    Experiment {
        name: "exp_fig01_cache_size_motivation",
        title: "Fig. 1 (performance across cache sizes)",
        plan: motivation::fig1_plan,
        report: motivation::fig1_report,
    },
    Experiment {
        name: "exp_fig10_replacement_policy",
        title: "Fig. 10 (replacement-policy sensitivity)",
        plan: sensitivity::fig10_plan,
        report: sensitivity::fig10_report,
    },
    Experiment {
        name: "exp_fig11_cache_size",
        title: "Fig. 11 (cache-size sensitivity)",
        plan: sensitivity::fig11_plan,
        report: sensitivity::fig11_report,
    },
    Experiment {
        name: "exp_fig12_associativity",
        title: "Fig. 12 (associativity sensitivity)",
        plan: sensitivity::fig12_plan,
        report: sensitivity::fig12_report,
    },
    Experiment {
        name: "exp_fig13_nvm_technology",
        title: "Fig. 13 (NVM-technology sensitivity)",
        plan: sensitivity::fig13_plan,
        report: sensitivity::fig13_report,
    },
    Experiment {
        name: "exp_fig14_memory_size",
        title: "Fig. 14 (memory-size sensitivity)",
        plan: sensitivity::fig14_plan,
        report: sensitivity::fig14_report,
    },
    Experiment {
        name: "exp_fig15_energy_conditions",
        title: "Fig. 15 (energy-condition sensitivity)",
        plan: sensitivity::fig15_plan,
        report: sensitivity::fig15_report,
    },
    Experiment {
        name: "exp_fig16_capacitor_size",
        title: "Fig. 16 (capacitor-size sensitivity)",
        plan: sensitivity::fig16_plan,
        report: sensitivity::fig16_report,
    },
    Experiment {
        name: "exp_fig17_sensitivity_summary",
        title: "Fig. 17 (sensitivity summary)",
        plan: sensitivity::fig17_plan,
        report: sensitivity::fig17_report,
    },
    Experiment {
        name: "exp_fig18_icache",
        title: "Fig. 18 (EDBP for the instruction cache)",
        plan: sensitivity::fig18_plan,
        report: sensitivity::fig18_report,
    },
    Experiment {
        name: "exp_ablation_adaptation",
        title: "Section V-B1 ablation (threshold adaptation)",
        plan: sensitivity::ablation_adaptation_plan,
        report: sensitivity::ablation_adaptation_report,
    },
    Experiment {
        name: "exp_ablation_policy",
        title: "Section V-A ablation (MRU protection / clean-first)",
        plan: sensitivity::ablation_policy_plan,
        report: sensitivity::ablation_policy_report,
    },
    Experiment {
        name: "exp_other_predictors",
        title: "Section VII-A (EDBP with other predictors: AMC)",
        plan: sensitivity::other_predictors_plan,
        report: sensitivity::other_predictors_report,
    },
];

/// Looks an experiment up by binary name.
pub fn find(name: &str) -> Option<&'static Experiment> {
    REGISTRY.iter().find(|e| e.name == name)
}

/// The rendered form the binaries have always printed: title banner, the
/// table, and a trailing blank line.
pub fn render_titled(title: &str, table: &Table) -> String {
    format!("=== {title} ===\n{}\n", table.render())
}

/// The concatenated job list of every registered experiment, plus each
/// experiment's slice of it (registry order).
pub struct SuitePlan {
    /// All requested jobs, in registry-then-plan order.
    pub jobs: Vec<Job>,
    /// `jobs[sections[i]]` belongs to `REGISTRY[i]`.
    pub sections: Vec<Range<usize>>,
}

/// Collects every registered experiment's plan at `scale`.
pub fn plan_suite(scale: Scale) -> SuitePlan {
    let mut jobs = Vec::new();
    let mut sections = Vec::with_capacity(REGISTRY.len());
    for exp in REGISTRY {
        let start = jobs.len();
        jobs.extend((exp.plan)(scale));
        sections.push(start..jobs.len());
    }
    SuitePlan { jobs, sections }
}

/// The outcome of one [`run_suite`] call.
pub struct SuiteRun {
    /// One outcome per registered experiment, in registry order: the
    /// figure's table, or the (deduplicated) failures of the jobs it
    /// needed. A failed job only fails the experiments whose plans contain
    /// it — every unaffected experiment still gets its table.
    pub tables: Vec<Result<Table, Vec<JobError>>>,
    /// Total jobs requested across all experiments (before dedup).
    pub total_requested: usize,
    /// Distinct simulations a cache-cold run needs (after dedup).
    pub unique: usize,
    /// Simulations actually executed by this call (0 on a warm replay).
    pub executed: u64,
}

impl SuiteRun {
    /// The structured failure summary: `(experiment name, its failed
    /// jobs)`, registry order, empty exactly when every figure reported.
    pub fn failures(&self) -> Vec<(&'static str, &[JobError])> {
        REGISTRY
            .iter()
            .zip(&self.tables)
            .filter_map(|(exp, t)| t.as_ref().err().map(|errs| (exp.name, errs.as_slice())))
            .collect()
    }
}

/// Plans, runs and reports every registered experiment on one shared pool.
///
/// Worker panics are contained per job (see
/// [`crate::runner::try_run_jobs_outputs`]): an experiment whose slice has
/// a failed job yields `Err` with those failures, while every other
/// experiment's reporter runs normally — a single panicking job can never
/// abort the suite mid-pass.
pub fn run_suite(opts: ExperimentOptions) -> SuiteRun {
    let plan = plan_suite(opts.scale);
    let executed_before = simulations_executed();
    let outputs = try_run_jobs_outputs(&plan.jobs, opts.threads);
    let executed = simulations_executed() - executed_before;
    let tables = REGISTRY
        .iter()
        .zip(&plan.sections)
        .map(|(exp, range)| {
            let slice = &outputs[range.clone()];
            let mut errors: Vec<JobError> = Vec::new();
            let mut seen = HashSet::new();
            for r in slice {
                if let Err(e) = r {
                    // Duplicate requests for one failed key fail together;
                    // report the key once.
                    if seen.insert((e.config_fp, e.scheme, e.app, e.scale)) {
                        errors.push(e.clone());
                    }
                }
            }
            if errors.is_empty() {
                let ok: Vec<JobOutput> = slice
                    .iter()
                    .map(|r| r.as_ref().expect("no errors in slice").clone())
                    .collect();
                Ok((exp.report)(&ok))
            } else {
                Err(errors)
            }
        })
        .collect();
    SuiteRun {
        tables,
        total_requested: plan.jobs.len(),
        unique: count_unique(&plan.jobs),
        executed,
    }
}

/// Environment override for the results directory (tests and concurrent
/// harness processes point it at private directories).
pub const RESULTS_ENV_VAR: &str = "EHS_RESULTS_DIR";

/// `results/` at the repository root (binaries write there regardless of
/// the working directory, like the shell script always did from the root),
/// unless overridden via [`RESULTS_ENV_VAR`].
pub fn results_dir() -> PathBuf {
    match std::env::var_os(RESULTS_ENV_VAR) {
        Some(dir) if !dir.is_empty() => PathBuf::from(dir),
        _ => PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../results")),
    }
}

/// Arms the fault-injection harness from `$EHS_FAILPLAN`; a malformed plan
/// is a hard error (exit 2) — a fault campaign must never silently run
/// fault-free.
fn arm_fault_plan_or_exit() {
    if let Err(msg) = fault::install_from_env() {
        eprintln!("{msg}");
        std::process::exit(2);
    }
}

/// Writes `bytes` to `path` via a sibling temp file + atomic rename, so a
/// killed process never leaves a torn figure on disk.
fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path).inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })
}

/// Entry point for the thin per-experiment binaries: parse the unified CLI,
/// install the persistent cache (unless `--no-cache`), run this
/// experiment's plan, print the reported table. A failed job prints a
/// structured failure summary and exits 1 instead of unwinding.
pub fn experiment_main(name: &str) {
    let exp = find(name).unwrap_or_else(|| panic!("{name} is not a registered experiment"));
    let cli = cli::parse_or_exit(name);
    arm_fault_plan_or_exit();
    if !cli.no_cache {
        runcache::install_default();
    }
    let jobs = (exp.plan)(cli.scale);
    let outputs = try_run_jobs_outputs(&jobs, cli.threads);
    let errors: Vec<&JobError> = outputs.iter().filter_map(|r| r.as_ref().err()).collect();
    if !errors.is_empty() {
        eprintln!("{name}: {} job(s) failed:", errors.len());
        for e in errors {
            eprintln!("  {e}");
        }
        std::process::exit(1);
    }
    let ok: Vec<JobOutput> = outputs
        .into_iter()
        .map(|r| r.expect("checked above"))
        .collect();
    let table = (exp.report)(&ok);
    if cli.csv {
        print!("{}", table.to_csv());
    } else {
        print!("{}", render_titled(exp.title, &table));
    }
}

/// Entry point for `exp_all`: runs the whole registry through one planner
/// pass and writes each figure to `results/<name>.txt` (and `.csv` when
/// `--csv` is given), byte-identical to what the standalone binary prints.
///
/// Fault tolerance: a panicking job fails only the experiments whose plans
/// contain it — every other figure is still written (atomically, so a
/// killed process never leaves a torn figure) — and the run exits 1 with a
/// structured per-figure failure summary on stderr. A killed run resumes
/// on re-invocation through the persistent cache plus the suite journal.
///
/// Fleet modes (see `EXPERIMENTS.md` for the multi-machine runbook):
///
/// * *(default)* — coordinator: compact the shared journal, then plan, run
///   and report everything in this process.
/// * `--worker` — work-steal the deduplicated job set through the shared
///   cache directory's lease protocol; populate entries, write no figures.
/// * `--shard I/N` — like `--worker`, restricted to deterministic
///   cost-balanced shard `I` of `N` (see [`shard_jobs`]).
/// * `--finalize [--wait SECS] [--verify DIR]` — wait for the job set to
///   complete, render every figure from the merged cache, optionally
///   assert per-figure byte-identity against a reference directory.
///
/// Extra flags:
///
/// * `--expect-cached` exits non-zero if any simulation actually executed —
///   the CI hook asserting a warm re-run is a pure cache replay.
/// * `--expect-resumable` exits non-zero if any job recorded in the suite
///   journal (i.e. completed *and persisted* by an earlier, possibly
///   killed, run) was re-simulated — the explicit resume contract.
/// * `--max-retries N` bounds worker-mode transient-fault retries.
///
/// Exit codes: `0` success, [`EXIT_JOB_FAILURE`], [`EXIT_USAGE`],
/// [`EXIT_INCOMPLETE_JOURNAL`], [`EXIT_MERGE_MISMATCH`].
pub fn suite_main() {
    let opts = match cli::parse_suite(std::env::args().skip(1)) {
        Ok(opts) => opts,
        Err(cli::CliError::Help) => {
            println!("{}", cli::suite_usage());
            return;
        }
        Err(cli::CliError::Invalid(msg)) => {
            eprintln!("{msg}");
            eprintln!("{}", cli::suite_usage());
            std::process::exit(EXIT_USAGE);
        }
    };
    arm_fault_plan_or_exit();
    if !opts.cli.no_cache {
        runcache::install_default();
    }
    match opts.mode {
        FleetMode::Worker | FleetMode::Shard { .. } => worker_main(&opts),
        FleetMode::Finalize => finalize_main(&opts),
        FleetMode::Coordinator => coordinator_main(&opts),
    }
}

/// The `--worker` / `--shard I/N` entry: populate the shared cache
/// directory (work-stealing through the lease protocol), print the
/// structured per-worker summary, write no figures.
fn worker_main(opts: &SuiteOptions) -> ! {
    let plan = plan_suite(opts.cli.scale);
    let jobs = match opts.mode {
        FleetMode::Shard { index, count } => {
            let shard = shard_jobs(&plan.jobs, index, count);
            println!(
                "shard {index}/{count}: {} of {} unique job(s)",
                shard.len(),
                count_unique(&plan.jobs)
            );
            shard
        }
        _ => unique_jobs(&plan.jobs),
    };
    let mut policy = RetryPolicy::default();
    if let Some(n) = opts.max_retries {
        policy.max_retries = n;
    }
    let start = std::time::Instant::now();
    let report = run_workers(&jobs, &policy, opts.cli.threads);
    println!("{report} wall={:.1}s", start.elapsed().as_secs_f64());
    if !report.failures.is_empty() {
        eprintln!("worker failure summary ({} job(s)):", report.failures.len());
        for e in &report.failures {
            eprintln!("  {e}");
        }
        std::process::exit(EXIT_JOB_FAILURE);
    }
    std::process::exit(0);
}

/// The `--finalize` entry: wait (up to `--wait`) until every unique job of
/// the suite is present in the shared directory — journaled, or loadable
/// for a job whose journal line was lost to a crash — then render every
/// figure from the merged cache and, with `--verify DIR`, assert each
/// written figure is byte-identical to the reference copy.
///
/// Exit codes, most specific first: [`EXIT_INCOMPLETE_JOURNAL`] if the job
/// set never completed, [`EXIT_JOB_FAILURE`] if rendering hit failed jobs,
/// [`EXIT_MERGE_MISMATCH`] if any figure differed from the reference.
fn finalize_main(opts: &SuiteOptions) -> ! {
    let Some(cache) = runcache::active() else {
        eprintln!("--finalize needs the persistent cache (drop --no-cache)");
        std::process::exit(EXIT_USAGE);
    };
    let plan = plan_suite(opts.cli.scale);
    let needed = unique_jobs(&plan.jobs);
    let deadline = std::time::Instant::now() + opts.wait;
    loop {
        let journaled = cache.journal_entries();
        let missing: Vec<String> = needed
            .iter()
            .filter_map(|job| {
                let fp = effective_fingerprint(&job.config, job.scheme);
                let stem = runcache::entry_stem(fp, job.scheme, job.app, job.scale);
                let present = journaled.contains(&stem)
                    || cache.load(fp, job.scheme, job.app, job.scale).is_some();
                (!present).then_some(stem)
            })
            .collect();
        if missing.is_empty() {
            break;
        }
        if std::time::Instant::now() >= deadline {
            eprintln!(
                "--finalize: job set incomplete after {}s: {} of {} job(s) missing:",
                opts.wait.as_secs(),
                missing.len(),
                needed.len()
            );
            for stem in missing.iter().take(10) {
                eprintln!("  {stem}");
            }
            if missing.len() > 10 {
                eprintln!("  ... and {} more", missing.len() - 10);
            }
            std::process::exit(EXIT_INCOMPLETE_JOURNAL);
        }
        std::thread::sleep(Duration::from_millis(200));
    }
    println!(
        "finalize: all {} unique job(s) present; rendering figures",
        needed.len()
    );
    let run = run_suite(opts.cli.experiment_options());
    let dir = write_figures(&run, opts);
    let failures = run.failures();
    if !failures.is_empty() {
        eprintln!(
            "failure summary ({} figure(s) not written):",
            failures.len()
        );
        for (name, errs) in &failures {
            eprintln!("  {name}: {} failed job(s)", errs.len());
            for e in *errs {
                eprintln!("    {e}");
            }
        }
        std::process::exit(EXIT_JOB_FAILURE);
    }
    if let Some(reference) = &opts.verify {
        let mut mismatched = 0usize;
        for exp in REGISTRY {
            let mut names = vec![format!("{}.txt", exp.name)];
            if opts.cli.csv {
                names.push(format!("{}.csv", exp.name));
            }
            for name in names {
                let ours = std::fs::read(dir.join(&name)).ok();
                let theirs = std::fs::read(reference.join(&name)).ok();
                if ours != theirs || ours.is_none() {
                    eprintln!(
                        "--verify: {name} differs from {}",
                        reference.join(&name).display()
                    );
                    mismatched += 1;
                }
            }
        }
        if mismatched > 0 {
            eprintln!("--verify: {mismatched} figure file(s) mismatched");
            std::process::exit(EXIT_MERGE_MISMATCH);
        }
        println!(
            "verify: every figure byte-identical to {}",
            reference.display()
        );
    }
    std::process::exit(0);
}

/// Writes every successfully reported figure of `run` to the results
/// directory (atomically); exits [`EXIT_JOB_FAILURE`] on an unwritable
/// directory. Returns the directory.
fn write_figures(run: &SuiteRun, opts: &SuiteOptions) -> PathBuf {
    let dir = results_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!(
            "error: cannot create results directory {} ({e}); \
             set {RESULTS_ENV_VAR} to a writable location",
            dir.display()
        );
        std::process::exit(EXIT_JOB_FAILURE);
    }
    for (exp, table) in REGISTRY.iter().zip(&run.tables) {
        let Ok(table) = table else {
            continue; // summarized by the caller; unaffected figures land
        };
        let path = dir.join(format!("{}.txt", exp.name));
        let mut wrote = write_atomic(&path, render_titled(exp.title, table).as_bytes());
        if opts.cli.csv && wrote.is_ok() {
            let path = dir.join(format!("{}.csv", exp.name));
            wrote = write_atomic(&path, table.to_csv().as_bytes());
        }
        if let Err(e) = wrote {
            eprintln!(
                "error: cannot write figure {} ({e}); \
                 set {RESULTS_ENV_VAR} to a writable location",
                path.display()
            );
            std::process::exit(EXIT_JOB_FAILURE);
        }
        println!("wrote {}", path.display());
    }
    dir
}

/// The historical single-process entry: plan, run, report — now also the
/// fleet *coordinator*, which compacts the shared journal at startup.
fn coordinator_main(opts: &SuiteOptions) -> ! {
    if let Some(cache) = runcache::active() {
        match cache.compact_journal() {
            Ok(0) => {}
            Ok(removed) => println!("journal: compacted ({removed} duplicate/torn line(s))"),
            Err(e) => eprintln!("warning: journal compaction failed ({e}); continuing"),
        }
    }

    // Snapshot the journal before running: these jobs were completed and
    // persisted by an earlier run (possibly one that was killed mid-suite),
    // so this run must replay — not re-simulate — them.
    let journaled_before: HashSet<String> = runcache::active()
        .map(|c| c.journal_entries())
        .unwrap_or_default();
    if !journaled_before.is_empty() {
        println!(
            "resume: {} job(s) journaled by earlier runs will replay from cache",
            journaled_before.len()
        );
    }

    let start = std::time::Instant::now();
    let run = run_suite(opts.cli.experiment_options());
    write_figures(&run, opts);
    let failures = run.failures();
    let failed_jobs: usize = failures.iter().map(|(_, errs)| errs.len()).sum();
    println!(
        "suite: {} experiments, {} runs requested, {} unique after dedup, {} simulated, \
         {} failed, {:.1}s",
        REGISTRY.len(),
        run.total_requested,
        run.unique,
        run.executed,
        failed_jobs,
        start.elapsed().as_secs_f64(),
    );

    let mut exit_code = 0;
    if !failures.is_empty() {
        exit_code = EXIT_JOB_FAILURE;
        eprintln!(
            "failure summary ({} figure(s) not written):",
            failures.len()
        );
        for (name, errs) in &failures {
            eprintln!("  {name}: {} failed job(s)", errs.len());
            for e in *errs {
                eprintln!("    {e}");
            }
        }
    }
    if opts.expect_cached && run.executed != 0 {
        eprintln!(
            "--expect-cached: expected a pure cache replay but {} simulation(s) executed",
            run.executed
        );
        exit_code = EXIT_JOB_FAILURE;
    }
    if opts.expect_resumable {
        let re_simulated: Vec<String> = executed_entry_stems()
            .into_iter()
            .filter(|stem| journaled_before.contains(stem))
            .collect();
        if !re_simulated.is_empty() {
            eprintln!(
                "--expect-resumable: {} journaled job(s) were re-simulated instead of replayed:",
                re_simulated.len()
            );
            for stem in re_simulated {
                eprintln!("  {stem}");
            }
            exit_code = EXIT_JOB_FAILURE;
        }
    }
    std::process::exit(exit_code);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_and_titles_are_unique() {
        let mut names = std::collections::HashSet::new();
        let mut titles = std::collections::HashSet::new();
        for exp in REGISTRY {
            assert!(names.insert(exp.name), "duplicate name {}", exp.name);
            assert!(titles.insert(exp.title), "duplicate title {}", exp.title);
        }
        assert_eq!(REGISTRY.len(), 20);
    }

    #[test]
    fn suite_plan_sections_tile_the_job_list() {
        let plan = plan_suite(Scale::Tiny);
        let mut cursor = 0;
        for range in &plan.sections {
            assert_eq!(range.start, cursor);
            cursor = range.end;
        }
        assert_eq!(cursor, plan.jobs.len());
        // The whole point of the planner: the suite shares heavily.
        assert!(
            count_unique(&plan.jobs) < plan.jobs.len(),
            "cross-experiment dedup must fold something"
        );
    }

    #[test]
    fn titled_rendering_matches_the_historical_binary_output() {
        let mut table = Table::new(["a", "b"]);
        table.row(["1", "2"]);
        let s = render_titled("Fig. X (test)", &table);
        assert!(s.starts_with("=== Fig. X (test) ===\n"));
        assert!(s.ends_with("\n\n"), "banner + table + trailing blank line");
    }
}
