//! Deterministic parallel fan-out of simulation runs.

use crate::{run_app, RunResult, Scheme, SystemConfig};
use ehs_workloads::{AppId, Scale};
use parking_lot::Mutex;

/// One run request.
#[derive(Debug, Clone, PartialEq)]
pub struct Job {
    /// Platform configuration.
    pub config: SystemConfig,
    /// Scheme to simulate.
    pub scheme: Scheme,
    /// Application.
    pub app: AppId,
    /// Workload scale.
    pub scale: Scale,
}

/// Runs all jobs, fanning out across `threads` OS threads (scoped via
/// crossbeam), and returns results in the same order as the input —
/// parallelism never changes the output.
pub fn run_jobs(jobs: &[Job], threads: usize) -> Vec<RunResult> {
    assert!(threads >= 1, "need at least one thread");
    let results: Vec<Mutex<Option<RunResult>>> =
        jobs.iter().map(|_| Mutex::new(None)).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    crossbeam::scope(|scope| {
        for _ in 0..threads.min(jobs.len().max(1)) {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let job = &jobs[i];
                let result = run_app(&job.config, job.scheme, job.app, job.scale);
                *results[i].lock() = Some(result);
            });
        }
    })
    .expect("simulation threads must not panic");
    results
        .into_iter()
        .map(|m| m.into_inner().expect("every job ran"))
        .collect()
}

/// Convenience: runs every app of the paper's suite under each scheme and
/// returns results indexed `[scheme][app]` in input order.
pub fn run_matrix(
    config: &SystemConfig,
    schemes: &[Scheme],
    apps: &[AppId],
    scale: Scale,
    threads: usize,
) -> Vec<Vec<RunResult>> {
    let jobs: Vec<Job> = schemes
        .iter()
        .flat_map(|&scheme| {
            apps.iter().map(move |&app| Job {
                config: config.clone(),
                scheme,
                app,
                scale,
            })
        })
        .collect();
    let flat = run_jobs(&jobs, threads);
    flat.chunks(apps.len()).map(<[RunResult]>::to_vec).collect()
}

/// Geometric mean of an iterator of positive factors (the paper reports
/// mean speedups across the 20 applications).
pub fn geomean(xs: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for x in xs {
        assert!(x > 0.0, "geomean needs positive values");
        log_sum += x.ln();
        n += 1;
    }
    if n == 0 {
        1.0
    } else {
        (log_sum / n as f64).exp()
    }
}

/// Runs `scheme` vs. [`Scheme::Baseline`] over `apps` for several trace
/// seeds and returns the seed-averaged geomean speedup — the noise-reduced
/// headline number (single-seed outage schedules carry real variance; the
/// paper's hours-long runs average it out intrinsically).
pub fn mean_speedup_over_seeds(
    config: &SystemConfig,
    scheme: Scheme,
    apps: &[AppId],
    scale: Scale,
    seeds: &[u64],
    threads: usize,
) -> f64 {
    assert!(!seeds.is_empty(), "need at least one seed");
    let per_seed: Vec<f64> = seeds
        .iter()
        .map(|&seed| {
            let mut config = config.clone();
            if let crate::SourceKind::Preset { preset, scale, .. } = config.source {
                config.source = crate::SourceKind::Preset {
                    preset,
                    seed,
                    scale,
                };
            }
            let results = run_matrix(&config, &[Scheme::Baseline, scheme], apps, scale, threads);
            geomean(
                results[0]
                    .iter()
                    .zip(&results[1])
                    .map(|(b, r)| b.total_time() / r.total_time()),
            )
        })
        .collect();
    geomean(per_seed)
}

/// Default worker-thread count: all but one hardware thread.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().saturating_sub(1).max(1))
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_identity_is_one() {
        assert!((geomean([1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((geomean(std::iter::empty()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_matches_hand_computation() {
        let g = geomean([2.0, 8.0]);
        assert!((g - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_nonpositive() {
        let _ = geomean([1.0, 0.0]);
    }

    #[test]
    fn run_jobs_preserves_input_order() {
        let config = SystemConfig::paper_default();
        let jobs: Vec<Job> = [AppId::Crc32, AppId::Bitcount]
            .iter()
            .map(|&app| Job {
                config: config.clone(),
                scheme: Scheme::Baseline,
                app,
                scale: Scale::Tiny,
            })
            .collect();
        let results = run_jobs(&jobs, 2);
        assert_eq!(results[0].app, AppId::Crc32);
        assert_eq!(results[1].app, AppId::Bitcount);
    }

    #[test]
    fn seed_averaging_returns_a_sane_factor() {
        let config = SystemConfig::paper_default();
        let speedup = mean_speedup_over_seeds(
            &config,
            Scheme::Edbp,
            &[AppId::Crc32],
            Scale::Tiny,
            &[1, 2],
            2,
        );
        assert!((0.5..2.0).contains(&speedup), "speedup {speedup}");
    }
}
