//! Deterministic parallel fan-out of simulation runs, with process-wide
//! memoization, cost-aware scheduling and an optional persistent result
//! cache.
//!
//! # Memoization
//!
//! Experiment drivers repeat identical runs constantly: every figure's
//! matrix re-runs the baseline column, `mean_speedup_over_seeds` shares its
//! baseline runs with the headline matrix, the sensitivity sweeps
//! (Figs. 10–17) all contain the paper-default point, and the Ideal
//! scheme's oracle pass *is* a baseline run. [`run_jobs`] therefore caches
//! results in a process-wide table keyed by the **effective** configuration
//! fingerprint (see [`effective_fingerprint`]) plus (scheme, app, scale):
//!
//! * A `Baseline` job always runs with a passive generation recorder
//!   attached and stores both the result and the trace — so the Ideal
//!   scheme's oracle pass and the baseline column of the same matrix are
//!   **one** execution ([`baseline_executions`] counts them).
//! * Concurrent requests for the same key block on one `OnceLock`; the
//!   duplicate is never executed.
//! * A cache hit returns the stored result with [`RunResult::sim_mips`]
//!   zeroed (wall-clock throughput is meaningless for a lookup); `sim_mips`
//!   is excluded from `PartialEq`, so memoized and fresh results compare
//!   equal — the determinism tests rely on exactly that.
//! * When a binary has installed the persistent cache
//!   ([`crate::runcache::install`]), a first-touch key is looked up on disk
//!   before simulating, and a fresh execution is stored back — so a second
//!   process replays instead of re-simulating. The library default is
//!   *no* disk cache; tests and library callers run purely in-process.
//!
//! [`run_app`] remains uncached for callers that want a guaranteed fresh
//! execution (e.g. throughput measurement).
//!
//! # Scheduling
//!
//! [`run_jobs`] executes its internal work queue longest-estimated-first
//! (see [`Job::estimated_cost`]) so a `Full`-scale straggler cannot land
//! last on an otherwise-drained pool, while results are still returned in
//! input order — scheduling never changes the output.
//!
//! # Lockstep groups
//!
//! Jobs that share one raw configuration fingerprint, app and scale — the
//! common shape of every figure's scheme matrix — are one workload replay
//! observed under different predictors. [`try_run_jobs_outputs`] detects
//! such partitions with at least two distinct schemes and runs them as a
//! **lockstep group**: one fully monomorphized lane per scheme (see
//! [`crate::build_lane`]), all lanes advancing over the shared workload in
//! committed-instruction rounds. Because [`Simulation::advance_until`]
//! never truncates a burst at its target, every lane's result is
//! bit-identical to an independent run (the `lockstep` differential suite
//! asserts it). The `Ideal` scheme never joins a group — its oracle pass
//! resolves through the baseline's memoized trace as before. Setting the
//! environment variable [`NO_LOCKSTEP_ENV`]`=1` disables grouping.
//!
//! Execution is gated by a process-wide *claim table*, not by the memo
//! slots themselves: whoever claims a key (a singleton job or one lane of
//! a group) is its unique producer; everyone else waits for the slot. A
//! producer that panics releases its claim with the slot still empty, so
//! the next request retries — the containment story is unchanged.
//!
//! # Fault containment
//!
//! A panicking job is a *result*, not a process event: workers catch the
//! unwind and [`try_run_jobs_outputs`] returns a [`JobError`] in that job's
//! slot while every other job completes normally (in a lockstep group, a
//! panicking lane fails exactly its own scheme's jobs). No table in this
//! module can stay poisoned (see `lock_unpoisoned`), and an abandoned memo
//! slot is retried by the next request for the same key. The deterministic
//! fault-injection harness ([`crate::fault`]) exercises these paths.

use crate::{
    config_fingerprint, fault, runcache, LaneRun, RunResult, Scheme, SystemConfig, ZombieSample,
};
use edbp_core::{EdbpConfig, GenerationTrace};
use ehs_cache::Cache;
use ehs_workloads::{build, AppId, Scale, Workload};
use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};

/// Locks `m`, recovering the data if a previous holder panicked.
///
/// Every table in this module is a grow-only map (or an append-only vec)
/// whose entries are only ever *inserted whole*: a panic while the lock is
/// held can at worst lose the insertion in flight, never leave a partial
/// entry. Recovering is therefore always sound — and mandatory, because a
/// single panicking job must not wedge every later suite in the process
/// behind a poisoned mutex (the pre-fault-tolerance latency bomb).
pub(crate) fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One run request. The configuration is shared by `Arc`, so fanning a
/// matrix out over hundreds of jobs clones a pointer, not the config.
#[derive(Debug, Clone, PartialEq)]
pub struct Job {
    /// Platform configuration (shared, immutable).
    pub config: Arc<SystemConfig>,
    /// Scheme to simulate.
    pub scheme: Scheme,
    /// Application.
    pub app: AppId,
    /// Workload scale.
    pub scale: Scale,
}

impl Job {
    /// Estimated relative cost of this job, for longest-first scheduling.
    ///
    /// The model is `committed-instructions(app at Tiny) × scale ×
    /// scheme × stepping` where the per-app term is the committed count
    /// *measured* at `Tiny` scale (the `BENCH_hotloop.json` instrumentation
    /// runs), the scale term follows the pass ratio (Tiny 1, Small 8,
    /// Full 80), the scheme term reflects predictor bookkeeping (and the
    /// Ideal scheme's extra oracle pass), and zombie-instrumented or
    /// forced-cycle-accurate configs pay the ~6× cost of not burst-stepping.
    /// Only the *ordering* of estimates matters; absolute values are
    /// unitless.
    pub fn estimated_cost(&self) -> f64 {
        let stepping =
            if self.config.zombie_sample_interval.is_some() || self.config.force_cycle_accurate {
                6.0
            } else {
                1.0
            };
        app_cost_weight(self.app)
            * scale_cost_weight(self.scale)
            * scheme_cost_weight(self.scheme)
            * stepping
    }
}

/// Committed instructions per app at `Tiny` scale, measured on the
/// paper-default configuration (the per-app term of the cost model).
fn app_cost_weight(app: AppId) -> f64 {
    let committed: u64 = match app {
        AppId::AdpcmEnc => 9_998,
        AppId::AdpcmDec => 4_878,
        AppId::Crc32 => 11_278,
        AppId::Sha => 21_266,
        AppId::Dijkstra => 52_244,
        AppId::Patricia => 63_376,
        AppId::StringSearch => 7_182,
        AppId::Bitcount => 94_222,
        AppId::BasicMath => 87_826,
        AppId::Qsort => 49_172,
        AppId::SusanSmoothing => 17_876,
        AppId::SusanEdges => 19_988,
        AppId::SusanCorners => 23_828,
        AppId::Fft => 13_308,
        AppId::Ifft => 13_308,
        AppId::JpegEnc => 60_468,
        AppId::JpegDec => 43_046,
        AppId::GsmEnc => 48_438,
        AppId::GsmDec => 25_638,
        AppId::Mpeg2Dec => 47_906,
    };
    committed as f64
}

fn scale_cost_weight(scale: Scale) -> f64 {
    match scale {
        Scale::Tiny => 1.0,
        Scale::Small => 8.0,
        Scale::Full => 80.0,
    }
}

fn scheme_cost_weight(scheme: Scheme) -> f64 {
    match scheme {
        Scheme::Ideal => 2.05,
        Scheme::DecayEdbp | Scheme::AmcEdbp => 1.25,
        Scheme::Edbp => 1.2,
        Scheme::Sdbp => 1.15,
        Scheme::Decay | Scheme::Amc => 1.1,
        Scheme::Baseline | Scheme::LeakageOff80 => 1.0,
    }
}

/// The memoization (and persistent-cache) fingerprint of `config` *as
/// observed by* `scheme`.
///
/// Two configurations that cannot change the simulated outcome under the
/// given scheme must share a key, or cross-experiment dedup misses real
/// sharing. The raw [`config_fingerprint`] hashes every field, so this
/// canonicalizes the one field with scheme-dependent reach before hashing:
///
/// * `config.edbp` is cleared for schemes that build no EDBP predictor
///   (`!scheme.uses_edbp()`): nothing in such a simulation reads it.
/// * An explicit `Some(cfg)` equal to the derived default
///   ([`EdbpConfig::for_cache`] of the data cache) is cleared too — the
///   simulator's fallback produces exactly that value — **unless** an
///   instruction-cache predictor is also built (`predict_icache` on an SRAM
///   icache), because the icache predictor's own fallback derives from the
///   *icache* geometry, so the explicit value is observable there.
///
/// The equivalence is pinned by a differential test
/// (`explicit_default_edbp_config_is_equivalent`).
pub fn effective_fingerprint(config: &SystemConfig, scheme: Scheme) -> u64 {
    if let Some(explicit) = &config.edbp {
        let drop = if scheme.uses_edbp() {
            let icache_predictor = config.predict_icache && !config.icache_tech.is_nonvolatile();
            !icache_predictor && *explicit == EdbpConfig::for_cache(&Cache::new(config.dcache))
        } else {
            true
        };
        if drop {
            let mut canonical = config.clone();
            canonical.edbp = None;
            return config_fingerprint(&canonical);
        }
    }
    config_fingerprint(config)
}

#[derive(Clone, PartialEq, Eq, Hash)]
struct MemoKey {
    config_fp: u64,
    scheme: Scheme,
    app: AppId,
    scale: Scale,
}

struct MemoEntry {
    result: RunResult,
    /// Generation trace, recorded on every *executed* Baseline run so the
    /// Ideal scheme can reuse the same execution. Empty when the entry was
    /// replayed from the persistent cache (the trace is not persisted);
    /// refilled lazily by [`baseline_trace`] if an Ideal run needs it.
    trace: OnceLock<Arc<GenerationTrace>>,
    /// Zombie samples; `Some` exactly when the config was instrumented
    /// ([`SystemConfig::zombie_sample_interval`]).
    zombies: Option<Arc<Vec<ZombieSample>>>,
}

type Slot = Arc<OnceLock<MemoEntry>>;

static MEMO: OnceLock<Mutex<HashMap<MemoKey, Slot>>> = OnceLock::new();
/// Baseline keys whose generation trace some planned Ideal job will consume.
/// Registered by [`run_jobs_outputs`] before any job runs, so the one
/// baseline execution doubles as the oracle pass. Baselines outside this set
/// skip the recorder entirely — recording is passive but not free, and
/// retaining hundreds of unneeded traces for the whole suite run costs real
/// memory. A late, unregistered Ideal request is still correct: it refills
/// the trace lazily via [`baseline_trace`] at the price of one extra run.
static TRACE_WANTED: OnceLock<Mutex<HashSet<MemoKey>>> = OnceLock::new();
static BASELINE_EXECUTIONS: AtomicU64 = AtomicU64::new(0);
static SIM_EXECUTIONS: AtomicU64 = AtomicU64::new(0);

/// Number of actual (non-memoized) baseline simulations executed by the
/// memoization layer since process start. Test hook for the "an Ideal
/// matrix runs the baseline exactly once per (app, config, seed)" property.
pub fn baseline_executions() -> u64 {
    BASELINE_EXECUTIONS.load(Ordering::Relaxed)
}

/// Number of actual simulations (any scheme, including oracle-trace
/// refills) executed by the memoization layer since process start. Memo
/// hits and persistent-cache replays do not count — which is exactly what
/// the planner's dedup accounting and the warm-cache CI check measure.
pub fn simulations_executed() -> u64 {
    SIM_EXECUTIONS.load(Ordering::Relaxed)
}

fn memo_slot(key: MemoKey) -> Slot {
    lock_unpoisoned(MEMO.get_or_init(Mutex::default))
        .entry(key)
        .or_default()
        .clone()
}

/// Process-wide execution claims. A claimed key has exactly one producer
/// — a singleton job or one lane of a lockstep group — and the claim, not
/// the memo slot, is the execution gate (a lockstep group must fill
/// several slots from one driving loop, which `OnceLock::get_or_init`
/// cannot express). Producers fill the slot *before* releasing the claim,
/// so a waiter that observes a free key re-checks the slot and either
/// reads the entry or inherits the retry of a panicked producer.
struct ClaimTable {
    held: Mutex<HashSet<MemoKey>>,
    freed: Condvar,
}

fn claims() -> &'static ClaimTable {
    static CLAIMS: OnceLock<ClaimTable> = OnceLock::new();
    CLAIMS.get_or_init(|| ClaimTable {
        held: Mutex::default(),
        freed: Condvar::new(),
    })
}

/// Releases its key on drop — including a drop by unwinding, so a
/// panicked execution leaves the key claimable and its slot empty, and
/// the next request simply retries (the fault-containment contract).
struct KeyClaim {
    key: MemoKey,
}

impl Drop for KeyClaim {
    fn drop(&mut self) {
        let table = claims();
        lock_unpoisoned(&table.held).remove(&self.key);
        table.freed.notify_all();
    }
}

/// Claims `key`, blocking while another thread holds it. Returns `None`
/// without claiming if `slot` was (or got) filled while waiting — the
/// caller reads the entry instead of producing one.
fn claim_blocking(slot: &Slot, key: &MemoKey) -> Option<KeyClaim> {
    let table = claims();
    let mut held = lock_unpoisoned(&table.held);
    loop {
        if slot.get().is_some() {
            return None;
        }
        if !held.contains(key) {
            held.insert(key.clone());
            return Some(KeyClaim { key: key.clone() });
        }
        held = table
            .freed
            .wait(held)
            .unwrap_or_else(PoisonError::into_inner);
    }
}

/// Non-blocking [`claim_blocking`]: `None` means the slot is already
/// filled or someone else holds the claim. Lockstep groups use this so a
/// group never waits while holding other lanes' claims (no lock-order
/// cycles between groups that share keys); a lane lost this way is
/// resolved through the ordinary blocking path when the member job's
/// output is read.
fn claim_now(slot: &Slot, key: &MemoKey) -> Option<KeyClaim> {
    let table = claims();
    let mut held = lock_unpoisoned(&table.held);
    if slot.get().is_some() || held.contains(key) {
        return None;
    }
    held.insert(key.clone());
    Some(KeyClaim { key: key.clone() })
}

/// Built workloads, one per (app, scale). Synthesizing an instruction trace
/// is pure but not free; across a deduplicated suite pass every simulation
/// shares the one build (a [`Workload`] clone only bumps the program's
/// refcount).
static WORKLOADS: OnceLock<Mutex<HashMap<(AppId, Scale), Workload>>> = OnceLock::new();

/// The memoized build of `app` at `scale`.
pub(crate) fn cached_workload(app: AppId, scale: Scale) -> Workload {
    lock_unpoisoned(WORKLOADS.get_or_init(Mutex::default))
        .entry((app, scale))
        .or_insert_with(|| build(app, scale))
        .clone()
}

fn baseline_key(config: &SystemConfig, app: AppId, scale: Scale) -> MemoKey {
    MemoKey {
        config_fp: effective_fingerprint(config, Scheme::Baseline),
        scheme: Scheme::Baseline,
        app,
        scale,
    }
}

/// Marks the baseline runs whose traces the given jobs' Ideal runs consume.
fn register_trace_demands(jobs: &[Job]) {
    let wanted: Vec<MemoKey> = jobs
        .iter()
        .filter(|j| j.scheme.needs_oracle_trace())
        .map(|j| baseline_key(&j.config, j.app, j.scale))
        .collect();
    if !wanted.is_empty() {
        lock_unpoisoned(TRACE_WANTED.get_or_init(Mutex::default)).extend(wanted);
    }
}

fn trace_wanted(key: &MemoKey) -> bool {
    TRACE_WANTED
        .get()
        .is_some_and(|set| lock_unpoisoned(set).contains(key))
}

/// Entry stems (see [`runcache::entry_stem`]) of every simulation this
/// process actually executed, for the planner's resume accounting.
static EXECUTED_STEMS: OnceLock<Mutex<Vec<String>>> = OnceLock::new();

/// The cache-entry stems of every simulation executed (not memo- or
/// cache-replayed) by this process, in completion order. The planner's
/// `--expect-resumable` check cross-references these against the suite
/// journal: a journaled job that shows up here was lost and re-simulated —
/// a broken resume contract.
pub fn executed_entry_stems() -> Vec<String> {
    EXECUTED_STEMS
        .get()
        .map(|v| lock_unpoisoned(v).clone())
        .unwrap_or_default()
}

fn record_executed(config_fp: u64, scheme: Scheme, app: AppId, scale: Scale) {
    lock_unpoisoned(EXECUTED_STEMS.get_or_init(Mutex::default))
        .push(runcache::entry_stem(config_fp, scheme, app, scale));
}

/// Performs one real simulation for the memo table (never consults it).
fn execute(config: &SystemConfig, scheme: Scheme, app: AppId, scale: Scale) -> MemoEntry {
    fault::on_execute(config.zombie_sample_interval.is_some());
    SIM_EXECUTIONS.fetch_add(1, Ordering::Relaxed);
    let workload = cached_workload(app, scale);
    let (oracle_trace, with_recorder) = match scheme {
        Scheme::Baseline => {
            BASELINE_EXECUTIONS.fetch_add(1, Ordering::Relaxed);
            // Record the generation trace iff some planned Ideal job consumes
            // it (the recorder is passive — bit-identical result — so the
            // execution doubles as the oracle pass). Unwanted traces are
            // skipped: recording and retaining them for every baseline in
            // the suite costs time and memory for nothing.
            (None, trace_wanted(&baseline_key(config, app, scale)))
        }
        Scheme::Ideal => {
            // The oracle pass is a baseline run — share it through the
            // cache instead of executing a private one.
            let trace = baseline_trace(config, app, scale);
            (Some((*trace).clone()), false)
        }
        _ => (None, false),
    };
    let lane = crate::build_lane(config, scheme, workload, oracle_trace, with_recorder)
        .unwrap_or_else(|e| panic!("invalid energy configuration: {e}"));
    let outcome = crate::run_lane(lane);
    MemoEntry {
        result: outcome.result,
        trace: match outcome.trace {
            Some(t) => OnceLock::from(Arc::new(t)),
            None => OnceLock::new(),
        },
        zombies: config
            .zombie_sample_interval
            .is_some()
            .then(|| Arc::new(outcome.zombie_samples)),
    }
}

/// How long to wait for another process's claimed entry to land before
/// simulating it ourselves anyway. Sized for the short jobs that dominate
/// shared-cache suites; a longer job simply gets (safely) duplicated.
const CLAIM_WAIT: std::time::Duration = std::time::Duration::from_secs(5);

fn entry_from_hit(hit: runcache::CachedRun) -> MemoEntry {
    MemoEntry {
        result: hit.result,
        trace: OnceLock::new(),
        zombies: hit.zombie_samples.map(Arc::new),
    }
}

/// Resolves one key: memo table first, then the persistent cache (if one
/// is installed), then a real execution (stored back to the persistent
/// cache). Returns the initialized slot plus whether *this call* simulated.
///
/// With a persistent cache installed, an advisory per-entry claim
/// coordinates concurrent harness *processes*: a first-touch miss claims
/// the entry before simulating; finding someone else's fresh claim waits
/// briefly for their store to land instead of duplicating the run.
fn resolve(config: &SystemConfig, scheme: Scheme, app: AppId, scale: Scale) -> (Slot, bool) {
    let config_fp = effective_fingerprint(config, scheme);
    let key = MemoKey {
        config_fp,
        scheme,
        app,
        scale,
    };
    let slot = memo_slot(key.clone());
    if slot.get().is_some() {
        return (slot, false);
    }
    let Some(claim) = claim_blocking(&slot, &key) else {
        // Filled while we waited for the producer.
        return (slot, false);
    };
    // We hold the claim over an empty slot: produce the entry. (The claim
    // releases on unwind too, so a panic here leaves the key retryable.)
    let mut rc_claim = None;
    if let Some(cache) = runcache::active() {
        if let Some(hit) = cache.load(config_fp, scheme, app, scale) {
            let _ = slot.set(entry_from_hit(hit));
            return (slot, false);
        }
        match cache.claim(config_fp, scheme, app, scale) {
            runcache::ClaimOutcome::Held(guard) => {
                // Re-check under the lease: a rival process may have
                // stored (and journaled) this entry between our load
                // check and the claim.
                if let Some(hit) = cache.load(config_fp, scheme, app, scale) {
                    drop(guard);
                    let _ = slot.set(entry_from_hit(hit));
                    return (slot, false);
                }
                rc_claim = Some(guard);
            }
            runcache::ClaimOutcome::Busy => {
                if let Some(hit) = cache.wait_for_entry(config_fp, scheme, app, scale, CLAIM_WAIT) {
                    let _ = slot.set(entry_from_hit(hit));
                    return (slot, false);
                }
            }
            runcache::ClaimOutcome::Unavailable => {}
        }
    }
    let entry = execute(config, scheme, app, scale);
    record_executed(config_fp, scheme, app, scale);
    if let Some(cache) = runcache::active() {
        let stored = cache.store(
            config_fp,
            scheme,
            app,
            scale,
            &entry.result,
            entry.zombies.as_deref().map(Vec::as_slice),
        );
        // Journal only durable entries: the resume contract promises a
        // journaled job replays from disk, so a failed store must not
        // be journaled.
        if stored {
            cache.journal_append(&runcache::entry_stem(config_fp, scheme, app, scale));
        }
    }
    let _ = slot.set(entry);
    drop(rc_claim);
    drop(claim);
    (slot, true)
}

/// Runs (or recalls) one job through the memoization table.
fn run_cached(config: &SystemConfig, scheme: Scheme, app: AppId, scale: Scale) -> JobOutput {
    let (slot, ran_here) = resolve(config, scheme, app, scale);
    let entry = slot.get().expect("slot was just resolved");
    let mut result = entry.result.clone();
    if !ran_here {
        result.sim_mips = 0.0;
    }
    JobOutput {
        result,
        zombie_samples: entry.zombies.clone(),
    }
}

/// The recorded trace of the memoized baseline run for this key (executing
/// the baseline if it has not run yet). If the baseline entry was replayed
/// from the persistent cache — which does not carry traces — the baseline
/// is re-executed once with a recorder to refill it; that re-execution
/// counts in both execution counters.
fn baseline_trace(config: &SystemConfig, app: AppId, scale: Scale) -> Arc<GenerationTrace> {
    let (slot, _) = resolve(config, Scheme::Baseline, app, scale);
    let entry = slot.get().expect("slot was just resolved");
    entry
        .trace
        .get_or_init(|| {
            fault::on_execute(config.zombie_sample_interval.is_some());
            SIM_EXECUTIONS.fetch_add(1, Ordering::Relaxed);
            BASELINE_EXECUTIONS.fetch_add(1, Ordering::Relaxed);
            let (_, trace) = crate::run_baseline_with_trace(config, cached_workload(app, scale));
            Arc::new(trace)
        })
        .clone()
}

/// Everything one job's run produced.
#[derive(Debug, Clone)]
pub struct JobOutput {
    /// The run's aggregate statistics.
    pub result: RunResult,
    /// Zombie samples, shared across requesters; `Some` exactly when the
    /// job's config set [`SystemConfig::zombie_sample_interval`].
    pub zombie_samples: Option<Arc<Vec<ZombieSample>>>,
}

/// One job's failure, carried out of the worker pool instead of unwinding
/// through it. The config is identified by its effective fingerprint (the
/// memo/cache key) so the failure is attributable in a structured summary.
#[derive(Debug, Clone)]
pub struct JobError {
    /// Effective configuration fingerprint of the failed job.
    pub config_fp: u64,
    /// Scheme of the failed job.
    pub scheme: Scheme,
    /// Application of the failed job.
    pub app: AppId,
    /// Workload scale of the failed job.
    pub scale: Scale,
    /// The panic payload (or a placeholder for non-string payloads).
    pub message: String,
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} [{:016x}]: {}",
            runcache::entry_stem(self.config_fp, self.scheme, self.app, self.scale),
            self.config_fp,
            self.message
        )
    }
}

impl std::error::Error for JobError {}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panicked with a non-string payload".to_string()
    }
}

/// Environment variable that, when set to `1`, disables lockstep grouping:
/// every job simulates independently through the singleton path. The
/// differential suites use this to compare the two regimes bit-for-bit.
pub const NO_LOCKSTEP_ENV: &str = "EHS_NO_LOCKSTEP";

fn lockstep_enabled() -> bool {
    std::env::var_os(NO_LOCKSTEP_ENV).is_none_or(|v| v != "1")
}

/// One unit of worker-pool work: a single job, or a lockstep group of
/// same-(config, app, scale) job indices spanning several schemes.
enum WorkItem {
    Single(usize),
    Group(Vec<usize>),
}

impl WorkItem {
    fn estimated_cost(&self, jobs: &[Job]) -> f64 {
        match self {
            WorkItem::Single(i) => jobs[*i].estimated_cost(),
            WorkItem::Group(members) => members.iter().map(|&i| jobs[i].estimated_cost()).sum(),
        }
    }
}

/// Partitions `jobs` into work items. Jobs sharing a raw configuration
/// fingerprint, app and scale are one workload replay observed under
/// different schemes; a partition with at least two distinct schemes
/// becomes one lockstep [`WorkItem::Group`]. `Ideal` jobs never join a
/// group (their oracle pass resolves through the baseline's memoized
/// trace), and duplicate-scheme members ride along — the group's one lane
/// per scheme serves them all through the memo table.
fn plan_work(jobs: &[Job]) -> Vec<WorkItem> {
    if !lockstep_enabled() {
        return (0..jobs.len()).map(WorkItem::Single).collect();
    }
    let mut order: Vec<(u64, AppId, Scale)> = Vec::new();
    let mut parts: HashMap<(u64, AppId, Scale), Vec<usize>> = HashMap::new();
    for (i, job) in jobs.iter().enumerate() {
        if job.scheme == Scheme::Ideal {
            continue;
        }
        let part = (config_fingerprint(&job.config), job.app, job.scale);
        parts
            .entry(part)
            .or_insert_with(|| {
                order.push(part);
                Vec::new()
            })
            .push(i);
    }
    let mut items = Vec::new();
    let mut grouped = vec![false; jobs.len()];
    for part in order {
        let members = parts.remove(&part).expect("partition was just inserted");
        let schemes: HashSet<Scheme> = members.iter().map(|&i| jobs[i].scheme).collect();
        if schemes.len() >= 2 {
            for &i in &members {
                grouped[i] = true;
            }
            items.push(WorkItem::Group(members));
        }
    }
    for (i, grouped) in grouped.into_iter().enumerate() {
        if !grouped {
            items.push(WorkItem::Single(i));
        }
    }
    items
}

fn job_error(job: &Job, message: String) -> JobError {
    JobError {
        config_fp: effective_fingerprint(&job.config, job.scheme),
        scheme: job.scheme,
        app: job.app,
        scale: job.scale,
        message,
    }
}

/// Runs one singleton job with its panic contained to a [`JobError`].
///
/// Unwind safety: `run_cached` only touches the process-wide tables in
/// this module, all of which are insert-whole maps behind
/// `lock_unpoisoned` (see its contract) or claim-gated `OnceLock` slots
/// whose abandoned initialization is simply retried.
fn run_single(job: &Job) -> Result<JobOutput, JobError> {
    catch_unwind(AssertUnwindSafe(|| {
        run_cached(&job.config, job.scheme, job.app, job.scale)
    }))
    .map_err(|payload| job_error(job, panic_message(payload)))
}

/// Committed-instruction chunk in which an interleaved lockstep group's
/// lanes advance (the transposed drive rounds by the smaller
/// [`crate::system::TRANSPOSED_CHUNK`]). Mirrors the granularity of
/// [`crate::run_lockstep`]; the runner drives its own round loop so it can
/// contain each lane's panics to that lane.
const LOCKSTEP_CHUNK: u64 = 32_768;

/// Executes one lockstep group: one fully monomorphized lane per distinct
/// member scheme, all replaying the same shared workload in
/// [`LOCKSTEP_CHUNK`]-instruction rounds. Per lane, the claim/memo/
/// persistent-cache protocol matches the singleton path exactly — a lane
/// only simulates here if its key is unclaimed, unfilled and not on disk;
/// anything already produced (or being produced elsewhere) is recalled
/// through [`run_cached`] when the member outputs are read. A panicking
/// lane fails exactly its own scheme's jobs; sibling lanes complete.
fn run_group(jobs: &[Job], members: &[usize]) -> Vec<(usize, Result<JobOutput, JobError>)> {
    let first = &jobs[members[0]];
    let (config, app, scale) = (&first.config, first.app, first.scale);

    // One lane per distinct scheme, in first-appearance order.
    let mut schemes: Vec<Scheme> = Vec::new();
    for &i in members {
        if !schemes.contains(&jobs[i].scheme) {
            schemes.push(jobs[i].scheme);
        }
    }

    struct Lane {
        scheme: Scheme,
        key: MemoKey,
        slot: Slot,
        claim: KeyClaim,
        rc_claim: Option<runcache::LeaseGuard>,
        sim: Box<dyn LaneRun>,
    }

    let mut lanes: Vec<Option<Lane>> = Vec::new();
    let mut failures: HashMap<Scheme, String> = HashMap::new();
    for &scheme in &schemes {
        let config_fp = effective_fingerprint(config, scheme);
        let key = MemoKey {
            config_fp,
            scheme,
            app,
            scale,
        };
        let slot = memo_slot(key.clone());
        let Some(claim) = claim_now(&slot, &key) else {
            continue; // produced (or claimed) elsewhere
        };
        let mut rc_claim = None;
        if let Some(cache) = runcache::active() {
            if let Some(hit) = cache.load(config_fp, scheme, app, scale) {
                let _ = slot.set(entry_from_hit(hit));
                continue;
            }
            match cache.claim(config_fp, scheme, app, scale) {
                runcache::ClaimOutcome::Held(guard) => {
                    // Re-check under the lease (see `resolve`): a rival
                    // may have completed this key since our load check.
                    if let Some(hit) = cache.load(config_fp, scheme, app, scale) {
                        drop(guard);
                        let _ = slot.set(entry_from_hit(hit));
                        continue;
                    }
                    rc_claim = Some(guard);
                }
                // Another process is simulating this key; don't stall the
                // whole group on it — the member output read waits instead.
                runcache::ClaimOutcome::Busy => continue,
                runcache::ClaimOutcome::Unavailable => {}
            }
        }
        let with_recorder = scheme == Scheme::Baseline && trace_wanted(&key);
        match catch_unwind(AssertUnwindSafe(|| {
            fault::on_execute(config.zombie_sample_interval.is_some());
            SIM_EXECUTIONS.fetch_add(1, Ordering::Relaxed);
            if scheme == Scheme::Baseline {
                BASELINE_EXECUTIONS.fetch_add(1, Ordering::Relaxed);
            }
            crate::build_lane(
                config,
                scheme,
                cached_workload(app, scale),
                None,
                with_recorder,
            )
            .unwrap_or_else(|e| panic!("invalid energy configuration: {e}"))
        })) {
            Ok(sim) => lanes.push(Some(Lane {
                scheme,
                key,
                slot,
                claim,
                rc_claim,
                sim,
            })),
            Err(payload) => {
                failures.insert(scheme, panic_message(payload));
            }
        }
    }

    // Drive the lanes in lockstep rounds. `advance_until` never truncates
    // a burst at its target, so each lane's event stream — and therefore
    // its result — is bit-identical to an uninterrupted independent run;
    // the transposed mode preserves that bit-for-bit through stream replay
    // (see `Simulation::advance_replay`). Each lane's panics stay contained
    // to that lane in both modes; a recorder panic additionally discards
    // the round's half-recorded window, costing the siblings one replay
    // opportunity and nothing else.
    let wall_start = std::time::Instant::now();
    match crate::default_lockstep_mode() {
        crate::LockstepMode::Interleaved => {
            let mut target = LOCKSTEP_CHUNK;
            loop {
                let mut all_done = true;
                for entry in &mut lanes {
                    let Some(lane) = entry else { continue };
                    if lane.sim.done() {
                        continue;
                    }
                    match catch_unwind(AssertUnwindSafe(|| lane.sim.advance_until(target))) {
                        Ok(()) => all_done &= lane.sim.done(),
                        Err(payload) => {
                            // Dropping the lane releases its claims with
                            // the slot still empty: the failure stays
                            // retryable, and only this scheme's jobs
                            // report it.
                            failures.insert(lane.scheme, panic_message(payload));
                            *entry = None;
                        }
                    }
                }
                if all_done {
                    break;
                }
                target = target.saturating_add(LOCKSTEP_CHUNK);
            }
        }
        crate::LockstepMode::Transposed => {
            // The round protocol of `run_lockstep_with`, with per-lane
            // panic isolation: recorder = lowest-position eligible lane,
            // siblings inside the window replay it, ineligible lanes step
            // live, eligible lanes ahead of the window wait.
            let mut window = crate::StreamWindow::default();
            loop {
                let mut recorder: Option<usize> = None;
                let mut eligible = 0usize;
                for (i, entry) in lanes.iter().enumerate() {
                    let Some(lane) = entry else { continue };
                    if lane.sim.done() || !lane.sim.wide_eligible() {
                        continue;
                    }
                    eligible += 1;
                    let best = recorder
                        .and_then(|r| lanes[r].as_ref())
                        .map(|l| l.sim.arch_pos());
                    if best.is_none_or(|b| lane.sim.arch_pos() < b) {
                        recorder = Some(i);
                    }
                }
                let mut progressed = false;
                if let Some(r) = recorder {
                    progressed = true;
                    let rec_scheme = lanes[r].as_ref().expect("recorder exists").scheme;
                    let target = lanes[r]
                        .as_ref()
                        .expect("recorder exists")
                        .sim
                        .committed()
                        .saturating_add(crate::system::TRANSPOSED_CHUNK);
                    window.invalidate();
                    let lane = lanes[r].as_mut().expect("recorder exists");
                    let recorded = if eligible >= 2 {
                        catch_unwind(AssertUnwindSafe(|| {
                            lane.sim.advance_recording(target, &mut window)
                        }))
                    } else {
                        // A lone eligible lane records for nobody.
                        catch_unwind(AssertUnwindSafe(|| lane.sim.advance_until(target)))
                    };
                    match recorded {
                        Ok(()) => {
                            let (start, len) = (window.start(), window.len() as u64);
                            if len > 0 {
                                for (i, entry) in lanes.iter_mut().enumerate() {
                                    if i == r {
                                        continue;
                                    }
                                    let Some(lane) = entry else { continue };
                                    if lane.sim.done() || !lane.sim.wide_eligible() {
                                        continue;
                                    }
                                    let pos = lane.sim.arch_pos();
                                    if pos < start || pos >= start + len {
                                        continue;
                                    }
                                    let replayed = catch_unwind(AssertUnwindSafe(|| {
                                        lane.sim.advance_replay(&window)
                                    }));
                                    if let Err(payload) = replayed {
                                        failures.insert(lane.scheme, panic_message(payload));
                                        *entry = None;
                                    }
                                }
                            }
                        }
                        Err(payload) => {
                            window.invalidate();
                            failures.insert(rec_scheme, panic_message(payload));
                            lanes[r] = None;
                        }
                    }
                }
                for (i, entry) in lanes.iter_mut().enumerate() {
                    if Some(i) == recorder {
                        continue;
                    }
                    let Some(lane) = entry else { continue };
                    if lane.sim.done() || lane.sim.wide_eligible() {
                        continue;
                    }
                    let target = lane
                        .sim
                        .committed()
                        .saturating_add(crate::system::TRANSPOSED_CHUNK);
                    match catch_unwind(AssertUnwindSafe(|| lane.sim.advance_until(target))) {
                        Ok(()) => {}
                        Err(payload) => {
                            failures.insert(lane.scheme, panic_message(payload));
                            *entry = None;
                        }
                    }
                    progressed = true;
                }
                if !progressed {
                    break;
                }
            }
        }
    }
    let wall = wall_start.elapsed().as_secs_f64();

    // Publish each surviving lane: entry, counters, persistent store.
    for lane in lanes.into_iter().flatten() {
        let Lane {
            scheme,
            key,
            slot,
            claim,
            rc_claim,
            sim,
        } = lane;
        let published = catch_unwind(AssertUnwindSafe(|| {
            let mut outcome = sim.finish_collecting();
            if wall > 0.0 {
                outcome.result.sim_mips = outcome.result.committed as f64 / wall / 1e6;
            }
            record_executed(key.config_fp, scheme, app, scale);
            let entry = MemoEntry {
                result: outcome.result,
                trace: match outcome.trace {
                    Some(t) => OnceLock::from(Arc::new(t)),
                    None => OnceLock::new(),
                },
                zombies: config
                    .zombie_sample_interval
                    .is_some()
                    .then(|| Arc::new(outcome.zombie_samples)),
            };
            if let Some(cache) = runcache::active() {
                let stored = cache.store(
                    key.config_fp,
                    scheme,
                    app,
                    scale,
                    &entry.result,
                    entry.zombies.as_deref().map(Vec::as_slice),
                );
                if stored {
                    cache.journal_append(&runcache::entry_stem(key.config_fp, scheme, app, scale));
                }
            }
            let _ = slot.set(entry);
        }));
        if let Err(payload) = published {
            failures.insert(scheme, panic_message(payload));
        }
        drop(rc_claim);
        drop(claim);
    }

    // Member outputs: a failed lane fails exactly its own jobs; everything
    // else reads through the ordinary memoized path (which also covers
    // lanes this group ceded to another producer).
    members
        .iter()
        .map(|&i| {
            let job = &jobs[i];
            let outcome = match failures.get(&job.scheme) {
                Some(msg) => Err(job_error(job, msg.clone())),
                None => run_single(job),
            };
            (i, outcome)
        })
        .collect()
}

/// [`run_jobs_outputs`], but a panicking job is contained to its own
/// result slot instead of taking the whole pool (and every sibling
/// experiment) down: the worker catches the unwind, records a [`JobError`]
/// and moves on to the next job. All unaffected jobs always complete.
///
/// A failed job leaves its memo slot uninitialized, so a later request for
/// the same key retries the execution — a transient fault costs one retry,
/// it does not poison the key for the rest of the process.
pub fn try_run_jobs_outputs(jobs: &[Job], threads: usize) -> Vec<Result<JobOutput, JobError>> {
    assert!(threads >= 1, "need at least one thread");
    // Longest-estimated-first work queue (stable index tie-break) so a big
    // item cannot land last on a drained pool. Results still fill their
    // input-order slots, so the ordering is invisible to callers.
    register_trace_demands(jobs);
    let items = plan_work(jobs);
    let costs: Vec<f64> = items.iter().map(|it| it.estimated_cost(jobs)).collect();
    let mut order: Vec<usize> = (0..items.len()).collect();
    order.sort_by(|&a, &b| costs[b].total_cmp(&costs[a]).then(a.cmp(&b)));
    let results: Vec<Mutex<Option<Result<JobOutput, JobError>>>> =
        jobs.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(items.len().max(1)) {
            scope.spawn(|| loop {
                let rank = next.fetch_add(1, Ordering::Relaxed);
                let Some(&it) = order.get(rank) else {
                    break;
                };
                match &items[it] {
                    WorkItem::Single(i) => {
                        let outcome = run_single(&jobs[*i]);
                        *lock_unpoisoned(&results[*i]) = Some(outcome);
                    }
                    WorkItem::Group(members) => {
                        for (i, outcome) in run_group(jobs, members) {
                            *lock_unpoisoned(&results[i]) = Some(outcome);
                        }
                    }
                }
            });
        }
    });
    results
        .into_iter()
        .enumerate()
        .map(|(i, m)| {
            m.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .unwrap_or_else(|| {
                    // Unreachable in practice (workers always store), kept
                    // as a contained error rather than a fresh panic source.
                    Err(JobError {
                        config_fp: effective_fingerprint(&jobs[i].config, jobs[i].scheme),
                        scheme: jobs[i].scheme,
                        app: jobs[i].app,
                        scale: jobs[i].scale,
                        message: "job was never executed (worker lost)".into(),
                    })
                })
        })
        .collect()
}

/// [`run_jobs`], but returning each job's full [`JobOutput`] (Fig. 4 needs
/// the zombie samples, not just the aggregate result). Panics if any job
/// panicked — callers that must survive individual job failures use
/// [`try_run_jobs_outputs`] (the suite planner does).
pub fn run_jobs_outputs(jobs: &[Job], threads: usize) -> Vec<JobOutput> {
    try_run_jobs_outputs(jobs, threads)
        .into_iter()
        .map(|r| r.unwrap_or_else(|e| panic!("job failed: {e}")))
        .collect()
}

/// Runs all jobs, fanning out across `threads` scoped OS threads, and
/// returns results in the same order as the input — parallelism never
/// changes the output. Identical jobs (same effective config, scheme, app,
/// scale) are executed once per process and recalled from the memoization
/// table.
pub fn run_jobs(jobs: &[Job], threads: usize) -> Vec<RunResult> {
    run_jobs_outputs(jobs, threads)
        .into_iter()
        .map(|o| o.result)
        .collect()
}

/// The flat job list of a scheme × app matrix, in `[scheme][app]` order.
pub fn matrix_jobs(
    config: &SystemConfig,
    schemes: &[Scheme],
    apps: &[AppId],
    scale: Scale,
) -> Vec<Job> {
    let config = Arc::new(config.clone());
    schemes
        .iter()
        .flat_map(|&scheme| {
            let config = &config;
            apps.iter().map(move |&app| Job {
                config: Arc::clone(config),
                scheme,
                app,
                scale,
            })
        })
        .collect()
}

/// Convenience: runs every app of the paper's suite under each scheme and
/// returns results indexed `[scheme][app]` in input order.
pub fn run_matrix(
    config: &SystemConfig,
    schemes: &[Scheme],
    apps: &[AppId],
    scale: Scale,
    threads: usize,
) -> Vec<Vec<RunResult>> {
    let flat = run_jobs(&matrix_jobs(config, schemes, apps, scale), threads);
    flat.chunks(apps.len()).map(<[RunResult]>::to_vec).collect()
}

/// Number of distinct simulations a cache-cold run of `jobs` executes:
/// distinct effective memo keys, plus the implicit baseline execution
/// behind any `Ideal` key whose baseline is not itself requested. The
/// planner's dedup accounting asserts `simulations_executed()` lands
/// exactly here.
pub fn count_unique(jobs: &[Job]) -> usize {
    let mut keys = std::collections::HashSet::new();
    for job in jobs {
        if job.scheme == Scheme::Ideal {
            keys.insert(MemoKey {
                config_fp: effective_fingerprint(&job.config, Scheme::Baseline),
                scheme: Scheme::Baseline,
                app: job.app,
                scale: job.scale,
            });
        }
        keys.insert(MemoKey {
            config_fp: effective_fingerprint(&job.config, job.scheme),
            scheme: job.scheme,
            app: job.app,
            scale: job.scale,
        });
    }
    keys.len()
}

/// Geometric mean of an iterator of positive factors (the paper reports
/// mean speedups across the 20 applications).
pub fn geomean(xs: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for x in xs {
        assert!(x > 0.0, "geomean needs positive values");
        log_sum += x.ln();
        n += 1;
    }
    if n == 0 {
        1.0
    } else {
        (log_sum / n as f64).exp()
    }
}

/// Runs `scheme` vs. [`Scheme::Baseline`] over `apps` for several trace
/// seeds and returns the seed-averaged geomean speedup — the noise-reduced
/// headline number (single-seed outage schedules carry real variance; the
/// paper's hours-long runs average it out intrinsically).
pub fn mean_speedup_over_seeds(
    config: &SystemConfig,
    scheme: Scheme,
    apps: &[AppId],
    scale: Scale,
    seeds: &[u64],
    threads: usize,
) -> f64 {
    assert!(!seeds.is_empty(), "need at least one seed");
    let flat = run_jobs(
        &seed_sweep_jobs(config, scheme, apps, scale, seeds),
        threads,
    );
    let per_seed = flat.chunks(2 * apps.len()).map(|chunk| {
        let (base, tested) = chunk.split_at(apps.len());
        geomean(
            base.iter()
                .zip(tested)
                .map(|(b, r)| b.total_time() / r.total_time()),
        )
    });
    geomean(per_seed)
}

/// The flat job list behind [`mean_speedup_over_seeds`]: one entry per
/// (seed, Baseline | `scheme`, app) cell, in `[seed][scheme][app]` order, so
/// a single [`run_jobs`] fan-out keeps all worker threads busy across seed
/// boundaries instead of draining the pool at the end of each seed's
/// matrix. Public so the suite planner can pre-register these runs.
pub fn seed_sweep_jobs(
    config: &SystemConfig,
    scheme: Scheme,
    apps: &[AppId],
    scale: Scale,
    seeds: &[u64],
) -> Vec<Job> {
    let mut jobs = Vec::with_capacity(seeds.len() * 2 * apps.len());
    for &seed in seeds {
        let mut seeded = config.clone();
        if let crate::SourceKind::Preset { preset, scale, .. } = seeded.source {
            seeded.source = crate::SourceKind::Preset {
                preset,
                seed,
                scale,
            };
        }
        let seeded = Arc::new(seeded);
        for job_scheme in [Scheme::Baseline, scheme] {
            for &app in apps {
                jobs.push(Job {
                    config: Arc::clone(&seeded),
                    scheme: job_scheme,
                    app,
                    scale,
                });
            }
        }
    }
    jobs
}

/// Default worker-thread count: all but one hardware thread.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().saturating_sub(1).max(1))
        .unwrap_or(1)
}

// ---------------------------------------------------------------------------
// Fleet execution: work-stealing workers over a shared cache directory.
// ---------------------------------------------------------------------------

/// Retry policy for transient per-job faults in [`run_worker`]: exponential
/// backoff (`base`, doubling, capped at `cap`) with jitter in
/// `[delay/2, delay)`, bounded by `max_retries` attempts beyond the first.
/// Deterministic failures (a simulation panic reproduces identically on
/// every attempt) fail fast instead — see [`classify_failure`].
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Retries allowed after the first attempt of a job.
    pub max_retries: u32,
    /// First backoff delay.
    pub base: std::time::Duration,
    /// Backoff ceiling.
    pub cap: std::time::Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 3,
            base: std::time::Duration::from_millis(10),
            cap: std::time::Duration::from_secs(1),
        }
    }
}

impl RetryPolicy {
    /// The jittered backoff delay before retry number `attempt` (1-based).
    fn delay(&self, attempt: u32, rng: &mut u64) -> std::time::Duration {
        let exp = self
            .base
            .saturating_mul(1u32 << attempt.min(20).saturating_sub(1));
        let capped = exp.min(self.cap).max(std::time::Duration::from_micros(100));
        *rng = runcache::splitmix(*rng);
        let nanos = capped.as_nanos() as u64;
        std::time::Duration::from_nanos(nanos / 2 + *rng % (nanos / 2).max(1))
    }
}

/// How a failed job attempt should be handled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureClass {
    /// Environmental: I/O trouble, lease contention, a torn store. The same
    /// attempt can succeed on retry — back off and try again.
    Transient,
    /// Reproducible: the simulation itself panicked. Retrying re-executes
    /// the identical deterministic run to the identical panic — fail fast.
    Deterministic,
}

/// Classifies a job failure message for the retry policy. Simulation panics
/// are deterministic (seeded workloads reproduce them exactly); everything
/// the storage/lease layer reports — including injected I/O faults, whose
/// messages name their site — is transient.
pub fn classify_failure(message: &str) -> FailureClass {
    const TRANSIENT_MARKERS: [&str; 6] = [
        "I/O",
        "io error",
        "lease",
        "heartbeat",
        "steal",
        "store failed",
    ];
    if TRANSIENT_MARKERS.iter().any(|m| message.contains(m)) {
        FailureClass::Transient
    } else {
        FailureClass::Deterministic
    }
}

/// Deduplicates `jobs` to one representative per distinct memo key, adding
/// the implicit oracle-baseline job behind any `Ideal` key whose baseline is
/// not itself requested — the exact unit set a fleet of workers must
/// produce, in input order (baselines before the Ideal jobs that consume
/// them). `unique_jobs(jobs).len() == count_unique(jobs)` always.
pub fn unique_jobs(jobs: &[Job]) -> Vec<Job> {
    let mut seen = HashSet::new();
    let mut out = Vec::new();
    for job in jobs {
        if job.scheme.needs_oracle_trace() {
            let key = baseline_key(&job.config, job.app, job.scale);
            if seen.insert(key) {
                out.push(Job {
                    config: Arc::clone(&job.config),
                    scheme: Scheme::Baseline,
                    app: job.app,
                    scale: job.scale,
                });
            }
        }
        let key = MemoKey {
            config_fp: effective_fingerprint(&job.config, job.scheme),
            scheme: job.scheme,
            app: job.app,
            scale: job.scale,
        };
        if seen.insert(key) {
            out.push(job.clone());
        }
    }
    out
}

/// Partitions the deduplicated job set of `jobs` into `count` shards and
/// returns shard `index` (0-based) — the `--shard i/n` planner.
///
/// Assignment is longest-processing-time greedy over *affinity groups*
/// (an `Ideal` job travels with its oracle baseline, so the oracle pass
/// replays a shard-local store instead of waiting on a sibling shard),
/// each group placed on the currently lightest shard. Everything is
/// derived from the jobs alone — cost model, entry-stem tiebreak, lowest-
/// index-wins load ties — so every process that plans the same suite
/// computes the identical partition with no coordination.
///
/// Cost bound: a shard's estimated load never exceeds
/// `total/count + max_group`, where `max_group` is the largest single
/// affinity group's cost (the classic greedy bound; the shard proptests
/// assert it).
pub fn shard_jobs(jobs: &[Job], index: usize, count: usize) -> Vec<Job> {
    assert!(count >= 1, "need at least one shard");
    assert!(
        index < count,
        "shard index {index} out of range for {count} shards"
    );
    let unique = unique_jobs(jobs);

    // Affinity groups over unique-job indices. `unique_jobs` emits every
    // oracle baseline before its first consumer, so the baseline's group
    // always exists by the time an Ideal job looks it up.
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut baseline_groups: HashMap<MemoKey, usize> = HashMap::new();
    for (i, job) in unique.iter().enumerate() {
        if job.scheme == Scheme::Baseline {
            baseline_groups.insert(baseline_key(&job.config, job.app, job.scale), groups.len());
            groups.push(vec![i]);
        } else if job.scheme.needs_oracle_trace() {
            match baseline_groups.get(&baseline_key(&job.config, job.app, job.scale)) {
                Some(&g) => groups[g].push(i),
                None => groups.push(vec![i]),
            }
        } else {
            groups.push(vec![i]);
        }
    }

    let costs: Vec<f64> = groups
        .iter()
        .map(|g| g.iter().map(|&i| unique[i].estimated_cost()).sum())
        .collect();
    let stems: Vec<String> = groups
        .iter()
        .map(|g| {
            let job = &unique[g[0]];
            runcache::entry_stem(
                effective_fingerprint(&job.config, job.scheme),
                job.scheme,
                job.app,
                job.scale,
            )
        })
        .collect();
    let mut order: Vec<usize> = (0..groups.len()).collect();
    order.sort_by(|&a, &b| {
        costs[b]
            .total_cmp(&costs[a])
            .then_with(|| stems[a].cmp(&stems[b]))
    });

    let mut load = vec![0.0f64; count];
    let mut mine: Vec<usize> = Vec::new();
    for &g in &order {
        let lightest = (0..count)
            .min_by(|&a, &b| load[a].total_cmp(&load[b]).then(a.cmp(&b)))
            .expect("count >= 1");
        load[lightest] += costs[g];
        if lightest == index {
            mine.extend(&groups[g]);
        }
    }
    mine.sort_unstable(); // restore unique-job (baseline-before-Ideal) order
    mine.into_iter().map(|i| unique[i].clone()).collect()
}

/// Structured outcome of one worker's sweep over the job set — the
/// per-worker summary line the fleet campaign asserts against.
#[derive(Debug, Default, Clone)]
pub struct WorkerReport {
    /// Jobs this worker simulated and durably stored.
    pub completed: usize,
    /// Jobs found already on disk (produced by another worker).
    pub adopted: usize,
    /// Expired leases this worker reclaimed from dead holders.
    pub stolen_leases: usize,
    /// Sweep visits skipped because another live worker held the lease.
    pub busy_skips: usize,
    /// Transient-failure retries performed (with backoff).
    pub retries: usize,
    /// Jobs that exhausted retries or failed deterministically.
    pub failures: Vec<JobError>,
}

impl WorkerReport {
    /// Folds another worker's accounting into this one (the multi-threaded
    /// worker merge). Failures are deduplicated by key: sibling sweeps that
    /// each exhausted retries on the same job report it once.
    pub fn absorb(&mut self, other: WorkerReport) {
        self.completed += other.completed;
        self.adopted += other.adopted;
        self.stolen_leases += other.stolen_leases;
        self.busy_skips += other.busy_skips;
        self.retries += other.retries;
        let mut seen: HashSet<(u64, Scheme, AppId, Scale)> = self
            .failures
            .iter()
            .map(|e| (e.config_fp, e.scheme, e.app, e.scale))
            .collect();
        for e in other.failures {
            if seen.insert((e.config_fp, e.scheme, e.app, e.scale)) {
                self.failures.push(e);
            }
        }
    }
}

impl std::fmt::Display for WorkerReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "worker pid={}: completed={} adopted={} stolen_leases={} \
             busy_skips={} retries={} failed={}",
            std::process::id(),
            self.completed,
            self.adopted,
            self.stolen_leases,
            self.busy_skips,
            self.retries,
            self.failures.len()
        )
    }
}

/// Per-job worker state between sweeps.
enum WorkState {
    Pending { attempts: u32 },
    Done,
    Failed,
}

/// Work-steals the deduplicated job set through the shared cache directory
/// until every job is durably on disk (or failed): the `--worker` mode of
/// `exp_all`. Any number of workers — processes, machines — may run this
/// concurrently over one directory; the lease protocol
/// ([`runcache::RunCache::claim`]) gives each job exactly one live
/// producer, and dead producers are reclaimed after one lease TTL.
///
/// The sweep visits jobs longest-estimated-first, rotated by PID so
/// concurrent workers start at different offsets and collide less. Per
/// visit: a job already on disk is *adopted*; a job with a live foreign
/// lease is skipped (someone else is on it); otherwise this worker leases
/// it, simulates, stores, journals. Transient failures (I/O, lease
/// contention, a store that would not land) retry under `policy` with
/// jittered exponential backoff; deterministic simulation panics fail
/// fast. `Ideal` jobs are gated until their oracle baseline is loadable
/// from disk, so the oracle pass replays the stored baseline instead of
/// racing a second execution — the gate lifts unconditionally if the
/// baseline can no longer arrive (its producer failed), trading one
/// duplicate execution for progress.
///
/// Unlike [`try_run_jobs_outputs`], nothing is returned in job order: the
/// worker's product is the populated cache directory; the report carries
/// the accounting.
pub fn run_worker(jobs: &[Job], policy: &RetryPolicy) -> WorkerReport {
    let mut report = WorkerReport::default();
    let Some(cache) = runcache::active() else {
        // No shared directory: degrade to an ordinary in-process run.
        for outcome in try_run_jobs_outputs(jobs, 1) {
            match outcome {
                Ok(_) => report.completed += 1,
                Err(e) => report.failures.push(e),
            }
        }
        return report;
    };
    let jobs = unique_jobs(jobs);
    register_trace_demands(&jobs);

    // Longest-first, rotated by PID: workers agree on the cost order but
    // enter it at different points, so they fan out across the job set
    // instead of convoying on the most expensive job's lease.
    let mut order: Vec<usize> = (0..jobs.len()).collect();
    order.sort_by(|&a, &b| {
        jobs[b]
            .estimated_cost()
            .total_cmp(&jobs[a].estimated_cost())
            .then(a.cmp(&b))
    });
    if !order.is_empty() {
        // PID + a per-call sequence number: concurrent worker *processes*
        // and sibling worker *threads* all enter the order at different
        // offsets.
        static WORKER_SEQ: AtomicUsize = AtomicUsize::new(0);
        let salt = WORKER_SEQ
            .fetch_add(1, Ordering::Relaxed)
            .wrapping_mul(0x9e37_79b1);
        let offset = (std::process::id() as usize).wrapping_add(salt) % order.len();
        order.rotate_left(offset);
    }

    let mut states: Vec<WorkState> = jobs
        .iter()
        .map(|_| WorkState::Pending { attempts: 0 })
        .collect();
    let mut rng = runcache::fresh_token();
    let mut idle_sweeps: u32 = 0;
    let mut force_ungated = false;
    loop {
        let mut progressed = false;
        let mut busy_now = 0usize;
        let mut gated_now = 0usize;
        for &i in &order {
            let WorkState::Pending { attempts } = states[i] else {
                continue;
            };
            let job = &jobs[i];
            let config_fp = effective_fingerprint(&job.config, job.scheme);
            if cache
                .load(config_fp, job.scheme, job.app, job.scale)
                .is_some()
            {
                states[i] = WorkState::Done;
                report.adopted += 1;
                progressed = true;
                continue;
            }
            if !force_ungated && job.scheme.needs_oracle_trace() {
                let bfp = effective_fingerprint(&job.config, Scheme::Baseline);
                if cache
                    .load(bfp, Scheme::Baseline, job.app, job.scale)
                    .is_none()
                {
                    gated_now += 1;
                    continue;
                }
            }
            match cache.claim(config_fp, job.scheme, job.app, job.scale) {
                runcache::ClaimOutcome::Busy => {
                    report.busy_skips += 1;
                    busy_now += 1;
                }
                runcache::ClaimOutcome::Unavailable => {
                    let next = attempts + 1;
                    if next > policy.max_retries {
                        states[i] = WorkState::Failed;
                        report.failures.push(job_error(
                            job,
                            "lease unavailable (claim contention)".into(),
                        ));
                    } else {
                        states[i] = WorkState::Pending { attempts: next };
                        report.retries += 1;
                        std::thread::sleep(policy.delay(next, &mut rng));
                    }
                }
                runcache::ClaimOutcome::Held(lease) => {
                    if lease.stole_stale_lease() {
                        report.stolen_leases += 1;
                    }
                    // The lease serializes completion: a rival may have
                    // stored this entry between our load check and the
                    // claim. Re-check under the lease so no job is ever
                    // executed — or journaled — twice.
                    if cache
                        .load(config_fp, job.scheme, job.app, job.scale)
                        .is_some()
                    {
                        states[i] = WorkState::Done;
                        report.adopted += 1;
                        progressed = true;
                        drop(lease);
                        continue;
                    }
                    match produce_on_disk(cache, job) {
                        Ok(()) => {
                            states[i] = WorkState::Done;
                            report.completed += 1;
                            progressed = true;
                        }
                        Err(e) => {
                            let next = attempts + 1;
                            let exhausted = next > policy.max_retries;
                            if exhausted
                                || classify_failure(&e.message) == FailureClass::Deterministic
                            {
                                states[i] = WorkState::Failed;
                                report.failures.push(e);
                            } else {
                                states[i] = WorkState::Pending { attempts: next };
                                report.retries += 1;
                                std::thread::sleep(policy.delay(next, &mut rng));
                            }
                        }
                    }
                    drop(lease);
                }
            }
        }
        let open = states
            .iter()
            .filter(|s| matches!(s, WorkState::Pending { .. }))
            .count();
        if open == 0 {
            break;
        }
        if progressed {
            idle_sweeps = 0;
            continue;
        }
        idle_sweeps += 1;
        if busy_now == 0 && gated_now > 0 && idle_sweeps >= 2 {
            // Every remaining job waits on a baseline that is neither on
            // disk nor being produced: it failed elsewhere. Ungate — the
            // oracle pass re-executes its baseline in-process instead.
            force_ungated = true;
            continue;
        }
        // Other workers hold every remaining lease (or a gated baseline is
        // in flight): back off before re-polling the directory.
        let wait = policy.delay(idle_sweeps.min(6), &mut rng);
        std::thread::sleep(wait.min(cache.lease_params().heartbeat));
    }
    report
}

/// [`run_worker`] fanned out over `threads` sibling sweeps in one process,
/// with their reports merged. Sibling threads coordinate exactly like
/// sibling processes — through the shared directory's leases — plus the
/// in-process memo table; a busy lease held by a sibling thread is an
/// ordinary busy-skip.
pub fn run_workers(jobs: &[Job], policy: &RetryPolicy, threads: usize) -> WorkerReport {
    assert!(threads >= 1, "need at least one worker thread");
    if threads == 1 {
        return run_worker(jobs, policy);
    }
    let reports: Vec<WorkerReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| scope.spawn(|| run_worker(jobs, policy)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_default())
            .collect()
    });
    let mut merged = WorkerReport::default();
    for report in reports {
        merged.absorb(report);
    }
    merged
}

/// Produces one leased job onto disk: simulate (through the in-process memo
/// table, so a retry after a failed store re-stores without re-executing),
/// store, journal. The caller holds the job's disk lease.
fn produce_on_disk(cache: &runcache::RunCache, job: &Job) -> Result<(), JobError> {
    let config_fp = effective_fingerprint(&job.config, job.scheme);
    let key = MemoKey {
        config_fp,
        scheme: job.scheme,
        app: job.app,
        scale: job.scale,
    };
    let slot = memo_slot(key.clone());
    if slot.get().is_none() {
        if let Some(claim) = claim_blocking(&slot, &key) {
            let produced = catch_unwind(AssertUnwindSafe(|| {
                execute(&job.config, job.scheme, job.app, job.scale)
            }));
            match produced {
                Ok(entry) => {
                    record_executed(config_fp, job.scheme, job.app, job.scale);
                    let _ = slot.set(entry);
                }
                Err(payload) => {
                    drop(claim);
                    return Err(job_error(job, panic_message(payload)));
                }
            }
            drop(claim);
        }
    }
    let entry = slot.get().expect("slot was just produced");
    let stored = cache.store(
        config_fp,
        job.scheme,
        job.app,
        job.scale,
        &entry.result,
        entry.zombies.as_deref().map(Vec::as_slice),
    );
    if !stored {
        // The simulation result survives in the memo slot; a retry
        // re-enters here and only repeats the store.
        return Err(job_error(job, "store failed (I/O)".into()));
    }
    cache.journal_append(&runcache::entry_stem(
        config_fp, job.scheme, job.app, job.scale,
    ));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_app;

    #[test]
    fn geomean_of_identity_is_one() {
        assert!((geomean([1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((geomean(std::iter::empty()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_matches_hand_computation() {
        let g = geomean([2.0, 8.0]);
        assert!((g - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_nonpositive() {
        let _ = geomean([1.0, 0.0]);
    }

    #[test]
    fn run_jobs_preserves_input_order() {
        let config = SystemConfig::paper_default();
        let config = Arc::new(config);
        let jobs: Vec<Job> = [AppId::Crc32, AppId::Bitcount]
            .iter()
            .map(|&app| Job {
                config: Arc::clone(&config),
                scheme: Scheme::Baseline,
                app,
                scale: Scale::Tiny,
            })
            .collect();
        let results = run_jobs(&jobs, 2);
        assert_eq!(results[0].app, AppId::Crc32);
        assert_eq!(results[1].app, AppId::Bitcount);
    }

    #[test]
    fn seed_averaging_returns_a_sane_factor() {
        let config = SystemConfig::paper_default();
        let speedup = mean_speedup_over_seeds(
            &config,
            Scheme::Edbp,
            &[AppId::Crc32],
            Scale::Tiny,
            &[1, 2],
            2,
        );
        assert!((0.5..2.0).contains(&speedup), "speedup {speedup}");
    }

    #[test]
    fn cost_model_orders_scale_scheme_and_stepping() {
        let config = Arc::new(SystemConfig::paper_default());
        let job = |scheme, scale, config: &Arc<SystemConfig>| Job {
            config: Arc::clone(config),
            scheme,
            app: AppId::Crc32,
            scale,
        };
        let tiny = job(Scheme::Baseline, Scale::Tiny, &config);
        let full = job(Scheme::Baseline, Scale::Full, &config);
        assert!(full.estimated_cost() > tiny.estimated_cost());
        let edbp = job(Scheme::Edbp, Scale::Tiny, &config);
        assert!(edbp.estimated_cost() > tiny.estimated_cost());
        let mut instrumented = SystemConfig::paper_default();
        instrumented.zombie_sample_interval = Some(500);
        let zombie = job(Scheme::Baseline, Scale::Tiny, &Arc::new(instrumented));
        assert!(zombie.estimated_cost() > 5.0 * tiny.estimated_cost());
    }

    #[test]
    fn effective_fingerprint_canonicalizes_default_edbp() {
        let plain = SystemConfig::paper_default();
        assert!(plain.edbp.is_none(), "paper default leaves edbp derived");
        let mut explicit_default = plain.clone();
        explicit_default.edbp = Some(EdbpConfig::for_cache(&Cache::new(plain.dcache)));
        let mut explicit_custom = plain.clone();
        explicit_custom.edbp = Some({
            let mut c = EdbpConfig::for_cache(&Cache::new(plain.dcache));
            c.reference_fpr = 1.0;
            c
        });

        for scheme in [Scheme::Edbp, Scheme::DecayEdbp, Scheme::AmcEdbp] {
            assert_eq!(
                effective_fingerprint(&plain, scheme),
                effective_fingerprint(&explicit_default, scheme),
                "explicit default == derived default for {scheme}"
            );
            assert_ne!(
                effective_fingerprint(&plain, scheme),
                effective_fingerprint(&explicit_custom, scheme),
                "non-default edbp config must stay distinct for {scheme}"
            );
        }
        // Schemes without an EDBP predictor never observe the field at all.
        for scheme in [Scheme::Baseline, Scheme::Sdbp, Scheme::Decay, Scheme::Ideal] {
            assert_eq!(
                effective_fingerprint(&plain, scheme),
                effective_fingerprint(&explicit_custom, scheme),
                "edbp field is invisible to {scheme}"
            );
        }
        // With an icache predictor built, the explicit value is observable
        // (the icache fallback derives from the icache geometry): no
        // canonicalization.
        let mut icache_pred = explicit_default.clone();
        icache_pred.predict_icache = true;
        icache_pred.icache_tech = ehs_nvm::MemoryTechnology::Sram;
        let mut icache_plain = plain.clone();
        icache_plain.predict_icache = true;
        icache_plain.icache_tech = ehs_nvm::MemoryTechnology::Sram;
        assert_ne!(
            effective_fingerprint(&icache_pred, Scheme::Edbp),
            effective_fingerprint(&icache_plain, Scheme::Edbp)
        );
    }

    #[test]
    fn explicit_default_edbp_config_is_equivalent() {
        // The differential pin for the canonicalization rule: an explicit
        // edbp config equal to the derived default simulates identically.
        let plain = SystemConfig::paper_default();
        let mut explicit = plain.clone();
        explicit.edbp = Some(EdbpConfig::for_cache(&Cache::new(plain.dcache)));
        let a = run_app(&plain, Scheme::Edbp, AppId::Crc32, Scale::Tiny);
        let b = run_app(&explicit, Scheme::Edbp, AppId::Crc32, Scale::Tiny);
        assert_eq!(a, b);
    }

    #[test]
    fn count_unique_folds_duplicates_and_oracle_baselines() {
        let config = Arc::new(SystemConfig::paper_default());
        let job = |scheme| Job {
            config: Arc::clone(&config),
            scheme,
            app: AppId::Crc32,
            scale: Scale::Tiny,
        };
        // Duplicate Edbp folds; Ideal implies a Baseline that is already
        // requested, so it adds only itself.
        let jobs = [
            job(Scheme::Baseline),
            job(Scheme::Edbp),
            job(Scheme::Edbp),
            job(Scheme::Ideal),
        ];
        assert_eq!(count_unique(&jobs), 3);
        // Ideal alone still needs its oracle baseline.
        assert_eq!(count_unique(&[job(Scheme::Ideal)]), 2);
    }
}
