//! Deterministic parallel fan-out of simulation runs, with process-wide
//! memoization.
//!
//! # Memoization
//!
//! Experiment drivers repeat identical runs constantly: every figure's
//! matrix re-runs the baseline column, `mean_speedup_over_seeds` shares its
//! baseline runs with the headline matrix, and the Ideal scheme's oracle
//! pass *is* a baseline run. [`run_jobs`] therefore caches results in a
//! process-wide table keyed by (config fingerprint, scheme, app, scale):
//!
//! * A `Baseline` job always runs with a passive generation recorder
//!   attached and stores both the result and the trace — so the Ideal
//!   scheme's oracle pass and the baseline column of the same matrix are
//!   **one** execution (`baseline_executions` counts them).
//! * Concurrent requests for the same key block on one `OnceLock`; the
//!   duplicate is never executed.
//! * A cache hit returns the stored result with [`RunResult::sim_mips`]
//!   zeroed (wall-clock throughput is meaningless for a lookup); `sim_mips`
//!   is excluded from `PartialEq`, so memoized and fresh results compare
//!   equal — the determinism tests rely on exactly that.
//!
//! [`run_app`] remains uncached for callers that want a guaranteed fresh
//! execution (e.g. throughput measurement).

use crate::{
    config_fingerprint, run_app, run_baseline_with_trace, RunResult, Scheme, SystemConfig,
};
use edbp_core::GenerationTrace;
use ehs_workloads::{build, AppId, Scale};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// One run request. The configuration is shared by `Arc`, so fanning a
/// matrix out over hundreds of jobs clones a pointer, not the config.
#[derive(Debug, Clone, PartialEq)]
pub struct Job {
    /// Platform configuration (shared, immutable).
    pub config: Arc<SystemConfig>,
    /// Scheme to simulate.
    pub scheme: Scheme,
    /// Application.
    pub app: AppId,
    /// Workload scale.
    pub scale: Scale,
}

#[derive(Clone, PartialEq, Eq, Hash)]
struct MemoKey {
    config_fp: u64,
    scheme: Scheme,
    app: AppId,
    scale: Scale,
}

struct MemoEntry {
    result: RunResult,
    /// Generation trace, recorded on every memoized Baseline run so the
    /// Ideal scheme can reuse the same execution.
    trace: Option<Arc<GenerationTrace>>,
}

type Slot = Arc<OnceLock<MemoEntry>>;

static MEMO: OnceLock<Mutex<HashMap<MemoKey, Slot>>> = OnceLock::new();
static BASELINE_EXECUTIONS: AtomicU64 = AtomicU64::new(0);

/// Number of actual (non-memoized) baseline simulations executed by the
/// memoization layer since process start. Test hook for the "an Ideal
/// matrix runs the baseline exactly once per (app, config, seed)" property.
pub fn baseline_executions() -> u64 {
    BASELINE_EXECUTIONS.load(Ordering::Relaxed)
}

fn memo_slot(key: MemoKey) -> Slot {
    MEMO.get_or_init(Mutex::default)
        .lock()
        .expect("memo table poisoned")
        .entry(key)
        .or_default()
        .clone()
}

/// Runs (or recalls) one job through the memoization table. Returns the
/// entry's result plus whether this call performed the execution.
fn run_cached(config: &SystemConfig, scheme: Scheme, app: AppId, scale: Scale) -> RunResult {
    let slot = memo_slot(MemoKey {
        config_fp: config_fingerprint(config),
        scheme,
        app,
        scale,
    });
    let mut ran_here = false;
    let entry = slot.get_or_init(|| {
        ran_here = true;
        match scheme {
            Scheme::Baseline => {
                BASELINE_EXECUTIONS.fetch_add(1, Ordering::Relaxed);
                let (result, trace) = run_baseline_with_trace(config, build(app, scale));
                MemoEntry {
                    result,
                    trace: Some(Arc::new(trace)),
                }
            }
            Scheme::Ideal => {
                // The oracle pass is a baseline run — share it through the
                // cache instead of executing a private one.
                let trace = baseline_trace(config, app, scale);
                let sim = crate::Simulation::new(
                    config,
                    Scheme::Ideal,
                    build(app, scale),
                    Some((*trace).clone()),
                );
                let (result, _) = sim.run();
                MemoEntry {
                    result,
                    trace: None,
                }
            }
            _ => MemoEntry {
                result: run_app(config, scheme, app, scale),
                trace: None,
            },
        }
    });
    let mut result = entry.result.clone();
    if !ran_here {
        result.sim_mips = 0.0;
    }
    result
}

/// The recorded trace of the memoized baseline run for this key (executing
/// the baseline if it has not run yet).
fn baseline_trace(config: &SystemConfig, app: AppId, scale: Scale) -> Arc<GenerationTrace> {
    let slot = memo_slot(MemoKey {
        config_fp: config_fingerprint(config),
        scheme: Scheme::Baseline,
        app,
        scale,
    });
    let entry = slot.get_or_init(|| {
        BASELINE_EXECUTIONS.fetch_add(1, Ordering::Relaxed);
        let (result, trace) = run_baseline_with_trace(config, build(app, scale));
        MemoEntry {
            result,
            trace: Some(Arc::new(trace)),
        }
    });
    entry
        .trace
        .as_ref()
        .expect("baseline entries always carry a trace")
        .clone()
}

/// Runs all jobs, fanning out across `threads` scoped OS threads, and
/// returns results in the same order as the input — parallelism never
/// changes the output. Identical jobs (same config, scheme, app, scale) are
/// executed once per process and recalled from the memoization table.
pub fn run_jobs(jobs: &[Job], threads: usize) -> Vec<RunResult> {
    assert!(threads >= 1, "need at least one thread");
    let results: Vec<Mutex<Option<RunResult>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(jobs.len().max(1)) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let job = &jobs[i];
                let result = run_cached(&job.config, job.scheme, job.app, job.scale);
                *results[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("every job ran")
        })
        .collect()
}

/// Convenience: runs every app of the paper's suite under each scheme and
/// returns results indexed `[scheme][app]` in input order.
pub fn run_matrix(
    config: &SystemConfig,
    schemes: &[Scheme],
    apps: &[AppId],
    scale: Scale,
    threads: usize,
) -> Vec<Vec<RunResult>> {
    let config = Arc::new(config.clone());
    let jobs: Vec<Job> = schemes
        .iter()
        .flat_map(|&scheme| {
            let config = &config;
            apps.iter().map(move |&app| Job {
                config: Arc::clone(config),
                scheme,
                app,
                scale,
            })
        })
        .collect();
    let flat = run_jobs(&jobs, threads);
    flat.chunks(apps.len()).map(<[RunResult]>::to_vec).collect()
}

/// Geometric mean of an iterator of positive factors (the paper reports
/// mean speedups across the 20 applications).
pub fn geomean(xs: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for x in xs {
        assert!(x > 0.0, "geomean needs positive values");
        log_sum += x.ln();
        n += 1;
    }
    if n == 0 {
        1.0
    } else {
        (log_sum / n as f64).exp()
    }
}

/// Runs `scheme` vs. [`Scheme::Baseline`] over `apps` for several trace
/// seeds and returns the seed-averaged geomean speedup — the noise-reduced
/// headline number (single-seed outage schedules carry real variance; the
/// paper's hours-long runs average it out intrinsically).
pub fn mean_speedup_over_seeds(
    config: &SystemConfig,
    scheme: Scheme,
    apps: &[AppId],
    scale: Scale,
    seeds: &[u64],
    threads: usize,
) -> f64 {
    assert!(!seeds.is_empty(), "need at least one seed");
    // One flat job list over every (seed, scheme, app) cell: a single
    // [`run_jobs`] fan-out keeps all worker threads busy across seed
    // boundaries instead of draining the pool at the end of each seed's
    // matrix. Job order is [seed][Baseline|scheme][app], so the results
    // regroup by fixed-size chunks.
    let mut jobs = Vec::with_capacity(seeds.len() * 2 * apps.len());
    for &seed in seeds {
        let mut seeded = config.clone();
        if let crate::SourceKind::Preset { preset, scale, .. } = seeded.source {
            seeded.source = crate::SourceKind::Preset {
                preset,
                seed,
                scale,
            };
        }
        let seeded = Arc::new(seeded);
        for job_scheme in [Scheme::Baseline, scheme] {
            for &app in apps {
                jobs.push(Job {
                    config: Arc::clone(&seeded),
                    scheme: job_scheme,
                    app,
                    scale,
                });
            }
        }
    }
    let flat = run_jobs(&jobs, threads);
    let per_seed = flat.chunks(2 * apps.len()).map(|chunk| {
        let (base, tested) = chunk.split_at(apps.len());
        geomean(
            base.iter()
                .zip(tested)
                .map(|(b, r)| b.total_time() / r.total_time()),
        )
    });
    geomean(per_seed)
}

/// Default worker-thread count: all but one hardware thread.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().saturating_sub(1).max(1))
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_identity_is_one() {
        assert!((geomean([1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((geomean(std::iter::empty()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_matches_hand_computation() {
        let g = geomean([2.0, 8.0]);
        assert!((g - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_nonpositive() {
        let _ = geomean([1.0, 0.0]);
    }

    #[test]
    fn run_jobs_preserves_input_order() {
        let config = SystemConfig::paper_default();
        let config = Arc::new(config);
        let jobs: Vec<Job> = [AppId::Crc32, AppId::Bitcount]
            .iter()
            .map(|&app| Job {
                config: Arc::clone(&config),
                scheme: Scheme::Baseline,
                app,
                scale: Scale::Tiny,
            })
            .collect();
        let results = run_jobs(&jobs, 2);
        assert_eq!(results[0].app, AppId::Crc32);
        assert_eq!(results[1].app, AppId::Bitcount);
    }

    #[test]
    fn seed_averaging_returns_a_sane_factor() {
        let config = SystemConfig::paper_default();
        let speedup = mean_speedup_over_seeds(
            &config,
            Scheme::Edbp,
            &[AppId::Crc32],
            Scale::Tiny,
            &[1, 2],
            2,
        );
        assert!((0.5..2.0).contains(&speedup), "speedup {speedup}");
    }
}
