//! Per-run results: timing, energy breakdown, cache and prediction stats.

use crate::Scheme;
use edbp_core::PredictionSummary;
use ehs_cache::CacheStats;
use ehs_units::{Energy, Power, Time};
use ehs_workloads::AppId;

/// Where the harvested energy went — the categories of the paper's Fig. 7
/// (cache / memory / checkpoint+restore / others), kept at finer grain so
/// the figure can also split static vs dynamic cache energy (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// Data-cache dynamic (access) energy.
    pub dcache_dynamic: Energy,
    /// Data-cache static (leakage) energy.
    pub dcache_static: Energy,
    /// Instruction-cache dynamic energy.
    pub icache_dynamic: Energy,
    /// Instruction-cache static energy.
    pub icache_static: Energy,
    /// Main-memory access energy (reads, writes, standby).
    pub memory: Energy,
    /// JIT checkpoint (save) energy.
    pub checkpoint: Energy,
    /// Restoration energy.
    pub restore: Energy,
    /// MCU dynamic energy ("computing", part of Fig. 7's "others").
    pub mcu: Energy,
    /// Capacitor self-discharge (part of Fig. 7's "others").
    pub capacitor: Energy,
}

impl EnergyBreakdown {
    /// Total cache energy (both caches, static + dynamic).
    pub fn cache(&self) -> Energy {
        self.dcache_dynamic + self.dcache_static + self.icache_dynamic + self.icache_static
    }

    /// The paper's "checkpoint/restoration" category.
    pub fn checkpoint_restore(&self) -> Energy {
        self.checkpoint + self.restore
    }

    /// The paper's "others" category (computing + capacitor leakage).
    pub fn others(&self) -> Energy {
        self.mcu + self.capacitor
    }

    /// Everything.
    pub fn total(&self) -> Energy {
        self.cache() + self.memory + self.checkpoint_restore() + self.others()
    }

    /// Static fraction of the data-cache energy (Table I bottom row).
    pub fn dcache_static_ratio(&self) -> f64 {
        let total = self.dcache_dynamic + self.dcache_static;
        if total.is_zero() {
            0.0
        } else {
            self.dcache_static / total
        }
    }
}

/// Everything measured by one application run under one scheme.
///
/// Equality compares only the *simulated* outcome — [`RunResult::sim_mips`]
/// is host-wall-clock throughput and is deliberately excluded, so
/// determinism checks (`threads=1` vs `threads=8`, memoized vs fresh) can
/// use `==` directly.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The application.
    pub app: AppId,
    /// The scheme.
    pub scheme: Scheme,
    /// Whether the program ran to completion within the instruction budget
    /// and the source kept recovering.
    pub completed: bool,
    /// Committed instructions.
    pub committed: u64,
    /// Committed loads.
    pub loads: u64,
    /// Committed stores.
    pub stores: u64,
    /// Wall-clock time executing.
    pub on_time: Time,
    /// Wall-clock time powered off recharging.
    pub off_time: Time,
    /// Number of power outages endured.
    pub outages: u64,
    /// Brown-outs (JIT margin violations; should be zero).
    pub brownouts: u64,
    /// Where the energy went.
    pub energy: EnergyBreakdown,
    /// Data-cache counters.
    pub dcache: CacheStats,
    /// Instruction-cache counters.
    pub icache: CacheStats,
    /// Zombie-aware prediction accounting (data cache).
    pub prediction: PredictionSummary,
    /// Simulator throughput: simulated (committed) instructions per host
    /// wall-clock second, in millions. Zero when the run was served from
    /// the memoization cache. Not part of equality.
    pub sim_mips: f64,
}

impl PartialEq for RunResult {
    fn eq(&self, other: &Self) -> bool {
        self.app == other.app
            && self.scheme == other.scheme
            && self.completed == other.completed
            && self.committed == other.committed
            && self.loads == other.loads
            && self.stores == other.stores
            && self.on_time == other.on_time
            && self.off_time == other.off_time
            && self.outages == other.outages
            && self.brownouts == other.brownouts
            && self.energy == other.energy
            && self.dcache == other.dcache
            && self.icache == other.icache
            && self.prediction == other.prediction
    }
}

impl RunResult {
    /// Total wall-clock time — the performance metric everything is
    /// normalized against (speedup = baseline time / scheme time).
    pub fn total_time(&self) -> Time {
        self.on_time + self.off_time
    }

    /// Average power over the whole run (Fig. 9's red line).
    pub fn average_power(&self) -> Power {
        let t = self.total_time();
        if t.is_zero() {
            Power::ZERO
        } else {
            self.energy.total() / t
        }
    }

    /// Load+store fraction of committed instructions (Fig. 7 bottom).
    pub fn load_store_ratio(&self) -> f64 {
        if self.committed == 0 {
            0.0
        } else {
            (self.loads + self.stores) as f64 / self.committed as f64
        }
    }

    /// Data-cache miss rate (Fig. 8 bottom).
    pub fn dcache_miss_rate(&self) -> f64 {
        self.dcache.miss_rate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_totals_add_up() {
        let b = EnergyBreakdown {
            dcache_dynamic: Energy::from_joules(1.0),
            dcache_static: Energy::from_joules(2.0),
            icache_dynamic: Energy::from_joules(3.0),
            icache_static: Energy::from_joules(4.0),
            memory: Energy::from_joules(5.0),
            checkpoint: Energy::from_joules(6.0),
            restore: Energy::from_joules(7.0),
            mcu: Energy::from_joules(8.0),
            capacitor: Energy::from_joules(9.0),
        };
        assert!((b.total().as_joules() - 45.0).abs() < 1e-9);
        assert!((b.cache().as_joules() - 10.0).abs() < 1e-9);
        assert!((b.checkpoint_restore().as_joules() - 13.0).abs() < 1e-9);
        assert!((b.others().as_joules() - 17.0).abs() < 1e-9);
        assert!((b.dcache_static_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_breakdown_ratio_is_zero() {
        assert_eq!(EnergyBreakdown::default().dcache_static_ratio(), 0.0);
    }
}
