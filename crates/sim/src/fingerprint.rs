//! Structural fingerprinting of [`SystemConfig`] for the memoization table
//! and the persistent result cache.
//!
//! The fingerprint walks every field of the configuration and feeds its bit
//! pattern into an `FxHasher` — `f64`s via [`f64::to_bits`], enums via their
//! [`std::mem::discriminant`] plus any payload, `Option`s and `Vec`s with a
//! tag/length prefix so structurally different values can never collide by
//! concatenation. Unlike the previous `Debug`-string hash, this costs no
//! allocation, is immune to formatting changes, and makes the "distinct
//! configurations get distinct keys" property testable field by field.
//!
//! # Cross-process stability
//!
//! `FxHasher` is seedless and fully deterministic, so the same build
//! produces the same fingerprint in every process — which is what lets
//! `results/.runcache/` address cached results by fingerprint across
//! invocations. The fingerprint is **not** stable across code changes that
//! touch [`SystemConfig`]'s shape or the feeding order (nor is
//! `std::mem::discriminant` guaranteed stable across compiler versions);
//! the cache's schema-version tag and workload fingerprint exist precisely
//! so such drift invalidates entries instead of corrupting results. Bump
//! [`crate::runcache::SCHEMA_VERSION`] whenever fingerprint semantics
//! change in a way the hash itself would not catch.

use crate::{CheckpointCosts, SourceKind, SystemConfig};
use edbp_core::{DecayConfig, EdbpConfig, FxBuildHasher};
use ehs_cache::{CacheConfig, ReplacementPolicy};
use ehs_energy::{CapacitorConfig, EnergySystemConfig, TracePreset, VoltageThresholds};
use ehs_nvm::{CacheGeometry, MemoryTechnology};
use ehs_units::{Capacitance, Energy, Frequency, Power, Time, Voltage};
use std::hash::{BuildHasher, Hash, Hasher};

/// Feeds a value's structural content into a [`Hasher`].
trait Feed {
    fn feed<H: Hasher>(&self, h: &mut H);
}

impl Feed for bool {
    fn feed<H: Hasher>(&self, h: &mut H) {
        h.write_u8(u8::from(*self));
    }
}

impl Feed for u32 {
    fn feed<H: Hasher>(&self, h: &mut H) {
        h.write_u32(*self);
    }
}

impl Feed for u64 {
    fn feed<H: Hasher>(&self, h: &mut H) {
        h.write_u64(*self);
    }
}

impl Feed for usize {
    fn feed<H: Hasher>(&self, h: &mut H) {
        h.write_usize(*self);
    }
}

impl Feed for f64 {
    fn feed<H: Hasher>(&self, h: &mut H) {
        h.write_u64(self.to_bits());
    }
}

impl<T: Feed> Feed for Option<T> {
    fn feed<H: Hasher>(&self, h: &mut H) {
        match self {
            None => h.write_u8(0),
            Some(v) => {
                h.write_u8(1);
                v.feed(h);
            }
        }
    }
}

impl<T: Feed> Feed for Vec<T> {
    fn feed<H: Hasher>(&self, h: &mut H) {
        h.write_usize(self.len());
        for v in self {
            v.feed(h);
        }
    }
}

/// Dimensioned newtypes fingerprint as the bit pattern of their base value.
macro_rules! feed_quantity {
    ($($name:ident),*) => {$(
        impl Feed for $name {
            fn feed<H: Hasher>(&self, h: &mut H) {
                self.base().feed(h);
            }
        }
    )*};
}
feed_quantity!(Capacitance, Energy, Frequency, Power, Time, Voltage);

/// Fieldless enums fingerprint as their discriminant.
macro_rules! feed_discriminant {
    ($($name:ident),*) => {$(
        impl Feed for $name {
            fn feed<H: Hasher>(&self, h: &mut H) {
                std::mem::discriminant(self).hash(h);
            }
        }
    )*};
}
feed_discriminant!(MemoryTechnology, ReplacementPolicy, TracePreset);

impl Feed for CacheGeometry {
    fn feed<H: Hasher>(&self, h: &mut H) {
        self.capacity_bytes.feed(h);
        self.associativity.feed(h);
        self.block_bytes.feed(h);
    }
}

impl Feed for CacheConfig {
    fn feed<H: Hasher>(&self, h: &mut H) {
        self.geometry.feed(h);
        self.policy.feed(h);
    }
}

impl Feed for CapacitorConfig {
    fn feed<H: Hasher>(&self, h: &mut H) {
        self.capacitance.feed(h);
        self.v_max.feed(h);
        self.v_min.feed(h);
        self.leakage_per_farad.feed(h);
    }
}

impl Feed for VoltageThresholds {
    fn feed<H: Hasher>(&self, h: &mut H) {
        self.v_ckpt.feed(h);
        self.v_rst.feed(h);
    }
}

impl Feed for EnergySystemConfig {
    fn feed<H: Hasher>(&self, h: &mut H) {
        self.capacitor.feed(h);
        self.thresholds.feed(h);
        self.checkpoint_budget.feed(h);
        self.recharge_step.feed(h);
        self.max_off_time.feed(h);
    }
}

impl Feed for SourceKind {
    fn feed<H: Hasher>(&self, h: &mut H) {
        std::mem::discriminant(self).hash(h);
        match self {
            SourceKind::Preset {
                preset,
                seed,
                scale,
            } => {
                preset.feed(h);
                seed.feed(h);
                scale.feed(h);
            }
            SourceKind::Constant(p) => p.feed(h),
        }
    }
}

impl Feed for CheckpointCosts {
    fn feed<H: Hasher>(&self, h: &mut H) {
        self.save_energy_per_byte.feed(h);
        self.restore_energy_per_byte.feed(h);
        self.save_latency.feed(h);
        self.restore_latency.feed(h);
    }
}

impl Feed for DecayConfig {
    fn feed<H: Hasher>(&self, h: &mut H) {
        self.decay_interval_cycles.feed(h);
    }
}

impl Feed for EdbpConfig {
    fn feed<H: Hasher>(&self, h: &mut H) {
        self.initial_thresholds.feed(h);
        self.adjustment_step.feed(h);
        self.reference_fpr.feed(h);
        self.floor.feed(h);
        self.sample_set.feed(h);
        self.deactivation_buffer_entries.feed(h);
        self.protect_mru.feed(h);
        self.clean_first.feed(h);
    }
}

/// Structural fingerprint of the full configuration: a 64-bit Fx hash over
/// every field's bit pattern, stable within a process — which is all the
/// process-wide memoization key needs. Configurations that differ in any
/// field (including nested ones) hash differently with overwhelming
/// probability.
pub fn config_fingerprint(config: &SystemConfig) -> u64 {
    let SystemConfig {
        dcache,
        dcache_tech,
        icache,
        icache_tech,
        memory_tech,
        memory_bytes,
        energy,
        source,
        frequency,
        mcu_power_per_mhz,
        dcache_leakage_scale,
        icache_leakage_scale,
        icache_energy_scale,
        gated_leak_fraction,
        ckpt,
        decay,
        edbp,
        predict_icache,
        zombie_sample_interval,
        max_instructions,
        force_cycle_accurate,
        force_no_speculate,
    } = config;
    let mut h = FxBuildHasher::default().build_hasher();
    dcache.feed(&mut h);
    dcache_tech.feed(&mut h);
    icache.feed(&mut h);
    icache_tech.feed(&mut h);
    memory_tech.feed(&mut h);
    memory_bytes.feed(&mut h);
    energy.feed(&mut h);
    source.feed(&mut h);
    frequency.feed(&mut h);
    mcu_power_per_mhz.feed(&mut h);
    dcache_leakage_scale.feed(&mut h);
    icache_leakage_scale.feed(&mut h);
    icache_energy_scale.feed(&mut h);
    gated_leak_fraction.feed(&mut h);
    ckpt.feed(&mut h);
    decay.feed(&mut h);
    edbp.feed(&mut h);
    predict_icache.feed(&mut h);
    zombie_sample_interval.feed(&mut h);
    max_instructions.feed(&mut h);
    force_cycle_accurate.feed(&mut h);
    force_no_speculate.feed(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    /// One mutation per [`SystemConfig`] field (nested fields included where
    /// the mutation would otherwise be ambiguous); every mutant must
    /// fingerprint differently from the default and from each other.
    fn mutants() -> Vec<(&'static str, SystemConfig)> {
        let d = SystemConfig::paper_default;
        let mut out: Vec<(&'static str, SystemConfig)> = Vec::new();
        let mut push = |name: &'static str, f: &dyn Fn(&mut SystemConfig)| {
            let mut c = d();
            f(&mut c);
            out.push((name, c));
        };
        push("dcache.geometry", &|c| c.dcache.geometry.block_bytes = 32);
        push("dcache.policy", &|c| {
            c.dcache.policy = ReplacementPolicy::Fifo;
        });
        push("dcache_tech", &|c| c.dcache_tech = MemoryTechnology::ReRam);
        push("icache.geometry", &|c| c.icache.geometry.associativity = 2);
        push("icache_tech", &|c| c.icache_tech = MemoryTechnology::Sram);
        push("memory_tech", &|c| c.memory_tech = MemoryTechnology::Sram);
        push("memory_bytes", &|c| c.memory_bytes *= 2);
        push("energy.capacitor", &|c| {
            c.energy.capacitor.capacitance = Capacitance::from_micro_farads(1.0);
        });
        push("energy.thresholds", &|c| {
            c.energy.thresholds.v_ckpt = Voltage::from_volts(3.25);
        });
        push("energy.checkpoint_budget", &|c| {
            c.energy.checkpoint_budget = Energy::from_nano_joules(500.0);
        });
        push("energy.recharge_step", &|c| {
            c.energy.recharge_step = Time::from_micros(25.0);
        });
        push("energy.max_off_time", &|c| {
            c.energy.max_off_time = Time::from_seconds(50.0);
        });
        push("source.seed", &|c| {
            c.source = SourceKind::Preset {
                preset: TracePreset::RfHome,
                seed: 43,
                scale: 1.0,
            };
        });
        push("source.preset", &|c| {
            c.source = SourceKind::Preset {
                preset: TracePreset::Solar,
                seed: 42,
                scale: 1.0,
            };
        });
        push("source.kind", &|c| {
            c.source = SourceKind::Constant(Power::from_milli_watts(5.0));
        });
        push("frequency", &|c| {
            c.frequency = Frequency::from_mega_hertz(50.0);
        });
        push("mcu_power_per_mhz", &|c| {
            c.mcu_power_per_mhz = Power::from_micro_watts(100.0);
        });
        push("dcache_leakage_scale", &|c| c.dcache_leakage_scale = 0.2);
        push("icache_leakage_scale", &|c| c.icache_leakage_scale = 0.2);
        push("icache_energy_scale", &|c| c.icache_energy_scale = 1.0);
        push("gated_leak_fraction", &|c| c.gated_leak_fraction = 0.05);
        push("ckpt", &|c| {
            c.ckpt.save_latency = Time::from_nanos(500.0);
        });
        push("decay", &|c| c.decay.decay_interval_cycles = 65_536);
        push("edbp", &|c| {
            c.edbp = Some(EdbpConfig::for_ways(4));
        });
        push("edbp.protect_mru", &|c| {
            let mut e = EdbpConfig::for_ways(4);
            e.protect_mru = false;
            c.edbp = Some(e);
        });
        push("predict_icache", &|c| c.predict_icache = true);
        push("zombie_sample_interval", &|c| {
            c.zombie_sample_interval = Some(500);
        });
        push("max_instructions", &|c| c.max_instructions = 1_000_000);
        push("force_cycle_accurate", &|c| c.force_cycle_accurate = true);
        push("force_no_speculate", &|c| c.force_no_speculate = true);
        out
    }

    #[test]
    fn is_deterministic_within_a_process() {
        let c = SystemConfig::paper_default();
        assert_eq!(config_fingerprint(&c), config_fingerprint(&c.clone()));
    }

    #[test]
    fn every_single_field_mutation_changes_the_fingerprint() {
        let mutants = mutants();
        let mut fps = HashSet::new();
        fps.insert(config_fingerprint(&SystemConfig::paper_default()));
        for (name, mutant) in &mutants {
            assert!(
                fps.insert(config_fingerprint(mutant)),
                "mutation of `{name}` collided with an earlier fingerprint"
            );
        }
        assert_eq!(fps.len(), mutants.len() + 1);
    }
}
