//! The full-system simulation loop.

use crate::replay::{StreamSink, StreamWindow, REC_COMPUTE, REC_HALT, REC_LOAD, REC_STORE};
use crate::{EnergyBreakdown, MemorySystem, RunResult, Scheme, SystemConfig};
use edbp_core::{
    AdaptiveModeControl, AmcConfig, CacheDecay, CombinedPredictor, Edbp, EdbpConfig,
    GenerationTrace, LeakagePredictor, NullPredictor, OraclePredictor, OracleRecorder, PagedTable,
    Pair, PredictionLedger, ReusePredictor, ReusePredictorConfig, TickOutcome, WakeHint,
};
use ehs_cache::{with_policy_kernel, AccessKind, Cache, PolicyKernel};
use ehs_cpu::{stream_is_data_independent, Core, CoreState, Effect, INSTRUCTION_BYTES};
use ehs_energy::{BurstPlan, EnergyConfigError, EnergySystem, StepEvent};
use ehs_units::{Energy, Power, Time};
use ehs_workloads::{build, AppId, Scale, Workload};
use std::sync::Arc;

/// A pooled checkpoint shadow: the blocks saved across an outage, stored
/// structure-of-arrays in buffers that are cleared and refilled at every
/// checkpoint instead of reallocated (block data lives in one contiguous
/// `Vec<u8>` that reaches its high-water capacity once and then stays).
#[derive(Debug, Default)]
struct ShadowArena {
    addrs: Vec<u64>,
    dirty: Vec<bool>,
    data: Vec<u8>,
    block_bytes: usize,
}

impl ShadowArena {
    fn new(block_bytes: usize) -> Self {
        Self {
            block_bytes,
            ..Self::default()
        }
    }

    fn clear(&mut self) {
        self.addrs.clear();
        self.dirty.clear();
        self.data.clear();
    }

    fn push(&mut self, addr: u64, data: &[u8], dirty: bool) {
        debug_assert_eq!(data.len(), self.block_bytes);
        self.addrs.push(addr);
        self.dirty.push(dirty);
        self.data.extend_from_slice(data);
    }

    fn len(&self) -> usize {
        self.addrs.len()
    }

    /// Total payload bytes (what the checkpoint save/restore is billed for).
    fn bytes(&self) -> u64 {
        self.data.len() as u64
    }

    fn block(&self, i: usize) -> &[u8] {
        &self.data[i * self.block_bytes..(i + 1) * self.block_bytes]
    }
}

/// Per-cycle energy constants of the platform, hoisted out of the loop.
struct LeakParams {
    d_leak_full: Power,
    i_leak_full: Power,
    gated_frac: f64,
    d_blocks: f64,
    i_blocks: f64,
    cycle_time: Time,
    /// MCU dynamic energy of one unstalled cycle.
    mcu_e_cycle: Energy,
    /// Main-memory standby energy of one unstalled cycle.
    standby_e_cycle: Energy,
}

/// Lazily recomputed leakage terms. The active/gated block counts only
/// change on cache fills, evictions, predictor gatings and outages, so the
/// per-cycle static-energy products are invalidated on those events and
/// reused everywhere in between. Refreshing performs the identical f64
/// operations the reference loop performs every cycle, so cached and fresh
/// values are bit-equal (DESIGN.md §8).
struct LeakCache {
    dirty: bool,
    /// Fraction of D-cache leakage currently drawn (active + gated blocks).
    d_frac: f64,
    /// Fraction of I-cache leakage currently drawn.
    i_frac: f64,
    /// D-cache static energy of one unstalled cycle.
    d_static_cycle: Energy,
    /// I-cache static energy of one unstalled cycle.
    i_static_cycle: Energy,
    /// Total load of one unstalled compute cycle (static + MCU + standby),
    /// associated exactly as the reference loop sums it.
    cycle_load: Energy,
}

impl LeakCache {
    fn new() -> Self {
        Self {
            dirty: true,
            d_frac: 0.0,
            i_frac: 0.0,
            d_static_cycle: Energy::ZERO,
            i_static_cycle: Energy::ZERO,
            cycle_load: Energy::ZERO,
        }
    }

    fn refresh(&mut self, mem: &MemorySystem, p: &LeakParams) {
        if !self.dirty {
            return;
        }
        self.d_frac = (f64::from(mem.dcache.active_blocks())
            + f64::from(mem.dcache.gated_blocks()) * p.gated_frac)
            / p.d_blocks;
        self.i_frac = (f64::from(mem.icache.active_blocks())
            + f64::from(mem.icache.gated_blocks()) * p.gated_frac)
            / p.i_blocks;
        self.d_static_cycle = p.d_leak_full * self.d_frac * p.cycle_time;
        self.i_static_cycle = p.i_leak_full * self.i_frac * p.cycle_time;
        self.cycle_load =
            self.d_static_cycle + self.i_static_cycle + p.mcu_e_cycle + p.standby_e_cycle;
        self.dirty = false;
    }
}

/// [`WakeHint::due`] with the voltage comparison evaluated in the energy
/// domain ([`EnergySystem::voltage_strictly_below`]): bit-exactly the same
/// answer with no square root. The hot loop asks this after every burst and
/// every reference cycle; the actual voltage is derived only on the rare
/// iterations where the hint fires and a tick needs it.
#[inline]
fn hint_due(hint: &WakeHint, cycle: u64, energy: &mut EnergySystem) -> bool {
    hint.every_cycle
        || hint.at_cycle.is_some_and(|c| cycle >= c)
        || hint
            .below_voltage
            .is_some_and(|w| energy.voltage_strictly_below(w))
}

/// Everything one simulator execution can produce, returned by
/// [`Simulation::run_collecting`]. The memoized run layer stores the whole
/// outcome so a single execution can serve as a figure's result row, the
/// Ideal scheme's oracle pass (`trace`) and the Fig. 4 zombie sample pool at
/// the same time.
#[derive(Debug)]
pub struct RunOutcome {
    /// The run's aggregate statistics.
    pub result: RunResult,
    /// Recorded oracle trace, present when a recorder was attached.
    pub trace: Option<GenerationTrace>,
    /// Resolved zombie samples; empty unless
    /// [`SystemConfig::zombie_sample_interval`] was set.
    pub zombie_samples: Vec<crate::ZombieSample>,
}

/// One in-flight simulation. Most users want [`run_app`]; construct a
/// `Simulation` directly to customize the workload or inject an oracle
/// trace.
///
/// The data-cache predictor type `P` defaults to a boxed trait object —
/// the flexible, dynamically-dispatched flavor every existing caller gets.
/// Performance-critical paths instead resolve the scheme to a concrete
/// predictor type once via [`build_lane`], so the per-access and per-tick
/// hot loops compile with static dispatch (a `NullPredictor` baseline's
/// hooks inline to nothing; `Pair` composes two predictors without a
/// vtable hop per event).
#[derive(Debug)]
pub struct Simulation<P: LeakagePredictor = Box<dyn LeakagePredictor>> {
    config: SystemConfig,
    scheme: Scheme,
    workload: Workload,
    mem: MemorySystem,
    core: Core,
    energy: EnergySystem,
    d_pred: P,
    i_pred: Option<Box<dyn LeakagePredictor>>,
    ledger: PredictionLedger,
    /// SDBP's reuse predictor (checkpoint filter).
    reuse: Option<ReusePredictor>,
    /// Per-resident-block "reused since fill" flags (trains `reuse`).
    /// Maintained only when `reuse` is present — no other scheme reads them.
    reuse_flags: PagedTable<bool>,
    /// Oracle recording (pass 1 of the Ideal scheme).
    recorder: Option<OracleRecorder>,
    /// Zombie-ratio instrumentation (Fig. 4).
    zombie: Option<crate::ZombieAnalysis>,
    breakdown: EnergyBreakdown,
    brownouts: u64,
    /// Core state of the last JIT checkpoint; the matching cache shadow
    /// lives in `shadow`. `None` until the first checkpoint is taken.
    last_ckpt: Option<CoreState>,
    /// Pooled block shadow of the last checkpoint.
    shadow: ShadowArena,
    /// Scratch arena for dirty dead blocks spilled while assembling an SDBP
    /// checkpoint (write-backs happen after the cache walk ends).
    spill: ShadowArena,
    /// Reusable predictor-tick outcome: cleared and refilled at every
    /// executed tick instead of reallocated (its vectors and arenas reach
    /// their high-water capacity once and then stay).
    tick_scratch: TickOutcome,
    completed: bool,
    /// The energy source never recovered from an outage; the run is over.
    aborted: bool,
    /// The workload's `(pc, kind, addr)` stream is provably independent of
    /// loaded data (see [`stream_is_data_independent`]), making this lane
    /// eligible for transposed stream replay.
    stream_invariant: bool,
    /// `committed + arch_offset` = architectural position on the canonical
    /// rewind-free instruction stream. Committed counts re-executed
    /// instructions after a restore; the offset subtracts them back out.
    arch_offset: i64,
    /// Architectural position of `last_ckpt` (meaningful only while
    /// `last_ckpt` is `Some`).
    ckpt_arch: u64,
    /// Pooled buffer of this lane's own load values observed while
    /// replaying a [`StreamWindow`] (feeds the re-decode fallback).
    replay_loads: Vec<u32>,
}

/// Builds the data-cache predictor for a scheme.
fn build_dcache_predictor(
    scheme: Scheme,
    config: &SystemConfig,
    cache: &Cache,
    oracle_trace: Option<GenerationTrace>,
) -> Box<dyn LeakagePredictor> {
    let edbp_config = || {
        config
            .edbp
            .clone()
            .unwrap_or_else(|| EdbpConfig::for_cache(cache))
    };
    match scheme {
        Scheme::Baseline | Scheme::Sdbp | Scheme::LeakageOff80 => Box::new(NullPredictor::new()),
        Scheme::Decay => Box::new(CacheDecay::new(config.decay, cache)),
        Scheme::Edbp => Box::new(Edbp::new(edbp_config())),
        Scheme::DecayEdbp => Box::new(CombinedPredictor::new(vec![
            Box::new(CacheDecay::new(config.decay, cache)),
            Box::new(Edbp::new(edbp_config())),
        ])),
        Scheme::Amc => Box::new(AdaptiveModeControl::new(AmcConfig::default(), cache)),
        Scheme::AmcEdbp => Box::new(CombinedPredictor::new(vec![
            Box::new(AdaptiveModeControl::new(AmcConfig::default(), cache)),
            Box::new(Edbp::new(edbp_config())),
        ])),
        Scheme::Ideal => Box::new(OraclePredictor::new(
            oracle_trace.expect("the Ideal scheme requires a recorded generation trace"),
        )),
    }
}

impl Simulation {
    /// Creates a simulation of `workload` under `scheme`.
    ///
    /// `oracle_trace` must be provided when `scheme` is [`Scheme::Ideal`]
    /// (see [`record_generation_trace`]).
    ///
    /// # Panics
    ///
    /// Panics if the energy configuration is invalid (use [`Self::try_new`]
    /// where an invalid user-supplied configuration must be reported
    /// instead of aborting) or the Ideal scheme is requested without a
    /// trace.
    pub fn new(
        config: &SystemConfig,
        scheme: Scheme,
        workload: Workload,
        oracle_trace: Option<GenerationTrace>,
    ) -> Self {
        Self::try_new(config, scheme, workload, oracle_trace)
            .unwrap_or_else(|e| panic!("invalid energy configuration: {e}"))
    }

    /// [`Self::new`], but an inconsistent energy configuration is returned
    /// as a typed [`EnergyConfigError`] rather than a panic — the harness
    /// turns it into an actionable per-job failure instead of aborting a
    /// whole suite.
    pub fn try_new(
        config: &SystemConfig,
        scheme: Scheme,
        workload: Workload,
        oracle_trace: Option<GenerationTrace>,
    ) -> Result<Self, EnergyConfigError> {
        Simulation::try_new_with(config, scheme, workload, |cfg, cache| {
            build_dcache_predictor(scheme, cfg, cache, oracle_trace)
        })
    }
}

impl<P: LeakagePredictor> Simulation<P> {
    /// [`Simulation::try_new`] with a caller-supplied data-cache predictor
    /// builder, which fixes the concrete predictor type `P`. The builder
    /// receives the effective configuration (after scheme-specific
    /// adjustments such as [`Scheme::LeakageOff80`]'s leakage scale) and
    /// the constructed D-cache. [`build_lane`] maps each scheme to its
    /// concrete predictor type through this entry point.
    pub fn try_new_with(
        config: &SystemConfig,
        scheme: Scheme,
        workload: Workload,
        build_d_pred: impl FnOnce(&SystemConfig, &Cache) -> P,
    ) -> Result<Self, EnergyConfigError> {
        let mut config = config.clone();
        if scheme == Scheme::LeakageOff80 {
            config.dcache_leakage_scale = 0.2;
        }
        let mem = MemorySystem::new(&config);
        let d_pred = build_d_pred(&config, &mem.dcache);
        let i_pred: Option<Box<dyn LeakagePredictor>> =
            if config.predict_icache && !config.icache_tech.is_nonvolatile() {
                // The Ideal scheme is only defined for the data cache.
                match scheme {
                    Scheme::Ideal => None,
                    _ => Some(build_dcache_predictor(scheme, &config, &mem.icache, None)),
                }
            } else {
                None
            };
        let core = Core::new(&workload.program);
        let mut energy =
            EnergySystem::new(config.energy.clone(), SourceBox(config.source.build()))?;
        if config.force_no_speculate {
            energy.set_speculation(false);
        }
        let reuse =
            (scheme == Scheme::Sdbp).then(|| ReusePredictor::new(ReusePredictorConfig::default()));
        let zombie = config
            .zombie_sample_interval
            .map(crate::ZombieAnalysis::new);
        let block_bytes = config.dcache.geometry.block_bytes as usize;
        let stream_invariant = stream_is_data_independent(&workload.program);
        Ok(Self {
            scheme,
            mem,
            core,
            energy,
            d_pred,
            i_pred,
            ledger: PredictionLedger::for_block_bytes(config.dcache.geometry.block_bytes),
            reuse,
            reuse_flags: PagedTable::for_block_bytes(config.dcache.geometry.block_bytes),
            recorder: None,
            zombie,
            breakdown: EnergyBreakdown::default(),
            brownouts: 0,
            last_ckpt: None,
            shadow: ShadowArena::new(block_bytes),
            spill: ShadowArena::new(block_bytes),
            tick_scratch: TickOutcome::default(),
            completed: false,
            aborted: false,
            stream_invariant,
            arch_offset: 0,
            ckpt_arch: 0,
            replay_loads: Vec::new(),
            workload,
            config,
        })
    }

    /// Attaches an oracle recorder (pass 1 of the Ideal scheme).
    pub fn with_recorder(mut self) -> Self {
        self.recorder = Some(OracleRecorder::new());
        self
    }

    /// Runs to completion (or abort) and returns the results, plus the
    /// recorded oracle trace if a recorder was attached.
    pub fn run(self) -> (RunResult, Option<GenerationTrace>) {
        let outcome = self.run_collecting();
        (outcome.result, outcome.trace)
    }

    /// Runs to completion and returns everything a single execution can
    /// produce: the result, the recorded oracle trace (when a recorder was
    /// attached), and the resolved zombie samples (when
    /// [`SystemConfig::zombie_sample_interval`] is set). The memoized run
    /// layer uses this so one execution can serve the baseline column, the
    /// Ideal scheme's oracle pass and the Fig. 4 sample pool at once.
    pub fn run_collecting(mut self) -> RunOutcome {
        let wall_start = std::time::Instant::now();
        self.run_loop();
        let wall = wall_start.elapsed().as_secs_f64();
        let mut outcome = self.finish_collecting();
        if wall > 0.0 {
            outcome.result.sim_mips = outcome.result.committed as f64 / wall / 1e6;
        }
        outcome
    }

    /// Assembles the [`RunOutcome`] of a simulation that has already been
    /// driven to completion (see [`Simulation::advance_until`] and
    /// [`Simulation::done`]). `sim_mips` is left at zero — an external
    /// driver that owns the wall clock (the lockstep runner times a whole
    /// lane group at once) fills it in afterwards.
    pub fn finish_collecting(mut self) -> RunOutcome {
        let zombie_samples = self
            .zombie
            .take()
            .map(crate::ZombieAnalysis::finish)
            .unwrap_or_default();
        let (result, trace) = self.finish();
        RunOutcome {
            result,
            trace,
            zombie_samples,
        }
    }

    /// Runs to completion and additionally returns the architectural value
    /// of each probed word (dirty cached copies win over the backing store),
    /// for crash-consistency verification.
    pub fn run_with_memory_probe(mut self, addrs: &[u64]) -> (RunResult, Vec<u32>) {
        self.run_loop();
        let words = addrs.iter().map(|&a| self.mem.word_at(a)).collect();
        let (result, _) = self.finish();
        (result, words)
    }

    /// Handles ledger/predictor/trainer bookkeeping for one data access.
    fn note_data_access(&mut self, access: &crate::memory_system::DataAccess) {
        let addr = access.block_addr;
        if access.hit {
            self.d_pred.on_hit(&self.mem.dcache, access.frame, addr);
            self.ledger.on_hit(addr);
            if let Some(r) = &mut self.recorder {
                r.on_hit(addr);
            }
            if let Some(z) = &mut self.zombie {
                z.on_hit(addr);
            }
            if self.reuse.is_some() {
                if let Some(flag) = self.reuse_flags.get_mut(addr) {
                    *flag = true;
                }
            }
        } else {
            self.d_pred.on_miss(addr);
            self.ledger.on_miss(addr);
            if let Some(ev) = access.evicted {
                self.d_pred.on_evict(ev);
                self.ledger.on_evict(ev);
                if let Some(r) = &mut self.recorder {
                    r.on_evict(ev);
                }
                if let Some(z) = &mut self.zombie {
                    z.on_generation_end(ev);
                }
                self.train_reuse(ev);
            }
            self.d_pred.on_fill(&self.mem.dcache, access.frame, addr);
            self.ledger.on_fill(addr);
            if let Some(r) = &mut self.recorder {
                r.on_fill(addr);
            }
            if let Some(z) = &mut self.zombie {
                z.on_fill(addr);
            }
            if self.reuse.is_some() {
                self.reuse_flags.insert(addr, false);
            }
        }
    }

    /// Ends the reuse-training generation for `addr`.
    fn train_reuse(&mut self, addr: u64) {
        if let Some(r) = &mut self.reuse {
            if let Some(reused) = self.reuse_flags.remove(addr) {
                r.train(addr, reused);
            }
        }
    }

    /// Applies a predictor tick: ledger accounting plus the preservation of
    /// gated dirty blocks.
    ///
    /// In an NVSRAMCache platform a dirty block is preserved by saving it
    /// *in place* into its nonvolatile twin cell — the same mechanism the
    /// JIT checkpoint uses — not by a (10x more expensive) main-memory
    /// write. We therefore charge the NVSRAM save cost to the checkpoint
    /// bucket; the simulator moves the data to the backing store so later
    /// accesses observe correct values (see DESIGN.md).
    fn apply_tick(&mut self, tick: &TickOutcome, is_dcache: bool) {
        if is_dcache {
            // Ticks gate in cache-walk order, so the addresses are
            // page-local: drain each side table with the paged batch
            // cursor (one spine resolution per page run). Per-table event
            // order is unchanged, so classification and training are
            // bit-identical to the per-address loop.
            let gated = tick.gated.iter().map(|g| g.addr);
            self.ledger.on_gate_batch(gated.clone());
            if let Some(z) = &mut self.zombie {
                for g in &tick.gated {
                    z.on_generation_end(g.addr);
                }
            }
            if let Some(r) = &mut self.reuse {
                self.reuse_flags
                    .remove_batch(gated, |addr, reused| r.train(addr, reused));
            }
        }
        for (addr, data) in tick.writebacks.iter() {
            // Conventional predictors spill gated dirty blocks to main
            // memory (an NVM write).
            let (t, e) = self.mem.write_back_from(addr, data);
            self.breakdown.memory += e;
            self.energy.consume(e);
            self.energy.elapse_operation(t);
        }
        for (addr, data) in tick.parked.iter() {
            // EDBP parks gated dirty blocks in their NVSRAM twins: an
            // in-place save at checkpoint cost, restored at reboot.
            let e = self.config.ckpt.save_energy_per_byte * data.len() as f64;
            self.breakdown.checkpoint += e;
            self.energy.consume(e);
            self.mem.park_from(addr, data);
        }
    }

    /// Takes the JIT checkpoint (if `jit` — brown-outs skip it), rides out
    /// the outage and restores. Returns false if the source never recovered.
    fn ride_out_outage(&mut self, jit: bool) -> bool {
        self.d_pred.on_checkpoint(&self.mem.dcache);
        if let Some(ip) = &mut self.i_pred {
            ip.on_checkpoint(&self.mem.icache);
        }

        if jit {
            // --- Build the NV shadow (into the pooled arena) ---
            self.shadow.clear();
            match self.scheme {
                Scheme::Sdbp => {
                    // Disjoint field borrows: walk the cache without
                    // cloning while filling the two arenas.
                    let Self {
                        mem,
                        reuse,
                        shadow,
                        spill,
                        ..
                    } = self;
                    mem.dcache.for_each_valid(|addr, data, dirty| {
                        let keep = reuse.as_ref().is_none_or(|r| r.predicts_reuse(addr));
                        if keep {
                            shadow.push(addr, data, dirty);
                        } else if dirty {
                            // Dirty dead block: spill to main memory instead.
                            spill.push(addr, data, true);
                        }
                    });
                    let Self {
                        mem,
                        spill,
                        breakdown,
                        energy,
                        ..
                    } = self;
                    for i in 0..spill.len() {
                        let (t, e) = mem.write_back_from(spill.addrs[i], spill.block(i));
                        breakdown.memory += e;
                        energy.consume(e);
                        energy.elapse_operation(t);
                    }
                    spill.clear();
                }
                _ => {
                    let Self { mem, shadow, .. } = self;
                    mem.dcache
                        .for_each_dirty(|addr, data| shadow.push(addr, data, true));
                }
            }
            // The checkpoint save covers exactly the shadow assembled above.
            let bytes = self.shadow.bytes() + u64::from(CoreState::BYTES);
            let save_e = self.config.ckpt.save_energy_per_byte * bytes as f64;
            self.breakdown.checkpoint += save_e;
            self.energy.consume(save_e);
            self.energy.elapse_operation(self.config.ckpt.save_latency);
            // Blocks already parked in their NVSRAM twins ride along for
            // free (their save was paid at gating time); they are restored
            // at reboot like any other checkpointed block — as clean, since
            // the backing image already holds their data. The drain visits
            // addresses in ascending order, matching the sorted walk the
            // checkpoint format expects.
            {
                let Self { mem, shadow, .. } = self;
                mem.drain_parked(|addr, data| shadow.push(addr, data, false));
            }
            self.last_ckpt = Some(self.core.checkpoint());
            self.ckpt_arch = self.arch_pos();
        }

        // --- Lose volatile state ---
        if self.reuse.is_some() {
            // Every resident block's generation ends untrained-reuse-wise.
            // The flag map's key set equals the resident set, but iterate
            // the cache (set/way order) so training order is deterministic.
            let Self {
                mem,
                reuse,
                reuse_flags,
                ..
            } = self;
            if let Some(r) = reuse {
                reuse_flags.remove_batch(mem.dcache.resident_addrs_iter(), |addr, reused| {
                    r.train(addr, reused)
                });
            }
        }
        self.ledger.on_power_fail();
        if let Some(z) = &mut self.zombie {
            z.on_power_fail();
        }
        self.reuse_flags.clear();
        self.mem.reset_fetch_buffer();
        self.mem.dcache.power_fail();
        if !self.config.icache_tech.is_nonvolatile() {
            self.mem.icache.power_fail();
        }

        // --- Recharge ---
        let outcome = self.energy.power_off_and_recharge();
        if !outcome.recovered {
            return false;
        }

        // --- Reboot ---
        self.d_pred.on_reboot(&self.mem.dcache);
        if let Some(ip) = &mut self.i_pred {
            ip.on_reboot(&self.mem.icache);
        }
        if let Some(state) = self.last_ckpt.take() {
            let bytes = self.shadow.bytes() + u64::from(CoreState::BYTES);
            let restore_e = self.config.ckpt.restore_energy_per_byte * bytes as f64;
            self.breakdown.restore += restore_e;
            self.energy.consume(restore_e);
            self.energy
                .elapse_operation(self.config.ckpt.restore_latency);
            self.core.restore(&state);
            // The restore rewinds the architectural position to the
            // checkpoint's while `committed` keeps counting re-executed
            // instructions; the offset reconciles the two.
            self.arch_offset = self.ckpt_arch as i64 - self.core.committed() as i64;
            // Temporarily move the arena out so the loop body can borrow
            // `self` mutably; put it back after (same allocation).
            let shadow = std::mem::take(&mut self.shadow);
            for i in 0..shadow.len() {
                let (addr, dirty) = (shadow.addrs[i], shadow.dirty[i]);
                let data = shadow.block(i);
                // A set can be offered more blocks than it has ways (parked
                // blocks whose frames were re-occupied before the outage);
                // the overflow is spilled to main memory instead of
                // displacing an already-restored block.
                if !self.mem.dcache.has_free_frame(addr) {
                    if dirty {
                        let (t, e) = self.mem.write_back_from(addr, data);
                        self.breakdown.memory += e;
                        self.energy.consume(e);
                        self.energy.elapse_operation(t);
                    }
                    continue;
                }
                let frame = self.mem.restore_block(addr, data, dirty);
                self.d_pred.on_restore_fill(&self.mem.dcache, frame, addr);
                self.ledger.on_restore(addr);
                if let Some(r) = &mut self.recorder {
                    r.on_restore(addr);
                }
                if let Some(z) = &mut self.zombie {
                    z.on_fill(addr);
                }
                if self.reuse.is_some() {
                    self.reuse_flags.insert(addr, false);
                }
            }
            self.shadow = shadow;
            // The shadow stays valid until the next checkpoint overwrites it
            // (needed again if a brown-out strikes before then).
            self.last_ckpt = Some(state);
        } else {
            // Brown-out before any checkpoint: restart from program entry.
            // `Core::new` zeroes `committed`, so the position offset resets
            // with it.
            self.core = Core::new(&self.workload.program);
            self.arch_offset = 0;
        }
        true
    }

    /// Assembles the final result.
    fn finish(self) -> (RunResult, Option<GenerationTrace>) {
        let stats = self.energy.stats();
        let result = RunResult {
            app: self.workload.app,
            scheme: self.scheme,
            completed: self.completed,
            committed: self.core.committed(),
            loads: self.core.loads(),
            stores: self.core.stores(),
            on_time: stats.on_time,
            off_time: stats.off_time,
            outages: stats.outages,
            brownouts: self.brownouts,
            energy: self.breakdown,
            dcache: *self.mem.dcache.stats(),
            icache: *self.mem.icache.stats(),
            prediction: self.ledger.summary(),
            sim_mips: 0.0,
        };
        (result, self.recorder.map(OracleRecorder::finish))
    }

    /// Runs to completion and returns the results together with the
    /// resolved zombie samples (Fig. 4 analysis).
    ///
    /// # Panics
    ///
    /// Panics if [`SystemConfig::zombie_sample_interval`] was not set.
    pub fn run_with_zombie_analysis(self) -> (RunResult, Vec<crate::ZombieSample>) {
        assert!(
            self.zombie.is_some(),
            "enable SystemConfig::zombie_sample_interval before requesting zombie analysis"
        );
        let outcome = self.run_collecting();
        (outcome.result, outcome.zombie_samples)
    }

    /// Merged wake hint across the data- and instruction-cache predictors.
    fn wake_hint(&self) -> WakeHint {
        let mut hint = self.d_pred.next_wakeup();
        if let Some(ip) = &self.i_pred {
            hint = hint.merge(ip.next_wakeup());
        }
        hint
    }

    /// The main simulation loop.
    ///
    /// Two regimes produce bit-identical [`RunResult`]s (the
    /// `burst_exactness` differential suite asserts it for every scheme):
    ///
    /// * **Reference** ([`SystemConfig::force_cycle_accurate`]): one cycle
    ///   per iteration, every predictor ticked every cycle, leakage
    ///   fractions recomputed every cycle.
    /// * **Burst** (default): a run of consecutive compute instructions
    ///   whose fetches all hit the fetch buffer is handed to
    ///   [`EnergySystem::step_burst`] as one [`BurstPlan`]; predictor ticks
    ///   run only when the merged [`WakeHint`] is due, and leakage
    ///   fractions come from a [`LeakCache`] invalidated on fills,
    ///   evictions, gatings and outages.
    ///
    /// Exactness rests on the invariants documented in DESIGN.md §8: a
    /// burst cycle replicates the reference loop's f64 operation sequence;
    /// a tick whose hint is not due is a state-preserving no-op with an
    /// empty outcome; and the burst stops at the first cycle where any stop
    /// condition (energy event, hint voltage, hint cycle, run length)
    /// holds, so the next tick runs on exactly the cycle the reference
    /// loop would run it on.
    fn run_loop(&mut self) {
        self.advance_until(u64::MAX);
    }

    /// Instructions committed so far (live progress, for incremental
    /// driving via [`Simulation::advance_until`]).
    pub fn committed(&self) -> u64 {
        self.core.committed()
    }

    /// True once the workload has run to completion (halt instruction).
    pub fn halted(&self) -> bool {
        self.core.halted()
    }

    /// True once [`Simulation::advance_until`] can make no further
    /// progress: the workload halted, the instruction budget is exhausted,
    /// or the energy source never recovered from an outage. Incremental
    /// drivers (the lockstep runner) poll this between chunks.
    pub fn done(&self) -> bool {
        self.core.halted() || self.aborted || self.core.committed() >= self.config.max_instructions
    }

    /// Pre-sizes the zombie-analysis sample pools so a bounded measured
    /// window performs no further growth (testing/benchmarking aid; no-op
    /// unless [`SystemConfig::zombie_sample_interval`] is set).
    pub fn reserve_zombie_capacity(&mut self, samples: usize) {
        if let Some(z) = &mut self.zombie {
            z.reserve(samples);
        }
    }

    /// Advances the simulation until `target` instructions have committed,
    /// the workload halts, the instruction budget is exhausted, or the
    /// energy source never recovers from an outage.
    ///
    /// The burst fast path is *not* truncated at `target` — a burst may
    /// overshoot it by at most one buffered instruction run. This keeps the
    /// burst boundaries (and therefore every f64 accumulation) of an
    /// incrementally driven run bit-identical to one uninterrupted
    /// `advance_until(u64::MAX)`.
    pub fn advance_until(&mut self, target: u64) {
        // Resolve the D-cache's replacement-policy kernel once per call;
        // the entire hot loop below then runs with the probe and rank
        // update statically dispatched (and, when `P` is concrete, with
        // every predictor hook statically dispatched too). The `()` sink
        // compiles every recording call to nothing, so this is the same
        // allocation-free loop the solo path always ran.
        with_policy_kernel!(self.config.dcache.policy, K => self.advance_until_k::<K, ()>(target, &mut ()));
    }

    /// Advances like [`Simulation::advance_until`] while recording every
    /// committed instruction into `window` for sibling lanes to replay
    /// (the transposed lockstep recorder role). The window's start is this
    /// lane's current architectural position; an outage seals it; a clean
    /// exit stores the end-of-window core snapshot for replayers to adopt.
    pub fn advance_recording(&mut self, target: u64, window: &mut StreamWindow) {
        window.begin(self.arch_pos());
        with_policy_kernel!(self.config.dcache.policy, K => self.advance_until_k::<K, StreamWindow>(target, window));
        window.finish(self.core.checkpoint());
    }

    /// [`Simulation::advance_until`] monomorphized over the D-cache's
    /// replacement-policy kernel `K` and the stream sink `S`.
    fn advance_until_k<K: PolicyKernel, S: StreamSink>(&mut self, target: u64, sink: &mut S) {
        let sim = self;
        let program = Arc::clone(&sim.workload.program);
        let cycle_time = sim.config.cycle_time();
        let frequency = sim.config.frequency;
        let mcu_power = sim.config.mcu_power();
        let standby = sim.mem.memory_standby();
        let params = LeakParams {
            d_leak_full: sim.mem.dcache_characteristics().leakage * sim.config.dcache_leakage_scale,
            i_leak_full: sim.mem.icache_characteristics().leakage * sim.config.icache_leakage_scale,
            gated_frac: sim.config.gated_leak_fraction,
            d_blocks: f64::from(sim.mem.dcache.blocks()),
            i_blocks: f64::from(sim.mem.icache.blocks()),
            cycle_time,
            mcu_e_cycle: mcu_power * cycle_time,
            standby_e_cycle: standby * cycle_time,
        };
        let max_instructions = sim.config.max_instructions;
        let i_block = u64::from(sim.mem.icache.block_bytes());
        let cycle_accurate = sim.config.force_cycle_accurate;
        let mut leak = LeakCache::new();
        let mut hint = sim.wake_hint();
        let mut hint_dirty = false;

        loop {
            if sim.core.halted() {
                sim.completed = true;
                break;
            }
            if sim.core.committed() >= max_instructions {
                break;
            }
            if sim.core.committed() >= target {
                break;
            }

            // ---- Burst fast path ----
            // Eligibility: burst stepping enabled, no per-instruction
            // zombie sampling (its samples are keyed to exact committed
            // counts), the merged hint idle, the next fetch inside the
            // fetch buffer, and at least one guaranteed compute step ahead.
            if !cycle_accurate && sim.zombie.is_none() {
                if hint_dirty {
                    hint = sim.wake_hint();
                    hint_dirty = false;
                }
                let fa = u64::from(sim.core.fetch_addr(&program));
                if !hint.every_cycle && sim.mem.buffered_block() == Some(fa & !(i_block - 1)) {
                    // Fetch slots left in the buffered block, from pc on.
                    let slots = (i_block - (fa & (i_block - 1))) / u64::from(INSTRUCTION_BYTES);
                    let cap = slots.min(max_instructions - sim.core.committed()) as u32;
                    let run = sim.core.compute_run_len(&program, cap);
                    if run >= 1 {
                        leak.refresh(&sim.mem, &params);
                        let plan = BurstPlan {
                            max_cycles: u64::from(run),
                            dt: cycle_time,
                            load: leak.cycle_load,
                            frequency,
                            wake_at_cycle: hint.at_cycle,
                            wake_below_voltage: hint.below_voltage,
                        };
                        let pc0 = sim.core.pc();
                        let (taken, event) =
                            sim.energy.step_burst(&plan, &mut sim.breakdown.capacitor);
                        for _ in 0..taken {
                            let effect = sim.core.step(&program);
                            debug_assert_eq!(
                                effect,
                                Effect::Compute,
                                "burst lookahead admitted a non-compute step"
                            );
                        }
                        if S::ACTIVE {
                            sink.record_burst(pc0, taken);
                            // Record boundary with the core fully stepped:
                            // the only point a mid-window snapshot is valid.
                            if sink.snapshot_due() {
                                sink.snapshot(sim.core.checkpoint());
                            }
                        }
                        // Replay the per-cycle breakdown accumulation: the
                        // same addend `taken` times in sequence, exactly as
                        // the reference loop would have accumulated it.
                        for _ in 0..taken {
                            sim.breakdown.dcache_static += leak.d_static_cycle;
                            sim.breakdown.icache_static += leak.i_static_cycle;
                            sim.breakdown.mcu += params.mcu_e_cycle;
                            sim.breakdown.memory += params.standby_e_cycle;
                        }
                        let cycle = (sim.energy.now() * frequency) as u64;
                        if hint_due(&hint, cycle, &mut sim.energy) {
                            let v = sim.energy.voltage();
                            // An executed tick may gate frames (including
                            // invalid ones, which never appear in the
                            // outcome), so it always invalidates the
                            // leakage cache. Executed ticks are rare by
                            // construction, so this costs nothing. The
                            // outcome lands in the pooled scratch (moved
                            // out so `apply_tick` can borrow `sim`).
                            let mut tick = std::mem::take(&mut sim.tick_scratch);
                            tick.clear();
                            sim.d_pred
                                .tick_into(&mut sim.mem.dcache, v, cycle, &mut tick);
                            sim.apply_tick(&tick, true);
                            if let Some(ip) = &mut sim.i_pred {
                                tick.clear();
                                ip.tick_into(&mut sim.mem.icache, v, cycle, &mut tick);
                                sim.apply_tick(&tick, false);
                            }
                            sim.tick_scratch = tick;
                            leak.dirty = true;
                            hint_dirty = true;
                        }
                        match event {
                            StepEvent::Running => {}
                            StepEvent::CheckpointRequested => {
                                sink.seal();
                                if !sim.ride_out_outage(true) {
                                    sim.aborted = true;
                                    break;
                                }
                                leak.dirty = true;
                                hint_dirty = true;
                            }
                            StepEvent::BrownOut => {
                                sink.seal();
                                sim.brownouts += 1;
                                if !sim.ride_out_outage(false) {
                                    sim.aborted = true;
                                    break;
                                }
                                leak.dirty = true;
                                hint_dirty = true;
                            }
                        }
                        continue;
                    }
                }
            }

            // ---- Reference path: one cycle at a time ----
            let fetch = sim.mem.ifetch(sim.core.fetch_addr(&program));
            leak.dirty |= !fetch.hit;
            if let Some(ip) = sim.i_pred.as_mut().filter(|_| !fetch.buffered) {
                if fetch.hit {
                    ip.on_hit(&sim.mem.icache, fetch.frame, fetch.block_addr);
                } else {
                    ip.on_miss(fetch.block_addr);
                    if let Some(ev) = fetch.evicted {
                        ip.on_evict(ev);
                    }
                    ip.on_fill(&sim.mem.icache, fetch.frame, fetch.block_addr);
                }
                hint_dirty = true;
            }
            let mut stall = fetch.stall;
            sim.breakdown.icache_dynamic += fetch.icache_energy;
            sim.breakdown.memory += fetch.memory_energy;
            let mut load_energy = fetch.icache_energy + fetch.memory_energy;

            let pc = sim.core.pc();
            let effect = sim.core.step(&program);
            match effect {
                Effect::Compute => {
                    if S::ACTIVE {
                        sink.record_compute(pc);
                    }
                }
                Effect::Halted => {
                    if S::ACTIVE {
                        sink.record_halt(pc);
                    }
                }
                Effect::Load { addr, dst } => {
                    let access = sim.mem.data_access_k::<K>(addr, AccessKind::Read, 0);
                    sim.core.finish_load(dst, access.value);
                    stall += access.stall;
                    load_energy += access.dcache_energy + access.memory_energy;
                    sim.breakdown.dcache_dynamic += access.dcache_energy;
                    sim.breakdown.memory += access.memory_energy;
                    leak.dirty |= !access.hit;
                    sim.note_data_access(&access);
                    hint_dirty = true;
                    if S::ACTIVE {
                        sink.record_load(pc, addr);
                    }
                }
                Effect::Store { addr, value } => {
                    let access = sim.mem.data_access_k::<K>(addr, AccessKind::Write, value);
                    stall += access.stall;
                    load_energy += access.dcache_energy + access.memory_energy;
                    sim.breakdown.dcache_dynamic += access.dcache_energy;
                    sim.breakdown.memory += access.memory_energy;
                    leak.dirty |= !access.hit;
                    sim.note_data_access(&access);
                    hint_dirty = true;
                    if S::ACTIVE {
                        sink.record_store(pc, addr, value);
                    }
                }
            }
            // Record boundary with the core fully stepped (including
            // `finish_load`): the only point a mid-window snapshot is valid.
            if S::ACTIVE && sink.snapshot_due() {
                sink.snapshot(sim.core.checkpoint());
            }

            let dt = cycle_time + stall;
            // In cycle-accurate mode the fractions are recomputed every
            // cycle, keeping the reference loop independent of the
            // LeakCache invalidation logic the differential suite checks.
            leak.dirty |= cycle_accurate;
            leak.refresh(&sim.mem, &params);
            let d_static = params.d_leak_full * leak.d_frac * dt;
            let i_static = params.i_leak_full * leak.i_frac * dt;
            let mcu_e = mcu_power * dt;
            let standby_e = standby * dt;
            sim.breakdown.dcache_static += d_static;
            sim.breakdown.icache_static += i_static;
            sim.breakdown.mcu += mcu_e;
            sim.breakdown.memory += standby_e;
            load_energy += d_static + i_static + mcu_e + standby_e;

            let consumed_before = sim.energy.stats().consumed;
            let event = sim.energy.step(dt, load_energy);
            let drawn = sim.energy.stats().consumed - consumed_before;
            sim.breakdown.capacitor += drawn.saturating_sub(load_energy);

            let cycle = (sim.energy.now() * frequency) as u64;
            if !cycle_accurate && hint_dirty {
                hint = sim.wake_hint();
                hint_dirty = false;
            }
            if cycle_accurate || hint_due(&hint, cycle, &mut sim.energy) {
                // See the burst path: executed ticks can gate invalid
                // frames without reporting them, so they unconditionally
                // invalidate the leakage cache.
                let v = sim.energy.voltage();
                let mut tick = std::mem::take(&mut sim.tick_scratch);
                tick.clear();
                sim.d_pred
                    .tick_into(&mut sim.mem.dcache, v, cycle, &mut tick);
                sim.apply_tick(&tick, true);
                if let Some(ip) = &mut sim.i_pred {
                    tick.clear();
                    ip.tick_into(&mut sim.mem.icache, v, cycle, &mut tick);
                    sim.apply_tick(&tick, false);
                }
                sim.tick_scratch = tick;
                leak.dirty = true;
                hint_dirty = true;
            }

            if let Some(z) = &mut sim.zombie {
                // Cheap interval check first; only a due sample walks the
                // resident set (and even then without materializing it).
                let committed = sim.core.committed();
                if z.due(committed) {
                    z.sample(
                        committed,
                        sim.energy.voltage().as_volts(),
                        sim.mem.dcache.resident_addrs_iter(),
                    );
                }
            }

            match event {
                StepEvent::Running => {}
                StepEvent::CheckpointRequested => {
                    sink.seal();
                    if !sim.ride_out_outage(true) {
                        sim.aborted = true;
                        break;
                    }
                    leak.dirty = true;
                    hint_dirty = true;
                }
                StepEvent::BrownOut => {
                    sink.seal();
                    sim.brownouts += 1;
                    if !sim.ride_out_outage(false) {
                        sim.aborted = true;
                        break;
                    }
                    leak.dirty = true;
                    hint_dirty = true;
                }
            }
        }
    }

    /// This lane's position on the canonical rewind-free instruction
    /// stream. `committed` counts instructions re-executed after a restore;
    /// the offset maintained by [`Simulation::ride_out_outage`] subtracts
    /// them back out, so two lanes at equal `arch_pos` are about to execute
    /// the same instruction (for stream-invariant workloads).
    pub fn arch_pos(&self) -> u64 {
        (self.core.committed() as i64 + self.arch_offset) as u64
    }

    /// True when this lane may participate in transposed stream replay:
    /// the workload's access stream is provably data-independent and
    /// nothing demands per-instruction observation of this specific lane
    /// (cycle-accurate mode and zombie sampling both key off exact per-lane
    /// instruction positions, so those lanes stay on the live stepper).
    pub fn wide_eligible(&self) -> bool {
        self.stream_invariant && !self.config.force_cycle_accurate && self.zombie.is_none()
    }

    /// Advances this lane by replaying a sibling's recorded [`StreamWindow`]
    /// instead of decoding instructions: the recorded `(pc, kind, addr)`
    /// stream drives this lane's own fetches, data accesses, predictor
    /// hooks, ticks and energy stepping — bit-identical to live execution
    /// by stream invariance — while the core sits untouched. Architectural
    /// state is re-synchronized at the window end by adopting the
    /// recorder's snapshot (or, for sealed windows and mid-window exits, by
    /// re-decoding the replayed records against this lane's own buffered
    /// load values). Outages fall out to [`Simulation::ride_out_outage`]
    /// and rejoin the window where the restored position lands in it.
    pub fn advance_replay(&mut self, window: &StreamWindow) {
        with_policy_kernel!(self.config.dcache.policy, K => self.advance_replay_k::<K>(window));
    }

    /// [`Simulation::advance_replay`] monomorphized over the D-cache's
    /// replacement-policy kernel `K`. Mirrors [`Simulation::advance_until_k`]
    /// exactly — same hoisting, same per-cycle f64 operation order — with
    /// `core.step` replaced by window records and virtual counters.
    fn advance_replay_k<K: PolicyKernel>(&mut self, window: &StreamWindow) {
        let sim = self;
        let program = Arc::clone(&sim.workload.program);
        let cycle_time = sim.config.cycle_time();
        let frequency = sim.config.frequency;
        let mcu_power = sim.config.mcu_power();
        let standby = sim.mem.memory_standby();
        let params = LeakParams {
            d_leak_full: sim.mem.dcache_characteristics().leakage * sim.config.dcache_leakage_scale,
            i_leak_full: sim.mem.icache_characteristics().leakage * sim.config.icache_leakage_scale,
            gated_frac: sim.config.gated_leak_fraction,
            d_blocks: f64::from(sim.mem.dcache.blocks()),
            i_blocks: f64::from(sim.mem.icache.blocks()),
            cycle_time,
            mcu_e_cycle: mcu_power * cycle_time,
            standby_e_cycle: standby * cycle_time,
        };
        let max_instructions = sim.config.max_instructions;
        let i_block = u64::from(sim.mem.icache.block_bytes());
        let start = window.start();
        let len = window.len();

        // Each `'window` iteration enters with the core fully synchronized
        // (entry by protocol; re-entry after an outage by the re-decode
        // below) and locates the cursor from the architectural position.
        'window: loop {
            if sim.core.halted() {
                sim.completed = true;
                return;
            }
            if sim.aborted || sim.core.committed() >= max_instructions {
                return;
            }
            let pos = sim.arch_pos();
            if pos < start || pos >= start + len as u64 {
                // Rewound before the window (brown-out to an older
                // checkpoint) or consumed it entirely: back to the caller.
                return;
            }
            let synced_at = (pos - start) as usize;
            let mut cursor = synced_at;
            // Virtual architectural state: the core is not stepped during
            // replay, so these shadow what it *would* hold. Loads buffer
            // this lane's own observed values for the re-decode fallback.
            let mut virt_committed = sim.core.committed();
            let mut virt_loads = sim.core.loads();
            let mut virt_stores = sim.core.stores();
            let mut virt_halted = false;
            sim.replay_loads.clear();
            let mut leak = LeakCache::new();
            let mut hint = sim.wake_hint();
            let mut hint_dirty = false;

            loop {
                if virt_halted || virt_committed >= max_instructions || cursor >= len {
                    if virt_halted {
                        sim.completed = true;
                    }
                    if cursor > synced_at {
                        match window.end_state() {
                            // Clean window end: adopt the recorder's
                            // snapshot (exact for pc/halted and every
                            // untainted register; tainted registers cannot
                            // influence the stream or any statistic).
                            Some(end) if cursor >= len => {
                                sim.core.adopt(end, virt_committed, virt_loads, virt_stores);
                            }
                            // Sealed window or mid-window exit: walk the
                            // core through the replayed records, feeding
                            // this lane's own load values.
                            _ => {
                                let loads = std::mem::take(&mut sim.replay_loads);
                                resync_core(
                                    &mut sim.core,
                                    &program,
                                    window,
                                    synced_at,
                                    cursor,
                                    &loads,
                                );
                                sim.replay_loads = loads;
                                debug_assert_eq!(sim.core.committed(), virt_committed);
                            }
                        }
                    }
                    return;
                }

                // ---- Burst fast path (replayed) ----
                if hint_dirty {
                    hint = sim.wake_hint();
                    hint_dirty = false;
                }
                let pc = window.pcs[cursor];
                let fa = u64::from(program.fetch_addr(pc));
                if !hint.every_cycle && sim.mem.buffered_block() == Some(fa & !(i_block - 1)) {
                    let slots = (i_block - (fa & (i_block - 1))) / u64::from(INSTRUCTION_BYTES);
                    // Capped additionally at the window end: a split burst
                    // performs the identical per-cycle f64 sequence as the
                    // unsplit one (DESIGN.md §8), and the remainder resumes
                    // in the next advance.
                    let cap = slots
                        .min(max_instructions - virt_committed)
                        .min((len - cursor) as u64) as u32;
                    let run = program.compute_run_len(pc, cap);
                    if run >= 1 {
                        leak.refresh(&sim.mem, &params);
                        let plan = BurstPlan {
                            max_cycles: u64::from(run),
                            dt: cycle_time,
                            load: leak.cycle_load,
                            frequency,
                            wake_at_cycle: hint.at_cycle,
                            wake_below_voltage: hint.below_voltage,
                        };
                        let (taken, event) =
                            sim.energy.step_burst(&plan, &mut sim.breakdown.capacitor);
                        debug_assert!(
                            window.kinds[cursor..cursor + taken as usize]
                                .iter()
                                .all(|&k| k == REC_COMPUTE),
                            "replayed burst covered a non-compute record"
                        );
                        cursor += taken as usize;
                        virt_committed += taken;
                        for _ in 0..taken {
                            sim.breakdown.dcache_static += leak.d_static_cycle;
                            sim.breakdown.icache_static += leak.i_static_cycle;
                            sim.breakdown.mcu += params.mcu_e_cycle;
                            sim.breakdown.memory += params.standby_e_cycle;
                        }
                        let cycle = (sim.energy.now() * frequency) as u64;
                        if hint_due(&hint, cycle, &mut sim.energy) {
                            let v = sim.energy.voltage();
                            let mut tick = std::mem::take(&mut sim.tick_scratch);
                            tick.clear();
                            sim.d_pred
                                .tick_into(&mut sim.mem.dcache, v, cycle, &mut tick);
                            sim.apply_tick(&tick, true);
                            if let Some(ip) = &mut sim.i_pred {
                                tick.clear();
                                ip.tick_into(&mut sim.mem.icache, v, cycle, &mut tick);
                                sim.apply_tick(&tick, false);
                            }
                            sim.tick_scratch = tick;
                            leak.dirty = true;
                            hint_dirty = true;
                        }
                        match event {
                            StepEvent::Running => {}
                            StepEvent::CheckpointRequested | StepEvent::BrownOut => {
                                // The outage machinery needs the real core
                                // (checkpoint snapshot, committed counters):
                                // re-synchronize before riding it out.
                                if cursor > synced_at {
                                    let loads = std::mem::take(&mut sim.replay_loads);
                                    resync_core(
                                        &mut sim.core,
                                        &program,
                                        window,
                                        synced_at,
                                        cursor,
                                        &loads,
                                    );
                                    sim.replay_loads = loads;
                                }
                                let jit = event == StepEvent::CheckpointRequested;
                                if !jit {
                                    sim.brownouts += 1;
                                }
                                if !sim.ride_out_outage(jit) {
                                    sim.aborted = true;
                                    return;
                                }
                                continue 'window;
                            }
                        }
                        continue;
                    }
                }

                // ---- Reference path: one recorded cycle at a time ----
                let fetch = sim.mem.ifetch(program.fetch_addr(pc));
                leak.dirty |= !fetch.hit;
                if let Some(ip) = sim.i_pred.as_mut().filter(|_| !fetch.buffered) {
                    if fetch.hit {
                        ip.on_hit(&sim.mem.icache, fetch.frame, fetch.block_addr);
                    } else {
                        ip.on_miss(fetch.block_addr);
                        if let Some(ev) = fetch.evicted {
                            ip.on_evict(ev);
                        }
                        ip.on_fill(&sim.mem.icache, fetch.frame, fetch.block_addr);
                    }
                    hint_dirty = true;
                }
                let mut stall = fetch.stall;
                sim.breakdown.icache_dynamic += fetch.icache_energy;
                sim.breakdown.memory += fetch.memory_energy;
                let mut load_energy = fetch.icache_energy + fetch.memory_energy;

                match window.kinds[cursor] {
                    REC_COMPUTE => {
                        virt_committed += 1;
                    }
                    REC_LOAD => {
                        let addr = window.addrs[cursor];
                        let access = sim.mem.data_access_k::<K>(addr, AccessKind::Read, 0);
                        sim.replay_loads.push(access.value);
                        stall += access.stall;
                        load_energy += access.dcache_energy + access.memory_energy;
                        sim.breakdown.dcache_dynamic += access.dcache_energy;
                        sim.breakdown.memory += access.memory_energy;
                        leak.dirty |= !access.hit;
                        sim.note_data_access(&access);
                        hint_dirty = true;
                        virt_committed += 1;
                        virt_loads += 1;
                    }
                    REC_STORE => {
                        let access = sim.mem.data_access_k::<K>(
                            window.addrs[cursor],
                            AccessKind::Write,
                            window.values[cursor],
                        );
                        stall += access.stall;
                        load_energy += access.dcache_energy + access.memory_energy;
                        sim.breakdown.dcache_dynamic += access.dcache_energy;
                        sim.breakdown.memory += access.memory_energy;
                        leak.dirty |= !access.hit;
                        sim.note_data_access(&access);
                        hint_dirty = true;
                        virt_committed += 1;
                        virt_stores += 1;
                    }
                    kind => {
                        debug_assert_eq!(kind, REC_HALT, "corrupt stream record");
                        // Halt nets its commit back out and is always the
                        // window's final record.
                        virt_halted = true;
                    }
                }
                cursor += 1;

                let dt = cycle_time + stall;
                leak.refresh(&sim.mem, &params);
                let d_static = params.d_leak_full * leak.d_frac * dt;
                let i_static = params.i_leak_full * leak.i_frac * dt;
                let mcu_e = mcu_power * dt;
                let standby_e = standby * dt;
                sim.breakdown.dcache_static += d_static;
                sim.breakdown.icache_static += i_static;
                sim.breakdown.mcu += mcu_e;
                sim.breakdown.memory += standby_e;
                load_energy += d_static + i_static + mcu_e + standby_e;

                let consumed_before = sim.energy.stats().consumed;
                let event = sim.energy.step(dt, load_energy);
                let drawn = sim.energy.stats().consumed - consumed_before;
                sim.breakdown.capacitor += drawn.saturating_sub(load_energy);

                let cycle = (sim.energy.now() * frequency) as u64;
                if hint_dirty {
                    hint = sim.wake_hint();
                    hint_dirty = false;
                }
                if hint_due(&hint, cycle, &mut sim.energy) {
                    let v = sim.energy.voltage();
                    let mut tick = std::mem::take(&mut sim.tick_scratch);
                    tick.clear();
                    sim.d_pred
                        .tick_into(&mut sim.mem.dcache, v, cycle, &mut tick);
                    sim.apply_tick(&tick, true);
                    if let Some(ip) = &mut sim.i_pred {
                        tick.clear();
                        ip.tick_into(&mut sim.mem.icache, v, cycle, &mut tick);
                        sim.apply_tick(&tick, false);
                    }
                    sim.tick_scratch = tick;
                    leak.dirty = true;
                    hint_dirty = true;
                }

                match event {
                    StepEvent::Running => {}
                    StepEvent::CheckpointRequested | StepEvent::BrownOut => {
                        if cursor > synced_at {
                            let loads = std::mem::take(&mut sim.replay_loads);
                            resync_core(&mut sim.core, &program, window, synced_at, cursor, &loads);
                            sim.replay_loads = loads;
                        }
                        let jit = event == StepEvent::CheckpointRequested;
                        if !jit {
                            sim.brownouts += 1;
                        }
                        if !sim.ride_out_outage(jit) {
                            sim.aborted = true;
                            return;
                        }
                        continue 'window;
                    }
                }
            }
        }
    }
}

/// Re-synchronizes `core` with replayed records `[from, to)`: adopts the
/// recorder's closest in-range snapshot (sound for the same taint reason
/// as end-of-window adoption — tainted registers cannot influence the
/// stream or any statistic) and walks only the remaining tail through
/// [`redecode_records`]. This bounds the per-event resync cost by the
/// snapshot interval; without it, outage-heavy runs re-decode nearly every
/// record and transposed replay degenerates to live stepping. Counter
/// deltas for the skipped span come from the record kinds themselves
/// (`REC_HALT` commits nothing, exactly as live execution nets it out).
fn resync_core(
    core: &mut Core,
    program: &ehs_cpu::Program,
    window: &StreamWindow,
    from: usize,
    to: usize,
    loads: &[u32],
) {
    let Some((snap, state)) = window.best_snapshot(from, to) else {
        redecode_records(core, program, window, from, to, loads);
        return;
    };
    let mut committed = 0u64;
    let mut nloads = 0usize;
    let mut stores = 0u64;
    for &k in &window.kinds[from..snap] {
        committed += u64::from(k != REC_HALT);
        nloads += usize::from(k == REC_LOAD);
        stores += u64::from(k == REC_STORE);
    }
    core.adopt(
        state,
        core.committed() + committed,
        core.loads() + nloads as u64,
        core.stores() + stores,
    );
    redecode_records(core, program, window, snap, to, &loads[nloads..]);
}

/// Steps `core` through window records `[from, to)`, feeding this lane's
/// own buffered load values (`loads`, one per `REC_LOAD` record in the
/// range, in order). Store effects are dropped — the replay already
/// performed the data accesses — and the committed/load/store counters
/// advance exactly as live execution would have advanced them.
fn redecode_records(
    core: &mut Core,
    program: &ehs_cpu::Program,
    window: &StreamWindow,
    from: usize,
    to: usize,
    loads: &[u32],
) {
    let mut next_load = 0;
    for i in from..to {
        debug_assert_eq!(
            core.pc(),
            window.pcs[i],
            "re-decode diverged from the recorded stream"
        );
        match core.step(program) {
            Effect::Compute | Effect::Halted => {}
            Effect::Load { dst, .. } => {
                core.finish_load(dst, loads[next_load]);
                next_load += 1;
            }
            Effect::Store { .. } => {}
        }
    }
    debug_assert_eq!(next_load, loads.len(), "buffered load values left over");
}

/// An erased, incrementally drivable simulation lane.
///
/// [`build_lane`] resolves a scheme to a fully monomorphized
/// `Simulation<P>` behind this object-safe interface: dynamic dispatch
/// happens once per driving chunk (tens of thousands of instructions),
/// while everything inside [`LaneRun::advance_until`] — predictor hooks,
/// wake hints, tag probes, rank updates — is statically dispatched.
pub trait LaneRun {
    /// See [`Simulation::advance_until`].
    fn advance_until(&mut self, target: u64);
    /// See [`Simulation::committed`].
    fn committed(&self) -> u64;
    /// See [`Simulation::done`].
    fn done(&self) -> bool;
    /// The scheme this lane simulates.
    fn scheme(&self) -> Scheme;
    /// See [`Simulation::finish_collecting`].
    fn finish_collecting(self: Box<Self>) -> RunOutcome;
    /// See [`Simulation::arch_pos`].
    fn arch_pos(&self) -> u64;
    /// See [`Simulation::wide_eligible`].
    fn wide_eligible(&self) -> bool;
    /// See [`Simulation::advance_recording`].
    fn advance_recording(&mut self, target: u64, window: &mut StreamWindow);
    /// See [`Simulation::advance_replay`].
    fn advance_replay(&mut self, window: &StreamWindow);
}

impl<P: LeakagePredictor> LaneRun for Simulation<P> {
    fn advance_until(&mut self, target: u64) {
        Simulation::advance_until(self, target);
    }

    fn committed(&self) -> u64 {
        Simulation::committed(self)
    }

    fn done(&self) -> bool {
        Simulation::done(self)
    }

    fn scheme(&self) -> Scheme {
        self.scheme
    }

    fn finish_collecting(self: Box<Self>) -> RunOutcome {
        Simulation::finish_collecting(*self)
    }

    fn arch_pos(&self) -> u64 {
        Simulation::arch_pos(self)
    }

    fn wide_eligible(&self) -> bool {
        Simulation::wide_eligible(self)
    }

    fn advance_recording(&mut self, target: u64, window: &mut StreamWindow) {
        Simulation::advance_recording(self, target, window);
    }

    fn advance_replay(&mut self, window: &StreamWindow) {
        Simulation::advance_replay(self, window);
    }
}

/// Builds a simulation lane for `scheme` with the predictor type resolved
/// at compile time — the enum-to-generic dispatch table. Each arm
/// instantiates `Simulation<P>` with a concrete `P`, so the baseline's
/// no-op hooks inline away entirely and composed schemes ([`Pair`]) lose
/// the per-event vtable hop the boxed [`CombinedPredictor`] pays.
///
/// The lane observes exactly the event sequence the equivalent
/// dynamically-dispatched `Simulation::try_new` run observes, so its
/// [`RunOutcome`] is bit-identical (the `lockstep` differential suite
/// asserts this for every scheme).
pub fn build_lane(
    config: &SystemConfig,
    scheme: Scheme,
    workload: Workload,
    oracle_trace: Option<GenerationTrace>,
    with_recorder: bool,
) -> Result<Box<dyn LaneRun>, EnergyConfigError> {
    fn erase<P: LeakagePredictor + 'static>(
        sim: Simulation<P>,
        with_recorder: bool,
    ) -> Box<dyn LaneRun> {
        if with_recorder {
            Box::new(sim.with_recorder())
        } else {
            Box::new(sim)
        }
    }
    let edbp = |cfg: &SystemConfig, cache: &Cache| {
        Edbp::new(
            cfg.edbp
                .clone()
                .unwrap_or_else(|| EdbpConfig::for_cache(cache)),
        )
    };
    Ok(match scheme {
        Scheme::Baseline | Scheme::Sdbp | Scheme::LeakageOff80 => erase(
            Simulation::try_new_with(config, scheme, workload, |_, _| NullPredictor::new())?,
            with_recorder,
        ),
        Scheme::Decay => erase(
            Simulation::try_new_with(config, scheme, workload, |cfg, c| {
                CacheDecay::new(cfg.decay, c)
            })?,
            with_recorder,
        ),
        Scheme::Edbp => erase(
            Simulation::try_new_with(config, scheme, workload, edbp)?,
            with_recorder,
        ),
        Scheme::DecayEdbp => erase(
            Simulation::try_new_with(config, scheme, workload, |cfg, c| {
                Pair::new(CacheDecay::new(cfg.decay, c), edbp(cfg, c))
            })?,
            with_recorder,
        ),
        Scheme::Amc => erase(
            Simulation::try_new_with(config, scheme, workload, |_, c| {
                AdaptiveModeControl::new(AmcConfig::default(), c)
            })?,
            with_recorder,
        ),
        Scheme::AmcEdbp => erase(
            Simulation::try_new_with(config, scheme, workload, |cfg, c| {
                Pair::new(
                    AdaptiveModeControl::new(AmcConfig::default(), c),
                    edbp(cfg, c),
                )
            })?,
            with_recorder,
        ),
        Scheme::Ideal => erase(
            Simulation::try_new_with(config, scheme, workload, |_, _| {
                OraclePredictor::new(
                    oracle_trace.expect("the Ideal scheme requires a recorded generation trace"),
                )
            })?,
            with_recorder,
        ),
    })
}

/// Committed-instruction chunk in which [`run_lockstep`] rotates between
/// lanes. Large enough that the per-chunk dynamic dispatch and `done()`
/// polls are noise; small enough that all lanes of a group stay warm in
/// cache together.
const LOCKSTEP_CHUNK: u64 = 32_768;

/// Round size for the transposed drive, deliberately smaller than
/// [`LOCKSTEP_CHUNK`]: a replayed round touches four parallel record
/// columns plus every lane's caches, so shorter rounds keep the window
/// columns L1/L2-resident across the recorder pass and all replayer
/// passes. Measured on the 9-lane bench, 4k rounds beat both 8k and 32k.
pub(crate) const TRANSPOSED_CHUNK: u64 = 4_096;

/// Drives one monomorphized lane to completion under its own wall clock —
/// the [`build_lane`] counterpart of [`Simulation::run_collecting`]. This
/// is the hot path behind [`run_workload`] and the memoized runner: the
/// enum-to-generic dispatch happens once in [`build_lane`], and the whole
/// run executes with statically dispatched predictor hooks.
pub fn run_lane(mut lane: Box<dyn LaneRun>) -> RunOutcome {
    let wall_start = std::time::Instant::now();
    lane.advance_until(u64::MAX);
    debug_assert!(lane.done());
    let wall = wall_start.elapsed().as_secs_f64();
    let mut outcome = lane.finish_collecting();
    if wall > 0.0 {
        outcome.result.sim_mips = outcome.result.committed as f64 / wall / 1e6;
    }
    outcome
}

/// How [`run_lockstep`] advances the lanes of a group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockstepMode {
    /// Transposed (access-major): one lane records its instruction stream
    /// per round and the sibling lanes replay it without decoding. Falls
    /// back to interleaved stepping for ineligible lanes. The default.
    Transposed,
    /// Interleaved (lane-major): every lane decodes and executes
    /// independently in [`LOCKSTEP_CHUNK`] rounds. Forced by
    /// `EHS_NO_SIMD=1` and used as the semantic reference in the
    /// divergence gates.
    Interleaved,
}

/// The process-default lockstep mode: [`LockstepMode::Transposed`] unless
/// `EHS_NO_SIMD=1` demands the scalar/interleaved reference regime. Read
/// once and cached (matching the tag-probe selector's semantics).
pub fn default_lockstep_mode() -> LockstepMode {
    static MODE: std::sync::OnceLock<LockstepMode> = std::sync::OnceLock::new();
    *MODE.get_or_init(|| {
        if std::env::var("EHS_NO_SIMD").is_ok_and(|v| v == "1") {
            LockstepMode::Interleaved
        } else {
            LockstepMode::Transposed
        }
    })
}

/// Drives a group of lanes over the same workload in lockstep until every
/// lane is [`LaneRun::done`], in the process-default [`LockstepMode`]. One
/// wall-clock measurement covers the whole group; each lane's `sim_mips`
/// is its own committed count over that shared wall time.
///
/// Bit-exactness: [`Simulation::advance_until`] never truncates a burst
/// at its target, so an incrementally driven lane performs the identical
/// f64 operation sequence as one uninterrupted run — every [`RunOutcome`]
/// equals the outcome of an independent [`Simulation::run_collecting`]
/// (modulo `sim_mips`, which is wall-clock-derived in both regimes). The
/// transposed mode preserves this bit-for-bit (the `lockstep` suite
/// asserts both modes against solo runs for every scheme).
pub fn run_lockstep(lanes: Vec<Box<dyn LaneRun>>) -> Vec<RunOutcome> {
    run_lockstep_with(lanes, default_lockstep_mode())
}

/// [`run_lockstep`] with an explicit [`LockstepMode`].
pub fn run_lockstep_with(mut lanes: Vec<Box<dyn LaneRun>>, mode: LockstepMode) -> Vec<RunOutcome> {
    let wall_start = std::time::Instant::now();
    match mode {
        LockstepMode::Interleaved => {
            let mut target = LOCKSTEP_CHUNK;
            loop {
                let mut all_done = true;
                for lane in &mut lanes {
                    if !lane.done() {
                        lane.advance_until(target);
                        all_done &= lane.done();
                    }
                }
                if all_done {
                    break;
                }
                target = target.saturating_add(LOCKSTEP_CHUNK);
            }
        }
        LockstepMode::Transposed => {
            // Round protocol (mirrored with per-lane panic isolation in the
            // fault-tolerant runner):
            //
            // 1. The *recorder* — the eligible unfinished lane with the
            //    lowest architectural position — advances one chunk live,
            //    recording its stream (when it has at least one eligible
            //    sibling; alone it advances unrecorded).
            // 2. Every other eligible lane whose position falls inside the
            //    window replays it without decoding; eligible lanes ahead
            //    of the window skip the round until the rest catch up.
            // 3. Ineligible lanes (zombie sampling, cycle-accurate,
            //    data-dependent streams) advance one chunk on the live
            //    per-lane stepper.
            let mut window = StreamWindow::default();
            loop {
                let mut recorder: Option<usize> = None;
                let mut eligible = 0usize;
                for (i, lane) in lanes.iter().enumerate() {
                    if lane.done() || !lane.wide_eligible() {
                        continue;
                    }
                    eligible += 1;
                    if recorder.is_none_or(|r| lane.arch_pos() < lanes[r].arch_pos()) {
                        recorder = Some(i);
                    }
                }
                let mut progressed = false;
                if let Some(r) = recorder {
                    progressed = true;
                    let target = lanes[r].committed().saturating_add(TRANSPOSED_CHUNK);
                    if eligible >= 2 {
                        lanes[r].advance_recording(target, &mut window);
                        let (start, len) = (window.start(), window.len() as u64);
                        if len > 0 {
                            for (i, lane) in lanes.iter_mut().enumerate() {
                                if i == r || lane.done() || !lane.wide_eligible() {
                                    continue;
                                }
                                let pos = lane.arch_pos();
                                if pos >= start && pos < start + len {
                                    lane.advance_replay(&window);
                                }
                            }
                        }
                    } else {
                        // A lone eligible lane records for nobody.
                        lanes[r].advance_until(target);
                    }
                }
                for (i, lane) in lanes.iter_mut().enumerate() {
                    if Some(i) == recorder || lane.done() || lane.wide_eligible() {
                        continue;
                    }
                    let target = lane.committed().saturating_add(TRANSPOSED_CHUNK);
                    lane.advance_until(target);
                    progressed = true;
                }
                if !progressed {
                    break;
                }
            }
        }
    }
    let wall = wall_start.elapsed().as_secs_f64();
    lanes
        .into_iter()
        .map(|lane| {
            let mut outcome = lane.finish_collecting();
            if wall > 0.0 {
                outcome.result.sim_mips = outcome.result.committed as f64 / wall / 1e6;
            }
            outcome
        })
        .collect()
}

/// Wrapper making a boxed source usable where `EnergySystem` wants a
/// concrete `EnergySource`.
#[derive(Debug)]
struct SourceBox(Box<dyn ehs_energy::EnergySource>);

impl ehs_energy::EnergySource for SourceBox {
    fn power_at(&self, t: Time) -> ehs_units::Power {
        self.0.power_at(t)
    }

    fn segment_of(&self, t: Time) -> Option<u64> {
        self.0.segment_of(t)
    }

    fn segment_end(&self, t: Time) -> Option<Time> {
        self.0.segment_end(t)
    }

    fn name(&self) -> &str {
        self.0.name()
    }

    fn mean_power(&self) -> ehs_units::Power {
        self.0.mean_power()
    }
}

/// Runs one application under one scheme at the given scale, handling the
/// Ideal scheme's two-pass protocol transparently.
pub fn run_app(config: &SystemConfig, scheme: Scheme, app: AppId, scale: Scale) -> RunResult {
    run_workload(config, scheme, build(app, scale))
}

/// Like [`run_app`] for a pre-built workload.
pub fn run_workload(config: &SystemConfig, scheme: Scheme, workload: Workload) -> RunResult {
    let trace = scheme
        .needs_oracle_trace()
        .then(|| record_generation_trace(config, workload.clone()));
    let lane = build_lane(config, scheme, workload, trace, false)
        .unwrap_or_else(|e| panic!("invalid energy configuration: {e}"));
    run_lane(lane).result
}

/// Pass 1 of the Ideal scheme: runs the baseline while recording every
/// block generation's access count.
pub fn record_generation_trace(config: &SystemConfig, workload: Workload) -> GenerationTrace {
    run_baseline_with_trace(config, workload).1
}

/// Runs the baseline once, returning both its results and the recorded
/// generation trace. The recorder is a passive observer, so the result is
/// bit-identical to an unrecorded baseline run — which lets one execution
/// serve both as the Ideal scheme's oracle pass and as the baseline column
/// of the same experiment matrix (see the memoization layer in `runner`).
pub fn run_baseline_with_trace(
    config: &SystemConfig,
    workload: Workload,
) -> (RunResult, GenerationTrace) {
    let lane = build_lane(config, Scheme::Baseline, workload, None, true)
        .unwrap_or_else(|e| panic!("invalid energy configuration: {e}"));
    let outcome = run_lane(lane);
    (
        outcome.result,
        outcome.trace.expect("recorder was attached"),
    )
}
