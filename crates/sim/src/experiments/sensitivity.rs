//! Sensitivity analyses (Figs. 10–18), the hardware-cost analysis
//! (Section VI-B) and the design-choice ablations.

use super::headline::speedups;
use super::motivation::CACHE_SIZES;
use super::ExperimentOptions;
use crate::report::{factor, pct, Table};
use crate::runner::{geomean, run_matrix};
use crate::{Scheme, SourceKind, SystemConfig};
use edbp_core::EdbpConfig;
use ehs_cache::{Cache, CacheGeometry, ReplacementPolicy};
use ehs_energy::TracePreset;
use ehs_nvm::{AreaModel, CoreAreaBudget, MemoryTechnology};
use ehs_units::Capacitance;
use ehs_workloads::AppId;

/// The three schemes most sweeps track, after the baseline.
const SWEEP_SCHEMES: [Scheme; 4] = [
    Scheme::Baseline,
    Scheme::Decay,
    Scheme::Edbp,
    Scheme::DecayEdbp,
];

/// Runs one configuration and appends geomean speedup rows labelled `label`.
fn sweep_point(
    table: &mut Table,
    label: &str,
    config: &SystemConfig,
    reference: Option<&[crate::RunResult]>,
    opts: ExperimentOptions,
) -> Vec<crate::RunResult> {
    let results = run_matrix(
        config,
        &SWEEP_SCHEMES,
        &AppId::ALL,
        opts.scale,
        opts.threads,
    );
    let base: Vec<crate::RunResult> = match reference {
        Some(r) => r.to_vec(),
        None => results[0].clone(),
    };
    for (s, scheme) in SWEEP_SCHEMES.iter().enumerate() {
        table.row([
            label.to_owned(),
            scheme.name().to_owned(),
            factor(geomean(speedups(&base, &results[s]))),
        ]);
    }
    results[0].clone()
}

fn sweep_header() -> Table {
    Table::new(["config", "scheme", "speedup"])
}

/// **Fig. 10** — replacement-policy sensitivity: LRU (naive) vs DRRIP
/// (sophisticated). Speedups are normalized to the baseline under the *same*
/// policy, as in the paper ("17.1% improvement over the baseline with
/// DRRIP, compared to 6.91% with LRU").
pub fn fig10_replacement_policy(opts: ExperimentOptions) -> Table {
    let mut table = sweep_header();
    for policy in [ReplacementPolicy::Lru, ReplacementPolicy::Drrip] {
        let mut config = SystemConfig::paper_default();
        config.dcache.policy = policy;
        sweep_point(&mut table, policy.name(), &config, None, opts);
    }
    table
}

/// **Fig. 11** — cache-size sensitivity, 256 B–16 kB, all schemes normalized
/// to the 4 kB baseline.
pub fn fig11_cache_size(opts: ExperimentOptions) -> Table {
    let base = SystemConfig::paper_default();
    let reference = run_matrix(
        &base,
        &[Scheme::Baseline],
        &AppId::ALL,
        opts.scale,
        opts.threads,
    );
    let mut table = sweep_header();
    for bytes in CACHE_SIZES {
        let mut config = base.clone();
        let assoc = config.dcache.geometry.associativity.min(bytes / 16);
        config.dcache.geometry =
            CacheGeometry::new(bytes, assoc, 16).expect("swept geometry is valid");
        sweep_point(
            &mut table,
            &format!("{bytes} B"),
            &config,
            Some(&reference[0]),
            opts,
        );
    }
    table
}

/// **Fig. 12** — associativity sensitivity (direct-mapped to 8-way),
/// normalized to the 4-way baseline. Direct-mapped EDBP collapses to a
/// single threshold that deactivates every block (Section VI-H3).
pub fn fig12_associativity(opts: ExperimentOptions) -> Table {
    let base = SystemConfig::paper_default();
    let reference = run_matrix(
        &base,
        &[Scheme::Baseline],
        &AppId::ALL,
        opts.scale,
        opts.threads,
    );
    let mut table = sweep_header();
    for ways in [1u32, 2, 4, 8] {
        let mut config = base.clone();
        config.dcache.geometry =
            CacheGeometry::new(4096, ways, 16).expect("swept geometry is valid");
        sweep_point(
            &mut table,
            &format!("{ways}-way"),
            &config,
            Some(&reference[0]),
            opts,
        );
    }
    table
}

/// **Fig. 13** — NVM-technology sensitivity: ReRAM / FeRAM / STTRAM for the
/// instruction cache and main memory. Speedups normalized to the same-tech
/// baseline (the paper compares predictor gains per technology).
pub fn fig13_nvm_technology(opts: ExperimentOptions) -> Table {
    let mut table = sweep_header();
    for tech in MemoryTechnology::NONVOLATILE {
        let mut config = SystemConfig::paper_default();
        config.icache_tech = tech;
        config.memory_tech = tech;
        sweep_point(&mut table, tech.name(), &config, None, opts);
    }
    table
}

/// **Fig. 14** — memory-size sensitivity, 2–32 MB (larger memories amplify
/// every miss penalty). Normalized to the same-size baseline.
pub fn fig14_memory_size(opts: ExperimentOptions) -> Table {
    let mut table = sweep_header();
    for mb in [2u64, 4, 8, 16, 32] {
        let mut config = SystemConfig::paper_default();
        config.memory_bytes = mb * 1024 * 1024;
        sweep_point(&mut table, &format!("{mb} MB"), &config, None, opts);
    }
    table
}

/// **Fig. 15** — energy-condition sensitivity across the four ambient
/// environments. Normalized to the same-trace baseline.
pub fn fig15_energy_conditions(opts: ExperimentOptions) -> Table {
    let mut table = sweep_header();
    for preset in TracePreset::ALL {
        let mut config = SystemConfig::paper_default();
        config.source = SourceKind::Preset {
            preset,
            seed: 42,
            scale: 1.0,
        };
        sweep_point(&mut table, preset.name(), &config, None, opts);
    }
    table
}

/// **Fig. 16** — capacitor-size sensitivity. The paper sweeps 0.47–100 µF;
/// we sweep the same ×1 … ×200 ratios over our scaled default (see
/// `DESIGN.md` §4). Normalized to the same-capacitor baseline.
pub fn fig16_capacitor_size(opts: ExperimentOptions) -> Table {
    let mut table = sweep_header();
    for (label, uf) in [
        ("C0 (4.7uF)", 4.7),
        ("2.1x C0", 10.0),
        ("10x C0", 47.0),
        ("21x C0", 100.0),
        ("100x C0", 470.0),
    ] {
        let mut config = SystemConfig::paper_default();
        config.energy.capacitor.capacitance = Capacitance::from_micro_farads(uf);
        sweep_point(&mut table, label, &config, None, opts);
    }
    table
}

/// **Fig. 17** — sensitivity summary: the geomean speedup of the combined
/// scheme (Cache Decay + EDBP) at the default and at one representative
/// point of every sensitivity axis, normalized to each point's own baseline.
pub fn fig17_sensitivity_summary(opts: ExperimentOptions) -> Table {
    let mut points: Vec<(&str, SystemConfig)> = Vec::new();
    points.push(("default", SystemConfig::paper_default()));
    {
        let mut c = SystemConfig::paper_default();
        c.dcache.policy = ReplacementPolicy::Drrip;
        points.push(("drrip", c));
    }
    {
        let mut c = SystemConfig::paper_default();
        c.dcache.geometry = CacheGeometry::new(16384, 4, 16).expect("valid");
        points.push(("16kB d$", c));
    }
    {
        let mut c = SystemConfig::paper_default();
        c.dcache.geometry = CacheGeometry::new(4096, 8, 16).expect("valid");
        points.push(("8-way", c));
    }
    {
        let mut c = SystemConfig::paper_default();
        c.icache_tech = MemoryTechnology::SttRam;
        c.memory_tech = MemoryTechnology::SttRam;
        points.push(("sttram", c));
    }
    {
        let mut c = SystemConfig::paper_default();
        c.memory_bytes = 32 * 1024 * 1024;
        points.push(("32MB mem", c));
    }
    {
        let mut c = SystemConfig::paper_default();
        c.source = SourceKind::Preset {
            preset: TracePreset::Thermal,
            seed: 42,
            scale: 1.0,
        };
        points.push(("thermal", c));
    }
    {
        let mut c = SystemConfig::paper_default();
        c.energy.capacitor.capacitance = Capacitance::from_micro_farads(470.0);
        points.push(("100x C0", c));
    }

    let mut table = Table::new(["config", "decay+edbp speedup"]);
    for (label, config) in points {
        let results = run_matrix(
            &config,
            &[Scheme::Baseline, Scheme::DecayEdbp],
            &AppId::ALL,
            opts.scale,
            opts.threads,
        );
        table.row([
            label.to_owned(),
            factor(geomean(speedups(&results[0], &results[1]))),
        ]);
    }
    table
}

/// **Fig. 18** — SRAM instruction cache: a new baseline with SRAM for both
/// caches, comparing the predictors applied to the data cache only vs to
/// both caches. Energy and speedup normalized to the new baseline.
pub fn fig18_icache(opts: ExperimentOptions) -> Table {
    let mut table = Table::new(["design", "scheme", "speedup", "energy", "cache energy"]);
    for (label, both) in [("d$ only", false), ("both caches", true)] {
        let mut config = SystemConfig::paper_default();
        config.icache_tech = MemoryTechnology::Sram;
        config.icache_energy_scale = 1.0; // SRAM I$ needs no ReRAM calibration
        config.predict_icache = both;
        let results = run_matrix(
            &config,
            &Scheme::HEADLINE,
            &AppId::ALL,
            opts.scale,
            opts.threads,
        );
        for (s, scheme) in Scheme::HEADLINE.iter().enumerate() {
            let speedup = geomean(speedups(&results[0], &results[s]));
            let energy = geomean(
                results[0]
                    .iter()
                    .zip(&results[s])
                    .map(|(b, r)| r.energy.total() / b.energy.total()),
            );
            let cache_energy = geomean(
                results[0]
                    .iter()
                    .zip(&results[s])
                    .map(|(b, r)| r.energy.cache() / b.energy.cache()),
            );
            table.row([
                label.to_owned(),
                scheme.name().to_owned(),
                factor(speedup),
                factor(energy),
                factor(cache_energy),
            ]);
        }
    }
    table
}

/// **Section VII-A** — EDBP composes with predictors other than Cache
/// Decay: the same baseline-relative comparison with Adaptive Mode Control
/// in Cache Decay's seat.
pub fn other_predictors(opts: ExperimentOptions) -> Table {
    let config = SystemConfig::paper_default();
    let schemes = [
        Scheme::Baseline,
        Scheme::Amc,
        Scheme::Edbp,
        Scheme::AmcEdbp,
        Scheme::DecayEdbp,
    ];
    let results = run_matrix(&config, &schemes, &AppId::ALL, opts.scale, opts.threads);
    let mut table = Table::new(["scheme", "speedup", "energy", "coverage"]);
    for (s, scheme) in schemes.iter().enumerate() {
        let energy = geomean(
            results[0]
                .iter()
                .zip(&results[s])
                .map(|(b, r)| r.energy.total() / b.energy.total()),
        );
        let total = results[s]
            .iter()
            .fold(edbp_core::PredictionSummary::default(), |acc, r| {
                acc.merged(&r.prediction)
            });
        table.row([
            scheme.name().to_owned(),
            factor(geomean(speedups(&results[0], &results[s]))),
            factor(energy),
            pct(total.coverage()),
        ]);
    }
    table
}

/// **Section VI-B** — hardware cost: EDBP's comparators, registers and
/// deactivation buffer as a fraction of the core area.
pub fn hw_cost(_opts: ExperimentOptions) -> Table {
    let model = AreaModel::new(CoreAreaBudget::paper_default());
    let mut table = Table::new(["blocks", "comparators", "area (mm^2)", "core overhead"]);
    for blocks in [64u32, 128, 256, 512, 1024] {
        let area = model.edbp_area(blocks, 3, 8);
        let overhead = model.edbp_overhead_percent(blocks, 3, 8);
        table.row([
            blocks.to_string(),
            blocks.to_string(),
            format!("{area:.6}"),
            format!("{overhead:.4}%"),
        ]);
    }
    table
}

/// **Ablation (Section V-B1)** — fixed vs adaptive EDBP thresholds: the
/// adaptation loop is disabled by setting the reference FPR to 1.0 (never
/// lowers, always resets), isolating the contribution of the feedback.
pub fn ablation_adaptation(opts: ExperimentOptions) -> Table {
    let mut table = Table::new(["variant", "edbp speedup", "edbp FP rate"]);
    for (label, reference_fpr) in [("adaptive (paper)", 0.05), ("fixed thresholds", 1.0)] {
        let mut config = SystemConfig::paper_default();
        let mut edbp = EdbpConfig::for_cache(&Cache::new(config.dcache));
        edbp.reference_fpr = reference_fpr;
        config.edbp = Some(edbp);
        let results = run_matrix(
            &config,
            &[Scheme::Baseline, Scheme::Edbp],
            &AppId::ALL,
            opts.scale,
            opts.threads,
        );
        let fp_rate = {
            let total = results[1]
                .iter()
                .fold(edbp_core::PredictionSummary::default(), |acc, r| {
                    acc.merged(&r.prediction)
                });
            if total.total() == 0 {
                0.0
            } else {
                total.false_positives as f64 / total.total() as f64
            }
        };
        table.row([
            label.to_owned(),
            factor(geomean(speedups(&results[0], &results[1]))),
            pct(fp_rate),
        ]);
    }
    table
}

/// **Ablation (Section V-A)** — EDBP's two selection principles: disabling
/// MRU protection and clean-first prioritization, one at a time.
pub fn ablation_policy(opts: ExperimentOptions) -> Table {
    let variants: [(&str, bool, bool); 4] = [
        ("paper (mru+clean)", true, true),
        ("no MRU protection", false, true),
        ("no clean-first", true, false),
        ("neither", false, false),
    ];
    let mut table = Table::new(["variant", "edbp speedup", "d$ miss"]);
    for (label, protect_mru, clean_first) in variants {
        let mut config = SystemConfig::paper_default();
        let mut edbp = EdbpConfig::for_cache(&Cache::new(config.dcache));
        edbp.protect_mru = protect_mru;
        edbp.clean_first = clean_first;
        config.edbp = Some(edbp);
        let results = run_matrix(
            &config,
            &[Scheme::Baseline, Scheme::Edbp],
            &AppId::ALL,
            opts.scale,
            opts.threads,
        );
        let miss = results[1]
            .iter()
            .map(crate::RunResult::dcache_miss_rate)
            .sum::<f64>()
            / results[1].len() as f64;
        table.row([
            label.to_owned(),
            factor(geomean(speedups(&results[0], &results[1]))),
            pct(miss),
        ]);
    }
    table
}
