//! Sensitivity analyses (Figs. 10–18), the hardware-cost analysis
//! (Section VI-B) and the design-choice ablations.

use super::headline::speedups;
use super::motivation::CACHE_SIZES;
use super::{regroup, run_pair, ExperimentOptions};
use crate::report::{factor, pct, Table};
use crate::runner::{geomean, matrix_jobs, Job, JobOutput};
use crate::{RunResult, Scheme, SourceKind, SystemConfig};
use edbp_core::EdbpConfig;
use ehs_cache::{Cache, CacheGeometry, ReplacementPolicy};
use ehs_energy::TracePreset;
use ehs_nvm::{AreaModel, CoreAreaBudget, MemoryTechnology};
use ehs_units::Capacitance;
use ehs_workloads::{AppId, Scale};

/// The three schemes most sweeps track, after the baseline.
const SWEEP_SCHEMES: [Scheme; 4] = [
    Scheme::Baseline,
    Scheme::Decay,
    Scheme::Edbp,
    Scheme::DecayEdbp,
];

fn sweep_jobs(config: &SystemConfig, scale: Scale) -> Vec<Job> {
    matrix_jobs(config, &SWEEP_SCHEMES, &AppId::ALL, scale)
}

/// Appends one swept configuration's geomean speedup rows labelled `label`.
/// `results` is the `[scheme][app]` matrix for [`SWEEP_SCHEMES`];
/// `reference` overrides the normalization baseline (default: the matrix's
/// own baseline row).
fn sweep_rows(
    table: &mut Table,
    label: &str,
    results: &[Vec<RunResult>],
    reference: Option<&[RunResult]>,
) {
    let base = reference.unwrap_or(&results[0]);
    for (s, scheme) in SWEEP_SCHEMES.iter().enumerate() {
        table.row([
            label.to_owned(),
            scheme.name().to_owned(),
            factor(geomean(speedups(base, &results[s]))),
        ]);
    }
}

fn sweep_header() -> Table {
    Table::new(["config", "scheme", "speedup"])
}

/// One full sweep section's width in jobs.
fn sweep_width() -> usize {
    SWEEP_SCHEMES.len() * AppId::ALL.len()
}

fn fig10_policies() -> [ReplacementPolicy; 2] {
    [ReplacementPolicy::Lru, ReplacementPolicy::Drrip]
}

pub(crate) fn fig10_plan(scale: Scale) -> Vec<Job> {
    fig10_policies()
        .into_iter()
        .flat_map(|policy| {
            let mut config = SystemConfig::paper_default();
            config.dcache.policy = policy;
            sweep_jobs(&config, scale)
        })
        .collect()
}

pub(crate) fn fig10_report(outputs: &[JobOutput]) -> Table {
    let mut table = sweep_header();
    for (i, policy) in fig10_policies().into_iter().enumerate() {
        let section = &outputs[i * sweep_width()..(i + 1) * sweep_width()];
        let results = regroup(section, AppId::ALL.len());
        sweep_rows(&mut table, policy.name(), &results, None);
    }
    table
}

/// **Fig. 10** — replacement-policy sensitivity: LRU (naive) vs DRRIP
/// (sophisticated). Speedups are normalized to the baseline under the *same*
/// policy, as in the paper ("17.1% improvement over the baseline with
/// DRRIP, compared to 6.91% with LRU").
pub fn fig10_replacement_policy(opts: ExperimentOptions) -> Table {
    run_pair(fig10_plan, fig10_report, opts)
}

fn dcache_size_config(bytes: u32) -> SystemConfig {
    let mut config = SystemConfig::paper_default();
    let assoc = config.dcache.geometry.associativity.min(bytes / 16);
    config.dcache.geometry = CacheGeometry::new(bytes, assoc, 16).expect("swept geometry is valid");
    config
}

pub(crate) fn fig11_plan(scale: Scale) -> Vec<Job> {
    let base = SystemConfig::paper_default();
    let mut jobs = matrix_jobs(&base, &[Scheme::Baseline], &AppId::ALL, scale);
    for bytes in CACHE_SIZES {
        jobs.extend(sweep_jobs(&dcache_size_config(bytes), scale));
    }
    jobs
}

pub(crate) fn fig11_report(outputs: &[JobOutput]) -> Table {
    let apps = AppId::ALL.len();
    let (reference, swept) = outputs.split_at(apps);
    let reference = regroup(reference, apps);
    let mut table = sweep_header();
    for (i, bytes) in CACHE_SIZES.into_iter().enumerate() {
        let results = regroup(&swept[i * sweep_width()..(i + 1) * sweep_width()], apps);
        sweep_rows(
            &mut table,
            &format!("{bytes} B"),
            &results,
            Some(&reference[0]),
        );
    }
    table
}

/// **Fig. 11** — cache-size sensitivity, 256 B–16 kB, all schemes normalized
/// to the 4 kB baseline.
pub fn fig11_cache_size(opts: ExperimentOptions) -> Table {
    run_pair(fig11_plan, fig11_report, opts)
}

const FIG12_WAYS: [u32; 4] = [1, 2, 4, 8];

pub(crate) fn fig12_plan(scale: Scale) -> Vec<Job> {
    let base = SystemConfig::paper_default();
    let mut jobs = matrix_jobs(&base, &[Scheme::Baseline], &AppId::ALL, scale);
    for ways in FIG12_WAYS {
        let mut config = base.clone();
        config.dcache.geometry =
            CacheGeometry::new(4096, ways, 16).expect("swept geometry is valid");
        jobs.extend(sweep_jobs(&config, scale));
    }
    jobs
}

pub(crate) fn fig12_report(outputs: &[JobOutput]) -> Table {
    let apps = AppId::ALL.len();
    let (reference, swept) = outputs.split_at(apps);
    let reference = regroup(reference, apps);
    let mut table = sweep_header();
    for (i, ways) in FIG12_WAYS.into_iter().enumerate() {
        let results = regroup(&swept[i * sweep_width()..(i + 1) * sweep_width()], apps);
        sweep_rows(
            &mut table,
            &format!("{ways}-way"),
            &results,
            Some(&reference[0]),
        );
    }
    table
}

/// **Fig. 12** — associativity sensitivity (direct-mapped to 8-way),
/// normalized to the 4-way baseline. Direct-mapped EDBP collapses to a
/// single threshold that deactivates every block (Section VI-H3).
pub fn fig12_associativity(opts: ExperimentOptions) -> Table {
    run_pair(fig12_plan, fig12_report, opts)
}

pub(crate) fn fig13_plan(scale: Scale) -> Vec<Job> {
    MemoryTechnology::NONVOLATILE
        .into_iter()
        .flat_map(|tech| {
            let mut config = SystemConfig::paper_default();
            config.icache_tech = tech;
            config.memory_tech = tech;
            sweep_jobs(&config, scale)
        })
        .collect()
}

pub(crate) fn fig13_report(outputs: &[JobOutput]) -> Table {
    let mut table = sweep_header();
    for (i, tech) in MemoryTechnology::NONVOLATILE.into_iter().enumerate() {
        let section = &outputs[i * sweep_width()..(i + 1) * sweep_width()];
        let results = regroup(section, AppId::ALL.len());
        sweep_rows(&mut table, tech.name(), &results, None);
    }
    table
}

/// **Fig. 13** — NVM-technology sensitivity: ReRAM / FeRAM / STTRAM for the
/// instruction cache and main memory. Speedups normalized to the same-tech
/// baseline (the paper compares predictor gains per technology).
pub fn fig13_nvm_technology(opts: ExperimentOptions) -> Table {
    run_pair(fig13_plan, fig13_report, opts)
}

const FIG14_MB: [u64; 5] = [2, 4, 8, 16, 32];

pub(crate) fn fig14_plan(scale: Scale) -> Vec<Job> {
    FIG14_MB
        .into_iter()
        .flat_map(|mb| {
            let mut config = SystemConfig::paper_default();
            config.memory_bytes = mb * 1024 * 1024;
            sweep_jobs(&config, scale)
        })
        .collect()
}

pub(crate) fn fig14_report(outputs: &[JobOutput]) -> Table {
    let mut table = sweep_header();
    for (i, mb) in FIG14_MB.into_iter().enumerate() {
        let section = &outputs[i * sweep_width()..(i + 1) * sweep_width()];
        let results = regroup(section, AppId::ALL.len());
        sweep_rows(&mut table, &format!("{mb} MB"), &results, None);
    }
    table
}

/// **Fig. 14** — memory-size sensitivity, 2–32 MB (larger memories amplify
/// every miss penalty). Normalized to the same-size baseline.
pub fn fig14_memory_size(opts: ExperimentOptions) -> Table {
    run_pair(fig14_plan, fig14_report, opts)
}

pub(crate) fn fig15_plan(scale: Scale) -> Vec<Job> {
    TracePreset::ALL
        .into_iter()
        .flat_map(|preset| {
            let mut config = SystemConfig::paper_default();
            config.source = SourceKind::Preset {
                preset,
                seed: 42,
                scale: 1.0,
            };
            sweep_jobs(&config, scale)
        })
        .collect()
}

pub(crate) fn fig15_report(outputs: &[JobOutput]) -> Table {
    let mut table = sweep_header();
    for (i, preset) in TracePreset::ALL.into_iter().enumerate() {
        let section = &outputs[i * sweep_width()..(i + 1) * sweep_width()];
        let results = regroup(section, AppId::ALL.len());
        sweep_rows(&mut table, preset.name(), &results, None);
    }
    table
}

/// **Fig. 15** — energy-condition sensitivity across the four ambient
/// environments. Normalized to the same-trace baseline.
pub fn fig15_energy_conditions(opts: ExperimentOptions) -> Table {
    run_pair(fig15_plan, fig15_report, opts)
}

const FIG16_CAPS: [(&str, f64); 5] = [
    ("C0 (4.7uF)", 4.7),
    ("2.1x C0", 10.0),
    ("10x C0", 47.0),
    ("21x C0", 100.0),
    ("100x C0", 470.0),
];

pub(crate) fn fig16_plan(scale: Scale) -> Vec<Job> {
    FIG16_CAPS
        .into_iter()
        .flat_map(|(_, uf)| {
            let mut config = SystemConfig::paper_default();
            config.energy.capacitor.capacitance = Capacitance::from_micro_farads(uf);
            sweep_jobs(&config, scale)
        })
        .collect()
}

pub(crate) fn fig16_report(outputs: &[JobOutput]) -> Table {
    let mut table = sweep_header();
    for (i, (label, _)) in FIG16_CAPS.into_iter().enumerate() {
        let section = &outputs[i * sweep_width()..(i + 1) * sweep_width()];
        let results = regroup(section, AppId::ALL.len());
        sweep_rows(&mut table, label, &results, None);
    }
    table
}

/// **Fig. 16** — capacitor-size sensitivity. The paper sweeps 0.47–100 µF;
/// we sweep the same ×1 … ×200 ratios over our scaled default (see
/// `DESIGN.md` §4). Normalized to the same-capacitor baseline.
pub fn fig16_capacitor_size(opts: ExperimentOptions) -> Table {
    run_pair(fig16_plan, fig16_report, opts)
}

fn fig17_points() -> Vec<(&'static str, SystemConfig)> {
    let mut points: Vec<(&'static str, SystemConfig)> = Vec::new();
    points.push(("default", SystemConfig::paper_default()));
    {
        let mut c = SystemConfig::paper_default();
        c.dcache.policy = ReplacementPolicy::Drrip;
        points.push(("drrip", c));
    }
    {
        let mut c = SystemConfig::paper_default();
        c.dcache.geometry = CacheGeometry::new(16384, 4, 16).expect("valid");
        points.push(("16kB d$", c));
    }
    {
        let mut c = SystemConfig::paper_default();
        c.dcache.geometry = CacheGeometry::new(4096, 8, 16).expect("valid");
        points.push(("8-way", c));
    }
    {
        let mut c = SystemConfig::paper_default();
        c.icache_tech = MemoryTechnology::SttRam;
        c.memory_tech = MemoryTechnology::SttRam;
        points.push(("sttram", c));
    }
    {
        let mut c = SystemConfig::paper_default();
        c.memory_bytes = 32 * 1024 * 1024;
        points.push(("32MB mem", c));
    }
    {
        let mut c = SystemConfig::paper_default();
        c.source = SourceKind::Preset {
            preset: TracePreset::Thermal,
            seed: 42,
            scale: 1.0,
        };
        points.push(("thermal", c));
    }
    {
        let mut c = SystemConfig::paper_default();
        c.energy.capacitor.capacitance = Capacitance::from_micro_farads(470.0);
        points.push(("100x C0", c));
    }
    points
}

pub(crate) fn fig17_plan(scale: Scale) -> Vec<Job> {
    fig17_points()
        .into_iter()
        .flat_map(|(_, config)| {
            matrix_jobs(
                &config,
                &[Scheme::Baseline, Scheme::DecayEdbp],
                &AppId::ALL,
                scale,
            )
        })
        .collect()
}

pub(crate) fn fig17_report(outputs: &[JobOutput]) -> Table {
    let apps = AppId::ALL.len();
    let mut table = Table::new(["config", "decay+edbp speedup"]);
    for (i, (label, _)) in fig17_points().into_iter().enumerate() {
        let results = regroup(&outputs[i * 2 * apps..(i + 1) * 2 * apps], apps);
        table.row([
            label.to_owned(),
            factor(geomean(speedups(&results[0], &results[1]))),
        ]);
    }
    table
}

/// **Fig. 17** — sensitivity summary: the geomean speedup of the combined
/// scheme (Cache Decay + EDBP) at the default and at one representative
/// point of every sensitivity axis, normalized to each point's own baseline.
pub fn fig17_sensitivity_summary(opts: ExperimentOptions) -> Table {
    run_pair(fig17_plan, fig17_report, opts)
}

const FIG18_DESIGNS: [(&str, bool); 2] = [("d$ only", false), ("both caches", true)];

fn fig18_config(predict_icache: bool) -> SystemConfig {
    let mut config = SystemConfig::paper_default();
    config.icache_tech = MemoryTechnology::Sram;
    config.icache_energy_scale = 1.0; // SRAM I$ needs no ReRAM calibration
    config.predict_icache = predict_icache;
    config
}

pub(crate) fn fig18_plan(scale: Scale) -> Vec<Job> {
    FIG18_DESIGNS
        .into_iter()
        .flat_map(|(_, both)| {
            matrix_jobs(&fig18_config(both), &Scheme::HEADLINE, &AppId::ALL, scale)
        })
        .collect()
}

pub(crate) fn fig18_report(outputs: &[JobOutput]) -> Table {
    let apps = AppId::ALL.len();
    let width = Scheme::HEADLINE.len() * apps;
    let mut table = Table::new(["design", "scheme", "speedup", "energy", "cache energy"]);
    for (i, (label, _)) in FIG18_DESIGNS.into_iter().enumerate() {
        let results = regroup(&outputs[i * width..(i + 1) * width], apps);
        for (s, scheme) in Scheme::HEADLINE.iter().enumerate() {
            let speedup = geomean(speedups(&results[0], &results[s]));
            let energy = geomean(
                results[0]
                    .iter()
                    .zip(&results[s])
                    .map(|(b, r)| r.energy.total() / b.energy.total()),
            );
            let cache_energy = geomean(
                results[0]
                    .iter()
                    .zip(&results[s])
                    .map(|(b, r)| r.energy.cache() / b.energy.cache()),
            );
            table.row([
                label.to_owned(),
                scheme.name().to_owned(),
                factor(speedup),
                factor(energy),
                factor(cache_energy),
            ]);
        }
    }
    table
}

/// **Fig. 18** — SRAM instruction cache: a new baseline with SRAM for both
/// caches, comparing the predictors applied to the data cache only vs to
/// both caches. Energy and speedup normalized to the new baseline.
pub fn fig18_icache(opts: ExperimentOptions) -> Table {
    run_pair(fig18_plan, fig18_report, opts)
}

const OTHER_PREDICTOR_SCHEMES: [Scheme; 5] = [
    Scheme::Baseline,
    Scheme::Amc,
    Scheme::Edbp,
    Scheme::AmcEdbp,
    Scheme::DecayEdbp,
];

pub(crate) fn other_predictors_plan(scale: Scale) -> Vec<Job> {
    let config = SystemConfig::paper_default();
    matrix_jobs(&config, &OTHER_PREDICTOR_SCHEMES, &AppId::ALL, scale)
}

pub(crate) fn other_predictors_report(outputs: &[JobOutput]) -> Table {
    let results = regroup(outputs, AppId::ALL.len());
    let mut table = Table::new(["scheme", "speedup", "energy", "coverage"]);
    for (s, scheme) in OTHER_PREDICTOR_SCHEMES.iter().enumerate() {
        let energy = geomean(
            results[0]
                .iter()
                .zip(&results[s])
                .map(|(b, r)| r.energy.total() / b.energy.total()),
        );
        let total = results[s]
            .iter()
            .fold(edbp_core::PredictionSummary::default(), |acc, r| {
                acc.merged(&r.prediction)
            });
        table.row([
            scheme.name().to_owned(),
            factor(geomean(speedups(&results[0], &results[s]))),
            factor(energy),
            pct(total.coverage()),
        ]);
    }
    table
}

/// **Section VII-A** — EDBP composes with predictors other than Cache
/// Decay: the same baseline-relative comparison with Adaptive Mode Control
/// in Cache Decay's seat.
pub fn other_predictors(opts: ExperimentOptions) -> Table {
    run_pair(other_predictors_plan, other_predictors_report, opts)
}

pub(crate) fn hw_cost_plan(_scale: Scale) -> Vec<Job> {
    Vec::new()
}

pub(crate) fn hw_cost_report(_outputs: &[JobOutput]) -> Table {
    let model = AreaModel::new(CoreAreaBudget::paper_default());
    let mut table = Table::new(["blocks", "comparators", "area (mm^2)", "core overhead"]);
    for blocks in [64u32, 128, 256, 512, 1024] {
        let area = model.edbp_area(blocks, 3, 8);
        let overhead = model.edbp_overhead_percent(blocks, 3, 8);
        table.row([
            blocks.to_string(),
            blocks.to_string(),
            format!("{area:.6}"),
            format!("{overhead:.4}%"),
        ]);
    }
    table
}

/// **Section VI-B** — hardware cost: EDBP's comparators, registers and
/// deactivation buffer as a fraction of the core area.
pub fn hw_cost(opts: ExperimentOptions) -> Table {
    run_pair(hw_cost_plan, hw_cost_report, opts)
}

const ADAPTATION_VARIANTS: [(&str, f64); 2] =
    [("adaptive (paper)", 0.05), ("fixed thresholds", 1.0)];

fn adaptation_config(reference_fpr: f64) -> SystemConfig {
    let mut config = SystemConfig::paper_default();
    let mut edbp = EdbpConfig::for_cache(&Cache::new(config.dcache));
    edbp.reference_fpr = reference_fpr;
    config.edbp = Some(edbp);
    config
}

pub(crate) fn ablation_adaptation_plan(scale: Scale) -> Vec<Job> {
    ADAPTATION_VARIANTS
        .into_iter()
        .flat_map(|(_, fpr)| {
            matrix_jobs(
                &adaptation_config(fpr),
                &[Scheme::Baseline, Scheme::Edbp],
                &AppId::ALL,
                scale,
            )
        })
        .collect()
}

pub(crate) fn ablation_adaptation_report(outputs: &[JobOutput]) -> Table {
    let apps = AppId::ALL.len();
    let mut table = Table::new(["variant", "edbp speedup", "edbp FP rate"]);
    for (i, (label, _)) in ADAPTATION_VARIANTS.into_iter().enumerate() {
        let results = regroup(&outputs[i * 2 * apps..(i + 1) * 2 * apps], apps);
        let fp_rate = {
            let total = results[1]
                .iter()
                .fold(edbp_core::PredictionSummary::default(), |acc, r| {
                    acc.merged(&r.prediction)
                });
            if total.total() == 0 {
                0.0
            } else {
                total.false_positives as f64 / total.total() as f64
            }
        };
        table.row([
            label.to_owned(),
            factor(geomean(speedups(&results[0], &results[1]))),
            pct(fp_rate),
        ]);
    }
    table
}

/// **Ablation (Section V-B1)** — fixed vs adaptive EDBP thresholds: the
/// adaptation loop is disabled by setting the reference FPR to 1.0 (never
/// lowers, always resets), isolating the contribution of the feedback.
pub fn ablation_adaptation(opts: ExperimentOptions) -> Table {
    run_pair(ablation_adaptation_plan, ablation_adaptation_report, opts)
}

const POLICY_VARIANTS: [(&str, bool, bool); 4] = [
    ("paper (mru+clean)", true, true),
    ("no MRU protection", false, true),
    ("no clean-first", true, false),
    ("neither", false, false),
];

pub(crate) fn ablation_policy_plan(scale: Scale) -> Vec<Job> {
    POLICY_VARIANTS
        .into_iter()
        .flat_map(|(_, protect_mru, clean_first)| {
            let mut config = SystemConfig::paper_default();
            let mut edbp = EdbpConfig::for_cache(&Cache::new(config.dcache));
            edbp.protect_mru = protect_mru;
            edbp.clean_first = clean_first;
            config.edbp = Some(edbp);
            matrix_jobs(
                &config,
                &[Scheme::Baseline, Scheme::Edbp],
                &AppId::ALL,
                scale,
            )
        })
        .collect()
}

pub(crate) fn ablation_policy_report(outputs: &[JobOutput]) -> Table {
    let apps = AppId::ALL.len();
    let mut table = Table::new(["variant", "edbp speedup", "d$ miss"]);
    for (i, (label, _, _)) in POLICY_VARIANTS.into_iter().enumerate() {
        let results = regroup(&outputs[i * 2 * apps..(i + 1) * 2 * apps], apps);
        let miss = results[1]
            .iter()
            .map(crate::RunResult::dcache_miss_rate)
            .sum::<f64>()
            / results[1].len() as f64;
        table.row([
            label.to_owned(),
            factor(geomean(speedups(&results[0], &results[1]))),
            pct(miss),
        ]);
    }
    table
}

/// **Ablation (Section V-A)** — EDBP's two selection principles: disabling
/// MRU protection and clean-first prioritization, one at a time.
pub fn ablation_policy(opts: ExperimentOptions) -> Table {
    run_pair(ablation_policy_plan, ablation_policy_report, opts)
}
