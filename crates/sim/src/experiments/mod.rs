//! One entry point per table/figure of the paper.
//!
//! Each function runs the experiment and returns a rendered
//! [`crate::report::Table`] (the experiment binaries print it). See
//! `DESIGN.md` §3 for the experiment index and `EXPERIMENTS.md` for the
//! recorded paper-vs-measured results.
//!
//! Every experiment takes the workload `Scale` and a
//! worker-thread count; [`ExperimentOptions::default`] uses `Scale::Small`
//! and all-but-one hardware threads, which regenerates each figure in
//! seconds-to-minutes.
//!
//! # Plan / report split
//!
//! Internally every experiment is a *plan* function (`Scale` → the flat,
//! deterministically ordered list of [`Job`]s it needs) and a pure *report*
//! function (the jobs' outputs, in plan order → the figure's `Table`). The
//! public functions here glue one pair together through
//! [`crate::runner::run_jobs_outputs`]; the suite planner
//! ([`crate::planner`]) instead collects *every* experiment's plan, dedups
//! across them, runs the union once, and feeds each report its own slice.

pub(crate) mod headline;
pub(crate) mod motivation;
pub(crate) mod sensitivity;

pub use headline::{fig6_true_false_rates, fig7_energy_breakdown, fig8_performance, fig9_absolute};
pub use motivation::{fig1_cache_size_motivation, fig4_zombie_ratio, table1_sram_leakage};
pub use sensitivity::{
    ablation_adaptation, ablation_policy, fig10_replacement_policy, fig11_cache_size,
    fig12_associativity, fig13_nvm_technology, fig14_memory_size, fig15_energy_conditions,
    fig16_capacitor_size, fig17_sensitivity_summary, fig18_icache, hw_cost, other_predictors,
};

use crate::report::Table;
use crate::runner::{default_threads, run_jobs_outputs, Job, JobOutput};
use crate::RunResult;
use ehs_workloads::Scale;

/// Common knobs shared by every experiment runner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExperimentOptions {
    /// Workload scale (Small reproduces the shapes in minutes).
    pub scale: Scale,
    /// Worker threads for the run fan-out.
    pub threads: usize,
}

impl Default for ExperimentOptions {
    fn default() -> Self {
        Self {
            scale: Scale::Small,
            threads: default_threads(),
        }
    }
}

impl ExperimentOptions {
    /// Quick options for tests: tiny workloads, two threads.
    pub fn quick() -> Self {
        Self {
            scale: Scale::Tiny,
            threads: 2,
        }
    }
}

/// Runs one experiment's plan/report pair standalone (the per-figure public
/// functions and thin binaries go through here).
pub(crate) fn run_pair(
    plan: fn(Scale) -> Vec<Job>,
    report: fn(&[JobOutput]) -> Table,
    opts: ExperimentOptions,
) -> Table {
    let jobs = plan(opts.scale);
    let outputs = run_jobs_outputs(&jobs, opts.threads);
    report(&outputs)
}

/// Regroups a flat output slice into `[scheme][app]`-style rows of
/// `columns` results each — the inverse of [`crate::runner::matrix_jobs`]'
/// flattening.
pub(crate) fn regroup(outputs: &[JobOutput], columns: usize) -> Vec<Vec<RunResult>> {
    assert_eq!(outputs.len() % columns, 0, "outputs do not tile into rows");
    outputs
        .chunks(columns)
        .map(|chunk| chunk.iter().map(|o| o.result.clone()).collect())
        .collect()
}
