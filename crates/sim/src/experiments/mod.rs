//! One entry point per table/figure of the paper.
//!
//! Each function runs the experiment and returns a rendered
//! [`crate::report::Table`] (the experiment binaries print it). See
//! `DESIGN.md` §3 for the experiment index and `EXPERIMENTS.md` for the
//! recorded paper-vs-measured results.
//!
//! Every experiment takes the workload `Scale` and a
//! worker-thread count; [`ExperimentOptions::default`] uses `Scale::Small`
//! and all-but-one hardware threads, which regenerates each figure in
//! seconds-to-minutes.

mod headline;
mod motivation;
mod sensitivity;

pub use headline::{fig6_true_false_rates, fig7_energy_breakdown, fig8_performance, fig9_absolute};
pub use motivation::{fig1_cache_size_motivation, fig4_zombie_ratio, table1_sram_leakage};
pub use sensitivity::{
    ablation_adaptation, ablation_policy, fig10_replacement_policy, fig11_cache_size,
    fig12_associativity, fig13_nvm_technology, fig14_memory_size, fig15_energy_conditions,
    fig16_capacitor_size, fig17_sensitivity_summary, fig18_icache, hw_cost, other_predictors,
};

use crate::runner::default_threads;
use ehs_workloads::Scale;

/// Common knobs shared by every experiment runner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExperimentOptions {
    /// Workload scale (Small reproduces the shapes in minutes).
    pub scale: Scale,
    /// Worker threads for the run fan-out.
    pub threads: usize,
}

impl Default for ExperimentOptions {
    fn default() -> Self {
        Self {
            scale: Scale::Small,
            threads: default_threads(),
        }
    }
}

impl ExperimentOptions {
    /// Quick options for tests: tiny workloads, two threads.
    pub fn quick() -> Self {
        Self {
            scale: Scale::Tiny,
            threads: 2,
        }
    }
}
