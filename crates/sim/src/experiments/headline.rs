//! Headline experiments: Figs. 6–9 (true/false rates, energy breakdown,
//! performance, absolute power).

use super::{regroup, run_pair, ExperimentOptions};
use crate::report::{factor, pct, Table};
use crate::runner::{geomean, matrix_jobs, Job, JobOutput};
use crate::{RunResult, Scheme, SystemConfig};
use ehs_workloads::{AppId, Scale};

const FIG6_SCHEMES: [Scheme; 3] = [Scheme::Decay, Scheme::Edbp, Scheme::DecayEdbp];

pub(crate) fn fig6_plan(scale: Scale) -> Vec<Job> {
    let config = SystemConfig::paper_default();
    matrix_jobs(&config, &FIG6_SCHEMES, &AppId::ALL, scale)
}

pub(crate) fn fig6_report(outputs: &[JobOutput]) -> Table {
    let results = regroup(outputs, AppId::ALL.len());
    let mut table = Table::new([
        "app", "scheme", "TP", "FP", "TN", "FN-dead", "missed-Z", "coverage", "accuracy",
    ]);
    for (s, scheme) in FIG6_SCHEMES.iter().enumerate() {
        for r in &results[s] {
            let f = r.prediction.fractions();
            table.row([
                r.app.name().to_owned(),
                scheme.name().to_owned(),
                pct(f[0]),
                pct(f[1]),
                pct(f[2]),
                pct(f[3]),
                pct(f[4]),
                pct(r.prediction.coverage()),
                pct(r.prediction.accuracy()),
            ]);
        }
        // Suite-wide aggregate.
        let total = results[s]
            .iter()
            .fold(edbp_core::PredictionSummary::default(), |acc, r| {
                acc.merged(&r.prediction)
            });
        let f = total.fractions();
        table.row([
            "MEAN".to_owned(),
            scheme.name().to_owned(),
            pct(f[0]),
            pct(f[1]),
            pct(f[2]),
            pct(f[3]),
            pct(f[4]),
            pct(total.coverage()),
            pct(total.accuracy()),
        ]);
    }
    table
}

/// **Fig. 6** — zombie-aware prediction outcomes per application for Cache
/// Decay, EDBP, and Cache Decay + EDBP: TP / FP / TN / FN(dead) / missed
/// zombies as fractions of classified block generations, plus the paper's
/// redefined coverage and accuracy (Eqs. 1–2).
pub fn fig6_true_false_rates(opts: ExperimentOptions) -> Table {
    run_pair(fig6_plan, fig6_report, opts)
}

pub(crate) fn fig7_plan(scale: Scale) -> Vec<Job> {
    let config = SystemConfig::paper_default();
    matrix_jobs(&config, &Scheme::HEADLINE, &AppId::ALL, scale)
}

pub(crate) fn fig7_report(outputs: &[JobOutput]) -> Table {
    let results = regroup(outputs, AppId::ALL.len());
    let mut table = Table::new([
        "app", "scheme", "total", "cache", "memory", "ckpt+rst", "others", "ld/st",
    ]);
    for (a, app) in AppId::ALL.iter().enumerate() {
        let base_total = results[0][a].energy.total();
        for (s, scheme) in Scheme::HEADLINE.iter().enumerate() {
            let r = &results[s][a];
            let e = &r.energy;
            table.row([
                app.name().to_owned(),
                scheme.name().to_owned(),
                factor(e.total() / base_total),
                factor(e.cache() / base_total),
                factor(e.memory / base_total),
                factor(e.checkpoint_restore() / base_total),
                factor(e.others() / base_total),
                pct(r.load_store_ratio()),
            ]);
        }
    }
    // Suite means (normalized energy geomean per scheme).
    for (s, scheme) in Scheme::HEADLINE.iter().enumerate() {
        let g = geomean(
            results[0]
                .iter()
                .zip(&results[s])
                .map(|(b, r)| r.energy.total() / b.energy.total()),
        );
        table.row([
            "MEAN".to_owned(),
            scheme.name().to_owned(),
            factor(g),
            String::new(),
            String::new(),
            String::new(),
            String::new(),
            String::new(),
        ]);
    }
    table
}

/// **Fig. 7** — energy breakdown normalized to the NVSRAMCache baseline,
/// split into the paper's categories (cache / memory / checkpoint+restore /
/// others), plus the load/store fraction of committed instructions.
pub fn fig7_energy_breakdown(opts: ExperimentOptions) -> Table {
    run_pair(fig7_plan, fig7_report, opts)
}

/// Builds the speedup-vs-baseline rows shared by Fig. 8 and the sweeps.
pub(crate) fn speedups<'a>(
    baseline: &'a [RunResult],
    scheme_results: &'a [RunResult],
) -> impl Iterator<Item = f64> + 'a {
    baseline
        .iter()
        .zip(scheme_results)
        .map(|(b, r)| b.total_time() / r.total_time())
}

pub(crate) fn fig8_plan(scale: Scale) -> Vec<Job> {
    let config = SystemConfig::paper_default();
    matrix_jobs(&config, &Scheme::FIG8, &AppId::ALL, scale)
}

pub(crate) fn fig8_report(outputs: &[JobOutput]) -> Table {
    let results = regroup(outputs, AppId::ALL.len());
    let mut table = Table::new(["app", "scheme", "speedup", "d$ miss", "outages"]);
    for (a, app) in AppId::ALL.iter().enumerate() {
        for (s, scheme) in Scheme::FIG8.iter().enumerate() {
            let r = &results[s][a];
            table.row([
                app.name().to_owned(),
                scheme.name().to_owned(),
                factor(results[0][a].total_time() / r.total_time()),
                pct(r.dcache_miss_rate()),
                r.outages.to_string(),
            ]);
        }
    }
    for (s, scheme) in Scheme::FIG8.iter().enumerate() {
        let g = geomean(speedups(&results[0], &results[s]));
        let miss = results[s]
            .iter()
            .map(RunResult::dcache_miss_rate)
            .sum::<f64>()
            / results[s].len() as f64;
        table.row([
            "MEAN".to_owned(),
            scheme.name().to_owned(),
            factor(g),
            pct(miss),
            String::new(),
        ]);
    }
    table
}

/// **Fig. 8** — speedup over NVSRAMCache (top) and data-cache miss rate
/// (bottom) for every scheme including the "80% Leakage Off" and Ideal
/// bounds, per application and as the suite geomean.
pub fn fig8_performance(opts: ExperimentOptions) -> Table {
    run_pair(fig8_plan, fig8_report, opts)
}

pub(crate) fn fig9_plan(scale: Scale) -> Vec<Job> {
    let config = SystemConfig::paper_default();
    matrix_jobs(&config, &[Scheme::Baseline], &AppId::ALL, scale)
}

pub(crate) fn fig9_report(outputs: &[JobOutput]) -> Table {
    let results = regroup(outputs, AppId::ALL.len());
    let mut table = Table::new(["app", "avg power (mW)", "total energy (uJ)", "outages"]);
    let mut power_sum = 0.0;
    let mut energy_sum = 0.0;
    for r in &results[0] {
        power_sum += r.average_power().as_milli_watts();
        energy_sum += r.energy.total().as_micro_joules();
        table.row([
            r.app.name().to_owned(),
            format!("{:.3}", r.average_power().as_milli_watts()),
            format!("{:.1}", r.energy.total().as_micro_joules()),
            r.outages.to_string(),
        ]);
    }
    let n = results[0].len() as f64;
    table.row([
        "MEAN".to_owned(),
        format!("{:.3}", power_sum / n),
        format!("{:.1}", energy_sum / n),
        String::new(),
    ]);
    table
}

/// **Fig. 9** — absolute average power (mW) and total consumed energy (µJ)
/// of the NVSRAMCache baseline per application.
pub fn fig9_absolute(opts: ExperimentOptions) -> Table {
    run_pair(fig9_plan, fig9_report, opts)
}
