//! Motivation experiments: Table I, Fig. 1 and Fig. 4.

use super::ExperimentOptions;
use crate::report::{pct, Table};
use crate::runner::{geomean, run_matrix};
use crate::{zombie_ratio_by_voltage, Scheme, Simulation, SystemConfig, ZombieSample};
use ehs_cache::CacheGeometry;
use ehs_nvm::{CacheArrayModel, MemoryTechnology};
use ehs_workloads::{build, AppId};

/// Cache sizes swept by Table I, Fig. 1 and Fig. 11.
pub(crate) const CACHE_SIZES: [u32; 7] = [256, 512, 1024, 2048, 4096, 8192, 16384];

fn config_with_dcache_size(base: &SystemConfig, bytes: u32) -> SystemConfig {
    let mut config = base.clone();
    let assoc = config.dcache.geometry.associativity.min(bytes / 16);
    config.dcache.geometry = CacheGeometry::new(bytes, assoc, 16).expect("swept geometry is valid");
    config
}

/// **Table I** — SRAM cache leakage power (mW) and the ratio of static
/// energy to total SRAM data-cache energy, for 4-way caches of 256 B–16 kB.
///
/// Leakage comes from the NVSim-style model (anchored to the paper's
/// published points); the static-energy ratio is measured on baseline runs
/// averaged across all 20 applications.
pub fn table1_sram_leakage(opts: ExperimentOptions) -> Table {
    let base = SystemConfig::paper_default();
    let mut table = Table::new(["cache size", "leakage (mW)", "static ratio"]);
    for bytes in CACHE_SIZES {
        let config = config_with_dcache_size(&base, bytes);
        let model = CacheArrayModel::new(MemoryTechnology::Sram, config.dcache.geometry);
        let leak = model.characteristics().leakage.as_milli_watts();
        let results = run_matrix(
            &config,
            &[Scheme::Baseline],
            &AppId::ALL,
            opts.scale,
            opts.threads,
        );
        let ratio = results[0]
            .iter()
            .map(|r| r.energy.dcache_static_ratio())
            .sum::<f64>()
            / results[0].len() as f64;
        table.row([format!("{bytes} B"), format!("{leak:.2}"), pct(ratio)]);
    }
    table
}

/// **Fig. 1** — speedup across data-cache sizes, with real leakage vs the
/// "80% Leakage Off" stress test. All speedups are normalized to the 4 kB
/// 4-way baseline with real leakage (geomean over the 20 applications).
pub fn fig1_cache_size_motivation(opts: ExperimentOptions) -> Table {
    let base = SystemConfig::paper_default();
    let reference = run_matrix(
        &config_with_dcache_size(&base, 4096),
        &[Scheme::Baseline],
        &AppId::ALL,
        opts.scale,
        opts.threads,
    );
    let mut table = Table::new(["cache size", "real leakage", "80% leakage off"]);
    for bytes in CACHE_SIZES {
        let config = config_with_dcache_size(&base, bytes);
        let results = run_matrix(
            &config,
            &[Scheme::Baseline, Scheme::LeakageOff80],
            &AppId::ALL,
            opts.scale,
            opts.threads,
        );
        let speedup = |scheme_idx: usize| {
            geomean(
                reference[0]
                    .iter()
                    .zip(&results[scheme_idx])
                    .map(|(r, s)| r.total_time() / s.total_time()),
            )
        };
        table.row([
            format!("{bytes} B"),
            format!("{:.3}", speedup(0)),
            format!("{:.3}", speedup(1)),
        ]);
    }
    table
}

/// Collects Fig. 4 zombie samples for one app.
fn zombie_samples_for(
    config: &SystemConfig,
    app: AppId,
    opts: ExperimentOptions,
) -> Vec<ZombieSample> {
    let workload = build(app, opts.scale);
    let sim = Simulation::new(config, Scheme::Baseline, workload, None);
    let (_, samples) = sim.run_with_zombie_analysis();
    samples
}

/// **Fig. 4** — the fraction of resident data-cache blocks that are zombies
/// (no further access before the upcoming outage / their eviction), bucketed
/// by the capacitor voltage at the sampling instant. Baseline scheme,
/// RFHome, samples pooled across all 20 applications.
pub fn fig4_zombie_ratio(opts: ExperimentOptions) -> Table {
    let mut config = SystemConfig::paper_default();
    config.zombie_sample_interval = Some(500);

    let samples: Vec<ZombieSample> = {
        use std::sync::Mutex;
        // One slot per app so thread interleaving cannot reorder the pool.
        let slots: Vec<Mutex<Vec<ZombieSample>>> =
            AppId::ALL.iter().map(|_| Mutex::new(Vec::new())).collect();
        let next = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..opts.threads.max(1) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= AppId::ALL.len() {
                        break;
                    }
                    let s = zombie_samples_for(&config, AppId::ALL[i], opts);
                    *slots[i].lock().expect("zombie slot poisoned") = s;
                });
            }
        });
        slots
            .into_iter()
            .flat_map(|m| m.into_inner().expect("zombie slot poisoned"))
            .collect()
    };

    let rows = zombie_ratio_by_voltage(&samples, 3.2, 3.5, 6);
    let mut table = Table::new(["voltage (V)", "zombie ratio", "samples"]);
    for (centre, ratio, count) in rows {
        table.row([format!("{centre:.3}"), pct(ratio), count.to_string()]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dcache_size_sweep_preserves_block_and_clamps_assoc() {
        let base = SystemConfig::paper_default();
        let small = config_with_dcache_size(&base, 256);
        assert_eq!(small.dcache.geometry.block_bytes, 16);
        assert_eq!(small.dcache.geometry.associativity, 4);
        let tiny = config_with_dcache_size(&base, 32);
        assert_eq!(tiny.dcache.geometry.associativity, 2, "assoc clamps");
    }

    #[test]
    fn table1_leakage_is_monotonic() {
        // Check the model side only (no simulation) for speed.
        let base = SystemConfig::paper_default();
        let mut prev = 0.0;
        for bytes in CACHE_SIZES {
            let config = config_with_dcache_size(&base, bytes);
            let leak = CacheArrayModel::new(MemoryTechnology::Sram, config.dcache.geometry)
                .characteristics()
                .leakage
                .as_milli_watts();
            assert!(leak > prev);
            prev = leak;
        }
    }
}
