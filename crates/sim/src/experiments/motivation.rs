//! Motivation experiments: Table I, Fig. 1 and Fig. 4.

use super::{regroup, run_pair, ExperimentOptions};
use crate::report::{pct, Table};
use crate::runner::{geomean, matrix_jobs, Job, JobOutput};
use crate::{zombie_ratio_by_voltage, Scheme, SystemConfig, ZombieSample};
use ehs_cache::CacheGeometry;
use ehs_nvm::{CacheArrayModel, MemoryTechnology};
use ehs_workloads::{AppId, Scale};
use std::sync::Arc;

/// Cache sizes swept by Table I, Fig. 1 and Fig. 11.
pub(crate) const CACHE_SIZES: [u32; 7] = [256, 512, 1024, 2048, 4096, 8192, 16384];

fn config_with_dcache_size(base: &SystemConfig, bytes: u32) -> SystemConfig {
    let mut config = base.clone();
    let assoc = config.dcache.geometry.associativity.min(bytes / 16);
    config.dcache.geometry = CacheGeometry::new(bytes, assoc, 16).expect("swept geometry is valid");
    config
}

pub(crate) fn table1_plan(scale: Scale) -> Vec<Job> {
    let base = SystemConfig::paper_default();
    CACHE_SIZES
        .iter()
        .flat_map(|&bytes| {
            matrix_jobs(
                &config_with_dcache_size(&base, bytes),
                &[Scheme::Baseline],
                &AppId::ALL,
                scale,
            )
        })
        .collect()
}

pub(crate) fn table1_report(outputs: &[JobOutput]) -> Table {
    let base = SystemConfig::paper_default();
    let per_size = regroup(outputs, AppId::ALL.len());
    let mut table = Table::new(["cache size", "leakage (mW)", "static ratio"]);
    for (i, bytes) in CACHE_SIZES.into_iter().enumerate() {
        let config = config_with_dcache_size(&base, bytes);
        let model = CacheArrayModel::new(MemoryTechnology::Sram, config.dcache.geometry);
        let leak = model.characteristics().leakage.as_milli_watts();
        let ratio = per_size[i]
            .iter()
            .map(|r| r.energy.dcache_static_ratio())
            .sum::<f64>()
            / per_size[i].len() as f64;
        table.row([format!("{bytes} B"), format!("{leak:.2}"), pct(ratio)]);
    }
    table
}

/// **Table I** — SRAM cache leakage power (mW) and the ratio of static
/// energy to total SRAM data-cache energy, for 4-way caches of 256 B–16 kB.
///
/// Leakage comes from the NVSim-style model (anchored to the paper's
/// published points); the static-energy ratio is measured on baseline runs
/// averaged across all 20 applications.
pub fn table1_sram_leakage(opts: ExperimentOptions) -> Table {
    run_pair(table1_plan, table1_report, opts)
}

pub(crate) fn fig1_plan(scale: Scale) -> Vec<Job> {
    let base = SystemConfig::paper_default();
    // Reference matrix first, then one [Baseline, LeakageOff80] matrix per
    // swept size; the report consumes the sections in the same order.
    let mut jobs = matrix_jobs(
        &config_with_dcache_size(&base, 4096),
        &[Scheme::Baseline],
        &AppId::ALL,
        scale,
    );
    for bytes in CACHE_SIZES {
        jobs.extend(matrix_jobs(
            &config_with_dcache_size(&base, bytes),
            &[Scheme::Baseline, Scheme::LeakageOff80],
            &AppId::ALL,
            scale,
        ));
    }
    jobs
}

pub(crate) fn fig1_report(outputs: &[JobOutput]) -> Table {
    let apps = AppId::ALL.len();
    let (reference, swept) = outputs.split_at(apps);
    let reference = regroup(reference, apps);
    let mut table = Table::new(["cache size", "real leakage", "80% leakage off"]);
    for (i, bytes) in CACHE_SIZES.into_iter().enumerate() {
        let results = regroup(&swept[i * 2 * apps..(i + 1) * 2 * apps], apps);
        let speedup = |scheme_idx: usize| {
            geomean(
                reference[0]
                    .iter()
                    .zip(&results[scheme_idx])
                    .map(|(r, s)| r.total_time() / s.total_time()),
            )
        };
        table.row([
            format!("{bytes} B"),
            format!("{:.3}", speedup(0)),
            format!("{:.3}", speedup(1)),
        ]);
    }
    table
}

/// **Fig. 1** — speedup across data-cache sizes, with real leakage vs the
/// "80% Leakage Off" stress test. All speedups are normalized to the 4 kB
/// 4-way baseline with real leakage (geomean over the 20 applications).
pub fn fig1_cache_size_motivation(opts: ExperimentOptions) -> Table {
    run_pair(fig1_plan, fig1_report, opts)
}

pub(crate) fn fig4_plan(scale: Scale) -> Vec<Job> {
    let mut config = SystemConfig::paper_default();
    config.zombie_sample_interval = Some(500);
    let config = Arc::new(config);
    // One zombie-instrumented baseline job per app; the report pools the
    // sample vectors in this (deterministic) app order.
    AppId::ALL
        .iter()
        .map(|&app| Job {
            config: Arc::clone(&config),
            scheme: Scheme::Baseline,
            app,
            scale,
        })
        .collect()
}

pub(crate) fn fig4_report(outputs: &[JobOutput]) -> Table {
    let samples: Vec<ZombieSample> = outputs
        .iter()
        .flat_map(|o| {
            o.zombie_samples
                .as_deref()
                .expect("fig. 4 jobs are zombie-instrumented")
                .iter()
                .copied()
        })
        .collect();
    let rows = zombie_ratio_by_voltage(&samples, 3.2, 3.5, 6);
    let mut table = Table::new(["voltage (V)", "zombie ratio", "samples"]);
    for (centre, ratio, count) in rows {
        table.row([format!("{centre:.3}"), pct(ratio), count.to_string()]);
    }
    table
}

/// **Fig. 4** — the fraction of resident data-cache blocks that are zombies
/// (no further access before the upcoming outage / their eviction), bucketed
/// by the capacitor voltage at the sampling instant. Baseline scheme,
/// RFHome, samples pooled across all 20 applications.
pub fn fig4_zombie_ratio(opts: ExperimentOptions) -> Table {
    run_pair(fig4_plan, fig4_report, opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dcache_size_sweep_preserves_block_and_clamps_assoc() {
        let base = SystemConfig::paper_default();
        let small = config_with_dcache_size(&base, 256);
        assert_eq!(small.dcache.geometry.block_bytes, 16);
        assert_eq!(small.dcache.geometry.associativity, 4);
        let tiny = config_with_dcache_size(&base, 32);
        assert_eq!(tiny.dcache.geometry.associativity, 2, "assoc clamps");
    }

    #[test]
    fn table1_leakage_is_monotonic() {
        // Check the model side only (no simulation) for speed.
        let base = SystemConfig::paper_default();
        let mut prev = 0.0;
        for bytes in CACHE_SIZES {
            let config = config_with_dcache_size(&base, bytes);
            let leak = CacheArrayModel::new(MemoryTechnology::Sram, config.dcache.geometry)
                .characteristics()
                .leakage
                .as_milli_watts();
            assert!(leak > prev);
            prev = leak;
        }
    }
}
