//! Persistent on-disk result cache for simulation runs.
//!
//! A cache entry is one completed [`RunResult`] (plus its Fig. 4 zombie
//! samples, when the run was instrumented), content-addressed by the
//! **effective** configuration fingerprint the memoization layer uses (see
//! `runner`), the workload identity fingerprint ([`workload_fingerprint`]),
//! and the `(scheme, app, scale)` triple. A second `exp_all` invocation — or
//! a re-run after editing one experiment — replays cached results instead of
//! re-simulating.
//!
//! # Format
//!
//! One little-endian binary file per entry under the cache directory
//! (default `results/.runcache/` at the repository root):
//!
//! ```text
//! magic (8) | schema version u32 | config_fp u64 | workload_fp u64 |
//! scheme u8 | app u8 | scale u8 | flags u8 | payload_len u64 |
//! payload … | checksum u64
//! ```
//!
//! The payload is every [`RunResult`] field except the wall-clock
//! `sim_mips` (a replayed result reports `0.0`, exactly like an in-process
//! memo hit), in fixed field order, `f64`s as raw bits via
//! [`f64::to_bits`]; dimensioned quantities round-trip through their SI
//! base value. The checksum is the seedless Fx hash of every preceding
//! byte. **Any** mismatch — magic, schema version, fingerprints, tags,
//! length, checksum, or a short file — makes [`RunCache::load`] return
//! `None` and the caller falls back to re-simulation; a corrupt cache can
//! cost time, never correctness.
//!
//! Keys hash with the vendored seedless [`FxHasher`](edbp_core::FxHasher),
//! so fingerprints are stable across processes (there is no per-process
//! hasher seed to invalidate them) — which is what lets a *fresh* process
//! reuse entries written by an earlier one.
//!
//! The oracle [`GenerationTrace`](edbp_core::GenerationTrace) is *not*
//! persisted (it is far larger than the result); if a cached Baseline entry
//! is replayed and a later Ideal run needs the trace, the runner re-records
//! it (see `runner::baseline_trace`).
//!
//! # Invalidation
//!
//! Delete the cache directory (`rm -rf results/.runcache`), or bump
//! [`SCHEMA_VERSION`] when the serialized layout or the meaning of any
//! simulated quantity changes. Configuration and workload changes
//! invalidate naturally through the fingerprints.
//!
//! # Crash atomicity and sharing
//!
//! The cache is held to the same fault model as the simulated hardware:
//! a process may die (SIGKILL, power cut) at **any** instruction and the
//! directory must still only ever contain absent or complete entries.
//!
//! * [`RunCache::store`] writes to a process-private temp file, fsyncs,
//!   then atomically renames over the final path (plus a best-effort
//!   directory fsync) — a reader never observes a torn entry, and the
//!   trailing checksum rejects anything a weaker writer left behind.
//! * Concurrent processes share a directory safely: renames are atomic and
//!   idempotent (identical bytes for identical keys), and advisory
//!   per-entry `.claim` files ([`RunCache::claim`]) let a second process
//!   briefly wait for an in-flight entry instead of duplicating the work.
//!   Claims from dead processes go stale and are broken on sight.
//! * `journal.log` ([`RunCache::journal_append`]) records each persisted
//!   entry as one appended line, so a killed `exp_all` can be re-invoked
//!   and *prove* it resumed (`--expect-resumable`) rather than re-simulate.
//!
//! The deterministic fault-injection harness ([`crate::fault`]) drives
//! kills, torn writes and I/O errors through these paths in tests and CI.

use crate::fault::{self, FaultKind};
use crate::runner::lock_unpoisoned;
use crate::{EnergyBreakdown, RunResult, Scheme, ZombieSample};
use edbp_core::{FxBuildHasher, PredictionSummary};
use ehs_cache::CacheStats;
use ehs_units::{Energy, Time};
use ehs_workloads::{AppId, Scale};
use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasher, Hash, Hasher};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

/// Bump when the on-disk layout or the semantics of any stored field
/// change; old entries are then rejected (and fall back to re-simulation)
/// instead of being misread.
///
/// v2: zombie samples now resolve in deterministic (ascending-address)
/// order at outages and at finish, so the stored sample sequence differs
/// from v1 entries even though the sample multiset is identical.
pub const SCHEMA_VERSION: u32 = 2;

const MAGIC: &[u8; 8] = b"EHSRUNC\0";

/// Environment override for the cache directory (tests and concurrent
/// harness processes point it at private or shared directories).
pub const DIR_ENV_VAR: &str = "EHS_RUNCACHE_DIR";

/// The default cache directory: `$EHS_RUNCACHE_DIR` if set, otherwise
/// `.runcache/` under the results directory (which itself honours
/// `$EHS_RESULTS_DIR` — see [`crate::planner::results_dir`]).
pub fn default_dir() -> PathBuf {
    match std::env::var_os(DIR_ENV_VAR) {
        Some(dir) if !dir.is_empty() => PathBuf::from(dir),
        _ => crate::planner::results_dir().join(".runcache"),
    }
}

/// Seedless Fx hash of a byte slice — the integrity checksum appended to
/// every cache entry. Public so tests can re-seal deliberately corrupted
/// entries when probing a *specific* rejection path.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut h = FxBuildHasher::default().build_hasher();
    h.write(bytes);
    h.finish()
}

fn scheme_tag(scheme: Scheme) -> u8 {
    match scheme {
        Scheme::Baseline => 0,
        Scheme::Sdbp => 1,
        Scheme::Decay => 2,
        Scheme::Edbp => 3,
        Scheme::DecayEdbp => 4,
        Scheme::Amc => 5,
        Scheme::AmcEdbp => 6,
        Scheme::Ideal => 7,
        Scheme::LeakageOff80 => 8,
    }
}

fn app_tag(app: AppId) -> u8 {
    AppId::ALL
        .iter()
        .position(|&a| a == app)
        .expect("AppId::ALL is exhaustive") as u8
}

fn scale_tag(scale: Scale) -> u8 {
    match scale {
        Scale::Tiny => 0,
        Scale::Small => 1,
        Scale::Full => 2,
    }
}

fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Tiny => "tiny",
        Scale::Small => "small",
        Scale::Full => "full",
    }
}

/// Structural fingerprint of a workload: the program name, the full
/// instruction stream (via the `Hash` impl on
/// [`Instruction`](ehs_cpu::Instruction)), the code base address, the data
/// footprint and the scale tag. Two workloads fingerprint alike exactly
/// when they run the same instructions over the same data layout — the
/// cache's defence against a cached result outliving a workload-generator
/// change. Memoized per `(app, scale)`; the build cost is paid once.
pub fn workload_fingerprint(app: AppId, scale: Scale) -> u64 {
    static CACHE: OnceLock<Mutex<std::collections::HashMap<(u8, u8), u64>>> = OnceLock::new();
    let table = CACHE.get_or_init(Mutex::default);
    let key = (app_tag(app), scale_tag(scale));
    if let Some(&fp) = lock_unpoisoned(table).get(&key) {
        return fp;
    }
    let w = crate::runner::cached_workload(app, scale);
    let mut h = FxBuildHasher::default().build_hasher();
    h.write(w.program.name().as_bytes());
    h.write_u8(0xff); // terminator: name can never bleed into the stream
    w.program.instructions().hash(&mut h);
    h.write_u32(w.program.fetch_addr(0));
    h.write_u32(w.data_footprint_bytes);
    h.write_u8(scale_tag(scale));
    let fp = h.finish();
    lock_unpoisoned(table).insert(key, fp);
    fp
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_f64(out: &mut Vec<u8>, v: f64) {
    push_u64(out, v.to_bits());
}

/// Strict little-endian reader; every accessor returns `None` past the end.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn bytes(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let s = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        self.bytes(1).map(|b| b[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.bytes(4)
            .map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Option<u64> {
        self.bytes(8)
            .map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn f64(&mut self) -> Option<f64> {
        self.u64().map(f64::from_bits)
    }

    fn bool(&mut self) -> Option<bool> {
        match self.u8()? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

fn push_cache_stats(out: &mut Vec<u8>, s: &CacheStats) {
    push_u64(out, s.hits);
    push_u64(out, s.misses);
    push_u64(out, s.fills);
    push_u64(out, s.evictions);
    push_u64(out, s.writebacks);
    push_u64(out, s.gates);
    push_u64(out, s.ungates);
    push_u64(out, s.power_failures);
}

fn read_cache_stats(r: &mut Reader<'_>) -> Option<CacheStats> {
    Some(CacheStats {
        hits: r.u64()?,
        misses: r.u64()?,
        fills: r.u64()?,
        evictions: r.u64()?,
        writebacks: r.u64()?,
        gates: r.u64()?,
        ungates: r.u64()?,
        power_failures: r.u64()?,
    })
}

fn push_result(out: &mut Vec<u8>, result: &RunResult) {
    push_u8_bool(out, result.completed);
    push_u64(out, result.committed);
    push_u64(out, result.loads);
    push_u64(out, result.stores);
    push_f64(out, result.on_time.base());
    push_f64(out, result.off_time.base());
    push_u64(out, result.outages);
    push_u64(out, result.brownouts);
    let e = &result.energy;
    for v in [
        e.dcache_dynamic,
        e.dcache_static,
        e.icache_dynamic,
        e.icache_static,
        e.memory,
        e.checkpoint,
        e.restore,
        e.mcu,
        e.capacitor,
    ] {
        push_f64(out, v.base());
    }
    push_cache_stats(out, &result.dcache);
    push_cache_stats(out, &result.icache);
    let p = &result.prediction;
    for v in [
        p.true_positives,
        p.false_positives,
        p.true_negatives,
        p.false_negatives_dead,
        p.missed_zombies,
    ] {
        push_u64(out, v);
    }
}

fn push_u8_bool(out: &mut Vec<u8>, v: bool) {
    out.push(u8::from(v));
}

fn read_result(r: &mut Reader<'_>, app: AppId, scheme: Scheme) -> Option<RunResult> {
    let completed = r.bool()?;
    let committed = r.u64()?;
    let loads = r.u64()?;
    let stores = r.u64()?;
    let on_time = Time::from_base(r.f64()?);
    let off_time = Time::from_base(r.f64()?);
    let outages = r.u64()?;
    let brownouts = r.u64()?;
    let mut e = [Energy::ZERO; 9];
    for slot in &mut e {
        *slot = Energy::from_base(r.f64()?);
    }
    let energy = EnergyBreakdown {
        dcache_dynamic: e[0],
        dcache_static: e[1],
        icache_dynamic: e[2],
        icache_static: e[3],
        memory: e[4],
        checkpoint: e[5],
        restore: e[6],
        mcu: e[7],
        capacitor: e[8],
    };
    let dcache = read_cache_stats(r)?;
    let icache = read_cache_stats(r)?;
    let prediction = PredictionSummary {
        true_positives: r.u64()?,
        false_positives: r.u64()?,
        true_negatives: r.u64()?,
        false_negatives_dead: r.u64()?,
        missed_zombies: r.u64()?,
    };
    Some(RunResult {
        app,
        scheme,
        completed,
        committed,
        loads,
        stores,
        on_time,
        off_time,
        outages,
        brownouts,
        energy,
        dcache,
        icache,
        prediction,
        sim_mips: 0.0,
    })
}

const FLAG_ZOMBIES: u8 = 1;

/// A result replayed from disk.
#[derive(Debug, Clone)]
pub struct CachedRun {
    /// The stored result (`sim_mips` is `0.0`, as for any cache hit).
    pub result: RunResult,
    /// Stored zombie samples; `Some` exactly when the original run was
    /// instrumented (`Some(vec![])` is a valid instrumented-but-empty pool).
    pub zombie_samples: Option<Vec<ZombieSample>>,
}

fn encode(
    config_fp: u64,
    workload_fp: u64,
    scheme: Scheme,
    app: AppId,
    scale: Scale,
    result: &RunResult,
    zombies: Option<&[ZombieSample]>,
) -> Vec<u8> {
    let mut payload = Vec::with_capacity(512);
    push_result(&mut payload, result);
    if let Some(samples) = zombies {
        push_u64(&mut payload, samples.len() as u64);
        for s in samples {
            push_f64(&mut payload, s.voltage);
            push_u8_bool(&mut payload, s.zombie);
        }
    }
    let mut out = Vec::with_capacity(payload.len() + 64);
    out.extend_from_slice(MAGIC);
    push_u32(&mut out, SCHEMA_VERSION);
    push_u64(&mut out, config_fp);
    push_u64(&mut out, workload_fp);
    out.push(scheme_tag(scheme));
    out.push(app_tag(app));
    out.push(scale_tag(scale));
    out.push(if zombies.is_some() { FLAG_ZOMBIES } else { 0 });
    push_u64(&mut out, payload.len() as u64);
    out.extend_from_slice(&payload);
    let sum = checksum(&out);
    push_u64(&mut out, sum);
    out
}

fn decode(
    bytes: &[u8],
    config_fp: u64,
    workload_fp: u64,
    scheme: Scheme,
    app: AppId,
    scale: Scale,
) -> Option<CachedRun> {
    let body_len = bytes.len().checked_sub(8)?;
    let stored_sum = u64::from_le_bytes(bytes[body_len..].try_into().expect("8 bytes"));
    if checksum(&bytes[..body_len]) != stored_sum {
        return None;
    }
    let mut r = Reader::new(&bytes[..body_len]);
    if r.bytes(MAGIC.len())? != MAGIC {
        return None;
    }
    if r.u32()? != SCHEMA_VERSION {
        return None;
    }
    if r.u64()? != config_fp || r.u64()? != workload_fp {
        return None;
    }
    if r.u8()? != scheme_tag(scheme) || r.u8()? != app_tag(app) || r.u8()? != scale_tag(scale) {
        return None;
    }
    let flags = r.u8()?;
    if flags & !FLAG_ZOMBIES != 0 {
        return None;
    }
    let payload_len = r.u64()?;
    if body_len - r.pos != usize::try_from(payload_len).ok()? {
        return None;
    }
    let result = read_result(&mut r, app, scheme)?;
    let zombie_samples = if flags & FLAG_ZOMBIES != 0 {
        let n = usize::try_from(r.u64()?).ok()?;
        // Cap a corrupt count before it becomes an allocation bomb: each
        // sample is 9 bytes, so `n` cannot exceed the remaining payload.
        if n > body_len - r.pos {
            return None;
        }
        let mut samples = Vec::with_capacity(n);
        for _ in 0..n {
            samples.push(ZombieSample {
                voltage: r.f64()?,
                zombie: r.bool()?,
            });
        }
        Some(samples)
    } else {
        None
    };
    if !r.done() {
        return None;
    }
    Some(CachedRun {
        result,
        zombie_samples,
    })
}

/// The file-name stem of one cache entry, also the line format of the
/// suite journal and the job identifier in failure summaries:
/// `<config_fp hex>-<scheme>-<app>-<scale>`.
pub fn entry_stem(config_fp: u64, scheme: Scheme, app: AppId, scale: Scale) -> String {
    format!(
        "{config_fp:016x}-{}-{}-{}",
        scheme.name(),
        app.name(),
        scale_name(scale)
    )
}

/// A directory of cached run results.
#[derive(Debug)]
pub struct RunCache {
    dir: PathBuf,
    lease: LeaseParams,
}

static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// One warning per process when cache writes start failing (read-only
/// directory, disk full, …): the run degrades to cacheless, it never aborts.
static STORE_WARNED: AtomicBool = AtomicBool::new(false);

fn warn_store_failure(path: &Path, err: &std::io::Error) {
    if !STORE_WARNED.swap(true, Ordering::Relaxed) {
        eprintln!(
            "warning: cannot write run cache entry {} ({err}); \
             continuing without persisting results (re-runs will re-simulate)",
            path.display()
        );
    }
}

/// Lease timing: how often a live holder renews its `.claim` file, and how
/// long a non-renewed lease stays respected before any other worker may
/// reclaim it.
///
/// The lease protocol replaces the old fixed 60 s mtime staleness rule,
/// which had a live-claim theft hazard: a still-running job longer than the
/// constant had its claim broken and its work duplicated. Under leases the
/// two failure directions decouple — a live holder renews every
/// `heartbeat`, so its lease mtime never ages anywhere near `ttl` no matter
/// how long the job runs, while a SIGKILLed holder stops renewing and is
/// reclaimed after at most `ttl` (a few heartbeats, not a minute).
///
/// Environment overrides (milliseconds): [`HEARTBEAT_ENV_VAR`] and
/// [`TTL_ENV_VAR`]. The TTL is clamped to at least three heartbeats so one
/// delayed renewal (scheduler hiccup, missed-heartbeat fault injection)
/// can never read as death.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeaseParams {
    /// Interval between lease renewals by a live holder.
    pub heartbeat: Duration,
    /// Age beyond which a non-renewed lease is presumed dead and stealable.
    pub ttl: Duration,
}

/// Environment override (ms) for [`LeaseParams::heartbeat`].
pub const HEARTBEAT_ENV_VAR: &str = "EHS_LEASE_HEARTBEAT_MS";
/// Environment override (ms) for [`LeaseParams::ttl`].
pub const TTL_ENV_VAR: &str = "EHS_LEASE_TTL_MS";

impl Default for LeaseParams {
    fn default() -> Self {
        Self {
            heartbeat: Duration::from_millis(500),
            ttl: Duration::from_millis(2500),
        }
    }
}

impl LeaseParams {
    /// The defaults, with any environment overrides applied and the TTL
    /// floor (≥ 3 heartbeats) enforced.
    pub fn from_env() -> Self {
        let read = |var: &str| {
            std::env::var(var)
                .ok()
                .and_then(|v| v.parse::<u64>().ok())
                .filter(|&ms| ms >= 1)
                .map(Duration::from_millis)
        };
        let mut p = Self::default();
        if let Some(hb) = read(HEARTBEAT_ENV_VAR) {
            p.heartbeat = hb;
        }
        if let Some(ttl) = read(TTL_ENV_VAR) {
            p.ttl = ttl;
        }
        p.normalized()
    }

    /// Enforces `ttl >= 3 * heartbeat` (one delayed or injected-missed
    /// renewal must never be indistinguishable from holder death).
    pub fn normalized(mut self) -> Self {
        let floor = self.heartbeat.saturating_mul(3);
        if self.ttl < floor {
            self.ttl = floor;
        }
        self
    }
}

/// A heartbeat-renewed per-entry lease: while it is renewed, other harness
/// processes wait for (or skip past) the entry instead of duplicating the
/// simulation. A background thread rewrites the lease file every
/// [`LeaseParams::heartbeat`]; dropping the guard stops the thread and
/// removes the file (only if it still carries this guard's token — a
/// stolen lease is never removed out from under its new holder).
///
/// Leases are still *advisory* for correctness: stores are idempotent
/// (identical bytes, atomic rename), so the worst a broken lease can cost
/// is duplicated work. What the lease adds over the old mtime claims is a
/// liveness signal — holders renew, so "stale" means "dead", not "slow".
#[derive(Debug)]
pub struct LeaseGuard {
    path: PathBuf,
    token: u64,
    stolen: bool,
    stop: Arc<(Mutex<bool>, Condvar)>,
    heartbeats: Arc<AtomicU64>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl LeaseGuard {
    /// True when acquiring this lease reclaimed an expired (dead-holder)
    /// lease rather than finding the slot free.
    pub fn stole_stale_lease(&self) -> bool {
        self.stolen
    }

    /// Number of successful heartbeat renewals so far (test observability).
    pub fn heartbeats_sent(&self) -> u64 {
        self.heartbeats.load(Ordering::Relaxed)
    }
}

impl Drop for LeaseGuard {
    fn drop(&mut self) {
        let (flag, cv) = &*self.stop;
        *lock_unpoisoned(flag) = true;
        cv.notify_all();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        // Remove only our own lease: if it expired and was stolen (the
        // holder was presumed dead but is in fact us, late), the new
        // holder's file must survive.
        if read_lease_token(&self.path) == Some(self.token) {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

/// Result of [`RunCache::claim`].
#[derive(Debug)]
pub enum ClaimOutcome {
    /// This process holds the lease; simulate, store, then drop the guard.
    Held(LeaseGuard),
    /// Another holder's lease is live (renewed within its TTL) — the entry
    /// is in flight; wait for it or move on to other work.
    Busy,
    /// Leases cannot be taken here (unwritable directory, …); proceed
    /// unclaimed — duplicate work is safe, stalling is not.
    Unavailable,
}

/// The `token=` field of a lease file, if it parses.
fn read_lease_token(path: &Path) -> Option<u64> {
    let text = std::fs::read_to_string(path).ok()?;
    text.split_whitespace()
        .find_map(|f| f.strip_prefix("token="))
        .and_then(|t| u64::from_str_radix(t, 16).ok())
}

/// One lease-file line: holder identity plus a unique token and a renewal
/// epoch. Diagnostic except for the token, which arbitrates steal races
/// and guards release-after-steal.
fn lease_line(token: u64, epoch: u64) -> String {
    let host = std::env::var("HOSTNAME").unwrap_or_else(|_| "unknown-host".into());
    format!(
        "pid={} host={host} epoch={epoch} token={token:016x}\n",
        std::process::id()
    )
}

/// A process-unique, time-salted lease token.
pub(crate) fn fresh_token() -> u64 {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0);
    splitmix(
        nanos ^ (u64::from(std::process::id()) << 32) ^ COUNTER.fetch_add(1, Ordering::Relaxed),
    )
}

/// One splitmix64 step — the deterministic mixer behind lease tokens and
/// backoff jitter.
pub(crate) fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl RunCache {
    /// Opens (creating if needed) a cache rooted at `dir`.
    ///
    /// Leftover temp files and claims from crashed processes older than an
    /// hour are swept (fresh ones may belong to a live concurrent process
    /// and are left alone; they are harmless either way).
    pub fn new(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let cache = Self {
            dir,
            lease: LeaseParams::from_env(),
        };
        cache.sweep_debris();
        Ok(cache)
    }

    /// Overrides the lease timing (tests shrink the intervals to keep
    /// steal/expiry campaigns fast; production uses the env-derived
    /// defaults).
    pub fn set_lease_params(&mut self, params: LeaseParams) {
        self.lease = params.normalized();
    }

    /// The lease timing this cache operates under.
    pub fn lease_params(&self) -> LeaseParams {
        self.lease
    }

    fn sweep_debris(&self) {
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if !(name.starts_with(".tmp-")
                || name.ends_with(".claim")
                || name.ends_with(".steal")
                || name.ends_with(".lock"))
            {
                continue;
            }
            let stale = entry
                .metadata()
                .and_then(|m| m.modified())
                .ok()
                .and_then(|t| t.elapsed().ok())
                .is_some_and(|age| age > Duration::from_secs(3600));
            if stale {
                let _ = std::fs::remove_file(entry.path());
            }
        }
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn entry_path(&self, config_fp: u64, scheme: Scheme, app: AppId, scale: Scale) -> PathBuf {
        self.dir
            .join(format!("{}.run", entry_stem(config_fp, scheme, app, scale)))
    }

    /// Loads one entry; `None` on any miss, mismatch or corruption (the
    /// caller re-simulates).
    pub fn load(
        &self,
        config_fp: u64,
        scheme: Scheme,
        app: AppId,
        scale: Scale,
    ) -> Option<CachedRun> {
        let bytes = std::fs::read(self.entry_path(config_fp, scheme, app, scale)).ok()?;
        decode(
            &bytes,
            config_fp,
            workload_fingerprint(app, scale),
            scheme,
            app,
            scale,
        )
    }

    /// Stores one entry crash-atomically: the bytes are written to a
    /// process-private temp file, fsynced, and renamed over the final path
    /// (with a best-effort directory fsync), so a reader — concurrent or
    /// after a mid-write kill — observes either no entry or a complete one,
    /// never a torn file. Best-effort on I/O error: a failed store costs
    /// future cache hits, never correctness, so it warns once and degrades
    /// to cacheless instead of aborting. Returns `true` exactly when the
    /// entry is durably in place — the condition for journaling it.
    pub fn store(
        &self,
        config_fp: u64,
        scheme: Scheme,
        app: AppId,
        scale: Scale,
        result: &RunResult,
        zombies: Option<&[ZombieSample]>,
    ) -> bool {
        let bytes = encode(
            config_fp,
            workload_fingerprint(app, scale),
            scheme,
            app,
            scale,
            result,
            zombies,
        );
        let path = self.entry_path(config_fp, scheme, app, scale);
        let injected = fault::on_store();
        match injected {
            Some(FaultKind::IoError) => {
                // Simulated EIO: the entry is simply not persisted.
                warn_store_failure(&path, &std::io::Error::other("injected I/O error"));
                return false;
            }
            Some(FaultKind::ShortWrite) => {
                // Simulated torn write: a truncated entry lands at the
                // *final* path, bypassing the temp-file dance — the file a
                // pre-atomic writer (or a filesystem losing tail bytes on
                // power cut) would leave. Loaders must reject it.
                let torn = &bytes[..bytes.len() - bytes.len() / 3];
                let _ = std::fs::write(&path, torn);
                return false;
            }
            _ => {}
        }
        let tmp = self.dir.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let written = std::fs::File::create(&tmp)
            .and_then(|mut f| f.write_all(&bytes).and_then(|()| f.sync_all()));
        if let Err(e) = written {
            warn_store_failure(&tmp, &e);
            let _ = std::fs::remove_file(&tmp);
            return false;
        }
        if injected == Some(FaultKind::Kill) {
            // The worst crash point: the temp file is durable but the
            // rename never happens — the entry must simply be missing on
            // the next run, and the orphan temp file must be inert.
            eprintln!("fault injection: kill between cache write and rename");
            std::process::exit(137);
        }
        match std::fs::rename(&tmp, &path) {
            Ok(()) => {
                // Make the rename itself durable (POSIX: fsync the parent
                // directory). Failure here only weakens durability of this
                // one entry, so it is best-effort.
                if let Ok(d) = std::fs::File::open(&self.dir) {
                    let _ = d.sync_all();
                }
                true
            }
            Err(e) => {
                warn_store_failure(&path, &e);
                let _ = std::fs::remove_file(&tmp);
                false
            }
        }
    }

    /// Tries to lease an entry before simulating it, so concurrent harness
    /// processes (and machines sharing the directory) avoid duplicating the
    /// work. Leases are heartbeat-renewed (see [`LeaseParams`]): a live
    /// holder — however slow its job — is never preempted, while a lease
    /// whose holder died (SIGKILL, power cut) stops renewing and is
    /// reclaimed after at most one TTL.
    ///
    /// Stealing an expired lease is serialized through a sibling breaker
    /// lock (`<stem>.claim.steal`): exactly one contender removes the dead
    /// lease, and it re-verifies the lease is still the expired one it
    /// observed before removing, so a holder that renews concurrently is
    /// never evicted. Advisory for *correctness* throughout — stores are
    /// idempotent, a broken lease can only duplicate work, never corrupt a
    /// result.
    pub fn claim(&self, config_fp: u64, scheme: Scheme, app: AppId, scale: Scale) -> ClaimOutcome {
        if fault::on_lease_acquire().is_some() {
            // Injected claim contention: leases unavailable this attempt.
            return ClaimOutcome::Unavailable;
        }
        let path = self.dir.join(format!(
            "{}.claim",
            entry_stem(config_fp, scheme, app, scale)
        ));
        let mut stolen = false;
        // Up to two acquisition attempts: free path, and once more after a
        // successful steal. Losing both reads as busy.
        for _ in 0..2 {
            match std::fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(mut f) => {
                    let token = fresh_token();
                    let _ = f.write_all(lease_line(token, 0).as_bytes());
                    drop(f);
                    return ClaimOutcome::Held(self.spawn_heartbeat(path, token, stolen));
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    let Ok(meta) = std::fs::metadata(&path) else {
                        // Lease vanished between open and stat (released or
                        // stolen): retry the free path.
                        continue;
                    };
                    let age = meta.modified().ok().and_then(|t| t.elapsed().ok());
                    if age.is_some_and(|age| age <= self.lease.ttl) {
                        return ClaimOutcome::Busy; // live holder: never steal
                    }
                    if !self.steal_expired_lease(&path) {
                        return ClaimOutcome::Busy;
                    }
                    stolen = true;
                }
                Err(_) => return ClaimOutcome::Unavailable,
            }
        }
        ClaimOutcome::Busy
    }

    /// Removes an expired lease under the breaker lock. Returns `true` when
    /// this caller performed the removal (and may retry acquisition).
    fn steal_expired_lease(&self, lease: &Path) -> bool {
        let observed = std::fs::read(lease).unwrap_or_default();
        let mut breaker = lease.as_os_str().to_owned();
        breaker.push(".steal");
        let breaker = PathBuf::from(breaker);
        // A breaker abandoned by a killed stealer must not wedge the entry
        // forever: past one TTL it is debris and is swept.
        let breaker_stale = std::fs::metadata(&breaker)
            .and_then(|m| m.modified())
            .ok()
            .and_then(|t| t.elapsed().ok())
            .is_some_and(|age| age > self.lease.ttl);
        if breaker_stale {
            let _ = std::fs::remove_file(&breaker);
        }
        let Ok(_lock) = std::fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&breaker)
        else {
            return false; // another stealer owns the breaker: they win
        };
        // Re-verify under the lock: the lease must still be the expired
        // bytes we observed, still older than the TTL. A holder that
        // renewed in between (new inode, fresh mtime, different epoch)
        // survives untouched.
        let unchanged = std::fs::read(lease).is_ok_and(|now| now == observed);
        let still_expired = std::fs::metadata(lease)
            .and_then(|m| m.modified())
            .ok()
            .and_then(|t| t.elapsed().ok())
            .is_none_or(|age| age > self.lease.ttl);
        let lost_race = fault::on_steal().is_some();
        let stole = unchanged && still_expired && !lost_race;
        if stole {
            let _ = std::fs::remove_file(lease);
        }
        let _ = std::fs::remove_file(&breaker);
        stole
    }

    /// Starts the heartbeat thread renewing `path` every
    /// [`LeaseParams::heartbeat`] until the guard drops. Renewal rewrites
    /// the lease via tmp + rename (the file is always a complete line) with
    /// a bumped epoch; an injected heartbeat miss skips one renewal, which
    /// the TTL floor (≥ 3 heartbeats) absorbs.
    fn spawn_heartbeat(&self, path: PathBuf, token: u64, stolen: bool) -> LeaseGuard {
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let heartbeats = Arc::new(AtomicU64::new(0));
        let interval = self.lease.heartbeat;
        let thread = {
            let stop = Arc::clone(&stop);
            let heartbeats = Arc::clone(&heartbeats);
            let path = path.clone();
            std::thread::spawn(move || {
                let mut epoch = 0u64;
                loop {
                    let (flag, cv) = &*stop;
                    let mut stopped = lock_unpoisoned(flag);
                    while !*stopped {
                        let (guard, timeout) = cv
                            .wait_timeout(stopped, interval)
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                        stopped = guard;
                        if timeout.timed_out() {
                            break;
                        }
                    }
                    if *stopped {
                        return;
                    }
                    drop(stopped);
                    if fault::on_heartbeat().is_some() {
                        continue; // injected miss: skip this renewal
                    }
                    epoch += 1;
                    let mut tmp = path.as_os_str().to_owned();
                    tmp.push(".hb");
                    let tmp = PathBuf::from(tmp);
                    let renewed = std::fs::write(&tmp, lease_line(token, epoch))
                        .and_then(|()| std::fs::rename(&tmp, &path));
                    if renewed.is_ok() {
                        heartbeats.fetch_add(1, Ordering::Relaxed);
                    } else {
                        let _ = std::fs::remove_file(&tmp);
                    }
                }
            })
        };
        LeaseGuard {
            path,
            token,
            stolen,
            stop,
            heartbeats,
            thread: Some(thread),
        }
    }

    /// Polls for an entry another process has leased, up to `timeout`.
    /// Returns the entry if it appears (and validates) in time; `None`
    /// tells the caller to simulate it itself after all.
    ///
    /// Polling backs off exponentially with jitter — 1 ms doubling up to
    /// the lease heartbeat interval — so hundreds of workers waiting on one
    /// shared directory spread their stat storms instead of thundering in
    /// lockstep every 25 ms.
    pub fn wait_for_entry(
        &self,
        config_fp: u64,
        scheme: Scheme,
        app: AppId,
        scale: Scale,
        timeout: Duration,
    ) -> Option<CachedRun> {
        let deadline = std::time::Instant::now() + timeout;
        let mut delay = Duration::from_millis(1);
        let cap = self.lease.heartbeat.max(Duration::from_millis(1));
        let mut jitter = fresh_token() ^ config_fp;
        loop {
            if let Some(hit) = self.load(config_fp, scheme, app, scale) {
                return Some(hit);
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            // Uniform in [delay/2, delay), then double toward the cap.
            jitter = splitmix(jitter);
            let nanos = delay.as_nanos() as u64;
            let jittered = Duration::from_nanos(nanos / 2 + jitter % (nanos / 2).max(1));
            std::thread::sleep(jittered.min(deadline - now));
            delay = (delay * 2).min(cap);
        }
    }

    /// The suite journal: an append-only log of completed (simulated *and
    /// persisted*) entry stems, one per line, shared by every process using
    /// this cache directory.
    pub fn journal_path(&self) -> PathBuf {
        self.dir.join("journal.log")
    }

    /// Appends one completed entry stem to the journal. A single `O_APPEND`
    /// write of one short line is atomic on POSIX, so concurrent appenders
    /// interleave whole lines; a mid-write kill at worst leaves one torn
    /// final line, which [`Self::journal_entries`] skips. Best-effort: the
    /// journal is an accounting aid, losing a line only weakens the
    /// `--expect-resumable` assertion, never a result.
    pub fn journal_append(&self, stem: &str) {
        let line = format!("{stem}\n");
        let _ = std::fs::OpenOptions::new()
            .append(true)
            .create(true)
            .open(self.journal_path())
            .and_then(|mut f| f.write_all(line.as_bytes()));
    }

    /// Every complete line of the journal (deduplicated). A torn final line
    /// — no trailing newline, the signature of a mid-append kill — is
    /// ignored, as is a missing journal.
    pub fn journal_entries(&self) -> HashSet<String> {
        let Ok(text) = std::fs::read_to_string(self.journal_path()) else {
            return HashSet::new();
        };
        let complete = match text.rfind('\n') {
            Some(last) => &text[..=last],
            None => return HashSet::new(),
        };
        complete
            .lines()
            .filter(|l| !l.is_empty())
            .map(str::to_string)
            .collect()
    }

    /// Every complete line of the journal with its occurrence count,
    /// *without* deduplication — the raw record the fleet tests use to
    /// assert that no job was executed-and-stored twice.
    pub fn journal_occurrences(&self) -> HashMap<String, usize> {
        let Ok(text) = std::fs::read_to_string(self.journal_path()) else {
            return HashMap::new();
        };
        let complete = match text.rfind('\n') {
            Some(last) => &text[..=last],
            None => return HashMap::new(),
        };
        let mut counts = HashMap::new();
        for line in complete.lines().filter(|l| !l.is_empty()) {
            *counts.entry(line.to_string()).or_insert(0) += 1;
        }
        counts
    }

    /// Compacts the journal in place: deduplicates lines (first-seen order),
    /// drops a torn final line, and rewrites atomically with the same
    /// tmp + fsync + rename discipline as entry stores. Returns the number
    /// of lines removed.
    ///
    /// The journal grows without bound across resumed runs — every resume
    /// re-appends nothing, but retries and multi-process campaigns can
    /// duplicate lines, and a torn final line otherwise persists forever.
    /// Only the coordinator calls this, at startup, serialized against other
    /// compactors by a `journal.lock` breaker; a worker appending
    /// concurrently can at worst have one line dropped, which weakens
    /// accounting (a job may re-verify on resume), never a result.
    pub fn compact_journal(&self) -> std::io::Result<usize> {
        let path = self.journal_path();
        let lock = self.dir.join("journal.lock");
        let Ok(_lock) = std::fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&lock)
        else {
            return Ok(0); // another compactor is active: skip
        };
        let result = self.compact_journal_locked(&path);
        let _ = std::fs::remove_file(&lock);
        result
    }

    fn compact_journal_locked(&self, path: &Path) -> std::io::Result<usize> {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
            Err(e) => return Err(e),
        };
        let complete = match text.rfind('\n') {
            Some(last) => &text[..=last],
            None => "",
        };
        let before = text.lines().count();
        let mut seen = HashSet::new();
        let mut compacted = String::with_capacity(complete.len());
        for line in complete.lines().filter(|l| !l.is_empty()) {
            if seen.insert(line) {
                compacted.push_str(line);
                compacted.push('\n');
            }
        }
        if before == seen.len() && text.ends_with('\n') {
            return Ok(0); // already compact: leave the inode alone
        }
        let tmp = self.dir.join("journal.log.tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(compacted.as_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        if let Ok(dir) = std::fs::File::open(&self.dir) {
            let _ = dir.sync_all();
        }
        Ok(before - seen.len())
    }
}

static ACTIVE: OnceLock<Option<RunCache>> = OnceLock::new();

/// Installs the process-wide cache used by the run memoization layer.
///
/// The first call wins for the whole process; later calls (any directory)
/// are no-ops. If the directory cannot be created (read-only checkout,
/// permission trouble) the run **warns and degrades to cacheless** instead
/// of aborting — a missing cache costs time, never results.
/// **Nothing is installed by default** — library users and the test suite
/// run purely in-process unless a binary opts in (`--no-cache` simply skips
/// this call). Returns `true` when this call performed the installation.
pub fn install(dir: impl Into<PathBuf>) -> bool {
    let dir = dir.into();
    let mut installed_here = false;
    ACTIVE.get_or_init(|| {
        installed_here = true;
        match RunCache::new(&dir) {
            Ok(cache) => Some(cache),
            Err(e) => {
                eprintln!(
                    "warning: cannot open run cache at {} ({e}); \
                     running without a persistent cache",
                    dir.display()
                );
                None
            }
        }
    });
    installed_here
}

/// [`install`] at [`default_dir`] (`results/.runcache/` at the repo root
/// unless overridden by environment).
pub fn install_default() -> bool {
    install(default_dir())
}

/// The installed process-wide cache, if any.
pub(crate) fn active() -> Option<&'static RunCache> {
    ACTIVE.get().and_then(Option::as_ref)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_are_dense_and_distinct() {
        let mut seen = std::collections::HashSet::new();
        for scheme in [
            Scheme::Baseline,
            Scheme::Sdbp,
            Scheme::Decay,
            Scheme::Edbp,
            Scheme::DecayEdbp,
            Scheme::Amc,
            Scheme::AmcEdbp,
            Scheme::Ideal,
            Scheme::LeakageOff80,
        ] {
            assert!(seen.insert(scheme_tag(scheme)));
        }
        for (i, &app) in AppId::ALL.iter().enumerate() {
            assert_eq!(usize::from(app_tag(app)), i);
        }
        assert_eq!(scale_tag(Scale::Tiny), 0);
        assert_eq!(scale_tag(Scale::Full), 2);
    }

    #[test]
    fn workload_fingerprint_separates_apps_and_scales() {
        let a = workload_fingerprint(AppId::Crc32, Scale::Tiny);
        assert_eq!(
            a,
            workload_fingerprint(AppId::Crc32, Scale::Tiny),
            "memoized + stable"
        );
        assert_ne!(a, workload_fingerprint(AppId::Sha, Scale::Tiny));
        assert_ne!(a, workload_fingerprint(AppId::Crc32, Scale::Small));
    }

    #[test]
    fn checksum_is_seedless() {
        // The same bytes must hash identically in any process; this pins
        // the in-process half of that contract (cross-process stability
        // follows from FxHasher having no seed).
        assert_eq!(checksum(b"abc"), checksum(b"abc"));
        assert_ne!(checksum(b"abc"), checksum(b"abd"));
    }
}
