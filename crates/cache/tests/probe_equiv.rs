//! Pins every wide tag-probe implementation to the scalar reference.
//!
//! The `probe` module's contract is that [`probe_scalar`] defines the
//! semantics and the portable/AVX2 paths are pure accelerations. These
//! proptests drive whole caches — random power-of-two geometries up to
//! `MAX_WAYS`, sentinel `TAG_NONE` frames from cold sets and evictions,
//! and gated/valid/dirty mask combinations from interleaved gates and
//! power failures — under each forced implementation and require the
//! *entire observable behaviour* (hit/miss outcome, victim choice,
//! write-backs, statistics, final way views) to be bit-identical.

use ehs_cache::probe::{self, ProbeImpl};
use ehs_cache::{
    AccessKind, BlockId, Cache, CacheConfig, CacheGeometry, GateResult, LookupResult,
    ReplacementPolicy, WayView, MAX_WAYS,
};
use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard};

/// The forced probe implementation is process-global; serialize the tests
/// that flip it so parallel test threads never observe a half-switched
/// comparison. (All implementations are bit-identical, so *other* tests in
/// this binary would still pass mid-flip — the lock keeps the comparisons
/// themselves honest.)
static FORCE_LOCK: Mutex<()> = Mutex::new(());

fn forced(imp: ProbeImpl) -> MutexGuard<'static, ()> {
    let guard = FORCE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    probe::force_impl(Some(imp));
    guard
}

#[derive(Debug, Clone, Copy)]
enum Op {
    Lookup { addr_idx: usize, write: bool },
    Gate { set: u32, way: u8 },
    PowerFail,
}

/// One trace step's observable result, comparable across probe impls.
#[derive(Debug, PartialEq)]
enum Observed {
    Hit {
        set: u32,
        way: u8,
        was_dirty: bool,
    },
    Miss {
        set: u32,
        way: u8,
        evicted: Option<u64>,
        wb: Option<(u64, Vec<u8>)>,
        filled: (u32, u8),
    },
    Gated(GateResult),
    Failed(u32),
}

/// Small deterministic generator for trace shapes (the vendored proptest
/// shim has no flat-map, so geometry-dependent ops are derived from one
/// sampled seed).
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        // xorshift64*; fine for test-case variety.
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

/// Addresses drawn from a pool spanning `3 × sets` distinct blocks so every
/// set sees conflict misses (evictions plant fresh `TAG_NONE` frames and
/// exercise the policy victim path) alongside re-references (hits).
fn addr_pool(g: CacheGeometry) -> Vec<u64> {
    let sets = u64::from(g.sets());
    let block = u64::from(g.block_bytes);
    (0..sets * 3).map(|i| i * block).collect()
}

fn trace_from_seed(seed: u64) -> (CacheConfig, Vec<Op>) {
    let mut g = Gen(seed | 1);
    let ways = 1u32 << g.below(5); // 1, 2, 4, 8, 16
    let sets = 1u32 << g.below(3); // 1, 2, 4
    let policy = ReplacementPolicy::ALL[g.below(ReplacementPolicy::ALL.len() as u64) as usize];
    let geometry = CacheGeometry::new(sets * ways * 16, ways, 16).expect("power-of-two shape");
    let pool_len = (sets as u64) * 3;
    let n_ops = 1 + g.below(200) as usize;
    let ops = (0..n_ops)
        .map(|_| match g.below(11) {
            0..=7 => Op::Lookup {
                addr_idx: g.below(pool_len) as usize,
                write: g.below(2) == 1,
            },
            8 | 9 => Op::Gate {
                set: g.below(u64::from(sets)) as u32,
                way: g.below(u64::from(ways)) as u8,
            },
            _ => Op::PowerFail,
        })
        .collect();
    (CacheConfig { geometry, policy }, ops)
}

/// Runs `ops` on a fresh cache under the already-forced probe impl,
/// recording everything an implementation difference could perturb.
fn run_trace(config: CacheConfig, ops: &[Op]) -> (Vec<Observed>, Vec<Vec<WayView>>, String) {
    let pool = addr_pool(config.geometry);
    let mut cache = Cache::new(config);
    let mut seen = Vec::with_capacity(ops.len());
    for op in ops {
        seen.push(match *op {
            Op::Lookup { addr_idx, write } => {
                let addr = pool[addr_idx];
                let kind = if write {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                let mut wb = None;
                match cache.lookup_with(addr, kind, |a, d| wb = Some((a, d.to_vec()))) {
                    LookupResult::Hit(h) => Observed::Hit {
                        set: h.block.set,
                        way: h.block.way,
                        was_dirty: h.was_dirty,
                    },
                    LookupResult::Miss(m) => {
                        let fill = [addr as u8; 16];
                        let filled = cache.fill(addr, &fill, write);
                        Observed::Miss {
                            set: m.victim.set,
                            way: m.victim.way,
                            evicted: m.evicted,
                            wb,
                            filled: (filled.set, filled.way),
                        }
                    }
                }
            }
            Op::Gate { set, way } => {
                Observed::Gated(cache.gate_with(BlockId { set, way }, |_, _| ()))
            }
            Op::PowerFail => Observed::Failed(cache.power_fail()),
        });
    }
    let mut views = Vec::new();
    for set in 0..cache.sets() {
        let mut buf = [WayView::default(); MAX_WAYS];
        let n = cache.set_view_into(set, &mut buf);
        views.push(buf[..n].to_vec());
    }
    (seen, views, format!("{:?}", cache.stats()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    // Full-cache differential: scalar vs portable vs AVX2 (when the host
    // has it) on identical traces — hit masks, victim choices, write-backs
    // and final state must agree exactly.
    #[test]
    fn wide_probe_preserves_cache_behaviour(seed in any::<u64>()) {
        let (config, ops) = trace_from_seed(seed);
        let reference = {
            let _g = forced(ProbeImpl::Scalar);
            run_trace(config, &ops)
        };
        let portable = {
            let _g = forced(ProbeImpl::Portable);
            run_trace(config, &ops)
        };
        prop_assert_eq!(&reference, &portable, "portable probe diverged from scalar");
        if probe::avx2_available() {
            let avx2 = {
                let _g = forced(ProbeImpl::Avx2);
                run_trace(config, &ops)
            };
            prop_assert_eq!(&reference, &avx2, "avx2 probe diverged from scalar");
        }
        probe::force_impl(None);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // Direct mask-level pinning on random tag columns: sentinel frames,
    // value duplication, and needle-absent cases, across every length up to
    // MAX_WAYS (not just the power-of-two shapes real caches use).
    #[test]
    fn probe_masks_match_scalar_reference(
        len0 in 0usize..MAX_WAYS,
        raw in proptest::collection::vec(prop_oneof![
            3 => Just(u64::MAX),          // TAG_NONE sentinel
            5 => 0u64..6,                 // small tags, frequent collisions
            1 => any::<u64>(),
        ], MAX_WAYS..MAX_WAYS + 1),
        needle in prop_oneof![4 => 0u64..6, 1 => any::<u64>()],
    ) {
        let tags = &raw[..len0 + 1];
        let want = probe::probe_scalar(tags, needle);
        prop_assert_eq!(probe::probe_portable(tags, needle), want,
            "portable mask diverged on {:?} / {}", tags, needle);
        if probe::avx2_available() {
            let _g = forced(ProbeImpl::Avx2);
            prop_assert_eq!(probe::probe(tags, needle), want,
                "avx2 mask diverged on {:?} / {}", tags, needle);
            probe::force_impl(None);
        }
    }
}
