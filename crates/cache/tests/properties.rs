//! Model-based property tests: the cache against a trivially-correct
//! reference model, under random mixes of accesses, gating, and power
//! failures.

use ehs_cache::{AccessKind, Cache, CacheConfig, CacheGeometry, LookupOutcome, ReplacementPolicy};
use proptest::prelude::*;
use std::collections::HashMap;

/// Operations thrown at the cache.
#[derive(Debug, Clone)]
enum Op {
    Read(u64),
    Write(u64),
    Gate { set: u32, way: u8 },
    PowerFail,
}

fn op_strategy(sets: u32, ways: u8) -> impl Strategy<Value = Op> {
    // A handful of conflicting block addresses per set keeps pressure high.
    let addr = (0u64..64).prop_map(|i| i * 16);
    prop_oneof![
        4 => addr.clone().prop_map(Op::Read),
        3 => addr.prop_map(Op::Write),
        2 => (0..sets, 0..ways).prop_map(|(set, way)| Op::Gate { set, way }),
        1 => Just(Op::PowerFail),
    ]
}

/// Reference model: a map from block address to dirty flag, with LRU
/// modelled implicitly (we only check membership-consistency properties
/// that hold for any replacement policy, plus the counters).
#[derive(Default)]
struct Reference {
    dirty: HashMap<u64, bool>,
}

fn small_cache(policy: ReplacementPolicy) -> Cache {
    let geometry = CacheGeometry::new(256, 2, 16).expect("valid");
    Cache::new(CacheConfig { geometry, policy })
}

fn check_invariants(cache: &Cache, reference: &Reference) {
    // 1. Gated + active partition the frames.
    assert_eq!(cache.active_blocks() + cache.gated_blocks(), cache.blocks());
    // 2. Every resident dirty block agrees with the reference dirty flag.
    for wb in cache.dirty_blocks() {
        assert_eq!(
            reference.dirty.get(&wb.addr),
            Some(&true),
            "cache says {:#x} is dirty, reference disagrees",
            wb.addr
        );
    }
    // 3. valid_blocks and contains agree.
    for (addr, _, _) in cache.valid_blocks() {
        assert!(cache.contains(addr).is_some());
    }
    // 4. Ranks in every set are a permutation of 0..ways.
    for set in 0..cache.sets() {
        let mut ranks: Vec<u8> = cache.set_view(set).iter().map(|v| v.rank).collect();
        ranks.sort_unstable();
        let expect: Vec<u8> = (0..cache.ways()).collect();
        assert_eq!(ranks, expect);
    }
}

/// The borrowing visitor APIs must report exactly what the legacy `Vec`
/// snapshot APIs report — same blocks, same data, same order. The hot paths
/// use the visitors; the snapshots are the specification.
fn check_visitor_equivalence(cache: &Cache) {
    let valid = cache.valid_blocks();
    let mut visited: Vec<(u64, Vec<u8>, bool)> = Vec::new();
    cache.for_each_valid(|addr, data, dirty| visited.push((addr, data.to_vec(), dirty)));
    assert_eq!(visited, valid, "for_each_valid diverged from valid_blocks");

    let dirty = cache.dirty_blocks();
    let mut dirty_visited: Vec<(u64, Vec<u8>)> = Vec::new();
    cache.for_each_dirty(|addr, data| dirty_visited.push((addr, data.to_vec())));
    assert_eq!(dirty_visited.len(), dirty.len());
    for (got, want) in dirty_visited.iter().zip(&dirty) {
        assert_eq!(
            got.0, want.addr,
            "for_each_dirty diverged from dirty_blocks"
        );
        assert_eq!(got.1, want.data);
    }

    let addrs: Vec<u64> = cache.resident_addrs_iter().collect();
    assert_eq!(addrs, cache.resident_addrs());
    let from_valid: Vec<u64> = valid.iter().map(|(a, _, _)| *a).collect();
    assert_eq!(
        addrs, from_valid,
        "resident_addrs_iter diverged from valid_blocks"
    );
}

fn run_ops(policy: ReplacementPolicy, ops: &[Op]) {
    let mut cache = small_cache(policy);
    let mut reference = Reference::default();
    let block = [0u8; 16];
    for op in ops {
        match op {
            Op::Read(addr) => {
                if let LookupOutcome::Miss(miss) = cache.lookup(*addr, AccessKind::Read) {
                    if let Some(ev) = miss.evicted {
                        // Evicted blocks are clean in memory afterwards.
                        reference.dirty.insert(ev, false);
                    }
                    cache.fill(*addr, &block, false);
                    reference.dirty.insert(*addr, false);
                }
            }
            Op::Write(addr) => {
                if let LookupOutcome::Miss(miss) = cache.lookup(*addr, AccessKind::Write) {
                    if let Some(ev) = miss.evicted {
                        reference.dirty.insert(ev, false);
                    }
                    cache.fill(*addr, &block, true);
                }
                reference.dirty.insert(*addr, true);
            }
            Op::Gate { set, way } => {
                use ehs_cache::GateOutcome;
                let id = ehs_cache::BlockId {
                    set: *set,
                    way: *way,
                };
                if let GateOutcome::GatedValid { addr, .. } = cache.gate(id) {
                    // Gated content is written back conceptually: clean now.
                    reference.dirty.insert(addr, false);
                    assert!(cache.contains(addr).is_none(), "gated block still visible");
                }
            }
            Op::PowerFail => {
                cache.power_fail();
                for flag in reference.dirty.values_mut() {
                    *flag = false; // baseline semantics: contents gone
                }
                assert_eq!(cache.gated_blocks(), 0, "reboot re-powers frames");
                assert!(cache.valid_blocks().is_empty(), "reboot leaves no data");
            }
        }
        check_invariants(&cache, &reference);
        check_visitor_equivalence(&cache);
    }
    // Accounting sanity at the end.
    let stats = cache.stats();
    assert_eq!(stats.accesses(), stats.hits + stats.misses);
    assert!(
        stats.fills <= stats.misses,
        "write-allocate fills only on miss"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lru_cache_maintains_invariants(ops in proptest::collection::vec(op_strategy(8, 2), 1..300)) {
        run_ops(ReplacementPolicy::Lru, &ops);
    }

    #[test]
    fn drrip_cache_maintains_invariants(ops in proptest::collection::vec(op_strategy(8, 2), 1..300)) {
        run_ops(ReplacementPolicy::Drrip, &ops);
    }

    #[test]
    fn fifo_cache_maintains_invariants(ops in proptest::collection::vec(op_strategy(8, 2), 1..300)) {
        run_ops(ReplacementPolicy::Fifo, &ops);
    }

    #[test]
    fn data_round_trips_for_resident_blocks(
        writes in proptest::collection::vec((0u64..32, any::<u32>()), 1..64)
    ) {
        // Last-writer-wins for whatever is still resident.
        let mut cache = small_cache(ReplacementPolicy::Lru);
        let mut expected: HashMap<u64, u32> = HashMap::new();
        for (slot, value) in writes {
            let addr = slot * 16;
            if let LookupOutcome::Miss(_) = cache.lookup(addr, AccessKind::Write) {
                cache.fill(addr, &[0u8; 16], true);
            }
            let frame = cache.contains(addr).expect("just filled");
            cache.write_data(frame, 0, &value.to_le_bytes());
            expected.insert(addr, value);
        }
        for (addr, value) in expected {
            if let Some(frame) = cache.contains(addr) {
                let data = cache.data(frame);
                let got = u32::from_le_bytes([data[0], data[1], data[2], data[3]]);
                prop_assert_eq!(got, value, "resident block lost its data");
            }
        }
    }

    #[test]
    fn visitors_match_snapshots_with_random_data(
        writes in proptest::collection::vec((0u64..48, any::<u32>(), any::<bool>()), 1..128)
    ) {
        // Distinct per-block contents and a mix of clean/dirty fills, so a
        // frame-indexing bug in the arena-backed visitors cannot hide
        // behind identical block images.
        let mut cache = small_cache(ReplacementPolicy::Lru);
        for (slot, value, dirty) in writes {
            let addr = slot * 16;
            let kind = if dirty { AccessKind::Write } else { AccessKind::Read };
            if let LookupOutcome::Miss(_) = cache.lookup(addr, kind) {
                let mut block = [0u8; 16];
                block[..4].copy_from_slice(&value.to_le_bytes());
                block[12..].copy_from_slice(&(addr as u32).to_le_bytes());
                cache.fill(addr, &block, dirty);
            } else if dirty {
                let frame = cache.contains(addr).expect("hit");
                cache.write_data(frame, 0, &value.to_le_bytes());
            }
            check_visitor_equivalence(&cache);
        }
    }

    #[test]
    fn lru_never_evicts_the_most_recent_block(
        addrs in proptest::collection::vec(0u64..16, 2..100)
    ) {
        // Single-set cache: after any access sequence, the most recently
        // accessed address must still be resident.
        let geometry = CacheGeometry::new(64, 4, 16).expect("valid"); // 1 set
        let mut cache = Cache::new(CacheConfig { geometry, policy: ReplacementPolicy::Lru });
        let mut last = None;
        for slot in addrs {
            let addr = slot * 16;
            if !cache.lookup(addr, AccessKind::Read).is_hit() {
                cache.fill(addr, &[0u8; 16], false);
            }
            last = Some(addr);
        }
        prop_assert!(cache.contains(last.expect("non-empty")).is_some());
    }
}
