//! The set-associative cache mechanism.

use crate::policy::{rank_of, PolicyKernel, SetState, SharedPolicyState, MAX_WAYS};
use crate::{with_policy_kernel, CacheStats, ReplacementPolicy};
use ehs_nvm::CacheGeometry;

/// Which kind of CPU access hits the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A load (or instruction fetch).
    Read,
    /// A store; write-back write-allocate, so hits dirty the block.
    Write,
}

/// Identifies a physical block frame (a way within a set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockId {
    /// Set index.
    pub set: u32,
    /// Way index within the set.
    pub way: u8,
}

/// A dirty block that must be written back to the backing store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Writeback {
    /// Block-aligned byte address.
    pub addr: u64,
    /// The block's data.
    pub data: Vec<u8>,
}

/// Details of a hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HitInfo {
    /// Where the block lives.
    pub block: BlockId,
    /// Whether the block was dirty *before* this access.
    pub was_dirty: bool,
}

/// Details of a miss. The victim way has already been evicted; the caller
/// must fetch the block from the backing store, perform `writeback` if
/// present, and then call [`Cache::fill`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MissInfo {
    /// The frame freed for the incoming block.
    pub victim: BlockId,
    /// Block-aligned address of the valid block that was evicted, if the
    /// victim frame held one (clean or dirty).
    pub evicted: Option<u64>,
    /// Dirty victim content that must be written back, if any.
    pub writeback: Option<Writeback>,
}

/// Result of [`Cache::lookup`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LookupOutcome {
    /// The block was present and powered.
    Hit(HitInfo),
    /// The block was absent (or its frame was gated).
    Miss(MissInfo),
}

impl LookupOutcome {
    /// True for [`LookupOutcome::Hit`].
    pub fn is_hit(&self) -> bool {
        matches!(self, LookupOutcome::Hit(_))
    }
}

/// Details of a miss as reported by [`Cache::lookup_with`]: like
/// [`MissInfo`] but without owning the victim's dirty data — that went to
/// the caller's write-back sink instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MissResult {
    /// The frame freed for the incoming block.
    pub victim: BlockId,
    /// Block-aligned address of the valid block that was evicted, if the
    /// victim frame held one (clean or dirty).
    pub evicted: Option<u64>,
    /// Whether the victim was dirty (its content was passed to the sink).
    pub wrote_back: bool,
}

/// Result of [`Cache::lookup_with`] — the allocation-free counterpart of
/// [`LookupOutcome`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupResult {
    /// The block was present and powered.
    Hit(HitInfo),
    /// The block was absent (or its frame was gated).
    Miss(MissResult),
}

impl LookupResult {
    /// True for [`LookupResult::Hit`].
    pub fn is_hit(&self) -> bool {
        matches!(self, LookupResult::Hit(_))
    }
}

/// Result of [`Cache::gate_with`] — the allocation-free counterpart of
/// [`GateOutcome`]: dirty content goes to the caller's sink instead of an
/// owned [`Writeback`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateResult {
    /// The frame was already gated; nothing happened.
    AlreadyGated,
    /// The frame held no valid block; it is now gated and leak-free.
    GatedInvalid,
    /// A valid block was deactivated.
    GatedValid {
        /// Block-aligned address of the deactivated block.
        addr: u64,
        /// Whether it was dirty (its content was passed to the sink).
        dirty: bool,
    },
}

/// Result of power-gating a block via [`Cache::gate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GateOutcome {
    /// The frame was already gated; nothing happened.
    AlreadyGated,
    /// The frame held no valid block; it is now gated and leak-free.
    GatedInvalid,
    /// A valid block was deactivated. If it was dirty, its content is
    /// returned and the caller must write it back (paper Section V-A:
    /// "dirty blocks require their write back before deactivation").
    GatedValid {
        /// Block-aligned address of the deactivated block.
        addr: u64,
        /// Dirty content to write back, `None` if the block was clean.
        writeback: Option<Writeback>,
    },
}

/// Read-only view of one way, used by predictors to choose gating victims.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WayView {
    /// The frame's identity.
    pub block: BlockId,
    /// Whether the frame holds a valid block.
    pub valid: bool,
    /// Whether that block is dirty.
    pub dirty: bool,
    /// Whether the frame is power-gated.
    pub gated: bool,
    /// Block-aligned address of the resident block (0 when invalid).
    pub addr: u64,
    /// Eviction rank: 0 = most protected, `ways-1` = next victim.
    pub rank: u8,
}

impl Default for WayView {
    /// An invalid, powered, unranked frame — the placeholder value for
    /// fixed [`MAX_WAYS`]-sized view buffers (see [`Cache::set_view_into`]).
    fn default() -> Self {
        Self {
            block: BlockId { set: 0, way: 0 },
            valid: false,
            dirty: false,
            gated: false,
            addr: 0,
            rank: 0,
        }
    }
}

/// Cache configuration: geometry plus replacement policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheConfig {
    /// Array shape.
    pub geometry: CacheGeometry,
    /// Replacement policy.
    pub policy: ReplacementPolicy,
}

impl CacheConfig {
    /// The paper's data cache: 4 kB, 4-way, 16 B blocks, LRU.
    pub fn paper_dcache() -> Self {
        Self {
            geometry: CacheGeometry::paper_dcache(),
            policy: ReplacementPolicy::Lru,
        }
    }

    /// The paper's instruction cache: 4 kB, 4-way, 16 B blocks, LRU.
    pub fn paper_icache() -> Self {
        Self {
            geometry: CacheGeometry::paper_icache(),
            policy: ReplacementPolicy::Lru,
        }
    }

    /// Replaces the replacement policy.
    #[must_use]
    pub fn with_policy(mut self, policy: ReplacementPolicy) -> Self {
        self.policy = policy;
        self
    }
}

/// Tag value of a frame holding no block (invalid or gated — gating takes
/// the tag). Real tags are `block_addr / sets` of 32-bit addresses and can
/// never reach it, so the probe loop needs no separate valid check: a tag
/// match *is* a powered, valid hit.
const TAG_NONE: u64 = u64::MAX;

/// A set-associative, write-back, write-allocate cache with per-block
/// power gating. See the crate-level docs for the access protocol.
///
/// Metadata is struct-of-arrays: one flat per-frame tag column (sentinel
/// [`TAG_NONE`] for empty frames) plus per-set valid/dirty/gated bitmasks
/// and one packed [`SetState`] per set, so the tag probe is a branchless
/// compare loop over adjacent words and mask updates are single bit ops.
/// Block data lives in one contiguous arena sized by the geometry
/// (`sets × ways × block_bytes`), indexed by frame.
///
/// The per-access entry points come in two flavours: [`Cache::lookup_with`]
/// / [`Cache::fill`] match the policy enum once per call, while the generic
/// [`Cache::lookup_with_k`] / [`Cache::fill_k`] take a [`PolicyKernel`]
/// type parameter so monomorphized hot loops pay no per-access dispatch.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    /// Per-frame tags (`set * ways + way`), [`TAG_NONE`] when empty.
    tags: Box<[u64]>,
    /// Per-set mask of ways holding a valid powered block.
    valid: Box<[u16]>,
    /// Per-set mask of dirty ways (dirty implies valid).
    dirty: Box<[u16]>,
    /// Per-set mask of power-gated ways (gated implies not valid).
    gated: Box<[u16]>,
    /// Per-set packed replacement state.
    policy: Box<[SetState]>,
    /// Block data for every frame, `frame_index * block_bytes` apart.
    data: Box<[u8]>,
    shared: SharedPolicyState,
    stats: CacheStats,
    gated_count: u32,
}

impl Cache {
    /// Creates a cold cache: every frame invalid but powered (leaking).
    ///
    /// # Panics
    ///
    /// Panics if the geometry's associativity exceeds [`MAX_WAYS`] (the
    /// packed per-set policy state holds one 4-bit rank lane per way).
    pub fn new(config: CacheConfig) -> Self {
        let g = config.geometry;
        assert!(
            g.associativity as usize <= MAX_WAYS && g.associativity > 0,
            "packed policy state caps associativity at {MAX_WAYS} ways"
        );
        assert!(
            g.associativity <= crate::probe::PROBE_MASK_BITS,
            "wide tag probe returns a u32 hit mask; associativity {} exceeds \
             the {} ways it can cover",
            g.associativity,
            crate::probe::PROBE_MASK_BITS,
        );
        let ways = g.associativity as u8;
        let n_sets = g.sets() as usize;
        let init = with_policy_kernel!(config.policy, K => K::init(ways));
        Self {
            config,
            tags: vec![TAG_NONE; n_sets * usize::from(ways)].into_boxed_slice(),
            valid: vec![0u16; n_sets].into_boxed_slice(),
            dirty: vec![0u16; n_sets].into_boxed_slice(),
            gated: vec![0u16; n_sets].into_boxed_slice(),
            policy: vec![init; n_sets].into_boxed_slice(),
            data: vec![0u8; g.blocks() as usize * g.block_bytes as usize].into_boxed_slice(),
            shared: SharedPolicyState::new(config.policy, g.sets()),
            stats: CacheStats::default(),
            gated_count: 0,
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Number of sets.
    pub fn sets(&self) -> u32 {
        self.config.geometry.sets()
    }

    /// Number of ways per set.
    pub fn ways(&self) -> u8 {
        self.config.geometry.associativity as u8
    }

    /// Block size in bytes.
    pub fn block_bytes(&self) -> u32 {
        self.config.geometry.block_bytes
    }

    /// Total number of frames.
    pub fn blocks(&self) -> u32 {
        self.config.geometry.blocks()
    }

    /// Number of powered (leaking) frames.
    pub fn active_blocks(&self) -> u32 {
        self.blocks() - self.gated_count
    }

    /// Number of power-gated frames.
    pub fn gated_blocks(&self) -> u32 {
        self.gated_count
    }

    /// Access statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets statistics (e.g. after warmup) without touching cache state.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    #[inline]
    fn split(&self, addr: u64) -> (u32, u64) {
        let block_addr = addr / u64::from(self.config.geometry.block_bytes);
        let set = (block_addr % u64::from(self.sets())) as u32;
        let tag = block_addr / u64::from(self.sets());
        (set, tag)
    }

    /// Block-aligned address for (set, tag).
    fn block_addr(&self, set: u32, tag: u64) -> u64 {
        (tag * u64::from(self.sets()) + u64::from(set)) * u64::from(self.block_bytes())
    }

    /// Arena byte range of the frame at (set, way).
    #[inline]
    fn frame_range(&self, set: u32, way: u8) -> std::ops::Range<usize> {
        let bytes = self.config.geometry.block_bytes as usize;
        let frame = set as usize * usize::from(self.ways()) + usize::from(way);
        frame * bytes..(frame + 1) * bytes
    }

    #[inline]
    fn frame_data(&self, set: u32, way: u8) -> &[u8] {
        &self.data[self.frame_range(set, way)]
    }

    /// Flat frame index of (set, way) in the tag column.
    #[inline]
    fn frame_index(&self, set: u32, way: u8) -> usize {
        set as usize * usize::from(self.ways()) + usize::from(way)
    }

    /// Mask covering the low `ways` bits of the per-set state words.
    #[inline]
    fn ways_mask(&self) -> u16 {
        u16::MAX >> (16 - u32::from(self.ways()))
    }

    /// True if the set `addr` maps to has a frame that can accept a fill
    /// without displacing a live block (an invalid or gated frame).
    pub fn has_free_frame(&self, addr: u64) -> bool {
        let (set, _) = self.split(addr);
        self.valid[set as usize] != self.ways_mask()
    }

    /// Probes for `addr` without touching replacement state or statistics.
    pub fn contains(&self, addr: u64) -> Option<BlockId> {
        let (set, tag) = self.split(addr);
        let ways = usize::from(self.ways());
        let base = set as usize * ways;
        let mask = crate::probe::probe(&self.tags[base..base + ways], tag);
        (mask != 0).then(|| BlockId {
            set,
            way: mask.trailing_zeros() as u8,
        })
    }

    /// Performs an access. On a miss, the victim frame is evicted
    /// immediately (its dirty content returned for write-back) and the
    /// caller is expected to [`Cache::fill`] the requested block next.
    ///
    /// Thin wrapper over [`Cache::lookup_with`] that materialises the dirty
    /// victim as an owned [`Writeback`]; hot paths use the sink variant.
    pub fn lookup(&mut self, addr: u64, kind: AccessKind) -> LookupOutcome {
        let mut writeback = None;
        match self.lookup_with(addr, kind, |wb_addr, data| {
            writeback = Some(Writeback {
                addr: wb_addr,
                data: data.to_vec(),
            });
        }) {
            LookupResult::Hit(hit) => LookupOutcome::Hit(hit),
            LookupResult::Miss(miss) => LookupOutcome::Miss(MissInfo {
                victim: miss.victim,
                evicted: miss.evicted,
                writeback,
            }),
        }
    }

    /// Performs an access without allocating: if the miss victim was dirty,
    /// its (address, data) is handed to `wb_sink` instead of being copied
    /// into an owned [`Writeback`]. Identical state transitions and
    /// statistics to [`Cache::lookup`] (which wraps it).
    ///
    /// Matches the policy enum once per call; monomorphized loops use
    /// [`Cache::lookup_with_k`] directly.
    pub fn lookup_with(
        &mut self,
        addr: u64,
        kind: AccessKind,
        wb_sink: impl FnOnce(u64, &[u8]),
    ) -> LookupResult {
        with_policy_kernel!(
            self.config.policy,
            K => self.lookup_with_k::<K>(addr, kind, wb_sink)
        )
    }

    /// [`Cache::lookup_with`] specialised to a [`PolicyKernel`]: state
    /// transitions and statistics are identical, but replacement updates
    /// compile to the kernel's branchless word ops with no per-access
    /// policy dispatch.
    ///
    /// # Panics
    ///
    /// Debug builds panic if `K` does not match the configured policy.
    pub fn lookup_with_k<K: PolicyKernel>(
        &mut self,
        addr: u64,
        kind: AccessKind,
        wb_sink: impl FnOnce(u64, &[u8]),
    ) -> LookupResult {
        debug_assert_eq!(
            K::POLICY,
            self.config.policy,
            "policy kernel must match the cache's configured policy"
        );
        let (set_idx, tag) = self.split(addr);
        let s = set_idx as usize;
        let ways = self.ways();
        let base = s * usize::from(ways);

        // Wide probe: empty (invalid or gated) frames hold TAG_NONE, so a
        // tag match is a powered, valid hit — no mask check needed, and the
        // whole set compares in one SIMD op (scalar reference under
        // EHS_NO_SIMD=1; see the `probe` module).
        let match_mask = crate::probe::probe(&self.tags[base..base + usize::from(ways)], tag);
        if match_mask != 0 {
            let way_idx = match_mask.trailing_zeros() as u8;
            let bit = 1u16 << way_idx;
            let was_dirty = self.dirty[s] & bit != 0;
            self.dirty[s] |= bit & (0u16.wrapping_sub(u16::from(kind == AccessKind::Write)));
            K::on_hit(&mut self.policy[s], way_idx, ways);
            self.stats.hits += 1;
            return LookupResult::Hit(HitInfo {
                block: BlockId {
                    set: set_idx,
                    way: way_idx,
                },
                was_dirty,
            });
        }

        // Miss path: update dueling stats, pick a victim, evict it.
        self.stats.misses += 1;
        K::on_miss(&mut self.policy[s], set_idx, &mut self.shared);

        // Prefer an invalid powered frame, then a gated frame, then the
        // policy victim.
        let free = !self.valid[s] & !self.gated[s] & self.ways_mask();
        let victim_way = if free != 0 {
            free.trailing_zeros() as u8
        } else if self.gated[s] != 0 {
            self.gated[s].trailing_zeros() as u8
        } else {
            K::victim(&mut self.policy[s], &mut self.shared, ways)
        };

        let bit = 1u16 << victim_way;
        let frame = base + usize::from(victim_way);
        let evicted = if self.gated[s] & bit != 0 || self.tags[frame] == TAG_NONE {
            None
        } else {
            Some(self.block_addr(set_idx, self.tags[frame]))
        };
        let victim_dirty = self.dirty[s] & bit != 0;
        // Invalidate; a gated victim keeps its gated state (fill re-powers).
        self.tags[frame] = TAG_NONE;
        self.valid[s] &= !bit;
        self.dirty[s] &= !bit;
        let wrote_back = match evicted {
            Some(wb_addr) if victim_dirty => {
                self.stats.writebacks += 1;
                wb_sink(wb_addr, self.frame_data(set_idx, victim_way));
                true
            }
            _ => false,
        };
        if evicted.is_some() {
            self.stats.evictions += 1;
        }

        LookupResult::Miss(MissResult {
            victim: BlockId {
                set: set_idx,
                way: victim_way,
            },
            evicted,
            wrote_back,
        })
    }

    /// Installs a block (after the backing store supplied `data`), re-powering
    /// the chosen frame if it was gated. `dirty` is true for write-allocate
    /// fills. Returns where the block landed.
    ///
    /// Matches the policy enum once per call; monomorphized loops use
    /// [`Cache::fill_k`] directly.
    ///
    /// # Panics
    ///
    /// Panics if `data` length differs from the block size.
    pub fn fill(&mut self, addr: u64, data: &[u8], dirty: bool) -> BlockId {
        with_policy_kernel!(self.config.policy, K => self.fill_k::<K>(addr, data, dirty))
    }

    /// [`Cache::fill`] specialised to a [`PolicyKernel`]: identical state
    /// transitions and statistics without per-access policy dispatch.
    ///
    /// # Panics
    ///
    /// Panics if `data` length differs from the block size; debug builds
    /// panic if `K` does not match the configured policy.
    pub fn fill_k<K: PolicyKernel>(&mut self, addr: u64, data: &[u8], dirty: bool) -> BlockId {
        debug_assert_eq!(
            K::POLICY,
            self.config.policy,
            "policy kernel must match the cache's configured policy"
        );
        assert_eq!(
            data.len(),
            self.block_bytes() as usize,
            "fill data must be exactly one block"
        );
        let (set_idx, tag) = self.split(addr);
        let s = set_idx as usize;
        let ways = self.ways();

        // Choose the frame: an invalid powered frame (the one lookup just
        // evicted, typically), else a gated frame, else the policy victim.
        let free = !self.valid[s] & !self.gated[s] & self.ways_mask();
        let way_idx = if free != 0 {
            free.trailing_zeros() as u8
        } else if self.gated[s] != 0 {
            self.gated[s].trailing_zeros() as u8
        } else {
            K::victim(&mut self.policy[s], &mut self.shared, ways)
        };

        let bit = 1u16 << way_idx;
        let frame = self.frame_index(set_idx, way_idx);
        debug_assert!(
            self.tags[frame] == TAG_NONE,
            "fill must not silently clobber a live block; lookup evicts first"
        );
        if self.gated[s] & bit != 0 {
            self.gated[s] &= !bit;
            self.gated_count -= 1;
            self.stats.ungates += 1;
        }
        self.tags[frame] = tag;
        self.valid[s] |= bit;
        if dirty {
            self.dirty[s] |= bit;
        } else {
            self.dirty[s] &= !bit;
        }
        K::on_fill(
            &mut self.policy[s],
            way_idx,
            set_idx,
            ways,
            &mut self.shared,
        );
        let range = self.frame_range(set_idx, way_idx);
        self.data[range].copy_from_slice(data);
        self.stats.fills += 1;

        BlockId {
            set: set_idx,
            way: way_idx,
        }
    }

    /// Reads the data of a resident block.
    ///
    /// # Panics
    ///
    /// Panics if the frame is gated or invalid.
    pub fn data(&self, block: BlockId) -> &[u8] {
        let bit = 1u16 << block.way;
        assert!(
            self.valid[block.set as usize] & bit != 0,
            "data of a dead frame"
        );
        self.frame_data(block.set, block.way)
    }

    /// Writes bytes into a resident block at `offset`, marking it dirty.
    ///
    /// # Panics
    ///
    /// Panics if the frame is gated/invalid or the range is out of bounds.
    pub fn write_data(&mut self, block: BlockId, offset: usize, bytes: &[u8]) {
        let s = block.set as usize;
        let bit = 1u16 << block.way;
        assert!(self.valid[s] & bit != 0, "write to a dead frame");
        self.dirty[s] |= bit;
        let start = self.frame_range(block.set, block.way).start + offset;
        self.data[start..start + bytes.len()].copy_from_slice(bytes);
    }

    /// Power-gates a frame (gate-Vdd). Content is lost; dirty content is
    /// returned so the caller can write it back *first*.
    ///
    /// Thin wrapper over [`Cache::gate_with`] that materialises the dirty
    /// content as an owned [`Writeback`]; hot paths use the sink variant.
    pub fn gate(&mut self, block: BlockId) -> GateOutcome {
        let mut writeback = None;
        match self.gate_with(block, |addr, data| {
            writeback = Some(Writeback {
                addr,
                data: data.to_vec(),
            });
        }) {
            GateResult::AlreadyGated => GateOutcome::AlreadyGated,
            GateResult::GatedInvalid => GateOutcome::GatedInvalid,
            GateResult::GatedValid { addr, .. } => GateOutcome::GatedValid { addr, writeback },
        }
    }

    /// Power-gates a frame without allocating: dirty content is handed to
    /// `wb_sink` as a borrowed slice instead of being copied into an owned
    /// [`Writeback`]. Identical state transitions and statistics to
    /// [`Cache::gate`] (which wraps it).
    pub fn gate_with(&mut self, block: BlockId, wb_sink: impl FnOnce(u64, &[u8])) -> GateResult {
        let s = block.set as usize;
        let bit = 1u16 << block.way;
        if self.gated[s] & bit != 0 {
            return GateResult::AlreadyGated;
        }
        self.gated[s] |= bit;
        self.gated_count += 1;
        self.stats.gates += 1;
        let frame = self.frame_index(block.set, block.way);
        let tag = self.tags[frame];
        if tag == TAG_NONE {
            return GateResult::GatedInvalid;
        }
        // Gating takes the tag: a gated frame never matches a probe.
        self.tags[frame] = TAG_NONE;
        self.valid[s] &= !bit;
        let addr = self.block_addr(block.set, tag);
        let was_dirty = self.dirty[s] & bit != 0;
        self.dirty[s] &= !bit;
        if was_dirty {
            self.stats.writebacks += 1;
            wb_sink(addr, self.frame_data(block.set, block.way));
        }
        GateResult::GatedValid {
            addr,
            dirty: was_dirty,
        }
    }

    /// Re-powers every gated frame without filling it (e.g. when a predictor
    /// is reset). Frames come back invalid and leaking.
    pub fn ungate_all(&mut self) {
        for g in self.gated.iter_mut() {
            self.stats.ungates += u64::from(g.count_ones());
            *g = 0;
        }
        self.gated_count = 0;
    }

    /// Models a power outage: every frame loses its content and comes back
    /// powered (cold and leaking) at reboot. Returns the number of *valid*
    /// blocks that were lost — the zombie-analysis input.
    pub fn power_fail(&mut self) -> u32 {
        let lost = self.valid.iter().map(|v| v.count_ones()).sum();
        self.tags.fill(TAG_NONE);
        self.valid.fill(0);
        self.dirty.fill(0);
        self.gated.fill(0);
        self.gated_count = 0;
        self.stats.power_failures += 1;
        lost
    }

    /// Visits every *valid, powered* block (clean and dirty) without
    /// allocating: `f(block_addr, data, dirty)`. The hot path for JIT
    /// checkpointing and whole-cache schemes such as SDBP; the `Vec`
    /// snapshots below are thin wrappers kept for tests and cold paths.
    pub fn for_each_valid(&self, mut f: impl FnMut(u64, &[u8], bool)) {
        let ways = usize::from(self.ways());
        for (s, &valid) in self.valid.iter().enumerate() {
            let mut live = valid;
            while live != 0 {
                let w = live.trailing_zeros() as u8;
                live &= live - 1;
                let frame = s * ways + usize::from(w);
                f(
                    self.block_addr(s as u32, self.tags[frame]),
                    self.frame_data(s as u32, w),
                    self.dirty[s] & (1u16 << w) != 0,
                );
            }
        }
    }

    /// Visits every *valid, powered* dirty block without allocating:
    /// `f(block_addr, data)`.
    pub fn for_each_dirty(&self, mut f: impl FnMut(u64, &[u8])) {
        self.for_each_valid(|addr, data, dirty| {
            if dirty {
                f(addr, data);
            }
        });
    }

    /// Iterates the addresses of all valid powered blocks. Touches only
    /// tag metadata — no block data, no allocation — so it is cheap enough
    /// for per-cycle instrumentation (the zombie sampler).
    pub fn resident_addrs_iter(&self) -> impl Iterator<Item = u64> + '_ {
        let n_sets = u64::from(self.sets());
        let block_bytes = u64::from(self.block_bytes());
        let ways = usize::from(self.ways());
        self.valid.iter().enumerate().flat_map(move |(s, &v)| {
            let tags = &self.tags[s * ways..(s + 1) * ways];
            (0..ways).filter_map(move |w| {
                if v & (1u16 << w) != 0 {
                    Some((tags[w] * n_sets + s as u64) * block_bytes)
                } else {
                    None
                }
            })
        })
    }

    /// Snapshot of every *valid, powered* dirty block, for JIT checkpointing.
    pub fn dirty_blocks(&self) -> Vec<Writeback> {
        let mut out = Vec::new();
        self.for_each_dirty(|addr, data| {
            out.push(Writeback {
                addr,
                data: data.to_vec(),
            });
        });
        out
    }

    /// Snapshot of every *valid, powered* block (clean and dirty), for
    /// whole-cache checkpointing schemes such as SDBP.
    pub fn valid_blocks(&self) -> Vec<(u64, Vec<u8>, bool)> {
        let mut out = Vec::new();
        self.for_each_valid(|addr, data, dirty| {
            out.push((addr, data.to_vec(), dirty));
        });
        out
    }

    /// Views of every way in a set, annotated with eviction ranks, written
    /// into the low slots of a caller-provided buffer — the allocation-free
    /// interface predictors use to pick gating victims. Returns the number
    /// of slots written (the way count).
    pub fn set_view_into(&self, set: u32, out: &mut [WayView; MAX_WAYS]) -> usize {
        let s = set as usize;
        let word = with_policy_kernel!(self.config.policy, K => K::ranks_word(&self.policy[s]));
        let ways = self.ways();
        for w in 0..ways {
            let bit = 1u16 << w;
            let valid = self.valid[s] & bit != 0;
            let frame = s * usize::from(ways) + usize::from(w);
            out[usize::from(w)] = WayView {
                block: BlockId { set, way: w },
                valid,
                dirty: self.dirty[s] & bit != 0,
                gated: self.gated[s] & bit != 0,
                addr: if valid {
                    self.block_addr(set, self.tags[frame])
                } else {
                    0
                },
                rank: rank_of(word, w),
            };
        }
        usize::from(ways)
    }

    /// Views of every way in a set, annotated with eviction ranks — a thin
    /// allocating wrapper over [`Cache::set_view_into`] for tests and cold
    /// paths.
    pub fn set_view(&self, set: u32) -> Vec<WayView> {
        let mut buf = [WayView::default(); MAX_WAYS];
        let n = self.set_view_into(set, &mut buf);
        buf[..n].to_vec()
    }

    /// Collects the addresses of all valid powered blocks.
    pub fn resident_addrs(&self) -> Vec<u64> {
        self.resident_addrs_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 4 sets x 2 ways x 16 B = 128 B.
        let g = CacheGeometry::new(128, 2, 16).expect("valid");
        Cache::new(CacheConfig {
            geometry: g,
            policy: ReplacementPolicy::Lru,
        })
    }

    const BLK: [u8; 16] = [0xAB; 16];

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small();
        assert!(!c.lookup(0x40, AccessKind::Read).is_hit());
        c.fill(0x40, &BLK, false);
        assert!(c.lookup(0x40, AccessKind::Read).is_hit());
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn set_mapping_separates_conflicting_blocks() {
        let c = small();
        // 4 sets, 16 B blocks: 0x00 and 0x40 map to sets 0 and 0 (0x40/16=4, 4%4=0).
        let (s0, t0) = c.split(0x00);
        let (s1, t1) = c.split(0x40);
        assert_eq!(s0, s1);
        assert_ne!(t0, t1);
        let (s2, _) = c.split(0x10);
        assert_eq!(s2, 1);
    }

    #[test]
    fn write_hit_dirties_block() {
        let mut c = small();
        c.lookup(0x40, AccessKind::Write);
        c.fill(0x40, &BLK, true);
        match c.lookup(0x40, AccessKind::Write) {
            LookupOutcome::Hit(h) => assert!(h.was_dirty),
            _ => panic!("expected hit"),
        }
    }

    #[test]
    fn read_hit_keeps_block_clean() {
        let mut c = small();
        c.lookup(0x40, AccessKind::Read);
        c.fill(0x40, &BLK, false);
        match c.lookup(0x40, AccessKind::Read) {
            LookupOutcome::Hit(h) => assert!(!h.was_dirty),
            _ => panic!("expected hit"),
        }
        assert!(c.dirty_blocks().is_empty(), "read hits must not dirty");
    }

    #[test]
    fn dirty_eviction_produces_writeback() {
        let mut c = small();
        // Fill both ways of set 0, first one dirty.
        c.lookup(0x00, AccessKind::Write);
        c.fill(0x00, &BLK, true);
        c.lookup(0x40, AccessKind::Read);
        c.fill(0x40, &BLK, false);
        // Third conflicting block evicts LRU (0x00, dirty).
        match c.lookup(0x80, AccessKind::Read) {
            LookupOutcome::Miss(m) => {
                let wb = m.writeback.expect("dirty victim");
                assert_eq!(wb.addr, 0x00);
                assert_eq!(wb.data, BLK.to_vec());
            }
            _ => panic!("expected miss"),
        }
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut c = small();
        c.lookup(0x00, AccessKind::Read);
        c.fill(0x00, &BLK, false);
        c.lookup(0x40, AccessKind::Read);
        c.fill(0x40, &BLK, false);
        match c.lookup(0x80, AccessKind::Read) {
            LookupOutcome::Miss(m) => assert!(m.writeback.is_none()),
            _ => panic!("expected miss"),
        }
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = small();
        c.lookup(0x00, AccessKind::Read);
        c.fill(0x00, &BLK, false);
        c.lookup(0x40, AccessKind::Read);
        c.fill(0x40, &BLK, false);
        // Touch 0x00 so 0x40 becomes LRU.
        c.lookup(0x00, AccessKind::Read);
        c.lookup(0x80, AccessKind::Read);
        c.fill(0x80, &BLK, false);
        assert!(c.contains(0x00).is_some(), "MRU block survives");
        assert!(c.contains(0x40).is_none(), "LRU block evicted");
    }

    #[test]
    fn gate_clean_block_loses_content_silently() {
        let mut c = small();
        c.lookup(0x00, AccessKind::Read);
        c.fill(0x00, &BLK, false);
        let id = c.contains(0x00).expect("resident");
        match c.gate(id) {
            GateOutcome::GatedValid { addr, writeback } => {
                assert_eq!(addr, 0x00);
                assert!(writeback.is_none());
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(c.contains(0x00).is_none(), "gated block is gone");
        assert_eq!(c.gated_blocks(), 1);
        assert_eq!(c.active_blocks(), c.blocks() - 1);
    }

    #[test]
    fn gate_dirty_block_returns_writeback() {
        let mut c = small();
        c.lookup(0x00, AccessKind::Write);
        c.fill(0x00, &BLK, true);
        let id = c.contains(0x00).expect("resident");
        match c.gate(id) {
            GateOutcome::GatedValid { writeback, .. } => {
                let wb = writeback.expect("dirty content must be written back");
                assert_eq!(wb.addr, 0x00);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn gate_is_idempotent() {
        let mut c = small();
        let id = BlockId { set: 0, way: 0 };
        assert_eq!(c.gate(id), GateOutcome::GatedInvalid);
        assert_eq!(c.gate(id), GateOutcome::AlreadyGated);
        assert_eq!(c.gated_blocks(), 1);
    }

    #[test]
    fn fill_repowers_gated_frame() {
        let mut c = small();
        c.gate(BlockId { set: 0, way: 0 });
        c.gate(BlockId { set: 0, way: 1 });
        assert_eq!(c.active_blocks(), c.blocks() - 2);
        c.lookup(0x00, AccessKind::Read);
        c.fill(0x00, &BLK, false);
        assert_eq!(c.gated_blocks(), 1, "one frame re-powered by the fill");
        assert!(c.contains(0x00).is_some());
    }

    #[test]
    fn power_fail_clears_everything() {
        let mut c = small();
        c.lookup(0x00, AccessKind::Write);
        c.fill(0x00, &BLK, true);
        c.gate(BlockId { set: 1, way: 0 });
        let lost = c.power_fail();
        assert_eq!(lost, 1);
        assert_eq!(c.gated_blocks(), 0, "reboot re-powers all frames");
        assert!(c.contains(0x00).is_none());
        assert_eq!(c.stats().power_failures, 1);
    }

    #[test]
    fn dirty_blocks_snapshot() {
        let mut c = small();
        c.lookup(0x00, AccessKind::Write);
        c.fill(0x00, &BLK, true);
        c.lookup(0x10, AccessKind::Read);
        c.fill(0x10, &BLK, false);
        let dirty = c.dirty_blocks();
        assert_eq!(dirty.len(), 1);
        assert_eq!(dirty[0].addr, 0x00);
        assert_eq!(c.valid_blocks().len(), 2);
    }

    #[test]
    fn set_view_exposes_ranks_and_state() {
        let mut c = small();
        c.lookup(0x00, AccessKind::Read);
        c.fill(0x00, &BLK, false);
        c.lookup(0x40, AccessKind::Write);
        c.fill(0x40, &BLK, true);
        let view = c.set_view(0);
        assert_eq!(view.len(), 2);
        let v0 = view.iter().find(|v| v.addr == 0x00).expect("present");
        let v1 = view.iter().find(|v| v.addr == 0x40).expect("present");
        assert!(v0.valid && !v0.dirty);
        assert!(v1.valid && v1.dirty);
        assert_eq!(v1.rank, 0, "most recent fill is MRU");
        assert_eq!(v0.rank, 1);
    }

    #[test]
    fn data_round_trip_and_write_data() {
        let mut c = small();
        c.lookup(0x00, AccessKind::Read);
        let id = c.fill(0x00, &BLK, false);
        c.write_data(id, 4, &[1, 2, 3, 4]);
        assert_eq!(&c.data(id)[4..8], &[1, 2, 3, 4]);
        let dirty = c.dirty_blocks();
        assert_eq!(dirty.len(), 1, "write_data dirties the block");
    }

    #[test]
    fn gated_frame_tag_match_is_a_miss() {
        let mut c = small();
        c.lookup(0x00, AccessKind::Read);
        c.fill(0x00, &BLK, false);
        let id = c.contains(0x00).expect("resident");
        c.gate(id);
        assert!(!c.lookup(0x00, AccessKind::Read).is_hit());
    }

    #[test]
    #[should_panic(expected = "exactly one block")]
    fn fill_rejects_wrong_size() {
        let mut c = small();
        c.fill(0x00, &[0u8; 8], false);
    }

    #[test]
    fn generic_kernel_paths_match_dispatched_paths() {
        use crate::LruKernel;
        let mut a = small();
        let mut b = small();
        for i in 0..64u64 {
            let addr = (i * 16) % 256;
            let kind = if i % 3 == 0 {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            let ra = a.lookup_with(addr, kind, |_, _| {});
            let rb = b.lookup_with_k::<LruKernel>(addr, kind, |_, _| {});
            assert_eq!(ra, rb, "access {i}");
            if !ra.is_hit() {
                assert_eq!(
                    a.fill(addr, &BLK, false),
                    b.fill_k::<LruKernel>(addr, &BLK, false)
                );
            }
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "policy kernel must match")]
    fn mismatched_kernel_panics_in_debug() {
        use crate::DrripKernel;
        let mut c = small(); // configured LRU
        let _ = c.lookup_with_k::<DrripKernel>(0x00, AccessKind::Read, |_, _| {});
    }

    #[test]
    fn drrip_cache_works_end_to_end() {
        let g = CacheGeometry::new(4096, 4, 16).expect("valid");
        let mut c = Cache::new(CacheConfig {
            geometry: g,
            policy: ReplacementPolicy::Drrip,
        });
        let blk = [0u8; 16];
        // Streaming pattern: DRRIP should not thrash everything.
        for i in 0..4096u64 {
            let addr = i * 16;
            if !c.lookup(addr, AccessKind::Read).is_hit() {
                c.fill(addr, &blk, false);
            }
        }
        assert_eq!(c.stats().fills, 4096);
    }
}
