//! Replacement policies and their per-set state.
//!
//! Policies do double duty in this workspace: besides choosing victims they
//! expose a per-way *eviction rank* ([`PolicyState::ranks`]) — 0 for the most
//! protected (MRU-like) block up to `ways - 1` for the next victim — which is
//! exactly the recency information EDBP piggybacks on (paper Section V-A).

/// The cache replacement policies available to the simulator.
///
/// The paper evaluates LRU (default) and DRRIP (Fig. 10); FIFO and Random
/// are provided for completeness and for stress-testing predictors against
/// weaker recency signals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReplacementPolicy {
    /// Least-recently-used stack (the paper's default).
    #[default]
    Lru,
    /// Tree-based pseudo-LRU — the "(pseudo) LRU" variant Section V-A names
    /// as equally suitable for EDBP's recency source.
    TreePlru,
    /// Dynamic re-reference interval prediction (SRRIP/BRRIP set dueling).
    Drrip,
    /// First-in first-out.
    Fifo,
    /// Pseudo-random (deterministic LFSR).
    Random,
}

impl ReplacementPolicy {
    /// Canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            ReplacementPolicy::Lru => "lru",
            ReplacementPolicy::TreePlru => "tree-plru",
            ReplacementPolicy::Drrip => "drrip",
            ReplacementPolicy::Fifo => "fifo",
            ReplacementPolicy::Random => "random",
        }
    }
}

/// Maximum re-reference prediction value (2-bit RRPV).
const RRPV_MAX: u8 = 3;
/// RRPV given to fresh SRRIP fills ("long re-reference interval").
const RRPV_LONG: u8 = RRPV_MAX - 1;
/// BRRIP inserts at distant RRPV except once every `BRRIP_EPSILON` fills.
const BRRIP_EPSILON: u32 = 32;
/// 10-bit saturating policy-selection counter midpoint.
const PSEL_MAX: u16 = 1023;

/// Per-set replacement state, dispatched on the policy.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum SetPolicyState {
    /// Way indices ordered MRU → LRU.
    Lru { order: Vec<u8> },
    /// Tree-PLRU decision bits: node `i` has children `2i+1`/`2i+2`; a set
    /// bit means "the cold (LRU-ish) side is the right child".
    TreePlru { bits: Vec<bool>, ways: u8 },
    /// Per-way RRPV values.
    Drrip { rrpv: Vec<u8> },
    /// Way indices ordered newest → oldest.
    Fifo { order: Vec<u8> },
    /// No per-way state; victims from the shared LFSR.
    Random,
}

/// Cache-level shared policy state (set dueling, LFSR).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct SharedPolicyState {
    policy: ReplacementPolicy,
    /// DRRIP policy-selection counter: < midpoint favours SRRIP.
    psel: u16,
    /// Fill counter used for BRRIP's epsilon insertions.
    brrip_fills: u32,
    /// Deterministic LFSR for the Random policy.
    lfsr: u32,
    /// Number of sets (for leader-set selection).
    sets: u32,
}

impl SharedPolicyState {
    pub(crate) fn new(policy: ReplacementPolicy, sets: u32) -> Self {
        Self {
            policy,
            psel: PSEL_MAX / 2,
            brrip_fills: 0,
            lfsr: 0xACE1_u32,
            sets,
        }
    }

    fn next_random(&mut self) -> u32 {
        // 32-bit xorshift; deterministic and cheap.
        let mut x = self.lfsr;
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        self.lfsr = x;
        x
    }

    /// Leader-set role for DRRIP set dueling: every 32nd set leads SRRIP,
    /// offset by 16 for BRRIP.
    fn duel_role(&self, set: u32) -> DuelRole {
        if self.sets < 64 {
            // Small caches: sets 0/1 lead so dueling still functions.
            if set == 0 {
                return DuelRole::SrripLeader;
            }
            if set == 1 && self.sets > 1 {
                return DuelRole::BrripLeader;
            }
            return DuelRole::Follower;
        }
        match set % 32 {
            0 => DuelRole::SrripLeader,
            16 => DuelRole::BrripLeader,
            _ => DuelRole::Follower,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DuelRole {
    SrripLeader,
    BrripLeader,
    Follower,
}

impl SetPolicyState {
    pub(crate) fn new(policy: ReplacementPolicy, ways: u8) -> Self {
        match policy {
            ReplacementPolicy::Lru => SetPolicyState::Lru {
                order: (0..ways).collect(),
            },
            ReplacementPolicy::TreePlru => {
                assert!(
                    ways.is_power_of_two(),
                    "tree-PLRU needs a power-of-two way count"
                );
                SetPolicyState::TreePlru {
                    bits: vec![false; usize::from(ways).saturating_sub(1)],
                    ways,
                }
            }
            ReplacementPolicy::Drrip => SetPolicyState::Drrip {
                rrpv: vec![RRPV_MAX; ways as usize],
            },
            ReplacementPolicy::Fifo => SetPolicyState::Fifo {
                order: (0..ways).collect(),
            },
            ReplacementPolicy::Random => SetPolicyState::Random,
        }
    }

    /// Records a hit on `way`.
    pub(crate) fn on_hit(&mut self, way: u8) {
        match self {
            SetPolicyState::Lru { order } => promote(order, way),
            SetPolicyState::TreePlru { bits, ways } => plru_touch(bits, *ways, way),
            SetPolicyState::Drrip { rrpv } => rrpv[way as usize] = 0,
            SetPolicyState::Fifo { .. } | SetPolicyState::Random => {}
        }
    }

    /// Records a fill into `way` (after victim selection).
    pub(crate) fn on_fill(&mut self, way: u8, set: u32, shared: &mut SharedPolicyState) {
        match self {
            SetPolicyState::Lru { order } => promote(order, way),
            SetPolicyState::TreePlru { bits, ways } => plru_touch(bits, *ways, way),
            SetPolicyState::Drrip { rrpv } => {
                let use_brrip = match shared.duel_role(set) {
                    DuelRole::SrripLeader => false,
                    DuelRole::BrripLeader => true,
                    DuelRole::Follower => shared.psel > PSEL_MAX / 2,
                };
                rrpv[way as usize] = if use_brrip {
                    shared.brrip_fills = shared.brrip_fills.wrapping_add(1);
                    if shared.brrip_fills.is_multiple_of(BRRIP_EPSILON) {
                        RRPV_LONG
                    } else {
                        RRPV_MAX
                    }
                } else {
                    RRPV_LONG
                };
            }
            SetPolicyState::Fifo { order } => promote(order, way),
            SetPolicyState::Random => {}
        }
    }

    /// Records a miss in this set for DRRIP set dueling.
    pub(crate) fn on_miss(&mut self, set: u32, shared: &mut SharedPolicyState) {
        if matches!(self, SetPolicyState::Drrip { .. }) {
            match shared.duel_role(set) {
                // A miss in an SRRIP leader argues for BRRIP, and vice versa.
                DuelRole::SrripLeader => shared.psel = (shared.psel + 1).min(PSEL_MAX),
                DuelRole::BrripLeader => shared.psel = shared.psel.saturating_sub(1),
                DuelRole::Follower => {}
            }
        }
    }

    /// Chooses a victim way among the occupied ways, assuming no invalid way
    /// was available (the cache prefers invalid/gated ways first).
    pub(crate) fn victim(&mut self, shared: &mut SharedPolicyState, ways: u8) -> u8 {
        match self {
            SetPolicyState::Lru { order } | SetPolicyState::Fifo { order } => {
                *order.last().expect("non-empty set")
            }
            SetPolicyState::TreePlru { bits, ways } => plru_victim(bits, *ways),
            SetPolicyState::Drrip { rrpv } => loop {
                if let Some(w) = rrpv.iter().position(|&r| r >= RRPV_MAX) {
                    break w as u8;
                }
                for r in rrpv.iter_mut() {
                    *r += 1;
                }
            },
            SetPolicyState::Random => (shared.next_random() % u32::from(ways)) as u8,
        }
    }

    /// Eviction rank per way: 0 = most protected (MRU-like), `ways-1` = next
    /// victim. This is the recency signal EDBP reads (Section V-A).
    pub(crate) fn ranks(&self, ways: u8) -> Vec<u8> {
        match self {
            SetPolicyState::Lru { order } | SetPolicyState::Fifo { order } => {
                let mut ranks = vec![0u8; ways as usize];
                for (pos, &way) in order.iter().enumerate() {
                    ranks[way as usize] = pos as u8;
                }
                ranks
            }
            SetPolicyState::TreePlru { bits, ways } => {
                // Rank by "how many decision bits point away from the way":
                // follow the path to each leaf counting agreements; the
                // victim (all bits pointing at it) ranks last. Ties broken
                // by way index for determinism.
                let n = *ways;
                let mut idx: Vec<u8> = (0..n).collect();
                idx.sort_by_key(|&w| (plru_coldness(bits, n, w), w));
                let mut ranks = vec![0u8; n as usize];
                for (pos, &way) in idx.iter().enumerate() {
                    ranks[way as usize] = pos as u8;
                }
                ranks
            }
            SetPolicyState::Drrip { rrpv } => {
                // Sort ways by RRPV ascending (low RRPV = soon re-referenced =
                // protected), tie-broken by way index for determinism.
                let mut idx: Vec<u8> = (0..ways).collect();
                idx.sort_by_key(|&w| (rrpv[w as usize], w));
                let mut ranks = vec![0u8; ways as usize];
                for (pos, &way) in idx.iter().enumerate() {
                    ranks[way as usize] = pos as u8;
                }
                ranks
            }
            SetPolicyState::Random => (0..ways).collect(),
        }
    }
}

/// Tree-PLRU: point every decision bit on the path to `way` *away* from it.
fn plru_touch(bits: &mut [bool], ways: u8, way: u8) {
    let mut node = 0usize;
    let mut lo = 0u8;
    let mut hi = ways;
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        let go_right = way >= mid;
        // Bit true = cold side is right; touching the right child points
        // the bit left (false), and vice versa.
        bits[node] = !go_right;
        node = 2 * node + if go_right { 2 } else { 1 };
        if go_right {
            lo = mid;
        } else {
            hi = mid;
        }
    }
}

/// Tree-PLRU: follow the cold side of every decision bit to the victim.
fn plru_victim(bits: &[bool], ways: u8) -> u8 {
    let mut node = 0usize;
    let mut lo = 0u8;
    let mut hi = ways;
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        let go_right = bits[node];
        node = 2 * node + if go_right { 2 } else { 1 };
        if go_right {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

/// How many decision bits on the path to `way` point *towards* it (higher =
/// colder = closer to eviction).
fn plru_coldness(bits: &[bool], ways: u8, way: u8) -> u8 {
    let mut node = 0usize;
    let mut lo = 0u8;
    let mut hi = ways;
    let mut coldness = 0u8;
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        let go_right = way >= mid;
        if bits[node] == go_right {
            coldness += 1;
        }
        node = 2 * node + if go_right { 2 } else { 1 };
        if go_right {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    coldness
}

/// Moves `way` to the front (MRU/newest position) of an order vector.
fn promote(order: &mut [u8], way: u8) {
    if let Some(pos) = order.iter().position(|&w| w == way) {
        order[..=pos].rotate_right(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn promote_moves_to_front() {
        let mut order = vec![0u8, 1, 2, 3];
        promote(&mut order, 2);
        assert_eq!(order, vec![2, 0, 1, 3]);
        promote(&mut order, 2);
        assert_eq!(order, vec![2, 0, 1, 3]);
        promote(&mut order, 3);
        assert_eq!(order, vec![3, 2, 0, 1]);
    }

    #[test]
    fn lru_victim_is_least_recent() {
        let mut shared = SharedPolicyState::new(ReplacementPolicy::Lru, 64);
        let mut set = SetPolicyState::new(ReplacementPolicy::Lru, 4);
        for w in [0u8, 1, 2, 3] {
            set.on_fill(w, 0, &mut shared);
        }
        set.on_hit(0);
        // Order now 0,3,2,1 → victim 1.
        assert_eq!(set.victim(&mut shared, 4), 1);
    }

    #[test]
    fn lru_ranks_match_stack_positions() {
        let mut shared = SharedPolicyState::new(ReplacementPolicy::Lru, 64);
        let mut set = SetPolicyState::new(ReplacementPolicy::Lru, 4);
        for w in [0u8, 1, 2, 3] {
            set.on_fill(w, 0, &mut shared);
        }
        // MRU→LRU: 3,2,1,0.
        assert_eq!(set.ranks(4), vec![3, 2, 1, 0]);
        set.on_hit(0);
        assert_eq!(set.ranks(4), vec![0, 3, 2, 1]);
    }

    #[test]
    fn drrip_hit_promotes_to_rrpv_zero() {
        let mut shared = SharedPolicyState::new(ReplacementPolicy::Drrip, 64);
        let mut set = SetPolicyState::new(ReplacementPolicy::Drrip, 4);
        set.on_fill(1, 5, &mut shared);
        set.on_hit(1);
        let ranks = set.ranks(4);
        assert_eq!(ranks[1], 0, "hit block should be most protected");
    }

    #[test]
    fn drrip_victim_prefers_max_rrpv() {
        let mut shared = SharedPolicyState::new(ReplacementPolicy::Drrip, 64);
        let mut set = SetPolicyState::new(ReplacementPolicy::Drrip, 4);
        // All start at RRPV_MAX; fill way 0 (gets RRPV_LONG in SRRIP leader).
        set.on_fill(0, 0, &mut shared);
        let v = set.victim(&mut shared, 4);
        assert_ne!(v, 0, "freshly filled way should not be the victim");
    }

    #[test]
    fn drrip_aging_terminates() {
        let mut shared = SharedPolicyState::new(ReplacementPolicy::Drrip, 64);
        let mut set = SetPolicyState::new(ReplacementPolicy::Drrip, 4);
        for w in 0..4 {
            set.on_fill(w, 0, &mut shared);
            set.on_hit(w); // all at RRPV 0
        }
        let _ = set.victim(&mut shared, 4); // must age until a victim appears
    }

    #[test]
    fn fifo_ignores_hits() {
        let mut shared = SharedPolicyState::new(ReplacementPolicy::Fifo, 64);
        let mut set = SetPolicyState::new(ReplacementPolicy::Fifo, 4);
        for w in [0u8, 1, 2, 3] {
            set.on_fill(w, 0, &mut shared);
        }
        set.on_hit(0); // should NOT rescue way 0
        assert_eq!(set.victim(&mut shared, 4), 0);
    }

    #[test]
    fn random_victim_in_range_and_deterministic() {
        let mut a = SharedPolicyState::new(ReplacementPolicy::Random, 64);
        let mut b = SharedPolicyState::new(ReplacementPolicy::Random, 64);
        let mut set = SetPolicyState::new(ReplacementPolicy::Random, 4);
        for _ in 0..100 {
            let va = set.victim(&mut a, 4);
            let vb = set.victim(&mut b, 4);
            assert!(va < 4);
            assert_eq!(va, vb, "same seed must give same victims");
        }
    }

    #[test]
    fn ranks_are_a_permutation() {
        for policy in [
            ReplacementPolicy::Lru,
            ReplacementPolicy::TreePlru,
            ReplacementPolicy::Drrip,
            ReplacementPolicy::Fifo,
            ReplacementPolicy::Random,
        ] {
            let mut shared = SharedPolicyState::new(policy, 64);
            let mut set = SetPolicyState::new(policy, 4);
            for w in [0u8, 2, 1, 3, 2, 0] {
                set.on_fill(w, 0, &mut shared);
            }
            let mut ranks = set.ranks(4);
            ranks.sort_unstable();
            assert_eq!(ranks, vec![0, 1, 2, 3], "{policy:?}");
        }
    }

    #[test]
    fn policy_names() {
        assert_eq!(ReplacementPolicy::Lru.name(), "lru");
        assert_eq!(ReplacementPolicy::Drrip.name(), "drrip");
        assert_eq!(ReplacementPolicy::TreePlru.name(), "tree-plru");
    }

    #[test]
    fn plru_victim_is_never_the_last_touched_way() {
        let mut shared = SharedPolicyState::new(ReplacementPolicy::TreePlru, 64);
        let mut set = SetPolicyState::new(ReplacementPolicy::TreePlru, 4);
        for w in [0u8, 1, 2, 3, 1, 0, 2] {
            set.on_hit(w);
            assert_ne!(set.victim(&mut shared, 4), w, "victim after touching {w}");
        }
    }

    #[test]
    fn plru_cycles_through_all_ways_under_round_robin_fills() {
        // Repeatedly filling the victim must visit every way (no starvation).
        let mut shared = SharedPolicyState::new(ReplacementPolicy::TreePlru, 64);
        let mut set = SetPolicyState::new(ReplacementPolicy::TreePlru, 4);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..8 {
            let v = set.victim(&mut shared, 4);
            seen.insert(v);
            set.on_fill(v, 0, &mut shared);
        }
        assert_eq!(seen.len(), 4, "PLRU must not starve any way: {seen:?}");
    }

    #[test]
    fn plru_ranks_put_victim_last() {
        let mut shared = SharedPolicyState::new(ReplacementPolicy::TreePlru, 64);
        let mut set = SetPolicyState::new(ReplacementPolicy::TreePlru, 4);
        for w in [0u8, 1, 2, 3, 0, 1] {
            set.on_hit(w);
        }
        let ranks = set.ranks(4);
        let victim = set.victim(&mut shared, 4);
        assert_eq!(
            ranks[victim as usize], 3,
            "the PLRU victim must hold the worst rank (ranks {ranks:?}, victim {victim})"
        );
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn plru_rejects_non_power_of_two_ways() {
        let _ = SetPolicyState::new(ReplacementPolicy::TreePlru, 3);
    }
}
