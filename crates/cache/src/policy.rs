//! Replacement policies and their per-set state.
//!
//! Policies do double duty in this workspace: besides choosing victims they
//! expose a per-way *eviction rank* — 0 for the most protected (MRU-like)
//! block up to `ways - 1` for the next victim — which is exactly the recency
//! information EDBP piggybacks on (paper Section V-A).
//!
//! # Packed representation
//!
//! Per-set state is fixed-width and inline — no heap allocation per set, and
//! no sort on the read path:
//!
//! * Every policy maintains a **rank word**: a `u64` holding one 4-bit rank
//!   per way (way `w` in bits `4w..4w+4`), so rank reads are a shift/mask
//!   and recency updates are branchless SWAR kernels
//!   ([`promote_word`], [`find_rank`]). Nibbles at or above the way count
//!   hold values `>= ways`, which keeps them inert: promotions only
//!   increment lanes ranked *better* than the promoted way, and rank
//!   searches only look for values `< ways`.
//! * Tree-PLRU decision bits live in a `u16` (node `i` = bit `i`).
//! * DRRIP RRPVs live in 2-bit lanes of a `u32`.
//!
//! This caps associativity at [`MAX_WAYS`] = 16 ways, far above anything the
//! experiments sweep (the paper's caches are 4-way; Fig. 12 sweeps 1–8).
//!
//! # Kernels
//!
//! Each policy's transition functions are exposed as a zero-sized
//! [`PolicyKernel`] type ([`LruKernel`], [`TreePlruKernel`], [`DrripKernel`],
//! [`FifoKernel`], [`RandomKernel`]) operating on a plain-old-data
//! [`SetState`]. The [`with_policy_kernel!`] macro is the single
//! enum-to-generic dispatch point: it matches a [`ReplacementPolicy`]
//! exhaustively (no wildcard arm) and runs the caller's body with the
//! matching kernel type bound, so hot loops monomorphize per policy and pay
//! the dispatch once per run instead of once per access. [`SetPolicyState`]
//! is the scalar one-set-at-a-time view over the same kernels; the model
//! proptests at the bottom of this file pin it — and therefore every kernel —
//! against a verbatim port of the pre-packing heap implementation.

/// Maximum associativity supported by the packed per-set policy state
/// (one 4-bit rank lane per way in a `u64`).
pub const MAX_WAYS: usize = 16;

/// The cache replacement policies available to the simulator.
///
/// The paper evaluates LRU (default) and DRRIP (Fig. 10); FIFO and Random
/// are provided for completeness and for stress-testing predictors against
/// weaker recency signals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReplacementPolicy {
    /// Least-recently-used stack (the paper's default).
    #[default]
    Lru,
    /// Tree-based pseudo-LRU — the "(pseudo) LRU" variant Section V-A names
    /// as equally suitable for EDBP's recency source.
    TreePlru,
    /// Dynamic re-reference interval prediction (SRRIP/BRRIP set dueling).
    Drrip,
    /// First-in first-out.
    Fifo,
    /// Pseudo-random (deterministic LFSR).
    Random,
}

impl ReplacementPolicy {
    /// Every policy, in declaration order. Used by the kernel-matrix tests
    /// to prove the enum-to-generic dispatch is exhaustive.
    pub const ALL: [ReplacementPolicy; 5] = [
        ReplacementPolicy::Lru,
        ReplacementPolicy::TreePlru,
        ReplacementPolicy::Drrip,
        ReplacementPolicy::Fifo,
        ReplacementPolicy::Random,
    ];

    /// Canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            ReplacementPolicy::Lru => "lru",
            ReplacementPolicy::TreePlru => "tree-plru",
            ReplacementPolicy::Drrip => "drrip",
            ReplacementPolicy::Fifo => "fifo",
            ReplacementPolicy::Random => "random",
        }
    }
}

/// Maximum re-reference prediction value (2-bit RRPV).
const RRPV_MAX: u8 = 3;
/// RRPV given to fresh SRRIP fills ("long re-reference interval").
const RRPV_LONG: u8 = RRPV_MAX - 1;
/// BRRIP inserts at distant RRPV except once every `BRRIP_EPSILON` fills.
const BRRIP_EPSILON: u32 = 32;
/// 10-bit saturating policy-selection counter midpoint.
const PSEL_MAX: u16 = 1023;

/// `0x01` in every byte lane.
const BYTE_ONES: u64 = 0x0101_0101_0101_0101;
/// Low nibble of every byte lane.
const NIBBLE_LO: u64 = 0x0F0F_0F0F_0F0F_0F0F;
/// `0x1` in every nibble lane.
const NIBBLE_ONES: u64 = 0x1111_1111_1111_1111;
/// MSB of every nibble lane.
const NIBBLE_MSB: u64 = 0x8888_8888_8888_8888;
/// Rank word with nibble `i` holding value `i` (the identity permutation).
const IDENTITY_WORD: u64 = 0xFEDC_BA98_7654_3210;
/// `0b01` in every 2-bit RRPV lane.
const RRPV_LANE_ONES: u32 = 0x5555_5555;

/// Reads way `way`'s nibble from a rank word.
#[inline]
pub(crate) fn rank_of(ranks: u64, way: u8) -> u8 {
    ((ranks >> (4 * u32::from(way))) & 0xF) as u8
}

/// Writes way `way`'s nibble in a rank word.
#[inline]
fn set_rank(ranks: u64, way: u8, rank: u8) -> u64 {
    let shift = 4 * u32::from(way);
    (ranks & !(0xF_u64 << shift)) | (u64::from(rank) << shift)
}

/// Branchless MRU promotion on a packed rank word: way `way` moves to rank
/// 0 and every way previously ranked better than it slides down one rank.
///
/// SWAR: split the 16 nibble lanes across two byte-lane half-words so each
/// lane has carry headroom, compute a per-lane `lane < r` mask from the
/// carry-out bit of `lane + (16 - r)`, and add the mask back in. Lanes with
/// values `>= ways` (the unused ones) are never `< r` and stay untouched.
#[inline]
fn promote_word(ranks: u64, way: u8) -> u64 {
    let shift = 4 * u32::from(way);
    let r = (ranks >> shift) & 0xF;
    let add = (16 - r) * BYTE_ONES;
    let even = ranks & NIBBLE_LO;
    let odd = (ranks >> 4) & NIBBLE_LO;
    // Byte lane = x + (16 - r); bit 4 set iff x >= r. Invert for "x < r".
    let lt_even = (((even + add) >> 4) & BYTE_ONES) ^ BYTE_ONES;
    let lt_odd = (((odd + add) >> 4) & BYTE_ONES) ^ BYTE_ONES;
    // x < r implies x <= 14, so x + 1 never overflows its nibble.
    let bumped = ((even + lt_even) & NIBBLE_LO) | (((odd + lt_odd) & NIBBLE_LO) << 4);
    bumped & !(0xF_u64 << shift)
}

/// Finds the way holding rank `rank` in a packed rank word (the word must
/// contain it exactly once among the low `ways` lanes — ranks are a
/// permutation). Branchless zero-nibble search: borrow-propagation false
/// positives can only appear *above* the true match, and `trailing_zeros`
/// picks the lowest lane.
#[inline]
fn find_rank(ranks: u64, rank: u8) -> u8 {
    let x = ranks ^ (u64::from(rank) * NIBBLE_ONES);
    let m = x.wrapping_sub(NIBBLE_ONES) & !x & NIBBLE_MSB;
    (m.trailing_zeros() / 4) as u8
}

/// Initial rank word: way `w` at rank `w`, unused lanes inert (`>= ways`).
#[inline]
fn identity_word(_ways: u8) -> u64 {
    IDENTITY_WORD
}

/// Plain-old-data per-set policy state shared by every kernel. Each kernel
/// uses only the lanes it needs (`ranks` for all but Random, `plru` for
/// tree-PLRU decision bits, `rrpv` for DRRIP); the unused lanes stay zero.
/// 16 bytes, `Copy`, no heap — the cache stores one of these per set in a
/// flat struct-of-arrays column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SetState {
    /// Nibble-packed per-way eviction ranks (see module docs).
    pub(crate) ranks: u64,
    /// Tree-PLRU decision bits: node `i` = bit `i`.
    pub(crate) plru: u16,
    /// 2-bit RRPVs packed in a `u32`.
    pub(crate) rrpv: u32,
}

/// Cache-level shared policy state (set dueling, LFSR).
#[derive(Debug, Clone, PartialEq)]
pub struct SharedPolicyState {
    policy: ReplacementPolicy,
    /// DRRIP policy-selection counter: < midpoint favours SRRIP.
    psel: u16,
    /// Fill counter used for BRRIP's epsilon insertions.
    brrip_fills: u32,
    /// Deterministic LFSR for the Random policy.
    lfsr: u32,
    /// Number of sets (for leader-set selection).
    sets: u32,
}

impl SharedPolicyState {
    /// Fresh shared state for a cache of `sets` sets.
    pub fn new(policy: ReplacementPolicy, sets: u32) -> Self {
        Self {
            policy,
            psel: PSEL_MAX / 2,
            brrip_fills: 0,
            lfsr: 0xACE1_u32,
            sets,
        }
    }

    fn next_random(&mut self) -> u32 {
        // 32-bit xorshift; deterministic and cheap.
        let mut x = self.lfsr;
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        self.lfsr = x;
        x
    }

    /// Leader-set role for DRRIP set dueling: every 32nd set leads SRRIP,
    /// offset by 16 for BRRIP.
    fn duel_role(&self, set: u32) -> DuelRole {
        if self.sets < 64 {
            // Small caches: sets 0/1 lead so dueling still functions.
            if set == 0 {
                return DuelRole::SrripLeader;
            }
            if set == 1 && self.sets > 1 {
                return DuelRole::BrripLeader;
            }
            return DuelRole::Follower;
        }
        match set % 32 {
            0 => DuelRole::SrripLeader,
            16 => DuelRole::BrripLeader,
            _ => DuelRole::Follower,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DuelRole {
    SrripLeader,
    BrripLeader,
    Follower,
}

/// A replacement policy's transition functions as compile-time statics, so
/// the per-access cache path monomorphizes per policy instead of matching a
/// [`ReplacementPolicy`] on every probe. Obtain a kernel type with
/// [`with_policy_kernel!`]; never mix kernels and sets of different
/// policies (the cache guards this with a debug assertion).
pub trait PolicyKernel {
    /// The enum variant this kernel specializes.
    const POLICY: ReplacementPolicy;

    /// Fresh per-set state for a set of `ways` ways.
    fn init(ways: u8) -> SetState;

    /// Records a hit on `way`.
    fn on_hit(state: &mut SetState, way: u8, ways: u8);

    /// Records a fill into `way` (after victim selection).
    fn on_fill(state: &mut SetState, way: u8, set: u32, ways: u8, shared: &mut SharedPolicyState);

    /// Records a miss in set `set` (DRRIP set dueling).
    fn on_miss(state: &mut SetState, set: u32, shared: &mut SharedPolicyState);

    /// Chooses a victim way among the occupied ways, assuming no invalid
    /// way was available (the cache prefers invalid/gated ways first).
    fn victim(state: &mut SetState, shared: &mut SharedPolicyState, ways: u8) -> u8;

    /// The packed rank word — 0 = most protected, `ways-1` = next victim;
    /// the recency signal EDBP reads (Section V-A).
    fn ranks_word(state: &SetState) -> u64;
}

/// LRU: packed rank word, ways ordered by recency (rank 0 = MRU).
#[derive(Debug, Clone, Copy)]
pub struct LruKernel;

impl PolicyKernel for LruKernel {
    const POLICY: ReplacementPolicy = ReplacementPolicy::Lru;

    #[inline]
    fn init(ways: u8) -> SetState {
        SetState {
            ranks: identity_word(ways),
            ..SetState::default()
        }
    }

    #[inline]
    fn on_hit(state: &mut SetState, way: u8, _ways: u8) {
        state.ranks = promote_word(state.ranks, way);
    }

    #[inline]
    fn on_fill(
        state: &mut SetState,
        way: u8,
        _set: u32,
        _ways: u8,
        _shared: &mut SharedPolicyState,
    ) {
        state.ranks = promote_word(state.ranks, way);
    }

    #[inline]
    fn on_miss(_state: &mut SetState, _set: u32, _shared: &mut SharedPolicyState) {}

    #[inline]
    fn victim(state: &mut SetState, _shared: &mut SharedPolicyState, ways: u8) -> u8 {
        find_rank(state.ranks, ways - 1)
    }

    #[inline]
    fn ranks_word(state: &SetState) -> u64 {
        state.ranks
    }
}

/// Tree-PLRU: decision bits in `plru`, rank word maintained incrementally
/// on every touch.
#[derive(Debug, Clone, Copy)]
pub struct TreePlruKernel;

impl PolicyKernel for TreePlruKernel {
    const POLICY: ReplacementPolicy = ReplacementPolicy::TreePlru;

    #[inline]
    fn init(ways: u8) -> SetState {
        assert!(
            ways.is_power_of_two(),
            "tree-PLRU needs a power-of-two way count"
        );
        let bits = 0u16;
        SetState {
            ranks: plru_rank_word(bits, ways),
            plru: bits,
            rrpv: 0,
        }
    }

    #[inline]
    fn on_hit(state: &mut SetState, way: u8, ways: u8) {
        plru_touch(&mut state.plru, ways, way);
        state.ranks = plru_rank_word(state.plru, ways);
    }

    #[inline]
    fn on_fill(
        state: &mut SetState,
        way: u8,
        _set: u32,
        ways: u8,
        _shared: &mut SharedPolicyState,
    ) {
        plru_touch(&mut state.plru, ways, way);
        state.ranks = plru_rank_word(state.plru, ways);
    }

    #[inline]
    fn on_miss(_state: &mut SetState, _set: u32, _shared: &mut SharedPolicyState) {}

    #[inline]
    fn victim(state: &mut SetState, _shared: &mut SharedPolicyState, ways: u8) -> u8 {
        plru_victim(state.plru, ways)
    }

    #[inline]
    fn ranks_word(state: &SetState) -> u64 {
        state.ranks
    }
}

/// DRRIP: 2-bit RRPVs with SRRIP/BRRIP set dueling; rank word maintained
/// incrementally on every RRPV change.
#[derive(Debug, Clone, Copy)]
pub struct DrripKernel;

impl PolicyKernel for DrripKernel {
    const POLICY: ReplacementPolicy = ReplacementPolicy::Drrip;

    #[inline]
    fn init(ways: u8) -> SetState {
        let rrpv = rrpv_all_max(ways);
        SetState {
            ranks: drrip_rank_word(rrpv, ways),
            plru: 0,
            rrpv,
        }
    }

    #[inline]
    fn on_hit(state: &mut SetState, way: u8, ways: u8) {
        state.rrpv = rrpv_set(state.rrpv, way, 0);
        state.ranks = drrip_rank_word(state.rrpv, ways);
    }

    #[inline]
    fn on_fill(state: &mut SetState, way: u8, set: u32, ways: u8, shared: &mut SharedPolicyState) {
        let use_brrip = match shared.duel_role(set) {
            DuelRole::SrripLeader => false,
            DuelRole::BrripLeader => true,
            DuelRole::Follower => shared.psel > PSEL_MAX / 2,
        };
        let insert = if use_brrip {
            shared.brrip_fills = shared.brrip_fills.wrapping_add(1);
            if shared.brrip_fills.is_multiple_of(BRRIP_EPSILON) {
                RRPV_LONG
            } else {
                RRPV_MAX
            }
        } else {
            RRPV_LONG
        };
        state.rrpv = rrpv_set(state.rrpv, way, insert);
        state.ranks = drrip_rank_word(state.rrpv, ways);
    }

    #[inline]
    fn on_miss(_state: &mut SetState, set: u32, shared: &mut SharedPolicyState) {
        match shared.duel_role(set) {
            // A miss in an SRRIP leader argues for BRRIP, and vice versa.
            DuelRole::SrripLeader => shared.psel = (shared.psel + 1).min(PSEL_MAX),
            DuelRole::BrripLeader => shared.psel = shared.psel.saturating_sub(1),
            DuelRole::Follower => {}
        }
    }

    #[inline]
    fn victim(state: &mut SetState, _shared: &mut SharedPolicyState, ways: u8) -> u8 {
        let lane_mask = RRPV_LANE_ONES & rrpv_used_mask(ways);
        loop {
            // Bit `2w` set iff way `w` sits at RRPV_MAX (0b11).
            let distant = state.rrpv & (state.rrpv >> 1) & lane_mask;
            if distant != 0 {
                break (distant.trailing_zeros() / 2) as u8;
            }
            // Age every way by one; no lane is at 3, so no carry.
            state.rrpv += lane_mask;
            state.ranks = drrip_rank_word(state.rrpv, ways);
        }
    }

    #[inline]
    fn ranks_word(state: &SetState) -> u64 {
        state.ranks
    }
}

/// FIFO: packed rank word, ways ordered by fill age (rank 0 = newest);
/// hits change nothing.
#[derive(Debug, Clone, Copy)]
pub struct FifoKernel;

impl PolicyKernel for FifoKernel {
    const POLICY: ReplacementPolicy = ReplacementPolicy::Fifo;

    #[inline]
    fn init(ways: u8) -> SetState {
        SetState {
            ranks: identity_word(ways),
            ..SetState::default()
        }
    }

    #[inline]
    fn on_hit(_state: &mut SetState, _way: u8, _ways: u8) {}

    #[inline]
    fn on_fill(
        state: &mut SetState,
        way: u8,
        _set: u32,
        _ways: u8,
        _shared: &mut SharedPolicyState,
    ) {
        state.ranks = promote_word(state.ranks, way);
    }

    #[inline]
    fn on_miss(_state: &mut SetState, _set: u32, _shared: &mut SharedPolicyState) {}

    #[inline]
    fn victim(state: &mut SetState, _shared: &mut SharedPolicyState, ways: u8) -> u8 {
        find_rank(state.ranks, ways - 1)
    }

    #[inline]
    fn ranks_word(state: &SetState) -> u64 {
        state.ranks
    }
}

/// Random: no per-way state; victims from the shared branchless xorshift
/// LFSR. Lives in the same monomorphized structure as the recency policies
/// so no policy falls back to slow dispatch.
#[derive(Debug, Clone, Copy)]
pub struct RandomKernel;

impl PolicyKernel for RandomKernel {
    const POLICY: ReplacementPolicy = ReplacementPolicy::Random;

    #[inline]
    fn init(ways: u8) -> SetState {
        SetState {
            ranks: identity_word(ways),
            ..SetState::default()
        }
    }

    #[inline]
    fn on_hit(_state: &mut SetState, _way: u8, _ways: u8) {}

    #[inline]
    fn on_fill(
        _state: &mut SetState,
        _way: u8,
        _set: u32,
        _ways: u8,
        _shared: &mut SharedPolicyState,
    ) {
    }

    #[inline]
    fn on_miss(_state: &mut SetState, _set: u32, _shared: &mut SharedPolicyState) {}

    #[inline]
    fn victim(_state: &mut SetState, shared: &mut SharedPolicyState, ways: u8) -> u8 {
        (shared.next_random() % u32::from(ways)) as u8
    }

    #[inline]
    fn ranks_word(state: &SetState) -> u64 {
        state.ranks
    }
}

/// The enum-to-generic dispatch point: runs `$body` with `$K` bound to the
/// [`PolicyKernel`] type matching `$policy`. The match is exhaustive with
/// **no wildcard arm**, so adding a [`ReplacementPolicy`] variant without a
/// kernel is a compile error — no policy can silently fall back to dynamic
/// dispatch. Callers pay this match once per run (or once per cache call on
/// the non-generic convenience paths), never once per access inside a
/// monomorphized loop.
#[macro_export]
macro_rules! with_policy_kernel {
    ($policy:expr, $K:ident => $body:expr) => {
        match $policy {
            $crate::ReplacementPolicy::Lru => {
                type $K = $crate::LruKernel;
                $body
            }
            $crate::ReplacementPolicy::TreePlru => {
                type $K = $crate::TreePlruKernel;
                $body
            }
            $crate::ReplacementPolicy::Drrip => {
                type $K = $crate::DrripKernel;
                $body
            }
            $crate::ReplacementPolicy::Fifo => {
                type $K = $crate::FifoKernel;
                $body
            }
            $crate::ReplacementPolicy::Random => {
                type $K = $crate::RandomKernel;
                $body
            }
        }
    };
}

/// Scalar one-set-at-a-time view over the policy kernels: a
/// (policy, ways, [`SetState`]) triple that dispatches each call through
/// [`with_policy_kernel!`]. The cache's hot path uses the kernels directly
/// over its struct-of-arrays columns; this wrapper exists for tests (the
/// model proptests pin it against the reference implementation, and through
/// it every kernel) and for callers that hold a single set's state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SetPolicyState {
    policy: ReplacementPolicy,
    ways: u8,
    state: SetState,
}

impl SetPolicyState {
    /// Fresh per-set state for `policy` over `ways` ways.
    pub fn new(policy: ReplacementPolicy, ways: u8) -> Self {
        assert!(
            usize::from(ways) <= MAX_WAYS && ways > 0,
            "packed policy state supports 1..={MAX_WAYS} ways, got {ways}"
        );
        let state = with_policy_kernel!(policy, K => K::init(ways));
        Self {
            policy,
            ways,
            state,
        }
    }

    /// Records a hit on `way`.
    pub fn on_hit(&mut self, way: u8) {
        with_policy_kernel!(self.policy, K => K::on_hit(&mut self.state, way, self.ways));
    }

    /// Records a fill into `way` (after victim selection).
    pub fn on_fill(&mut self, way: u8, set: u32, shared: &mut SharedPolicyState) {
        with_policy_kernel!(
            self.policy,
            K => K::on_fill(&mut self.state, way, set, self.ways, shared)
        );
    }

    /// Records a miss in this set for DRRIP set dueling.
    pub fn on_miss(&mut self, set: u32, shared: &mut SharedPolicyState) {
        with_policy_kernel!(self.policy, K => K::on_miss(&mut self.state, set, shared));
    }

    /// Chooses a victim way among the occupied ways, assuming no invalid way
    /// was available (the cache prefers invalid/gated ways first).
    pub fn victim(&mut self, shared: &mut SharedPolicyState, ways: u8) -> u8 {
        with_policy_kernel!(self.policy, K => K::victim(&mut self.state, shared, ways))
    }

    /// Eviction ranks per way — 0 = most protected (MRU-like), `ways-1` =
    /// next victim; the recency signal EDBP reads (Section V-A) — written
    /// into the low `ways` slots of a caller-provided buffer. A pure
    /// shift/mask read: no allocation, no sort.
    #[inline]
    pub fn ranks_into(&self, ways: u8, out: &mut [u8; MAX_WAYS]) {
        let word = with_policy_kernel!(self.policy, K => K::ranks_word(&self.state));
        for (w, slot) in out.iter_mut().enumerate().take(usize::from(ways)) {
            *slot = rank_of(word, w as u8);
        }
    }

    /// Rank snapshot as a `Vec` — a thin wrapper over [`ranks_into`] kept
    /// for tests.
    ///
    /// [`ranks_into`]: SetPolicyState::ranks_into
    #[cfg(test)]
    pub(crate) fn ranks(&self, ways: u8) -> Vec<u8> {
        let mut buf = [0u8; MAX_WAYS];
        self.ranks_into(ways, &mut buf);
        buf[..usize::from(ways)].to_vec()
    }
}

/// All-distant initial RRPV word: `RRPV_MAX` in every used lane, unused
/// lanes zero (so the victim search never matches them).
#[inline]
fn rrpv_used_mask(ways: u8) -> u32 {
    if ways >= 16 {
        u32::MAX
    } else {
        (1u32 << (2 * u32::from(ways))) - 1
    }
}

#[inline]
fn rrpv_all_max(ways: u8) -> u32 {
    rrpv_used_mask(ways)
}

/// Reads way `way`'s 2-bit RRPV lane.
#[inline]
fn rrpv_get(rrpv: u32, way: u8) -> u8 {
    ((rrpv >> (2 * u32::from(way))) & 0b11) as u8
}

/// Writes way `way`'s 2-bit RRPV lane.
#[inline]
fn rrpv_set(rrpv: u32, way: u8, value: u8) -> u32 {
    let shift = 2 * u32::from(way);
    (rrpv & !(0b11_u32 << shift)) | (u32::from(value) << shift)
}

/// Rank word for a DRRIP set: ways sorted by RRPV ascending (low RRPV =
/// soon re-referenced = protected), ties broken by way index. A stable
/// 4-bucket counting sort over fixed arrays — no allocation.
fn drrip_rank_word(rrpv: u32, ways: u8) -> u64 {
    let mut count = [0u8; 4];
    for w in 0..ways {
        count[usize::from(rrpv_get(rrpv, w))] += 1;
    }
    let mut next = [0u8; 4];
    let mut acc = 0u8;
    for (v, n) in next.iter_mut().zip(count) {
        *v = acc;
        acc += n;
    }
    let mut word = identity_word(ways);
    for w in 0..ways {
        let bucket = usize::from(rrpv_get(rrpv, w));
        word = set_rank(word, w, next[bucket]);
        next[bucket] += 1;
    }
    word
}

/// Rank word for a tree-PLRU set: ways sorted by "how many decision bits
/// point towards them" (colder = closer to eviction), ties broken by way
/// index. A stable counting sort over at most `log2(MAX_WAYS) + 1` buckets.
fn plru_rank_word(bits: u16, ways: u8) -> u64 {
    // Coldness of a way is at most the tree depth, log2(ways) <= 4.
    let mut count = [0u8; 5];
    let mut cold = [0u8; MAX_WAYS];
    for w in 0..ways {
        let c = plru_coldness(bits, ways, w);
        cold[usize::from(w)] = c;
        count[usize::from(c)] += 1;
    }
    let mut next = [0u8; 5];
    let mut acc = 0u8;
    for (v, n) in next.iter_mut().zip(count) {
        *v = acc;
        acc += n;
    }
    let mut word = identity_word(ways);
    for w in 0..ways {
        let bucket = usize::from(cold[usize::from(w)]);
        word = set_rank(word, w, next[bucket]);
        next[bucket] += 1;
    }
    word
}

/// Tree-PLRU: point every decision bit on the path to `way` *away* from it.
fn plru_touch(bits: &mut u16, ways: u8, way: u8) {
    let mut node = 0u32;
    let mut lo = 0u8;
    let mut hi = ways;
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        let go_right = way >= mid;
        // Bit true = cold side is right; touching the right child points
        // the bit left (false), and vice versa.
        if go_right {
            *bits &= !(1 << node);
        } else {
            *bits |= 1 << node;
        }
        node = 2 * node + if go_right { 2 } else { 1 };
        if go_right {
            lo = mid;
        } else {
            hi = mid;
        }
    }
}

/// Tree-PLRU: follow the cold side of every decision bit to the victim.
fn plru_victim(bits: u16, ways: u8) -> u8 {
    let mut node = 0u32;
    let mut lo = 0u8;
    let mut hi = ways;
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        let go_right = (bits >> node) & 1 != 0;
        node = 2 * node + if go_right { 2 } else { 1 };
        if go_right {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

/// How many decision bits on the path to `way` point *towards* it (higher =
/// colder = closer to eviction).
fn plru_coldness(bits: u16, ways: u8, way: u8) -> u8 {
    let mut node = 0u32;
    let mut lo = 0u8;
    let mut hi = ways;
    let mut coldness = 0u8;
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        let go_right = way >= mid;
        if ((bits >> node) & 1 != 0) == go_right {
            coldness += 1;
        }
        node = 2 * node + if go_right { 2 } else { 1 };
        if go_right {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    coldness
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Rank vector read back from a packed word (test helper).
    fn word_ranks(word: u64, ways: u8) -> Vec<u8> {
        (0..ways).map(|w| rank_of(word, w)).collect()
    }

    #[test]
    fn promote_word_moves_to_front() {
        // Identity word = stack order [0,1,2,3] (way w at rank w).
        let mut w = identity_word(4);
        w = promote_word(w, 2);
        // Order now [2,0,1,3]: ranks way0=1, way1=2, way2=0, way3=3.
        assert_eq!(word_ranks(w, 4), vec![1, 2, 0, 3]);
        w = promote_word(w, 2); // promoting the MRU is a no-op
        assert_eq!(word_ranks(w, 4), vec![1, 2, 0, 3]);
        w = promote_word(w, 3);
        // Order now [3,2,0,1].
        assert_eq!(word_ranks(w, 4), vec![2, 3, 1, 0]);
    }

    #[test]
    fn promote_word_leaves_unused_lanes_inert() {
        let mut w = identity_word(4);
        for way in [3u8, 1, 2, 0, 3, 3, 1] {
            w = promote_word(w, way);
        }
        for lane in 4..16u8 {
            assert_eq!(rank_of(w, lane), lane, "unused lane {lane} drifted");
        }
    }

    #[test]
    fn promote_word_handles_full_width() {
        // 16 ways: every lane is live.
        let mut w = identity_word(16);
        w = promote_word(w, 15);
        assert_eq!(rank_of(w, 15), 0);
        for lane in 0..15u8 {
            assert_eq!(rank_of(w, lane), lane + 1);
        }
        assert_eq!(find_rank(w, 15), 14);
        assert_eq!(find_rank(w, 0), 15);
    }

    #[test]
    fn find_rank_locates_every_lane() {
        let mut w = identity_word(8);
        for way in [5u8, 2, 7, 0, 2, 6] {
            w = promote_word(w, way);
        }
        let ranks = word_ranks(w, 8);
        for (way, &rank) in ranks.iter().enumerate() {
            assert_eq!(find_rank(w, rank), way as u8, "rank {rank}");
        }
    }

    #[test]
    fn lru_victim_is_least_recent() {
        let mut shared = SharedPolicyState::new(ReplacementPolicy::Lru, 64);
        let mut set = SetPolicyState::new(ReplacementPolicy::Lru, 4);
        for w in [0u8, 1, 2, 3] {
            set.on_fill(w, 0, &mut shared);
        }
        set.on_hit(0);
        // Order now 0,3,2,1 → victim 1.
        assert_eq!(set.victim(&mut shared, 4), 1);
    }

    #[test]
    fn lru_ranks_match_stack_positions() {
        let mut shared = SharedPolicyState::new(ReplacementPolicy::Lru, 64);
        let mut set = SetPolicyState::new(ReplacementPolicy::Lru, 4);
        for w in [0u8, 1, 2, 3] {
            set.on_fill(w, 0, &mut shared);
        }
        // MRU→LRU: 3,2,1,0.
        assert_eq!(set.ranks(4), vec![3, 2, 1, 0]);
        set.on_hit(0);
        assert_eq!(set.ranks(4), vec![0, 3, 2, 1]);
    }

    #[test]
    fn ranks_into_matches_ranks() {
        let mut shared = SharedPolicyState::new(ReplacementPolicy::Lru, 64);
        let mut set = SetPolicyState::new(ReplacementPolicy::Lru, 4);
        for w in [2u8, 0, 3, 1, 2] {
            set.on_fill(w, 0, &mut shared);
        }
        let mut buf = [0xAA_u8; MAX_WAYS];
        set.ranks_into(4, &mut buf);
        assert_eq!(&buf[..4], set.ranks(4).as_slice());
        assert!(buf[4..].iter().all(|&b| b == 0xAA), "slots past ways kept");
    }

    #[test]
    fn drrip_hit_promotes_to_rrpv_zero() {
        let mut shared = SharedPolicyState::new(ReplacementPolicy::Drrip, 64);
        let mut set = SetPolicyState::new(ReplacementPolicy::Drrip, 4);
        set.on_fill(1, 5, &mut shared);
        set.on_hit(1);
        let ranks = set.ranks(4);
        assert_eq!(ranks[1], 0, "hit block should be most protected");
    }

    #[test]
    fn drrip_victim_prefers_max_rrpv() {
        let mut shared = SharedPolicyState::new(ReplacementPolicy::Drrip, 64);
        let mut set = SetPolicyState::new(ReplacementPolicy::Drrip, 4);
        // All start at RRPV_MAX; fill way 0 (gets RRPV_LONG in SRRIP leader).
        set.on_fill(0, 0, &mut shared);
        let v = set.victim(&mut shared, 4);
        assert_ne!(v, 0, "freshly filled way should not be the victim");
    }

    #[test]
    fn drrip_aging_terminates() {
        let mut shared = SharedPolicyState::new(ReplacementPolicy::Drrip, 64);
        let mut set = SetPolicyState::new(ReplacementPolicy::Drrip, 4);
        for w in 0..4 {
            set.on_fill(w, 0, &mut shared);
            set.on_hit(w); // all at RRPV 0
        }
        let _ = set.victim(&mut shared, 4); // must age until a victim appears
    }

    #[test]
    fn fifo_ignores_hits() {
        let mut shared = SharedPolicyState::new(ReplacementPolicy::Fifo, 64);
        let mut set = SetPolicyState::new(ReplacementPolicy::Fifo, 4);
        for w in [0u8, 1, 2, 3] {
            set.on_fill(w, 0, &mut shared);
        }
        set.on_hit(0); // should NOT rescue way 0
        assert_eq!(set.victim(&mut shared, 4), 0);
    }

    #[test]
    fn random_victim_in_range_and_deterministic() {
        let mut a = SharedPolicyState::new(ReplacementPolicy::Random, 64);
        let mut b = SharedPolicyState::new(ReplacementPolicy::Random, 64);
        let mut set = SetPolicyState::new(ReplacementPolicy::Random, 4);
        for _ in 0..100 {
            let va = set.victim(&mut a, 4);
            let vb = set.victim(&mut b, 4);
            assert!(va < 4);
            assert_eq!(va, vb, "same seed must give same victims");
        }
    }

    #[test]
    fn ranks_are_a_permutation() {
        for policy in ReplacementPolicy::ALL {
            let mut shared = SharedPolicyState::new(policy, 64);
            let mut set = SetPolicyState::new(policy, 4);
            for w in [0u8, 2, 1, 3, 2, 0] {
                set.on_fill(w, 0, &mut shared);
            }
            let mut ranks = set.ranks(4);
            ranks.sort_unstable();
            assert_eq!(ranks, vec![0, 1, 2, 3], "{policy:?}");
        }
    }

    #[test]
    fn kernel_consts_match_their_variants() {
        for policy in ReplacementPolicy::ALL {
            let resolved = with_policy_kernel!(policy, K => K::POLICY);
            assert_eq!(resolved, policy, "dispatch macro resolved a mismatch");
        }
    }

    #[test]
    fn policy_names() {
        assert_eq!(ReplacementPolicy::Lru.name(), "lru");
        assert_eq!(ReplacementPolicy::Drrip.name(), "drrip");
        assert_eq!(ReplacementPolicy::TreePlru.name(), "tree-plru");
    }

    #[test]
    fn plru_victim_is_never_the_last_touched_way() {
        let mut shared = SharedPolicyState::new(ReplacementPolicy::TreePlru, 64);
        let mut set = SetPolicyState::new(ReplacementPolicy::TreePlru, 4);
        for w in [0u8, 1, 2, 3, 1, 0, 2] {
            set.on_hit(w);
            assert_ne!(set.victim(&mut shared, 4), w, "victim after touching {w}");
        }
    }

    #[test]
    fn plru_cycles_through_all_ways_under_round_robin_fills() {
        // Repeatedly filling the victim must visit every way (no starvation).
        let mut shared = SharedPolicyState::new(ReplacementPolicy::TreePlru, 64);
        let mut set = SetPolicyState::new(ReplacementPolicy::TreePlru, 4);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..8 {
            let v = set.victim(&mut shared, 4);
            seen.insert(v);
            set.on_fill(v, 0, &mut shared);
        }
        assert_eq!(seen.len(), 4, "PLRU must not starve any way: {seen:?}");
    }

    #[test]
    fn plru_ranks_put_victim_last() {
        let mut shared = SharedPolicyState::new(ReplacementPolicy::TreePlru, 64);
        let mut set = SetPolicyState::new(ReplacementPolicy::TreePlru, 4);
        for w in [0u8, 1, 2, 3, 0, 1] {
            set.on_hit(w);
        }
        let ranks = set.ranks(4);
        let victim = set.victim(&mut shared, 4);
        assert_eq!(
            ranks[victim as usize], 3,
            "the PLRU victim must hold the worst rank (ranks {ranks:?}, victim {victim})"
        );
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn plru_rejects_non_power_of_two_ways() {
        let _ = SetPolicyState::new(ReplacementPolicy::TreePlru, 3);
    }

    #[test]
    #[should_panic(expected = "1..=16 ways")]
    fn rejects_overwide_sets() {
        let _ = SetPolicyState::new(ReplacementPolicy::Lru, 17);
    }
}

/// Property tests pinning the packed per-set state to the heap-allocated
/// reference implementation it replaced (`Vec<u8>` recency stacks, per-way
/// RRPV vectors, `Vec<bool>` PLRU trees), including PLRU/DRRIP tie-break
/// order. The reference code below is a verbatim port of the pre-packing
/// implementation. [`SetPolicyState`] dispatches every call through the
/// policy kernels, so these tests pin each kernel's transition functions.
#[cfg(test)]
mod model_tests {
    use super::*;
    use proptest::prelude::*;

    /// The old heap-based per-set state, kept as the semantic reference.
    #[derive(Debug, Clone)]
    enum RefSetState {
        Lru { order: Vec<u8> },
        TreePlru { bits: Vec<bool>, ways: u8 },
        Drrip { rrpv: Vec<u8> },
        Fifo { order: Vec<u8> },
        Random,
    }

    fn ref_promote(order: &mut [u8], way: u8) {
        if let Some(pos) = order.iter().position(|&w| w == way) {
            order[..=pos].rotate_right(1);
        }
    }

    fn ref_plru_touch(bits: &mut [bool], ways: u8, way: u8) {
        let mut node = 0usize;
        let mut lo = 0u8;
        let mut hi = ways;
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            let go_right = way >= mid;
            bits[node] = !go_right;
            node = 2 * node + if go_right { 2 } else { 1 };
            if go_right {
                lo = mid;
            } else {
                hi = mid;
            }
        }
    }

    fn ref_plru_victim(bits: &[bool], ways: u8) -> u8 {
        let mut node = 0usize;
        let mut lo = 0u8;
        let mut hi = ways;
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            let go_right = bits[node];
            node = 2 * node + if go_right { 2 } else { 1 };
            if go_right {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }

    fn ref_plru_coldness(bits: &[bool], ways: u8, way: u8) -> u8 {
        let mut node = 0usize;
        let mut lo = 0u8;
        let mut hi = ways;
        let mut coldness = 0u8;
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            let go_right = way >= mid;
            if bits[node] == go_right {
                coldness += 1;
            }
            node = 2 * node + if go_right { 2 } else { 1 };
            if go_right {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        coldness
    }

    impl RefSetState {
        fn new(policy: ReplacementPolicy, ways: u8) -> Self {
            match policy {
                ReplacementPolicy::Lru => RefSetState::Lru {
                    order: (0..ways).collect(),
                },
                ReplacementPolicy::TreePlru => RefSetState::TreePlru {
                    bits: vec![false; usize::from(ways).saturating_sub(1)],
                    ways,
                },
                ReplacementPolicy::Drrip => RefSetState::Drrip {
                    rrpv: vec![RRPV_MAX; ways as usize],
                },
                ReplacementPolicy::Fifo => RefSetState::Fifo {
                    order: (0..ways).collect(),
                },
                ReplacementPolicy::Random => RefSetState::Random,
            }
        }

        fn on_hit(&mut self, way: u8) {
            match self {
                RefSetState::Lru { order } => ref_promote(order, way),
                RefSetState::TreePlru { bits, ways } => ref_plru_touch(bits, *ways, way),
                RefSetState::Drrip { rrpv } => rrpv[way as usize] = 0,
                RefSetState::Fifo { .. } | RefSetState::Random => {}
            }
        }

        fn on_fill(&mut self, way: u8, set: u32, shared: &mut SharedPolicyState) {
            match self {
                RefSetState::Lru { order } => ref_promote(order, way),
                RefSetState::TreePlru { bits, ways } => ref_plru_touch(bits, *ways, way),
                RefSetState::Drrip { rrpv } => {
                    let use_brrip = match shared.duel_role(set) {
                        DuelRole::SrripLeader => false,
                        DuelRole::BrripLeader => true,
                        DuelRole::Follower => shared.psel > PSEL_MAX / 2,
                    };
                    rrpv[way as usize] = if use_brrip {
                        shared.brrip_fills = shared.brrip_fills.wrapping_add(1);
                        if shared.brrip_fills.is_multiple_of(BRRIP_EPSILON) {
                            RRPV_LONG
                        } else {
                            RRPV_MAX
                        }
                    } else {
                        RRPV_LONG
                    };
                }
                RefSetState::Fifo { order } => ref_promote(order, way),
                RefSetState::Random => {}
            }
        }

        fn on_miss(&mut self, set: u32, shared: &mut SharedPolicyState) {
            if matches!(self, RefSetState::Drrip { .. }) {
                match shared.duel_role(set) {
                    DuelRole::SrripLeader => shared.psel = (shared.psel + 1).min(PSEL_MAX),
                    DuelRole::BrripLeader => shared.psel = shared.psel.saturating_sub(1),
                    DuelRole::Follower => {}
                }
            }
        }

        fn victim(&mut self, shared: &mut SharedPolicyState, ways: u8) -> u8 {
            match self {
                RefSetState::Lru { order } | RefSetState::Fifo { order } => {
                    *order.last().expect("non-empty set")
                }
                RefSetState::TreePlru { bits, ways } => ref_plru_victim(bits, *ways),
                RefSetState::Drrip { rrpv } => loop {
                    if let Some(w) = rrpv.iter().position(|&r| r >= RRPV_MAX) {
                        break w as u8;
                    }
                    for r in rrpv.iter_mut() {
                        *r += 1;
                    }
                },
                RefSetState::Random => (shared.next_random() % u32::from(ways)) as u8,
            }
        }

        fn ranks(&self, ways: u8) -> Vec<u8> {
            match self {
                RefSetState::Lru { order } | RefSetState::Fifo { order } => {
                    let mut ranks = vec![0u8; ways as usize];
                    for (pos, &way) in order.iter().enumerate() {
                        ranks[way as usize] = pos as u8;
                    }
                    ranks
                }
                RefSetState::TreePlru { bits, ways } => {
                    let n = *ways;
                    let mut idx: Vec<u8> = (0..n).collect();
                    idx.sort_by_key(|&w| (ref_plru_coldness(bits, n, w), w));
                    let mut ranks = vec![0u8; n as usize];
                    for (pos, &way) in idx.iter().enumerate() {
                        ranks[way as usize] = pos as u8;
                    }
                    ranks
                }
                RefSetState::Drrip { rrpv } => {
                    let mut idx: Vec<u8> = (0..ways).collect();
                    idx.sort_by_key(|&w| (rrpv[w as usize], w));
                    let mut ranks = vec![0u8; ways as usize];
                    for (pos, &way) in idx.iter().enumerate() {
                        ranks[way as usize] = pos as u8;
                    }
                    ranks
                }
                RefSetState::Random => (0..ways).collect(),
            }
        }
    }

    #[derive(Debug, Clone, Copy)]
    enum Op {
        Hit(u8),
        Fill { way: u8, set: u32 },
        Miss { set: u32 },
        Victim,
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (0u8..16).prop_map(Op::Hit),
            ((0u8..16), (0u32..128)).prop_map(|(way, set)| Op::Fill { way, set }),
            (0u32..128).prop_map(|set| Op::Miss { set }),
            Just(Op::Victim),
        ]
    }

    fn check_policy(policy: ReplacementPolicy, ways: u8, sets: u32, ops: &[Op]) {
        let mut packed = SetPolicyState::new(policy, ways);
        let mut reference = RefSetState::new(policy, ways);
        let mut shared_p = SharedPolicyState::new(policy, sets);
        let mut shared_r = SharedPolicyState::new(policy, sets);
        for (i, &op) in ops.iter().enumerate() {
            match op {
                Op::Hit(way) => {
                    let way = way % ways;
                    packed.on_hit(way);
                    reference.on_hit(way);
                }
                Op::Fill { way, set } => {
                    let way = way % ways;
                    let set = set % sets;
                    packed.on_fill(way, set, &mut shared_p);
                    reference.on_fill(way, set, &mut shared_r);
                }
                Op::Miss { set } => {
                    let set = set % sets;
                    packed.on_miss(set, &mut shared_p);
                    reference.on_miss(set, &mut shared_r);
                }
                Op::Victim => {
                    let vp = packed.victim(&mut shared_p, ways);
                    let vr = reference.victim(&mut shared_r, ways);
                    assert_eq!(vp, vr, "victim diverged at op {i} ({policy:?})");
                }
            }
            assert_eq!(
                packed.ranks(ways),
                reference.ranks(ways),
                "ranks diverged at op {i} ({policy:?}, ways {ways})"
            );
            assert_eq!(
                shared_p, shared_r,
                "shared state diverged at op {i} ({policy:?})"
            );
        }
    }

    proptest! {
        #[test]
        fn packed_lru_matches_reference(
            ways in 1u8..17,
            ops in proptest::collection::vec(op_strategy(), 1..200),
        ) {
            check_policy(ReplacementPolicy::Lru, ways, 64, &ops);
        }

        #[test]
        fn packed_fifo_matches_reference(
            ways in 1u8..17,
            ops in proptest::collection::vec(op_strategy(), 1..200),
        ) {
            check_policy(ReplacementPolicy::Fifo, ways, 64, &ops);
        }

        #[test]
        fn packed_plru_matches_reference(
            ways_log in 0u32..5,
            ops in proptest::collection::vec(op_strategy(), 1..200),
        ) {
            check_policy(ReplacementPolicy::TreePlru, 1 << ways_log, 64, &ops);
        }

        #[test]
        fn packed_drrip_matches_reference(
            ways in 1u8..17,
            sets in prop_oneof![Just(1u32), Just(2), Just(63), Just(64), Just(128)],
            ops in proptest::collection::vec(op_strategy(), 1..200),
        ) {
            check_policy(ReplacementPolicy::Drrip, ways, sets, &ops);
        }

        #[test]
        fn packed_random_matches_reference(
            ways in 1u8..17,
            ops in proptest::collection::vec(op_strategy(), 1..100),
        ) {
            check_policy(ReplacementPolicy::Random, ways, 64, &ops);
        }
    }
}
