//! Cycle-level set-associative cache simulator with power gating.
//!
//! This crate is the *mechanism* layer of the EDBP reproduction: a
//! set-associative cache with per-block valid/dirty/gated state, pluggable
//! replacement policies ([`ReplacementPolicy`]), data storage (so full-system
//! simulations move real bytes and crash consistency can be checked), and the
//! gate-Vdd power-gating interface [`Cache::gate`] that dead-block predictors
//! drive. Prediction *policy* (Cache Decay, EDBP, ...) lives in the
//! `edbp-core` crate; electrical costs come from `ehs-nvm`.
//!
//! # Model
//!
//! * [`Cache::lookup`] probes and updates replacement state; a miss names the
//!   victim and any dirty block that must be written back.
//! * [`Cache::fill`] installs a block after the backing store supplied it.
//! * [`Cache::gate`] powers a block down (gate-Vdd): its content — tag and
//!   data — is lost, and it stops leaking. Gating a dirty block without
//!   writing it back would lose data, so `gate` reports the dirty content
//!   for the caller to write back first.
//! * [`Cache::power_fail`] models a power outage: every block loses content
//!   and every way is re-powered (cold, active, leaking) on reboot.
//! * [`Cache::active_blocks`] drives static-energy integration: leakage is
//!   proportional to the number of non-gated ways.
//!
//! # Example
//!
//! ```
//! use ehs_cache::{AccessKind, Cache, CacheConfig, LookupOutcome, ReplacementPolicy};
//!
//! let mut cache = Cache::new(CacheConfig::paper_dcache());
//! match cache.lookup(0x1000, AccessKind::Read) {
//!     LookupOutcome::Miss(miss) => {
//!         assert!(miss.writeback.is_none()); // cold miss, no victim data
//!         cache.fill(0x1000, &[0u8; 16], false);
//!     }
//!     LookupOutcome::Hit(_) => unreachable!("cold cache cannot hit"),
//! }
//! assert!(matches!(cache.lookup(0x1000, AccessKind::Read), LookupOutcome::Hit(_)));
//! assert_eq!(cache.stats().hits, 1);
//! ```

// `deny` rather than `forbid`: the wide tag probe's AVX2 dispatch needs one
// scoped `#[allow(unsafe_code)]` for its feature-gated intrinsic call (see
// `probe::probe_avx2_dispatch`); everything else stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod policy;
pub mod probe;
mod stats;

pub use cache::{
    AccessKind, BlockId, Cache, CacheConfig, GateOutcome, GateResult, HitInfo, LookupOutcome,
    LookupResult, MissInfo, MissResult, WayView, Writeback,
};
pub use policy::{
    DrripKernel, FifoKernel, LruKernel, PolicyKernel, RandomKernel, ReplacementPolicy,
    SetPolicyState, SetState, SharedPolicyState, TreePlruKernel, MAX_WAYS,
};
pub use stats::CacheStats;

pub use ehs_nvm::{CacheGeometry, GeometryError};
