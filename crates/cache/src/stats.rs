//! Cache access statistics.

/// Counters accumulated by a [`crate::Cache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Accesses that found a powered, valid block.
    pub hits: u64,
    /// Accesses that did not.
    pub misses: u64,
    /// Blocks installed by [`crate::Cache::fill`].
    pub fills: u64,
    /// Valid blocks displaced (by misses).
    pub evictions: u64,
    /// Dirty blocks pushed to the backing store (evictions + gatings).
    pub writebacks: u64,
    /// Frames power-gated.
    pub gates: u64,
    /// Frames re-powered (fills into gated frames or explicit ungating).
    pub ungates: u64,
    /// Power outages endured.
    pub power_failures: u64,
}

impl CacheStats {
    /// Total accesses (hits + misses).
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss rate in `[0, 1]`; zero when there were no accesses.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_rate_handles_zero_accesses() {
        assert_eq!(CacheStats::default().miss_rate(), 0.0);
    }

    #[test]
    fn miss_rate_computes_ratio() {
        let s = CacheStats {
            hits: 75,
            misses: 25,
            ..CacheStats::default()
        };
        assert!((s.miss_rate() - 0.25).abs() < 1e-12);
        assert_eq!(s.accesses(), 100);
    }
}
