//! Wide tag-probe kernels: compare every way's tag against a needle in one
//! (or a few) SIMD ops, producing the same hit mask as the scalar loop.
//!
//! The cache's SoA layout keeps each set's tags in `ways` adjacent `u64`
//! words, and empty (invalid or gated) frames hold the [`TAG_NONE`] sentinel
//! that no real tag can equal — so the whole probe is a pure equality
//! compare over one small slice, which is exactly the shape SIMD wants.
//!
//! Three implementations share one contract (`probe(tags, needle)` returns
//! bit `w` set iff `tags[w] == needle`):
//!
//! * [`probe_scalar`] — the semantic reference. All other paths are pinned
//!   to it by unit tests and proptests; any divergence is a bug in the wide
//!   path, never a spec change.
//! * [`probe_portable`] — fixed-width `[u64; 4]` chunks written so stable
//!   rustc autovectorizes them on any target; the remainder (and therefore
//!   the 1-way degenerate case) runs the scalar loop and never reads past
//!   the set's tag column.
//! * `probe_avx2` (x86_64 only) — explicit `core::arch` path using
//!   `_mm256_cmpeq_epi64`, selected at runtime via
//!   `is_x86_feature_detected!` and the only `unsafe` in the crate.
//!
//! Selection happens once per process (cached in a relaxed atomic): setting
//! `EHS_NO_SIMD=1` forces the scalar reference, otherwise the widest
//! available path wins. Tests and benches can override the cached choice
//! with [`force_impl`].

use std::sync::atomic::{AtomicU8, Ordering};

/// Widest associativity any probe implementation can report: the hit mask
/// is a `u32`, one bit per way, and every wide path finishes arbitrary
/// remainders with the scalar loop. [`Cache::new`](crate::Cache::new)
/// asserts the configured associativity fits (it already caps at the much
/// smaller [`MAX_WAYS`](crate::MAX_WAYS), so this is defence in depth for
/// future cap raises).
pub const PROBE_MASK_BITS: u32 = 32;

const _: () = assert!(
    crate::policy::MAX_WAYS as u32 <= PROBE_MASK_BITS,
    "packed-policy way cap must fit the probe hit mask"
);

/// Which probe implementation services [`probe`] calls.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum ProbeImpl {
    /// The scalar reference loop (also what `EHS_NO_SIMD=1` forces).
    Scalar = 1,
    /// Fixed-width chunks relying on stable-rustc autovectorization.
    Portable = 2,
    /// Explicit AVX2 `core::arch` path (runtime-detected, x86_64 only).
    Avx2 = 3,
}

/// Cached implementation choice; 0 = not yet decided.
static ACTIVE: AtomicU8 = AtomicU8::new(0);

fn decode(v: u8) -> ProbeImpl {
    match v {
        1 => ProbeImpl::Scalar,
        2 => ProbeImpl::Portable,
        3 => ProbeImpl::Avx2,
        _ => unreachable!("ACTIVE only holds encoded ProbeImpl values"),
    }
}

#[cold]
fn select() -> ProbeImpl {
    let chosen = if std::env::var_os("EHS_NO_SIMD").is_some_and(|v| v == "1") {
        ProbeImpl::Scalar
    } else {
        detect_widest()
    };
    ACTIVE.store(chosen as u8, Ordering::Relaxed);
    chosen
}

#[cfg(target_arch = "x86_64")]
fn detect_widest() -> ProbeImpl {
    if std::arch::is_x86_feature_detected!("avx2") {
        ProbeImpl::Avx2
    } else {
        ProbeImpl::Portable
    }
}

#[cfg(not(target_arch = "x86_64"))]
fn detect_widest() -> ProbeImpl {
    ProbeImpl::Portable
}

/// The implementation [`probe`] currently dispatches to, resolving the
/// environment/feature detection on first call.
pub fn active_impl() -> ProbeImpl {
    match ACTIVE.load(Ordering::Relaxed) {
        0 => select(),
        v => decode(v),
    }
}

/// Overrides the cached implementation choice (`None` re-runs detection on
/// the next probe). Forcing [`ProbeImpl::Avx2`] on a host without AVX2 is
/// rejected (falls back to detection) rather than trusted.
pub fn force_impl(imp: Option<ProbeImpl>) {
    let v = match imp {
        Some(ProbeImpl::Avx2) if !avx2_available() => 0,
        Some(i) => i as u8,
        None => 0,
    };
    ACTIVE.store(v, Ordering::Relaxed);
}

/// True if the explicit AVX2 path can run on this host.
pub fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Scalar reference probe: bit `w` of the result is set iff
/// `tags[w] == needle`. Every wide path must match this bit-for-bit.
#[inline]
pub fn probe_scalar(tags: &[u64], needle: u64) -> u32 {
    let mut mask = 0u32;
    for (w, &t) in tags.iter().enumerate() {
        mask |= u32::from(t == needle) << w;
    }
    mask
}

/// Autovectorizing probe: processes `[u64; 4]` chunks with a fixed-width
/// inner loop (stable rustc emits SSE2/AVX2 compares for it), then finishes
/// the remainder — including the whole slice for 1- and 2-way sets — with
/// the scalar loop. Only ever reads `tags[..tags.len()]`.
#[inline]
pub fn probe_portable(tags: &[u64], needle: u64) -> u32 {
    let mut mask = 0u32;
    let mut chunks = tags.chunks_exact(4);
    let mut base = 0u32;
    for c in chunks.by_ref() {
        let lanes: [u64; 4] = c.try_into().expect("chunks_exact yields 4-long slices");
        let mut m = 0u32;
        for (i, &t) in lanes.iter().enumerate() {
            m |= u32::from(t == needle) << i;
        }
        mask |= m << base;
        base += 4;
    }
    for (i, &t) in chunks.remainder().iter().enumerate() {
        mask |= u32::from(t == needle) << (base + i as u32);
    }
    mask
}

/// Explicit AVX2 probe: four 64-bit equality lanes per `_mm256_cmpeq_epi64`,
/// collapsed to mask bits by `_mm256_movemask_pd` on the lane sign bits.
/// Remainder frames (ways % 4) use the scalar loop, so no read ever goes
/// past the set's tag column.
///
/// Lane values are built with `_mm256_set_epi64x` from bounds-checked slice
/// elements — no raw-pointer loads — so the only safety obligation is the
/// `avx2` target feature itself.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn probe_avx2(tags: &[u64], needle: u64) -> u32 {
    use std::arch::x86_64::{
        _mm256_castsi256_pd, _mm256_cmpeq_epi64, _mm256_movemask_pd, _mm256_set1_epi64x,
        _mm256_set_epi64x,
    };
    let wide_needle = _mm256_set1_epi64x(needle as i64);
    let mut mask = 0u32;
    let mut chunks = tags.chunks_exact(4);
    let mut base = 0u32;
    for c in chunks.by_ref() {
        let lanes = _mm256_set_epi64x(c[3] as i64, c[2] as i64, c[1] as i64, c[0] as i64);
        let eq = _mm256_cmpeq_epi64(lanes, wide_needle);
        let m = _mm256_movemask_pd(_mm256_castsi256_pd(eq)) as u32;
        mask |= m << base;
        base += 4;
    }
    for (i, &t) in chunks.remainder().iter().enumerate() {
        mask |= u32::from(t == needle) << (base + i as u32);
    }
    mask
}

/// Probes `tags` for `needle` with the active implementation. Bit `w` of
/// the result is set iff `tags[w] == needle`; semantics are pinned to
/// [`probe_scalar`].
#[inline]
pub fn probe(tags: &[u64], needle: u64) -> u32 {
    match active_impl() {
        ProbeImpl::Scalar => probe_scalar(tags, needle),
        ProbeImpl::Portable => probe_portable(tags, needle),
        ProbeImpl::Avx2 => probe_avx2_dispatch(tags, needle),
    }
}

#[cfg(target_arch = "x86_64")]
#[inline]
fn probe_avx2_dispatch(tags: &[u64], needle: u64) -> u32 {
    // SAFETY: `ACTIVE` only ever holds `Avx2` after `is_x86_feature_detected!`
    // confirmed the feature (both `select` and `force_impl` gate on it), so
    // the `avx2` target-feature precondition of `probe_avx2` holds.
    #[allow(unsafe_code)]
    unsafe {
        probe_avx2(tags, needle)
    }
}

#[cfg(not(target_arch = "x86_64"))]
#[inline]
fn probe_avx2_dispatch(tags: &[u64], needle: u64) -> u32 {
    probe_portable(tags, needle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::MAX_WAYS;

    const SENTINEL: u64 = u64::MAX; // TAG_NONE

    type ProbeFn = fn(&[u64], u64) -> u32;

    fn all_impls() -> Vec<(&'static str, ProbeFn)> {
        let mut v: Vec<(&'static str, ProbeFn)> =
            vec![("scalar", probe_scalar), ("portable", probe_portable)];
        if avx2_available() {
            v.push(("avx2", |t, n| probe_avx2_dispatch(t, n)));
        }
        v
    }

    #[test]
    fn wide_paths_match_scalar_on_crafted_columns() {
        let mut cases: Vec<(Vec<u64>, u64)> = Vec::new();
        for ways in [1usize, 2, 3, 4, 5, 7, 8, 11, 15, 16] {
            assert!(ways <= MAX_WAYS);
            // All-sentinel (cold set), needle present at each position,
            // duplicate needles, needle == sentinel never matches real tags.
            cases.push((vec![SENTINEL; ways], 0x42));
            for pos in 0..ways {
                let mut tags = vec![SENTINEL; ways];
                tags[pos] = 0x1234_5678_9abc;
                cases.push((tags, 0x1234_5678_9abc));
            }
            let ramp: Vec<u64> = (0..ways as u64).collect();
            cases.push((ramp.clone(), 3));
            cases.push((ramp, ways as u64 + 10));
            cases.push((vec![7; ways], 7)); // every way matches
        }
        for (tags, needle) in &cases {
            let want = probe_scalar(tags, *needle);
            for (name, f) in all_impls() {
                assert_eq!(
                    f(tags, *needle),
                    want,
                    "{name} probe diverged on tags={tags:?} needle={needle}"
                );
            }
        }
    }

    #[test]
    fn one_way_probe_reads_only_its_column() {
        // A 1-way set's tag column is a 1-long subslice of the flat tag
        // array; the probe must answer from that subslice alone. Guard by
        // surrounding the probed frame with decoy matches that must NOT
        // appear in the mask.
        let backing = [0xdead, 0xbeef, 0xdead];
        let column = &backing[1..2];
        for (name, f) in all_impls() {
            assert_eq!(f(column, 0xbeef), 1, "{name} missed the 1-way hit");
            assert_eq!(f(column, 0xdead), 0, "{name} read past the 1-way column");
        }
    }

    #[test]
    fn env_override_forces_scalar() {
        // force_impl models what EHS_NO_SIMD=1 does at first-probe time
        // (the env var itself is read once per process, so tests exercise
        // the override hook instead of mutating the environment).
        force_impl(Some(ProbeImpl::Scalar));
        assert_eq!(active_impl(), ProbeImpl::Scalar);
        force_impl(None);
        let detected = active_impl();
        assert_ne!(detected as u8, 0);
    }

    #[test]
    fn forcing_avx2_without_support_is_rejected_not_trusted() {
        force_impl(Some(ProbeImpl::Avx2));
        let got = active_impl();
        if avx2_available() {
            assert_eq!(got, ProbeImpl::Avx2);
        } else {
            assert_ne!(got, ProbeImpl::Avx2);
        }
        force_impl(None);
    }
}
