//! Property-based tests for the physical-quantity algebra.

use ehs_units::{Capacitance, Energy, Power, Time, Voltage};
use proptest::prelude::*;

fn finite() -> impl Strategy<Value = f64> {
    0.0..1e6f64
}

proptest! {
    #[test]
    fn power_time_energy_triangle(p in finite(), t in 1e-9..1e3f64) {
        let power = Power::from_watts(p);
        let time = Time::from_seconds(t);
        let energy = power * time;
        // E / t == P and E / P == t (up to float noise).
        prop_assert!(((energy / time).as_watts() - p).abs() <= p * 1e-12 + 1e-15);
        if p > 0.0 {
            prop_assert!(((energy / power).as_seconds() - t).abs() <= t * 1e-12 + 1e-15);
        }
    }

    #[test]
    fn capacitor_energy_voltage_round_trip(c in 1e-9..1e-3f64, v in 0.0..100.0f64) {
        let cap = Capacitance::from_farads(c);
        let volts = Voltage::from_volts(v);
        let e = Energy::in_capacitor(cap, volts);
        let back = e.capacitor_voltage(cap);
        prop_assert!((back.as_volts() - v).abs() <= v * 1e-9 + 1e-12);
    }

    #[test]
    fn capacitor_energy_is_monotonic_in_voltage(c in 1e-9..1e-3f64, v1 in 0.0..10.0f64, v2 in 0.0..10.0f64) {
        let cap = Capacitance::from_farads(c);
        let (lo, hi) = if v1 <= v2 { (v1, v2) } else { (v2, v1) };
        let e_lo = Energy::in_capacitor(cap, Voltage::from_volts(lo));
        let e_hi = Energy::in_capacitor(cap, Voltage::from_volts(hi));
        prop_assert!(e_lo <= e_hi);
    }

    #[test]
    fn saturating_sub_never_negative(a in finite(), b in finite()) {
        let diff = Energy::from_joules(a).saturating_sub(Energy::from_joules(b));
        prop_assert!(diff >= Energy::ZERO);
        if a >= b {
            prop_assert!((diff.as_joules() - (a - b)).abs() <= (a + b) * 1e-12 + 1e-15);
        }
    }

    #[test]
    fn scaled_constructors_agree_with_base(x in finite()) {
        prop_assert!((Energy::from_nano_joules(x).as_joules() - x * 1e-9).abs() <= x * 1e-20 + 1e-24);
        prop_assert!((Power::from_milli_watts(x).as_watts() - x * 1e-3).abs() <= x * 1e-14 + 1e-18);
        prop_assert!((Time::from_micros(x).as_seconds() - x * 1e-6).abs() <= x * 1e-17 + 1e-21);
    }

    #[test]
    fn clamp_is_idempotent_and_bounded(x in -1e6..1e6f64, lo in -1e3..1e3f64, width in 0.0..1e3f64) {
        let lo_v = Voltage::from_volts(lo);
        let hi_v = Voltage::from_volts(lo + width);
        let clamped = Voltage::from_volts(x).clamp(lo_v, hi_v);
        prop_assert!(clamped >= lo_v && clamped <= hi_v);
        prop_assert_eq!(clamped.clamp(lo_v, hi_v), clamped);
    }

    #[test]
    fn sum_equals_fold(xs in proptest::collection::vec(finite(), 0..20)) {
        let total: Energy = xs.iter().map(|&x| Energy::from_joules(x)).sum();
        let expect: f64 = xs.iter().sum();
        prop_assert!((total.as_joules() - expect).abs() <= expect * 1e-12 + 1e-15);
    }
}
