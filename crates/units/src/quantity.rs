//! Dimensioned newtypes and their arithmetic.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Generates a dimensioned `f64` newtype with same-dimension arithmetic,
/// scalar scaling, ordering, and display.
macro_rules! quantity {
    (
        $(#[$meta:meta])*
        $name:ident, $unit:literal
    ) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: Self = Self(0.0);

            /// Returns the raw value in SI base units.
            #[inline]
            pub const fn base(self) -> f64 {
                self.0
            }

            /// Builds the quantity from a raw value in SI base units.
            #[inline]
            pub const fn from_base(value: f64) -> Self {
                Self(value)
            }

            /// Returns `true` if the value is exactly zero.
            #[inline]
            pub fn is_zero(self) -> bool {
                self.0 == 0.0
            }

            /// Returns `true` if the value is finite (not NaN or infinite).
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Returns the smaller of the two quantities.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Returns the larger of the two quantities.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Clamps the quantity into `[lo, hi]`.
            #[inline]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                Self(self.0.clamp(lo.0, hi.0))
            }

            /// Subtraction that clamps at zero instead of going negative.
            ///
            /// Useful for physically non-negative quantities (stored energy,
            /// remaining time) where numerical noise could otherwise produce
            /// a tiny negative value.
            #[inline]
            pub fn saturating_sub(self, other: Self) -> Self {
                Self((self.0 - other.0).max(0.0))
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div for $name {
            /// Ratio of two same-dimension quantities is dimensionless.
            type Output = f64;
            #[inline]
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:e} {}", self.0, $unit)
            }
        }
    };
}

quantity! {
    /// An amount of energy, stored in joules.
    Energy, "J"
}

quantity! {
    /// A rate of energy transfer, stored in watts.
    Power, "W"
}

quantity! {
    /// A duration, stored in seconds.
    Time, "s"
}

quantity! {
    /// An electric potential, stored in volts.
    Voltage, "V"
}

quantity! {
    /// A capacitance, stored in farads.
    Capacitance, "F"
}

quantity! {
    /// A frequency, stored in hertz.
    Frequency, "Hz"
}

impl Energy {
    /// Builds an energy from joules.
    #[inline]
    pub const fn from_joules(j: f64) -> Self {
        Self(j)
    }

    /// Builds an energy from microjoules.
    #[inline]
    pub const fn from_micro_joules(uj: f64) -> Self {
        Self(uj * 1e-6)
    }

    /// Builds an energy from nanojoules.
    #[inline]
    pub const fn from_nano_joules(nj: f64) -> Self {
        Self(nj * 1e-9)
    }

    /// Builds an energy from picojoules.
    #[inline]
    pub const fn from_pico_joules(pj: f64) -> Self {
        Self(pj * 1e-12)
    }

    /// Returns the energy in joules.
    #[inline]
    pub const fn as_joules(self) -> f64 {
        self.0
    }

    /// Returns the energy in microjoules.
    #[inline]
    pub fn as_micro_joules(self) -> f64 {
        self.0 * 1e6
    }

    /// Returns the energy in nanojoules.
    #[inline]
    pub fn as_nano_joules(self) -> f64 {
        self.0 * 1e9
    }

    /// Energy stored in a capacitor at a given voltage: `E = ½ C V²`.
    ///
    /// This is the state equation of the harvesting buffer in
    /// energy-harvesting systems (Section II of the paper).
    #[inline]
    pub fn in_capacitor(c: Capacitance, v: Voltage) -> Self {
        Self(0.5 * c.0 * v.0 * v.0)
    }

    /// Inverts [`Energy::in_capacitor`]: the voltage a capacitor of size `c`
    /// holds when storing this much energy, `V = sqrt(2E / C)`.
    ///
    /// Returns zero voltage for non-positive energy.
    #[inline]
    pub fn capacitor_voltage(self, c: Capacitance) -> Voltage {
        if self.0 <= 0.0 || c.0 <= 0.0 {
            Voltage::ZERO
        } else {
            Voltage((2.0 * self.0 / c.0).sqrt())
        }
    }
}

impl Power {
    /// Builds a power from watts.
    #[inline]
    pub const fn from_watts(w: f64) -> Self {
        Self(w)
    }

    /// Builds a power from milliwatts.
    #[inline]
    pub const fn from_milli_watts(mw: f64) -> Self {
        Self(mw * 1e-3)
    }

    /// Builds a power from microwatts.
    #[inline]
    pub const fn from_micro_watts(uw: f64) -> Self {
        Self(uw * 1e-6)
    }

    /// Returns the power in watts.
    #[inline]
    pub const fn as_watts(self) -> f64 {
        self.0
    }

    /// Returns the power in milliwatts.
    #[inline]
    pub fn as_milli_watts(self) -> f64 {
        self.0 * 1e3
    }

    /// Returns the power in microwatts.
    #[inline]
    pub fn as_micro_watts(self) -> f64 {
        self.0 * 1e6
    }
}

impl Time {
    /// Builds a time from seconds.
    #[inline]
    pub const fn from_seconds(s: f64) -> Self {
        Self(s)
    }

    /// Builds a time from milliseconds.
    #[inline]
    pub const fn from_millis(ms: f64) -> Self {
        Self(ms * 1e-3)
    }

    /// Builds a time from microseconds.
    #[inline]
    pub const fn from_micros(us: f64) -> Self {
        Self(us * 1e-6)
    }

    /// Builds a time from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: f64) -> Self {
        Self(ns * 1e-9)
    }

    /// Returns the time in seconds.
    #[inline]
    pub const fn as_seconds(self) -> f64 {
        self.0
    }

    /// Returns the time in milliseconds.
    #[inline]
    pub fn as_millis(self) -> f64 {
        self.0 * 1e3
    }

    /// Returns the time in microseconds.
    #[inline]
    pub fn as_micros(self) -> f64 {
        self.0 * 1e6
    }

    /// Returns the time in nanoseconds.
    #[inline]
    pub fn as_nanos(self) -> f64 {
        self.0 * 1e9
    }
}

impl Voltage {
    /// Builds a voltage from volts.
    #[inline]
    pub const fn from_volts(v: f64) -> Self {
        Self(v)
    }

    /// Builds a voltage from millivolts.
    #[inline]
    pub const fn from_milli_volts(mv: f64) -> Self {
        Self(mv * 1e-3)
    }

    /// Returns the voltage in volts.
    #[inline]
    pub const fn as_volts(self) -> f64 {
        self.0
    }

    /// Returns the voltage in millivolts.
    #[inline]
    pub fn as_milli_volts(self) -> f64 {
        self.0 * 1e3
    }
}

impl Capacitance {
    /// Builds a capacitance from farads.
    #[inline]
    pub const fn from_farads(f: f64) -> Self {
        Self(f)
    }

    /// Builds a capacitance from microfarads.
    #[inline]
    pub const fn from_micro_farads(uf: f64) -> Self {
        Self(uf * 1e-6)
    }

    /// Returns the capacitance in farads.
    #[inline]
    pub const fn as_farads(self) -> f64 {
        self.0
    }

    /// Returns the capacitance in microfarads.
    #[inline]
    pub fn as_micro_farads(self) -> f64 {
        self.0 * 1e6
    }
}

impl Frequency {
    /// Builds a frequency from hertz.
    #[inline]
    pub const fn from_hertz(hz: f64) -> Self {
        Self(hz)
    }

    /// Builds a frequency from megahertz.
    #[inline]
    pub const fn from_mega_hertz(mhz: f64) -> Self {
        Self(mhz * 1e6)
    }

    /// Returns the frequency in hertz.
    #[inline]
    pub const fn as_hertz(self) -> f64 {
        self.0
    }

    /// Returns the frequency in megahertz.
    #[inline]
    pub fn as_mega_hertz(self) -> f64 {
        self.0 * 1e-6
    }

    /// The period of one cycle at this frequency.
    ///
    /// # Panics
    ///
    /// Does not panic; a zero frequency yields an infinite period.
    #[inline]
    pub fn period(self) -> Time {
        Time(1.0 / self.0)
    }
}

// ---- Cross-dimension physics ----

impl Mul<Time> for Power {
    type Output = Energy;
    /// Integrating power over time yields energy.
    #[inline]
    fn mul(self, rhs: Time) -> Energy {
        Energy(self.0 * rhs.0)
    }
}

impl Mul<Power> for Time {
    type Output = Energy;
    #[inline]
    fn mul(self, rhs: Power) -> Energy {
        Energy(self.0 * rhs.0)
    }
}

impl Div<Time> for Energy {
    type Output = Power;
    /// Energy per unit time is power.
    #[inline]
    fn div(self, rhs: Time) -> Power {
        Power(self.0 / rhs.0)
    }
}

impl Div<Power> for Energy {
    type Output = Time;
    /// How long a power draw can be sustained by this much energy.
    #[inline]
    fn div(self, rhs: Power) -> Time {
        Time(self.0 / rhs.0)
    }
}

impl Mul<Frequency> for Time {
    type Output = f64;
    /// Number of cycles elapsing in this duration (dimensionless).
    #[inline]
    fn mul(self, rhs: Frequency) -> f64 {
        self.0 * rhs.0
    }
}

impl Mul<Time> for Frequency {
    type Output = f64;
    #[inline]
    fn mul(self, rhs: Time) -> f64 {
        self.0 * rhs.0
    }
}
