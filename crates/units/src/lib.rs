//! Physical-quantity newtypes for the EDBP energy-harvesting simulator.
//!
//! Every quantity that crosses a crate boundary in this workspace is a
//! dimensioned newtype over `f64` rather than a bare float, so that a nanojoule
//! can never be added to a nanosecond and a millwatt can never be confused with
//! a microwatt. All types store their value in SI base units (joules, watts,
//! seconds, volts, farads, hertz) and expose scaled constructors/accessors for
//! the magnitudes the paper works in (nJ, mW, ns, µF, MHz).
//!
//! Cross-dimension arithmetic implements the physics the simulator needs:
//!
//! * [`Power`] `*` [`Time`] → [`Energy`] (leakage integration)
//! * [`Energy`] `/` [`Time`] → [`Power`] (average power, Fig. 9)
//! * [`Energy`] `/` [`Power`] → [`Time`] (time-to-outage estimation)
//! * `½ ·` [`Capacitance`] `·` [`Voltage`]`²` → [`Energy`] (capacitor state)
//!
//! # Examples
//!
//! ```
//! use ehs_units::{Capacitance, Energy, Power, Time, Voltage};
//!
//! // The paper's default capacitor fully charged:
//! let cap = Capacitance::from_micro_farads(0.47);
//! let v_max = Voltage::from_volts(3.5);
//! let stored = Energy::in_capacitor(cap, v_max);
//! assert!((stored.as_micro_joules() - 2.878_75).abs() < 1e-6);
//!
//! // Leakage of the 4 kB data cache over one 40 ns cycle:
//! let leak = Power::from_milli_watts(1.22) * Time::from_nanos(40.0);
//! assert!((leak.as_nano_joules() - 0.0488).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod quantity;

pub use quantity::{Capacitance, Energy, Frequency, Power, Time, Voltage};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacitor_energy_matches_half_cv_squared() {
        let c = Capacitance::from_micro_farads(0.47);
        let v = Voltage::from_volts(3.5);
        let e = Energy::in_capacitor(c, v);
        let expected = 0.5 * 0.47e-6 * 3.5 * 3.5;
        assert!((e.as_joules() - expected).abs() < 1e-18);
    }

    #[test]
    fn voltage_for_energy_inverts_capacitor_energy() {
        let c = Capacitance::from_micro_farads(0.47);
        for volts in [0.0, 1.0, 2.8, 3.2, 3.5] {
            let v = Voltage::from_volts(volts);
            let e = Energy::in_capacitor(c, v);
            let back = e.capacitor_voltage(c);
            assert!((back.as_volts() - volts).abs() < 1e-9, "{volts}");
        }
    }

    #[test]
    fn power_times_time_is_energy() {
        let e = Power::from_milli_watts(2.0) * Time::from_millis(3.0);
        assert!((e.as_micro_joules() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn energy_divided_by_time_is_power() {
        let p = Energy::from_joules(6.0) / Time::from_seconds(2.0);
        assert!((p.as_watts() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn energy_divided_by_power_is_time() {
        let t = Energy::from_joules(6.0) / Power::from_watts(3.0);
        assert!((t.as_seconds() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn scaled_constructors_round_trip() {
        assert!((Energy::from_nano_joules(1.05).as_nano_joules() - 1.05).abs() < 1e-12);
        assert!((Power::from_micro_watts(160.0).as_micro_watts() - 160.0).abs() < 1e-9);
        assert!((Time::from_nanos(5.30).as_nanos() - 5.30).abs() < 1e-12);
        assert!((Frequency::from_mega_hertz(25.0).as_mega_hertz() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn frequency_period_is_reciprocal() {
        let f = Frequency::from_mega_hertz(25.0);
        assert!((f.period().as_nanos() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn saturating_sub_clamps_at_zero() {
        let a = Energy::from_joules(1.0);
        let b = Energy::from_joules(2.0);
        assert_eq!(a.saturating_sub(b), Energy::ZERO);
        assert!((b.saturating_sub(a).as_joules() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ordering_and_display() {
        assert!(Voltage::from_volts(3.2) < Voltage::from_volts(3.4));
        assert_eq!(format!("{}", Power::from_milli_watts(1.22)), "1.22e-3 W");
        assert_eq!(format!("{}", Time::from_nanos(40.0)), "4e-8 s");
    }
}
