//! A vendored, dependency-free subset of the `proptest` API.
//!
//! The build environment has no access to a crates.io mirror, so this crate
//! provides the slice of proptest that the workspace's property tests use:
//! `proptest!`, `prop_oneof!`, `prop_assert!`/`prop_assert_eq!`, range and
//! tuple strategies, `Just`, `any`, `prop_map`, and `collection::vec`.
//!
//! Semantics differ from upstream in two deliberate ways:
//!
//! - **No shrinking.** A failing case panics with the sampled inputs in the
//!   assertion message instead of a minimized counterexample.
//! - **Fully deterministic.** Each `proptest!` test derives its RNG seed
//!   from its own name, so a test explores the same case set on every run
//!   and on every machine. This keeps tier-1 CI runs reproducible.

use std::marker::PhantomData;
use std::ops::Range;

pub mod test_runner {
    /// Mirrors the upstream `ProptestConfig` fields the tests set.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config that runs `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// Deterministic splitmix64 generator.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from a test name, so each property explores
        /// its own (stable) stream.
        pub fn for_test(name: &str) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
            for b in name.bytes() {
                seed ^= u64::from(b);
                seed = seed.wrapping_mul(0x100_0000_01b3);
            }
            Self { state: seed }
        }

        /// Next raw 64-bit value (splitmix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform sample in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform sample in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use super::PhantomData;
    use super::Range;

    /// A generator of values of one type. Upstream proptest separates
    /// strategies from value trees (for shrinking); this shim samples
    /// directly.
    pub trait Strategy {
        /// The type of values this strategy produces.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    macro_rules! int_range_strategy {
        ($($ty:ty),+) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn sample(&self, rng: &mut TestRng) -> $ty {
                    let span = self.end.wrapping_sub(self.start) as u64;
                    assert!(span > 0, "empty integer range strategy");
                    self.start.wrapping_add(rng.below(span) as $ty)
                }
            }
        )+};
    }
    int_range_strategy!(u8, u16, u32, u64, usize);

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
        }
    }

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
    impl Arbitrary for u8 {
        fn arbitrary(rng: &mut TestRng) -> u8 {
            rng.next_u64() as u8
        }
    }
    impl Arbitrary for u16 {
        fn arbitrary(rng: &mut TestRng) -> u16 {
            rng.next_u64() as u16
        }
    }
    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> u32 {
            rng.next_u64() as u32
        }
    }
    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Debug)]
    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            *self
        }
    }
    impl<T> Copy for Any<T> {}

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// An arbitrary value of type `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    /// Weighted choice between type-erased strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        /// Builds a union; weights must not all be zero.
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total > 0, "prop_oneof! needs a positive total weight");
            Self { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (weight, arm) in &self.arms {
                let weight = u64::from(*weight);
                if pick < weight {
                    return arm.sample(rng);
                }
                pick -= weight;
            }
            unreachable!("weighted pick out of range")
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use super::Range;

    /// Strategy for `Vec`s with lengths drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A vector whose length lies in `size` and whose elements come from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Defines deterministic property tests. Each `fn name(arg in strategy, ...)`
/// expands to a `#[test]` that samples its strategies `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        cfg = $cfg:expr;
        $(
            #[test]
            fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            #[test]
            fn $name() {
                let config = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for _case in 0..config.cases {
                    $( let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng); )+
                    $body
                }
            }
        )*
    };
}

/// Shim for upstream `prop_assert!`: plain `assert!` (panics fail the case).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)+) => { assert!($($args)+) };
}

/// Shim for upstream `prop_assert_eq!`: plain `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)+) => { assert_eq!($($args)+) };
}

/// Weighted (or unweighted) choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( (($weight) as u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

pub mod prelude {
    //! The glob-import surface the tests use.
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::for_test("alpha");
        let mut b = TestRng::for_test("alpha");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_test("beta");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::for_test("ranges");
        for _ in 0..1000 {
            let x = Strategy::sample(&(10u64..20), &mut rng);
            assert!((10..20).contains(&x));
            let f = Strategy::sample(&(1.5..2.5f64), &mut rng);
            assert!((1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        let strat = prop_oneof![
            1 => Just(0u8),
            1 => Just(1u8),
            2 => Just(2u8),
        ];
        let mut rng = TestRng::for_test("oneof");
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[strat.sample(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn vec_lengths_in_range(xs in crate::collection::vec(0u32..5, 2..7)) {
            prop_assert!((2..7).contains(&xs.len()));
            prop_assert!(xs.iter().all(|&x| x < 5));
        }

        #[test]
        fn mapped_tuples_compose(pair in (0u32..4, 0u8..2).prop_map(|(a, b)| (a * 2, b))) {
            prop_assert!(pair.0 % 2 == 0);
            prop_assert!(pair.1 < 2);
        }
    }
}
