//! Property tests for the harvesting subsystem: physical invariants that
//! must hold under any load/harvest schedule.

use ehs_energy::{
    Capacitor, CapacitorConfig, EnergySystem, EnergySystemConfig, MonitorState, SampledTrace,
    SourceConfig, TracePreset, VoltageMonitor, VoltageThresholds,
};
use ehs_units::{Energy, Power, Time, Voltage};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn capacitor_charge_is_always_within_bounds(
        ops in proptest::collection::vec((any::<bool>(), 0.0..5e-6f64), 1..200)
    ) {
        let mut cap = Capacitor::fully_charged(CapacitorConfig::paper_default());
        let capacity = cap.capacity();
        for (is_charge, joules) in ops {
            let e = Energy::from_joules(joules);
            if is_charge {
                let absorbed = cap.charge(e);
                prop_assert!(absorbed <= e);
            } else {
                let delivered = cap.discharge(e);
                prop_assert!(delivered <= e);
            }
            prop_assert!(cap.stored() >= Energy::ZERO);
            prop_assert!(cap.stored() <= capacity);
            let v = cap.voltage().as_volts();
            prop_assert!((0.0..=3.5 + 1e-9).contains(&v));
        }
    }

    #[test]
    fn monitor_alternates_strictly(
        samples in proptest::collection::vec(2.5..3.6f64, 1..300)
    ) {
        let mut monitor = VoltageMonitor::new(VoltageThresholds::paper_default());
        let mut last_state = monitor.state();
        for v in samples {
            let fired = monitor.observe(Voltage::from_volts(v));
            let state = monitor.state();
            // An edge fires exactly when the state changes.
            prop_assert_eq!(fired, state != last_state);
            // State semantics: hibernating only at/below ckpt or awaiting
            // restore; operating only after crossing restore.
            if fired && state == MonitorState::Hibernating {
                prop_assert!(v <= 3.2);
            }
            if fired && state == MonitorState::Operating {
                prop_assert!(v >= 3.4);
            }
            last_state = state;
        }
    }

    #[test]
    fn energy_system_conserves_energy(
        loads in proptest::collection::vec(0.0..2e-7f64, 10..500),
        seed in 0u64..1000,
    ) {
        let config = EnergySystemConfig::paper_default();
        let source = SourceConfig::preset(TracePreset::RfHome).with_seed(seed).build();
        let mut system = EnergySystem::new(config, source).expect("valid");
        let initial = system.stored();
        let dt = Time::from_micros(20.0);
        for joules in loads {
            let event = system.step(dt, Energy::from_joules(joules));
            if event == ehs_energy::StepEvent::CheckpointRequested {
                system.power_off_and_recharge();
            }
        }
        // Conservation: every absorbed joule is either still stored or was
        // consumed (shed energy never entered the buffer).
        let s = system.stats();
        let lhs = initial + s.harvested;
        let rhs = system.stored() + s.consumed;
        let scale = lhs.as_joules().abs().max(1e-12);
        prop_assert!(
            (lhs.as_joules() - rhs.as_joules()).abs() / scale < 1e-6,
            "energy books do not balance: {lhs} vs {rhs}"
        );
        // Voltage stays within the physical rails.
        let v = system.voltage().as_volts();
        prop_assert!((0.0..=3.5 + 1e-9).contains(&v));
    }

    #[test]
    fn synthetic_traces_are_nonnegative_and_deterministic(
        seed in 0u64..500,
        times in proptest::collection::vec(0.0..10.0f64, 1..100)
    ) {
        for preset in TracePreset::ALL {
            let a = SourceConfig::preset(preset).with_seed(seed).build();
            let b = SourceConfig::preset(preset).with_seed(seed).build();
            for &t in &times {
                use ehs_energy::EnergySource;
                let time = Time::from_seconds(t);
                let pa = a.power_at(time);
                prop_assert!(pa >= Power::ZERO);
                prop_assert_eq!(pa, b.power_at(time));
            }
        }
    }

    #[test]
    fn sampled_trace_wraps_consistently(
        samples in proptest::collection::vec(0.0..0.05f64, 1..50),
        k in 0u32..5,
    ) {
        use ehs_energy::EnergySource;
        let period = Time::from_millis(1.0);
        let trace = SampledTrace::new(
            "prop",
            period,
            samples.iter().map(|&w| Power::from_watts(w)).collect(),
        );
        let len = samples.len() as f64;
        for (i, &w) in samples.iter().enumerate() {
            let t = Time::from_millis(i as f64 + 0.5 + f64::from(k) * len);
            prop_assert_eq!(trace.power_at(t).as_watts(), w);
        }
    }
}
