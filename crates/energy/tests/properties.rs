//! Property tests for the harvesting subsystem: physical invariants that
//! must hold under any load/harvest schedule.

use ehs_energy::{
    BurstPlan, Capacitor, CapacitorConfig, EnergySystem, EnergySystemConfig, MonitorState,
    SampledTrace, SourceConfig, StepEvent, TracePreset, VoltageMonitor, VoltageThresholds,
};
use ehs_units::{Energy, Frequency, Power, Time, Voltage};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn capacitor_charge_is_always_within_bounds(
        ops in proptest::collection::vec((any::<bool>(), 0.0..5e-6f64), 1..200)
    ) {
        let mut cap = Capacitor::fully_charged(CapacitorConfig::paper_default());
        let capacity = cap.capacity();
        for (is_charge, joules) in ops {
            let e = Energy::from_joules(joules);
            if is_charge {
                let absorbed = cap.charge(e);
                prop_assert!(absorbed <= e);
            } else {
                let delivered = cap.discharge(e);
                prop_assert!(delivered <= e);
            }
            prop_assert!(cap.stored() >= Energy::ZERO);
            prop_assert!(cap.stored() <= capacity);
            let v = cap.voltage().as_volts();
            prop_assert!((0.0..=3.5 + 1e-9).contains(&v));
        }
    }

    #[test]
    fn monitor_alternates_strictly(
        samples in proptest::collection::vec(2.5..3.6f64, 1..300)
    ) {
        let mut monitor = VoltageMonitor::new(VoltageThresholds::paper_default());
        let mut last_state = monitor.state();
        for v in samples {
            let fired = monitor.observe(Voltage::from_volts(v));
            let state = monitor.state();
            // An edge fires exactly when the state changes.
            prop_assert_eq!(fired, state != last_state);
            // State semantics: hibernating only at/below ckpt or awaiting
            // restore; operating only after crossing restore.
            if fired && state == MonitorState::Hibernating {
                prop_assert!(v <= 3.2);
            }
            if fired && state == MonitorState::Operating {
                prop_assert!(v >= 3.4);
            }
            last_state = state;
        }
    }

    #[test]
    fn energy_system_conserves_energy(
        loads in proptest::collection::vec(0.0..2e-7f64, 10..500),
        seed in 0u64..1000,
    ) {
        let config = EnergySystemConfig::paper_default();
        let source = SourceConfig::preset(TracePreset::RfHome).with_seed(seed).build();
        let mut system = EnergySystem::new(config, source).expect("valid");
        let initial = system.stored();
        let dt = Time::from_micros(20.0);
        for joules in loads {
            let event = system.step(dt, Energy::from_joules(joules));
            if event == ehs_energy::StepEvent::CheckpointRequested {
                system.power_off_and_recharge();
            }
        }
        // Conservation: every absorbed joule is either still stored or was
        // consumed (shed energy never entered the buffer).
        let s = system.stats();
        let lhs = initial + s.harvested;
        let rhs = system.stored() + s.consumed;
        let scale = lhs.as_joules().abs().max(1e-12);
        prop_assert!(
            (lhs.as_joules() - rhs.as_joules()).abs() / scale < 1e-6,
            "energy books do not balance: {lhs} vs {rhs}"
        );
        // Voltage stays within the physical rails.
        let v = system.voltage().as_volts();
        prop_assert!((0.0..=3.5 + 1e-9).contains(&v));
    }

    #[test]
    fn synthetic_traces_are_nonnegative_and_deterministic(
        seed in 0u64..500,
        times in proptest::collection::vec(0.0..10.0f64, 1..100)
    ) {
        for preset in TracePreset::ALL {
            let a = SourceConfig::preset(preset).with_seed(seed).build();
            let b = SourceConfig::preset(preset).with_seed(seed).build();
            for &t in &times {
                use ehs_energy::EnergySource;
                let time = Time::from_seconds(t);
                let pa = a.power_at(time);
                prop_assert!(pa >= Power::ZERO);
                prop_assert_eq!(pa, b.power_at(time));
            }
        }
    }

    #[test]
    fn step_burst_is_bitwise_n_steps(
        seed in 0u64..200,
        load_mw in 0.5..25.0f64,
        bursts in proptest::collection::vec(1u64..400, 1..20),
    ) {
        // step_burst(n) must be indistinguishable — to the last f64 bit —
        // from n individual step() calls, including the overdraw (capacitor
        // self-discharge) accumulator the simulator keeps alongside.
        let config = EnergySystemConfig::paper_default();
        let mk = || {
            let source = SourceConfig::preset(TracePreset::RfHome).with_seed(seed).build();
            EnergySystem::new(config.clone(), source).expect("valid")
        };
        let mut fast = mk();
        let mut slow = mk();
        let dt = Time::from_nanos(40.0);
        let load = Power::from_milli_watts(load_mw) * dt;
        let mut fast_overdraw = Energy::ZERO;
        let mut slow_overdraw = Energy::ZERO;
        for n in bursts {
            let plan = BurstPlan {
                max_cycles: n,
                dt,
                load,
                frequency: Frequency::from_mega_hertz(25.0),
                wake_at_cycle: None,
                wake_below_voltage: None,
            };
            let (taken, event) = fast.step_burst(&plan, &mut fast_overdraw);
            prop_assert!(taken >= 1 && taken <= n);
            // An early exit is only ever caused by a non-Running event.
            prop_assert!(taken == n || event != StepEvent::Running);
            let mut slow_event = StepEvent::Running;
            for _ in 0..taken {
                let before = slow.stats().consumed;
                slow_event = slow.step(dt, load);
                let drawn = slow.stats().consumed - before;
                slow_overdraw += drawn.saturating_sub(load);
            }
            prop_assert_eq!(event, slow_event);
            prop_assert_eq!(
                fast.now().as_seconds().to_bits(),
                slow.now().as_seconds().to_bits()
            );
            prop_assert_eq!(
                fast.voltage().as_volts().to_bits(),
                slow.voltage().as_volts().to_bits()
            );
            prop_assert_eq!(fast.stored(), slow.stored());
            prop_assert_eq!(fast.stats(), slow.stats());
            prop_assert_eq!(fast_overdraw, slow_overdraw);
            if event != StepEvent::Running {
                let a = fast.power_off_and_recharge();
                let b = slow.power_off_and_recharge();
                prop_assert_eq!(a, b);
                if !a.recovered {
                    break;
                }
            }
        }
    }

    #[test]
    fn step_burst_wake_conditions_never_overshoot(
        seed in 0u64..100,
        wake_cycle in 1u64..2000,
        guard_v in 3.30..3.49f64,
    ) {
        // With wake conditions armed, the burst must stop on exactly the
        // first cycle that satisfies one (or an event fires), never later.
        let config = EnergySystemConfig::paper_default();
        let source = SourceConfig::preset(TracePreset::RfOffice).with_seed(seed).build();
        let mut sys = EnergySystem::new(config, source).expect("valid");
        let dt = Time::from_nanos(40.0);
        let load = Power::from_milli_watts(20.0) * dt;
        let freq = Frequency::from_mega_hertz(25.0);
        let guard = Voltage::from_volts(guard_v);
        let plan = BurstPlan {
            max_cycles: u64::MAX,
            dt,
            load,
            frequency: freq,
            wake_at_cycle: Some(wake_cycle),
            wake_below_voltage: Some(guard),
        };
        let mut overdraw = Energy::ZERO;
        let (taken, event) = sys.step_burst(&plan, &mut overdraw);
        prop_assert!(taken >= 1);
        let cycle = (sys.now() * freq) as u64;
        let stopped_by_wake = cycle >= wake_cycle || sys.voltage() < guard;
        prop_assert!(stopped_by_wake || event != StepEvent::Running);
        // No overshoot: replaying taken-1 cycles must satisfy *no* stop
        // condition (otherwise the burst ran past a wakeup).
        if taken > 1 {
            let source = SourceConfig::preset(TracePreset::RfOffice).with_seed(seed).build();
            let mut replay = EnergySystem::new(EnergySystemConfig::paper_default(), source)
                .expect("valid");
            for _ in 0..taken - 1 {
                prop_assert_eq!(replay.step(dt, load), StepEvent::Running);
            }
            let replay_cycle = (replay.now() * freq) as u64;
            prop_assert!(replay_cycle < wake_cycle);
            prop_assert!(replay.voltage() >= guard);
        }
    }

    #[test]
    fn speculative_advance_matches_guarded_bit_for_bit(
        seed in 0u64..200,
        preset_idx in 0usize..8,
        load_mw in prop_oneof![Just(0.0), 0.0..30.0f64, 100.0..350.0f64],
        dt_kind in 0usize..3,
        bursts in proptest::collection::vec(1u64..4096, 1..10),
        wake_cycle in prop_oneof![Just(None), (1u64..200_000).prop_map(Some)],
        guard_v in prop_oneof![Just(None), (2.9..3.49f64).prop_map(Some)],
        big_cap in any::<bool>(),
    ) {
        // The speculative chunked advance must be invisible: an identical
        // burst/outage schedule driven with speculation on and off produces
        // bit-identical trajectories — every stats field, `now`, the
        // monitor state, the per-burst (cycles, event) and the outage
        // outcomes. The generators cover capacity saturation (zero load on
        // a charging trace), brown-out clamps (loads far past the reserve
        // at the coarse dt), segment boundaries mid-chunk (RF segments are
        // 150 µs; 4096 cycles at 40 ns span one), wake guards landing on
        // chunk edges, and 1-cycle bursts.
        let preset = TracePreset::ALL[preset_idx % TracePreset::ALL.len()];
        let dt = [Time::from_nanos(40.0), Time::from_micros(10.0), Time::from_micros(20.0)]
            [dt_kind];
        let mut config = EnergySystemConfig::paper_default();
        config.max_off_time = Time::from_seconds(0.05);
        if big_cap {
            config = config.with_capacitor(
                CapacitorConfig::paper_default()
                    .with_capacitance(ehs_units::Capacitance::from_micro_farads(47.0)),
            );
        }
        let mk = |speculate: bool| {
            let source = SourceConfig::preset(preset).with_seed(seed).build();
            let mut sys = EnergySystem::new(config.clone(), source).expect("valid");
            sys.set_speculation(speculate);
            sys
        };
        let mut spec = mk(true);
        let mut guarded = mk(false);
        let load = Power::from_milli_watts(load_mw) * dt;
        let guard = guard_v.map(Voltage::from_volts);
        let mut spec_od = Energy::ZERO;
        let mut guarded_od = Energy::ZERO;
        for n in bursts {
            let plan = BurstPlan {
                max_cycles: n,
                dt,
                load,
                frequency: Frequency::from_mega_hertz(25.0),
                wake_at_cycle: wake_cycle,
                wake_below_voltage: guard,
            };
            let a = spec.step_burst(&plan, &mut spec_od);
            let b = guarded.step_burst(&plan, &mut guarded_od);
            prop_assert_eq!(a, b);
            prop_assert_eq!(spec_od, guarded_od);
            prop_assert_eq!(
                spec.now().as_seconds().to_bits(),
                guarded.now().as_seconds().to_bits()
            );
            prop_assert_eq!(spec.stored(), guarded.stored());
            prop_assert_eq!(spec.stats(), guarded.stats());
            prop_assert_eq!(spec.monitor_state(), guarded.monitor_state());
            if a.1 != StepEvent::Running {
                let oa = spec.power_off_and_recharge();
                let ob = guarded.power_off_and_recharge();
                prop_assert_eq!(oa, ob);
                prop_assert_eq!(spec.stored(), guarded.stored());
                prop_assert_eq!(spec.stats(), guarded.stats());
                prop_assert_eq!(spec.monitor_state(), guarded.monitor_state());
                if !oa.recovered {
                    break;
                }
            }
        }
    }

    #[test]
    fn speculative_recharge_matches_guarded_bit_for_bit(
        seed in 0u64..300,
        preset_idx in 0usize..8,
        max_off_ms in 1.0..300.0f64,
    ) {
        // The outage path alone, across horizons that land both before and
        // after recovery, on every trace preset.
        let preset = TracePreset::ALL[preset_idx % TracePreset::ALL.len()];
        let mut config = EnergySystemConfig::paper_default();
        config.max_off_time = Time::from_millis(max_off_ms);
        let mk = |speculate: bool| {
            let source = SourceConfig::preset(preset).with_seed(seed).build();
            let mut sys = EnergySystem::new(config.clone(), source).expect("valid");
            sys.set_speculation(speculate);
            sys
        };
        let mut spec = mk(true);
        let mut guarded = mk(false);
        let dt = Time::from_micros(10.0);
        let load = Power::from_milli_watts(8.0) * dt;
        // Bounded drain: the strongest presets can outpower this load and
        // never checkpoint — skip those runs rather than spin.
        let mut drained = false;
        for _ in 0..400_000 {
            if spec.step(dt, load) == StepEvent::CheckpointRequested {
                drained = true;
                break;
            }
        }
        if !drained {
            continue;
        }
        while guarded.step(dt, load) != StepEvent::CheckpointRequested {}
        let oa = spec.power_off_and_recharge();
        let ob = guarded.power_off_and_recharge();
        prop_assert_eq!(oa, ob);
        prop_assert_eq!(
            spec.now().as_seconds().to_bits(),
            guarded.now().as_seconds().to_bits()
        );
        prop_assert_eq!(spec.stored(), guarded.stored());
        prop_assert_eq!(spec.stats(), guarded.stats());
        prop_assert_eq!(spec.monitor_state(), guarded.monitor_state());
    }

    #[test]
    fn sampled_trace_wraps_consistently(
        samples in proptest::collection::vec(0.0..0.05f64, 1..50),
        k in 0u32..5,
    ) {
        use ehs_energy::EnergySource;
        let period = Time::from_millis(1.0);
        let trace = SampledTrace::new(
            "prop",
            period,
            samples.iter().map(|&w| Power::from_watts(w)).collect(),
        );
        let len = samples.len() as f64;
        for (i, &w) in samples.iter().enumerate() {
            let t = Time::from_millis(i as f64 + 0.5 + f64::from(k) * len);
            prop_assert_eq!(trace.power_at(t).as_watts(), w);
        }
    }
}
