//! Pins the hot paths to the stored-energy domain: `power_off_and_recharge`
//! must perform **zero** `sqrt` voltage derivations on non-edge recharge
//! steps, and burst stepping must derive voltages only on monitor-edge
//! cycles.
//!
//! The probe is the process-wide counter behind
//! [`ehs_energy::voltage_sqrt_count`]. It is shared across threads, so every
//! scenario lives in this one test function — this file is its own test
//! binary and nothing else in it touches a capacitor concurrently.

use ehs_energy::{
    voltage_sqrt_count, BurstPlan, ConstantSource, EnergySystem, EnergySystemConfig, StepEvent,
};
use ehs_units::{Energy, Frequency, Power, Time};

fn drain_to_checkpoint(sys: &mut EnergySystem, dt: Time, load: Energy) -> u64 {
    let mut steps = 0;
    while sys.step(dt, load) != StepEvent::CheckpointRequested {
        steps += 1;
    }
    steps
}

#[test]
fn hot_paths_stay_in_the_energy_domain() {
    let dt = Time::from_micros(10.0);
    let load = Power::from_milli_watts(5.0) * dt;

    for speculate in [true, false] {
        // --- Recharge: many steps, exactly one edge (the recovery). ---
        let mut sys = EnergySystem::new(
            EnergySystemConfig::paper_default(),
            ConstantSource::new(Power::from_milli_watts(0.5)),
        )
        .expect("valid");
        sys.set_speculation(speculate);
        drain_to_checkpoint(&mut sys, dt, load);
        let before = voltage_sqrt_count();
        let out = sys.power_off_and_recharge();
        let derivations = voltage_sqrt_count() - before;
        let steps = (out.off_duration.as_seconds() / sys.config().recharge_step.as_seconds())
            .round() as u64;
        assert!(out.recovered);
        assert!(steps > 50, "want a long recharge, got {steps} steps");
        assert_eq!(
            derivations, 1,
            "speculate={speculate}: recharge must derive a voltage only on \
             the recovery edge, got {derivations} over {steps} steps"
        );

        // --- Unrecovered horizon: only the final catch-up observation. ---
        let mut cfg = EnergySystemConfig::paper_default();
        cfg.max_off_time = Time::from_seconds(0.05);
        let mut sys = EnergySystem::new(cfg, ConstantSource::new(Power::ZERO)).expect("valid");
        sys.set_speculation(speculate);
        drain_to_checkpoint(&mut sys, dt, load);
        let before = voltage_sqrt_count();
        let out = sys.power_off_and_recharge();
        let derivations = voltage_sqrt_count() - before;
        assert!(!out.recovered);
        assert_eq!(
            derivations, 1,
            "speculate={speculate}: an unrecovered outage derives exactly \
             the one catch-up voltage, got {derivations}"
        );

        // --- Burst stepping: no voltage work on event-free cycles. ---
        let mut sys = EnergySystem::new(
            EnergySystemConfig::paper_default(),
            ConstantSource::new(Power::from_milli_watts(100.0)),
        )
        .expect("valid");
        sys.set_speculation(speculate);
        let plan = BurstPlan {
            max_cycles: 100_000,
            dt: Time::from_nanos(40.0),
            load: Power::from_milli_watts(1.0) * Time::from_nanos(40.0),
            frequency: Frequency::from_mega_hertz(25.0),
            wake_at_cycle: None,
            wake_below_voltage: None,
        };
        let mut overdraw = Energy::ZERO;
        let before = voltage_sqrt_count();
        let (taken, event) = sys.step_burst(&plan, &mut overdraw);
        let derivations = voltage_sqrt_count() - before;
        assert_eq!((taken, event), (100_000, StepEvent::Running));
        assert_eq!(
            derivations, 0,
            "speculate={speculate}: an event-free burst derives no voltages, \
             got {derivations}"
        );
    }
}
