//! The harvested-energy buffer.

use crate::EnergyConfigError;
use ehs_units::{Capacitance, Energy, Power, Voltage};
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide count of voltage derivations — the `sqrt(2E/C)` evaluations
/// in [`Capacitor::voltage`]. The hot stepping paths are required to stay in
/// the stored-energy domain except on monitor-edge cycles;
/// `crates/energy/tests/sqrt_gate.rs` pins `power_off_and_recharge` to zero
/// derivations on non-edge recharge steps through this counter.
static VOLTAGE_DERIVATIONS: AtomicU64 = AtomicU64::new(0);

/// Total `sqrt` voltage derivations performed by every [`Capacitor`] in this
/// process so far. Monotone; callers compare deltas around a region of
/// interest (and keep such assertions in their own test binary, since the
/// counter is shared across threads).
pub fn voltage_sqrt_count() -> u64 {
    VOLTAGE_DERIVATIONS.load(Ordering::Relaxed)
}

/// Static description of the energy buffer.
///
/// The default is a 4.7 µF capacitor charged to 3.5 V (the paper's Table II
/// value scaled for this platform's draw — see
/// [`CapacitorConfig::paper_default`]); sensitivity analysis sweeps two
/// orders of magnitude upward (Fig. 16).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapacitorConfig {
    /// Capacitance of the buffer.
    pub capacitance: Capacitance,
    /// Fully-charged ("open-circuit cutoff") voltage; charging stops here.
    pub v_max: Voltage,
    /// Minimum operating voltage of the regulator; below this the digital
    /// logic browns out. Energy below `v_min` is unusable.
    pub v_min: Voltage,
    /// Self-discharge (leakage) of the capacitor itself per farad.
    ///
    /// Larger capacitors leak more (Section VI-H7); the model is
    /// `P_leak = leakage_per_farad · C`.
    pub leakage_per_farad: Power,
}

impl CapacitorConfig {
    /// The reproduction's default: 4.7 µF, 3.5 V / 2.8 V.
    ///
    /// The paper's Table II lists 0.47 µF for a platform that consumes
    /// ~2.6 mW; our platform (Table II per-access energies at a 25 MHz
    /// fetch stream) consumes roughly ten times that, so the buffer is
    /// scaled by the same factor to preserve the quantity that governs all
    /// intermittence dynamics — the ratio of buffered energy to drain power
    /// (power-cycle length in instructions). See `DESIGN.md` §4.
    pub fn paper_default() -> Self {
        Self {
            capacitance: Capacitance::from_micro_farads(4.7),
            v_max: Voltage::from_volts(3.5),
            v_min: Voltage::from_volts(2.8),
            // Chosen so the default buffer leaks well under 1 µW while the
            // Fig. 16 sweep's largest buffer leaks ~100 µW, matching the
            // paper's note that "larger capacitors ... cause higher leakage
            // currents".
            leakage_per_farad: Power::from_watts(0.2),
        }
    }

    /// Replaces the capacitance, e.g. for the Fig. 16 sweep.
    #[must_use]
    pub fn with_capacitance(mut self, c: Capacitance) -> Self {
        self.capacitance = c;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`EnergyConfigError::NonPositiveCapacitance`] if the
    /// capacitance is not positive, and
    /// [`EnergyConfigError::RailOrdering`] if `v_min >= v_max`.
    pub fn validate(&self) -> Result<(), EnergyConfigError> {
        if self.capacitance.as_farads() <= 0.0 {
            return Err(EnergyConfigError::NonPositiveCapacitance);
        }
        if self.v_min >= self.v_max {
            return Err(EnergyConfigError::RailOrdering {
                v_min: self.v_min,
                v_max: self.v_max,
            });
        }
        Ok(())
    }
}

/// Runtime state of the energy buffer: stored energy, bounded by
/// `[0, ½ C V_max²]`.
///
/// The capacitor is the *only* energy store in the system; execution,
/// leakage, checkpointing, and the capacitor's own self-discharge all draw
/// from it, and the harvester deposits into it. The interplay of those flows
/// with the voltage thresholds is what creates power cycles.
///
/// # Examples
///
/// ```
/// use ehs_energy::{Capacitor, CapacitorConfig};
/// use ehs_units::{Energy, Voltage};
///
/// let mut cap = Capacitor::fully_charged(CapacitorConfig::paper_default());
/// assert!((cap.voltage().as_volts() - 3.5).abs() < 1e-9);
/// cap.discharge(Energy::from_micro_joules(1.0));
/// assert!(cap.voltage() < Voltage::from_volts(3.5));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Capacitor {
    config: CapacitorConfig,
    stored: Energy,
    /// `Energy::in_capacitor(capacitance, v_max)`, precomputed: `charge`
    /// consults the headroom every simulated cycle.
    capacity: Energy,
    /// `leakage_per_farad · C`, precomputed for the same reason.
    leakage: Power,
}

impl Capacitor {
    /// Creates a capacitor charged to `v_max`.
    pub fn fully_charged(config: CapacitorConfig) -> Self {
        Self::charged_to(config, config.v_max)
    }

    /// Creates a capacitor charged to an arbitrary voltage (clamped to
    /// `[0, v_max]`).
    pub fn charged_to(config: CapacitorConfig, v: Voltage) -> Self {
        let v = v.clamp(Voltage::ZERO, config.v_max);
        let stored = Energy::in_capacitor(config.capacitance, v);
        Self {
            capacity: Energy::in_capacitor(config.capacitance, config.v_max),
            leakage: config.leakage_per_farad * config.capacitance.as_farads(),
            config,
            stored,
        }
    }

    /// The static configuration.
    pub fn config(&self) -> &CapacitorConfig {
        &self.config
    }

    /// Currently stored energy.
    pub fn stored(&self) -> Energy {
        self.stored
    }

    /// Current terminal voltage, `sqrt(2E/C)`.
    pub fn voltage(&self) -> Voltage {
        VOLTAGE_DERIVATIONS.fetch_add(1, Ordering::Relaxed);
        self.stored.capacitor_voltage(self.config.capacitance)
    }

    /// Maximum energy the buffer can hold.
    pub fn capacity(&self) -> Energy {
        self.capacity
    }

    /// Energy stored when the terminal voltage equals `v`.
    pub fn energy_at(&self, v: Voltage) -> Energy {
        Energy::in_capacitor(self.config.capacitance, v)
    }

    /// Self-discharge power of the capacitor itself.
    pub fn leakage(&self) -> Power {
        self.leakage
    }

    /// Deposits harvested energy; charging saturates at `v_max`.
    ///
    /// `e` must be non-negative (harvested power integrated over a positive
    /// interval always is). Returns the energy actually absorbed (excess is
    /// shed, as a real harvester front-end would do once the buffer is full).
    pub fn charge(&mut self, e: Energy) -> Energy {
        debug_assert!(e >= Energy::ZERO, "charge takes non-negative energy");
        // `headroom >= 0` by the saturation and `e >= 0` by contract, so the
        // min is already non-negative: no zero clamp needed. `charge` and
        // `discharge` run every simulated cycle and every operation here
        // sits on the serial dependency chain through `stored`.
        let headroom = self.capacity.saturating_sub(self.stored);
        let absorbed = e.min(headroom);
        self.stored += absorbed;
        absorbed
    }

    /// Withdraws energy; the store clamps at zero.
    ///
    /// `e` must be non-negative. Returns the energy actually delivered. A
    /// shortfall (returned energy less than requested) means the system
    /// browned out mid-operation; the voltage-monitor thresholds are chosen
    /// so this never happens during a correctly-margined checkpoint.
    pub fn discharge(&mut self, e: Energy) -> Energy {
        debug_assert!(e >= Energy::ZERO, "discharge takes non-negative energy");
        // `delivered` is one of two non-negative operands, and subtracting a
        // value that compares `<=` from `stored` rounds a non-negative real,
        // so the difference cannot go negative: plain subtraction replaces
        // the historical clamp-at-zero bit for bit.
        let delivered = e.min(self.stored);
        self.stored -= delivered;
        delivered
    }

    /// Overwrites the stored energy with a value the speculative chunked
    /// advance computed through this capacitor's own arithmetic
    /// (`EnergySystem::speculate_burst` / `speculate_recharge`); the commit
    /// is only reached after the post-check proved the value stayed within
    /// `[0, capacity]` on every cycle of the chunk.
    pub(crate) fn set_stored(&mut self, e: Energy) {
        debug_assert!(e >= Energy::ZERO && e <= self.capacity);
        self.stored = e;
    }

    /// True when the terminal voltage is at or below the brown-out floor.
    pub fn below_minimum(&self) -> bool {
        self.voltage() <= self.config.v_min
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ehs_units::Time;

    fn cap() -> Capacitor {
        Capacitor::fully_charged(CapacitorConfig::paper_default())
    }

    #[test]
    fn fully_charged_voltage_is_v_max() {
        assert!((cap().voltage().as_volts() - 3.5).abs() < 1e-9);
    }

    #[test]
    fn charge_saturates_at_capacity() {
        let mut c = cap();
        let absorbed = c.charge(Energy::from_joules(1.0));
        assert_eq!(absorbed, Energy::ZERO);
        assert_eq!(c.stored(), c.capacity());
    }

    #[test]
    fn discharge_clamps_at_zero() {
        let mut c = cap();
        let total = c.stored();
        let delivered = c.discharge(Energy::from_joules(1.0));
        assert_eq!(delivered, total);
        assert_eq!(c.stored(), Energy::ZERO);
        assert_eq!(c.voltage(), Voltage::ZERO);
    }

    #[test]
    fn charge_discharge_round_trip() {
        let mut c =
            Capacitor::charged_to(CapacitorConfig::paper_default(), Voltage::from_volts(3.0));
        let e = Energy::from_nano_joules(2500.0);
        c.discharge(e);
        c.charge(e);
        assert!((c.voltage().as_volts() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn reserve_between_ckpt_and_min_funds_checkpoint() {
        // Sanity-check the JIT margin of the default configuration: the
        // 3.2 V -> 2.8 V band holds ~5.6 uJ, far above any checkpoint cost.
        let c = cap();
        let reserve = c.energy_at(Voltage::from_volts(3.2)) - c.energy_at(Voltage::from_volts(2.8));
        assert!(reserve > Energy::from_micro_joules(5.0));
        assert!(reserve < Energy::from_micro_joules(10.0));
    }

    #[test]
    fn leakage_scales_with_capacitance() {
        let small = Capacitor::fully_charged(CapacitorConfig::paper_default());
        let big = Capacitor::fully_charged(
            CapacitorConfig::paper_default()
                .with_capacitance(Capacitance::from_micro_farads(100.0)),
        );
        assert!(big.leakage() > small.leakage());
        // Leakage over a microsecond must not dwarf the store itself.
        let drained = small.leakage() * Time::from_micros(1.0);
        assert!(drained < small.capacity() * 0.01);
    }

    #[test]
    fn charged_to_clamps_above_v_max() {
        let c = Capacitor::charged_to(CapacitorConfig::paper_default(), Voltage::from_volts(9.0));
        assert!((c.voltage().as_volts() - 3.5).abs() < 1e-9);
    }

    #[test]
    fn validate_rejects_bad_configs() {
        let mut cfg = CapacitorConfig::paper_default();
        cfg.capacitance = Capacitance::from_farads(0.0);
        assert!(cfg.validate().is_err());
        let mut cfg = CapacitorConfig::paper_default();
        cfg.v_min = Voltage::from_volts(4.0);
        assert!(cfg.validate().is_err());
        assert!(CapacitorConfig::paper_default().validate().is_ok());
    }

    #[test]
    fn inverted_rails_report_an_honest_error() {
        // Regression: this used to come back as `ThresholdOrdering` with
        // `v_min` smuggled into the `v_ckpt` field and `v_max` into `v_rst`,
        // producing a diagnostic about thresholds the config never set.
        let mut cfg = CapacitorConfig::paper_default();
        cfg.v_min = Voltage::from_volts(4.0);
        match cfg.validate() {
            Err(EnergyConfigError::RailOrdering { v_min, v_max }) => {
                assert_eq!(v_min, Voltage::from_volts(4.0));
                assert_eq!(v_max, cfg.v_max);
            }
            other => panic!("expected RailOrdering, got {other:?}"),
        }
        let msg = cfg.validate().unwrap_err().to_string();
        assert!(msg.contains("V_min"), "message names the rails: {msg}");
        assert!(
            !msg.contains("ckpt"),
            "message must not mention thresholds: {msg}"
        );
    }
}
