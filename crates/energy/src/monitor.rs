//! The hysteretic voltage monitor that drives JIT checkpointing.

use crate::EnergyConfigError;
use ehs_units::Voltage;

/// The two JIT thresholds watched by the monitor (paper Section II).
///
/// * `v_ckpt` — falling through this voltage means power failure is imminent;
///   the monitor signals the checkpointing logic.
/// * `v_rst` — rising back through this voltage (while off) means enough
///   energy has been re-buffered; the monitor signals restoration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VoltageThresholds {
    /// Falling-edge checkpoint trigger.
    pub v_ckpt: Voltage,
    /// Rising-edge restore trigger (must exceed `v_ckpt` for hysteresis).
    pub v_rst: Voltage,
}

impl VoltageThresholds {
    /// The paper's Table II default: checkpoint at 3.2 V, restore at 3.4 V.
    pub fn paper_default() -> Self {
        Self {
            v_ckpt: Voltage::from_volts(3.2),
            v_rst: Voltage::from_volts(3.4),
        }
    }

    /// Validates `v_min < v_ckpt < v_rst <= v_max`.
    ///
    /// # Errors
    ///
    /// Returns [`EnergyConfigError::ThresholdOrdering`] when violated.
    pub fn validate(&self, v_min: Voltage, v_max: Voltage) -> Result<(), EnergyConfigError> {
        let ordered = v_min < self.v_ckpt && self.v_ckpt < self.v_rst && self.v_rst <= v_max;
        if ordered {
            Ok(())
        } else {
            Err(EnergyConfigError::ThresholdOrdering {
                v_min,
                v_ckpt: self.v_ckpt,
                v_rst: self.v_rst,
                v_max,
            })
        }
    }
}

/// Which side of the hysteresis loop the monitor is on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MonitorState {
    /// Supply is healthy; executing and watching for the falling edge.
    Operating,
    /// Below `v_ckpt`: the checkpoint signal has fired and the system is
    /// (about to be) powered off, watching for the rising edge.
    Hibernating,
}

/// Hysteretic comparator over the capacitor voltage.
///
/// Existing energy-harvesting systems already ship this block; EDBP reuses it
/// to observe the supply voltage "for free" (paper Section VI-B).
///
/// # Examples
///
/// ```
/// use ehs_energy::{MonitorState, VoltageMonitor, VoltageThresholds};
/// use ehs_units::Voltage;
///
/// let mut monitor = VoltageMonitor::new(VoltageThresholds::paper_default());
/// assert!(!monitor.observe(Voltage::from_volts(3.3))); // still healthy
/// assert!(monitor.observe(Voltage::from_volts(3.19))); // falling edge fires
/// assert_eq!(monitor.state(), MonitorState::Hibernating);
/// assert!(!monitor.observe(Voltage::from_volts(3.3))); // below v_rst: stay off
/// assert!(monitor.observe(Voltage::from_volts(3.41))); // rising edge fires
/// assert_eq!(monitor.state(), MonitorState::Operating);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct VoltageMonitor {
    thresholds: VoltageThresholds,
    state: MonitorState,
    last_seen: Voltage,
}

impl VoltageMonitor {
    /// Creates a monitor in the [`MonitorState::Operating`] state.
    pub fn new(thresholds: VoltageThresholds) -> Self {
        Self {
            thresholds,
            state: MonitorState::Operating,
            last_seen: thresholds.v_rst,
        }
    }

    /// The configured thresholds.
    pub fn thresholds(&self) -> VoltageThresholds {
        self.thresholds
    }

    /// Current hysteresis state.
    pub fn state(&self) -> MonitorState {
        self.state
    }

    /// Most recent voltage fed to [`VoltageMonitor::observe`].
    pub fn last_seen(&self) -> Voltage {
        self.last_seen
    }

    /// Feeds a new voltage sample; returns `true` when an edge fires
    /// (checkpoint request while operating, restore request while
    /// hibernating).
    pub fn observe(&mut self, v: Voltage) -> bool {
        self.last_seen = v;
        match self.state {
            MonitorState::Operating if v <= self.thresholds.v_ckpt => {
                self.state = MonitorState::Hibernating;
                true
            }
            MonitorState::Hibernating if v >= self.thresholds.v_rst => {
                self.state = MonitorState::Operating;
                true
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn volts(v: f64) -> Voltage {
        Voltage::from_volts(v)
    }

    #[test]
    fn default_thresholds_validate_against_paper_rails() {
        VoltageThresholds::paper_default()
            .validate(volts(2.8), volts(3.5))
            .expect("paper defaults are consistent");
    }

    #[test]
    fn rejects_inverted_thresholds() {
        let t = VoltageThresholds {
            v_ckpt: volts(3.4),
            v_rst: volts(3.2),
        };
        assert!(t.validate(volts(2.8), volts(3.5)).is_err());
    }

    #[test]
    fn rejects_restore_above_v_max() {
        let t = VoltageThresholds {
            v_ckpt: volts(3.2),
            v_rst: volts(3.6),
        };
        assert!(t.validate(volts(2.8), volts(3.5)).is_err());
    }

    #[test]
    fn no_retrigger_while_hibernating() {
        let mut m = VoltageMonitor::new(VoltageThresholds::paper_default());
        assert!(m.observe(volts(3.1)));
        // Repeated low samples must not fire again.
        assert!(!m.observe(volts(3.0)));
        assert!(!m.observe(volts(2.9)));
        assert_eq!(m.state(), MonitorState::Hibernating);
    }

    #[test]
    fn hysteresis_prevents_chatter_between_thresholds() {
        let mut m = VoltageMonitor::new(VoltageThresholds::paper_default());
        assert!(m.observe(volts(3.15)));
        // Voltage recovers into the dead band: neither edge fires.
        assert!(!m.observe(volts(3.3)));
        assert_eq!(m.state(), MonitorState::Hibernating);
        assert!(m.observe(volts(3.45)));
        assert_eq!(m.state(), MonitorState::Operating);
        // Back into the dead band from above: still no edge.
        assert!(!m.observe(volts(3.25)));
        assert_eq!(m.state(), MonitorState::Operating);
    }

    #[test]
    fn exact_threshold_values_fire() {
        let mut m = VoltageMonitor::new(VoltageThresholds::paper_default());
        assert!(m.observe(volts(3.2)));
        assert!(m.observe(volts(3.4)));
    }
}
