//! Configuration-validation errors.

use ehs_units::{Energy, Voltage};
use std::error::Error;
use std::fmt;

/// Error returned when an energy-harvesting configuration is physically
/// inconsistent.
#[derive(Debug, Clone, PartialEq)]
pub enum EnergyConfigError {
    /// The voltage thresholds are not ordered `V_min < V_ckpt < V_rst ≤ V_max`.
    ThresholdOrdering {
        /// Minimum operating voltage.
        v_min: Voltage,
        /// Falling-edge checkpoint threshold.
        v_ckpt: Voltage,
        /// Rising-edge restore threshold.
        v_rst: Voltage,
        /// Fully-charged voltage.
        v_max: Voltage,
    },
    /// The capacitor's own rails are inverted (`v_min >= v_max`): no
    /// operating window exists between the brown-out floor and full charge.
    /// Distinct from [`Self::ThresholdOrdering`], which is about the monitor
    /// thresholds *between* the rails.
    RailOrdering {
        /// Minimum operating voltage.
        v_min: Voltage,
        /// Fully-charged voltage.
        v_max: Voltage,
    },
    /// The capacitance is zero or negative.
    NonPositiveCapacitance,
    /// The reserve between `V_ckpt` and `V_min` cannot fund the declared
    /// worst-case checkpoint energy (the JIT guarantee of Section II).
    InsufficientCheckpointReserve {
        /// Energy held between `V_ckpt` and `V_min`.
        reserve: Energy,
        /// Worst-case checkpoint energy the architecture declared.
        required: Energy,
    },
}

impl fmt::Display for EnergyConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ThresholdOrdering {
                v_min,
                v_ckpt,
                v_rst,
                v_max,
            } => write!(
                f,
                "voltage thresholds must satisfy V_min < V_ckpt < V_rst <= V_max \
                 (got V_min={v_min}, V_ckpt={v_ckpt}, V_rst={v_rst}, V_max={v_max})"
            ),
            Self::RailOrdering { v_min, v_max } => write!(
                f,
                "capacitor rails must satisfy V_min < V_max (got V_min={v_min}, V_max={v_max})"
            ),
            Self::NonPositiveCapacitance => write!(f, "capacitance must be positive"),
            Self::InsufficientCheckpointReserve { reserve, required } => write!(
                f,
                "checkpoint reserve {reserve} below worst-case checkpoint cost {required}"
            ),
        }
    }
}

impl Error for EnergyConfigError {}
