//! Harvested-power sources.
//!
//! The paper evaluates against four real harvested-energy traces — RFHome,
//! RFOffice, solar and thermal (\[23\], \[55\]) — which are not publicly
//! redistributable. We substitute parametric synthesizers that preserve the
//! property the evaluation depends on: the *outage-frequency ordering*
//! `thermal < solar < RFOffice < RFHome` (Section VI-H6). RF sources are
//! weak and bursty; solar and thermal are stronger and steadier. Users with
//! real measurements can replay them through [`SampledTrace`].

use ehs_units::{Power, Time};
use std::fmt;

/// A source of harvested ambient power.
///
/// Implementations must be *random access* — `power_at` is a pure function of
/// time — so the simulator can fast-forward through recharge periods without
/// integrating every instant, and so runs are reproducible.
pub trait EnergySource: fmt::Debug + Send {
    /// Instantaneous harvested power at absolute time `t`.
    fn power_at(&self, t: Time) -> Power;

    /// Human-readable source name (used in reports).
    fn name(&self) -> &str;

    /// Identifier of the piecewise-constant segment containing `t`, if this
    /// source is piecewise-constant in time.
    ///
    /// Contract: if two instants map to the same `Some(segment)`, `power_at`
    /// must return bit-identical power for both. Callers use this to memoize
    /// `power_at` across consecutive steps; `None` (the default) disables
    /// memoization and forces a fresh sample at every instant.
    fn segment_of(&self, t: Time) -> Option<u64> {
        let _ = t;
        None
    }

    /// End of the piecewise-constant span containing `t`: an instant `end`
    /// with `t < end` such that every `t'` in `[t, end)` satisfies
    /// `segment_of(t') == segment_of(t)`.
    ///
    /// Together with the [`EnergySource::segment_of`] contract this lets a
    /// caller reuse one `power_at` sample across the whole span with a
    /// single time comparison per step — the per-cycle fast path of the
    /// simulator's energy integration. `None` (the default) disables that
    /// optimization; it is always sound to return `None`.
    fn segment_end(&self, t: Time) -> Option<Time> {
        let _ = t;
        None
    }

    /// Mean harvested power over a long horizon, if known analytically.
    ///
    /// The default integrates `power_at` numerically over one second.
    fn mean_power(&self) -> Power {
        let samples = 10_000;
        let dt = Time::from_seconds(1.0) / samples as f64;
        let total: f64 = (0..samples)
            .map(|i| self.power_at(dt * i as f64).as_watts())
            .sum();
        Power::from_watts(total / samples as f64)
    }
}

/// The four ambient-energy environments of the paper's evaluation
/// (Section VI-A2, Fig. 15).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TracePreset {
    /// RF harvesting in a home: weakest and burstiest; most outages.
    RfHome,
    /// RF harvesting in an office: weak and bursty.
    RfOffice,
    /// Photovoltaic harvesting: stronger, mildly varying.
    Solar,
    /// Thermoelectric harvesting: strongest and steadiest; fewest outages.
    Thermal,
}

impl TracePreset {
    /// All four presets, ordered from most to fewest expected outages.
    pub const ALL: [TracePreset; 4] = [
        TracePreset::RfHome,
        TracePreset::RfOffice,
        TracePreset::Solar,
        TracePreset::Thermal,
    ];

    /// Canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            TracePreset::RfHome => "rfhome",
            TracePreset::RfOffice => "rfoffice",
            TracePreset::Solar => "solar",
            TracePreset::Thermal => "thermal",
        }
    }

    fn params(self) -> SourceParams {
        match self {
            // Calibrated against the simulated platform's ~15-23 mW active
            // draw. RF sources deliver multi-millisecond *bursts* whose level
            // straddles consumption (so the capacitor voltage random-walks
            // across the 3.2-3.5 V band, the regime of the paper's Fig. 4),
            // separated by near-dead gaps that force outages and recharging.
            // Solar and thermal are continuous with mild dips, so outages are
            // progressively rarer — preserving the paper's outage-frequency
            // ordering thermal < solar < RFOffice < RFHome (Section VI-H6).
            TracePreset::RfHome => SourceParams {
                gap_fraction: 0.12,
                burst_power: Power::from_milli_watts(21.0),
                duty: 0.34,
                level_spread: 0.45,
                jitter: 0.35,
                segment: Time::from_micros(150.0),
                burst_segments: 16,
            },
            TracePreset::RfOffice => SourceParams {
                gap_fraction: 0.15,
                burst_power: Power::from_milli_watts(22.0),
                duty: 0.45,
                level_spread: 0.40,
                jitter: 0.30,
                segment: Time::from_micros(150.0),
                burst_segments: 16,
            },
            TracePreset::Solar => SourceParams {
                gap_fraction: 0.5,
                burst_power: Power::from_milli_watts(24.0),
                duty: 1.0,
                level_spread: 0.20,
                jitter: 0.25,
                segment: Time::from_micros(400.0),
                burst_segments: 12,
            },
            TracePreset::Thermal => SourceParams {
                gap_fraction: 0.8,
                burst_power: Power::from_milli_watts(27.0),
                duty: 1.0,
                level_spread: 0.08,
                jitter: 0.10,
                segment: Time::from_millis(1.0),
                burst_segments: 8,
            },
        }
    }
}

impl fmt::Display for TracePreset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Conservative end of the fixed-length segment containing `t`, for
/// implementing [`EnergySource::segment_end`] over uniform grids.
///
/// The nominal boundary `(seg + 1) · seg_len` can land on the wrong side of
/// the true floating-point segment edge, so it is walked down ulp by ulp
/// until the instant just before it still maps to `t`'s segment — then,
/// because the segment index is monotone in time, every instant in
/// `[t, end)` shares the segment. Returns `None` when no such span exists
/// (`t` so large that one ulp exceeds a segment).
fn uniform_segment_end(
    t: Time,
    seg_len: Time,
    segment_of: impl Fn(Time) -> Option<u64>,
) -> Option<Time> {
    let seg = segment_of(t)?;
    let nominal =
        ((t.as_seconds() / seg_len.as_seconds()).floor().max(0.0) + 1.0) * seg_len.as_seconds();
    let mut end = nominal;
    while end > t.as_seconds() {
        let before = f64::from_bits(end.to_bits() - 1);
        if before <= t.as_seconds() || segment_of(Time::from_seconds(before)) == Some(seg) {
            return Some(Time::from_seconds(end));
        }
        end = before;
    }
    None
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct SourceParams {
    /// Nominal power level inside a burst window.
    burst_power: Power,
    /// Fraction of weather windows that deliver power at all.
    duty: f64,
    /// Relative spread of the slow per-window level modulation.
    level_spread: f64,
    /// Relative spread of the fast per-segment jitter.
    jitter: f64,
    /// Length of one piecewise-constant segment.
    segment: Time,
    /// Number of segments per weather window (bursts/gaps are whole windows).
    burst_segments: u32,
    /// Power delivered during gap windows, as a fraction of `burst_power`
    /// (weak ambient background; keeps recharge times bounded).
    gap_fraction: f64,
}

/// Builder for the synthetic sources.
///
/// # Examples
///
/// ```
/// use ehs_energy::{EnergySource, SourceConfig, TracePreset};
///
/// let solar = SourceConfig::preset(TracePreset::Solar).with_seed(42).build();
/// let rf = SourceConfig::preset(TracePreset::RfHome)
///     .with_seed(42)
///     .with_power_scale(0.5) // stress test: halve the ambient energy
///     .build();
/// assert!(solar.mean_power() > rf.mean_power());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SourceConfig {
    preset: TracePreset,
    seed: u64,
    power_scale: f64,
}

impl SourceConfig {
    /// Starts a builder from one of the paper's four environments.
    pub fn preset(preset: TracePreset) -> Self {
        Self {
            preset,
            seed: 0,
            power_scale: 1.0,
        }
    }

    /// Sets the RNG seed (default 0). Equal seeds give bit-identical traces.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Scales all harvested power by a factor (default 1.0), e.g. to emulate
    /// a weaker antenna or brighter sun without changing the trace's shape.
    #[must_use]
    pub fn with_power_scale(mut self, scale: f64) -> Self {
        self.power_scale = scale;
        self
    }

    /// Builds the synthesizer.
    pub fn build(self) -> SyntheticTrace {
        SyntheticTrace::new(self)
    }
}

/// Deterministic, random-access synthetic harvested-power trace.
///
/// Power is piecewise-constant over fixed segments. Each segment's level is a
/// pure hash of `(seed, segment index)`, giving reproducibility and O(1)
/// access at any time. A slower "weather" process modulates groups of
/// segments so outages cluster in bursts, as they do in the real RF traces
/// the paper uses.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticTrace {
    config: SourceConfig,
    params: SourceParams,
    name: String,
}

impl SyntheticTrace {
    fn new(config: SourceConfig) -> Self {
        let params = config.preset.params();
        Self {
            name: config.preset.name().to_owned(),
            config,
            params,
        }
    }

    /// The preset this trace was built from.
    pub fn preset(&self) -> TracePreset {
        self.config.preset
    }

    fn unit_hash(&self, stream: u64, index: u64) -> f64 {
        // splitmix64 over (seed, stream, index); uniform in [0, 1).
        let mut z = self
            .config
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(stream.wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .wrapping_add(index.wrapping_mul(0x94D0_49BB_1331_11EB));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl EnergySource for SyntheticTrace {
    fn power_at(&self, t: Time) -> Power {
        let p = &self.params;
        let seg = (t.as_seconds() / p.segment.as_seconds()).floor().max(0.0) as u64;
        let window = seg / u64::from(p.burst_segments);
        // Whole weather windows are on or off, so bursts and gaps last
        // milliseconds — long enough for the cache to warm up and for the
        // voltage to wander, as in the real traces.
        if p.duty < 1.0 && self.unit_hash(1, window) >= p.duty {
            // Gap window: only the weak ambient background trickles in.
            return Power::from_watts(
                p.burst_power.as_watts() * p.gap_fraction * self.config.power_scale,
            );
        }
        // Slow per-window level modulation and fast per-segment jitter.
        let level = 1.0 + p.level_spread * (2.0 * self.unit_hash(4, window) - 1.0);
        let jitter = 1.0 + p.jitter * (2.0 * self.unit_hash(3, seg) - 1.0);
        Power::from_watts(
            (p.burst_power.as_watts() * level * jitter * self.config.power_scale).max(0.0),
        )
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn segment_of(&self, t: Time) -> Option<u64> {
        // Must match the `seg` computation in `power_at` exactly: every hash
        // feeding the power level is keyed off `seg` (or its window), so the
        // power is constant across a segment.
        let p = &self.params;
        Some((t.as_seconds() / p.segment.as_seconds()).floor().max(0.0) as u64)
    }

    fn segment_end(&self, t: Time) -> Option<Time> {
        uniform_segment_end(t, self.params.segment, |t| self.segment_of(t))
    }
}

/// A harvested-power trace replayed from uniform samples, wrapping around at
/// the end (so short measurements can drive long simulations).
///
/// # Examples
///
/// ```
/// use ehs_energy::{EnergySource, SampledTrace};
/// use ehs_units::{Power, Time};
///
/// let trace = SampledTrace::new(
///     "bench-rig",
///     Time::from_millis(1.0),
///     vec![Power::from_milli_watts(1.0), Power::from_milli_watts(3.0)],
/// );
/// assert_eq!(trace.power_at(Time::from_millis(0.5)).as_milli_watts(), 1.0);
/// assert_eq!(trace.power_at(Time::from_millis(1.5)).as_milli_watts(), 3.0);
/// assert_eq!(trace.power_at(Time::from_millis(2.5)).as_milli_watts(), 1.0); // wrapped
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SampledTrace {
    name: String,
    sample_period: Time,
    samples: Vec<Power>,
}

impl SampledTrace {
    /// Creates a trace from uniformly-spaced samples.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or `sample_period` is not positive.
    pub fn new(name: impl Into<String>, sample_period: Time, samples: Vec<Power>) -> Self {
        assert!(
            !samples.is_empty(),
            "sampled trace needs at least one sample"
        );
        assert!(
            sample_period.as_seconds() > 0.0,
            "sample period must be positive"
        );
        Self {
            name: name.into(),
            sample_period,
            samples,
        }
    }

    /// Number of samples in one period of the trace.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Always false; construction rejects empty traces.
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl EnergySource for SampledTrace {
    fn power_at(&self, t: Time) -> Power {
        let idx = (t.as_seconds() / self.sample_period.as_seconds())
            .floor()
            .max(0.0) as u64;
        self.samples[(idx % self.samples.len() as u64) as usize]
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn segment_of(&self, t: Time) -> Option<u64> {
        // The un-wrapped sample index; `power_at` is a pure function of it.
        Some(
            (t.as_seconds() / self.sample_period.as_seconds())
                .floor()
                .max(0.0) as u64,
        )
    }

    fn segment_end(&self, t: Time) -> Option<Time> {
        uniform_segment_end(t, self.sample_period, |t| self.segment_of(t))
    }

    fn mean_power(&self) -> Power {
        self.samples.iter().copied().sum::<Power>() / self.samples.len() as f64
    }
}

/// A source delivering constant power — the paper's "infinite energy" limit
/// (Section VIII) when set high, or a worst case when set to zero.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstantSource {
    power: Power,
}

impl ConstantSource {
    /// Creates a constant source.
    pub fn new(power: Power) -> Self {
        Self { power }
    }
}

impl EnergySource for ConstantSource {
    fn power_at(&self, _t: Time) -> Power {
        self.power
    }

    fn name(&self) -> &str {
        "constant"
    }

    fn segment_of(&self, _t: Time) -> Option<u64> {
        Some(0)
    }

    fn segment_end(&self, _t: Time) -> Option<Time> {
        Some(Time::from_seconds(f64::INFINITY))
    }

    fn mean_power(&self) -> Power {
        self.power
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_preserve_outage_frequency_ordering() {
        // Mean harvested power must be ordered RFHome < RFOffice < Solar <
        // Thermal, which yields the paper's outage ordering.
        let means: Vec<f64> = TracePreset::ALL
            .iter()
            .map(|&p| {
                SourceConfig::preset(p)
                    .with_seed(1)
                    .build()
                    .mean_power()
                    .as_milli_watts()
            })
            .collect();
        assert!(
            means.windows(2).all(|w| w[0] < w[1]),
            "means not increasing: {means:?}"
        );
        // RF means sit below the ~15-23 mW platform draw; thermal above it.
        assert!(means[0] < 12.0);
        assert!(means[3] > 24.0);
    }

    #[test]
    fn synthetic_trace_is_deterministic() {
        let a = SourceConfig::preset(TracePreset::RfHome)
            .with_seed(9)
            .build();
        let b = SourceConfig::preset(TracePreset::RfHome)
            .with_seed(9)
            .build();
        for i in 0..1000 {
            let t = Time::from_micros(37.0) * i as f64;
            assert_eq!(a.power_at(t), b.power_at(t));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = SourceConfig::preset(TracePreset::RfHome)
            .with_seed(1)
            .build();
        let b = SourceConfig::preset(TracePreset::RfHome)
            .with_seed(2)
            .build();
        let differs = (0..1000).any(|i| {
            let t = Time::from_micros(100.0) * i as f64;
            a.power_at(t) != b.power_at(t)
        });
        assert!(differs);
    }

    #[test]
    fn rf_sources_have_dead_air() {
        let trace = SourceConfig::preset(TracePreset::RfHome)
            .with_seed(3)
            .build();
        // Gap windows deliver only the weak background trickle (<= 20% of
        // the burst level).
        let trickle_ceiling = Power::from_milli_watts(21.0 * 0.125);
        let gaps = (0..10_000)
            .filter(|&i| trace.power_at(Time::from_micros(150.0) * i as f64) < trickle_ceiling)
            .count();
        assert!(gaps > 4000, "expected gap windows, got {gaps} gap segments");
        // Gaps are contiguous whole windows, not isolated segments: the
        // number of burst/gap transitions must be far below the gap count.
        let mut transitions = 0;
        let mut prev_gap = false;
        for i in 0..10_000 {
            let g = trace.power_at(Time::from_micros(150.0) * i as f64) < trickle_ceiling;
            if g != prev_gap {
                transitions += 1;
            }
            prev_gap = g;
        }
        assert!(
            transitions < gaps / 4,
            "gaps not clustered: {transitions} transitions"
        );
    }

    #[test]
    fn thermal_is_nearly_always_on() {
        let trace = SourceConfig::preset(TracePreset::Thermal)
            .with_seed(3)
            .build();
        let zeros = (0..10_000)
            .filter(|&i| trace.power_at(Time::from_millis(1.0) * i as f64).is_zero())
            .count();
        assert_eq!(zeros, 0, "thermal never cuts out, got {zeros}");
    }

    #[test]
    fn power_scale_scales_mean() {
        let base = SourceConfig::preset(TracePreset::Solar)
            .with_seed(5)
            .build();
        let half = SourceConfig::preset(TracePreset::Solar)
            .with_seed(5)
            .with_power_scale(0.5)
            .build();
        let ratio = half.mean_power() / base.mean_power();
        assert!((ratio - 0.5).abs() < 1e-9);
    }

    #[test]
    fn sampled_trace_wraps() {
        let t = SampledTrace::new(
            "t",
            Time::from_millis(1.0),
            vec![Power::from_milli_watts(1.0), Power::from_milli_watts(2.0)],
        );
        assert_eq!(t.power_at(Time::from_millis(3.2)).as_milli_watts(), 2.0);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn sampled_trace_rejects_empty() {
        let _ = SampledTrace::new("t", Time::from_millis(1.0), vec![]);
    }

    #[test]
    fn constant_source_is_constant() {
        let s = ConstantSource::new(Power::from_milli_watts(10.0));
        assert_eq!(
            s.power_at(Time::ZERO),
            s.power_at(Time::from_seconds(100.0))
        );
        assert_eq!(s.mean_power().as_milli_watts(), 10.0);
    }

    #[test]
    fn segment_of_upholds_the_piecewise_constant_contract() {
        // Sample every preset densely; whenever two instants share a segment
        // id, their power must be bit-identical.
        for preset in TracePreset::ALL {
            let trace = SourceConfig::preset(preset).with_seed(7).build();
            let step = Time::from_micros(13.0);
            let mut last: Option<(u64, Power)> = None;
            for i in 0..20_000u32 {
                let t = step * f64::from(i);
                let seg = trace.segment_of(t).expect("synthetic is segmented");
                let p = trace.power_at(t);
                if let Some((s, prev)) = last {
                    if s == seg {
                        assert_eq!(prev, p, "{preset}: power varies within segment {seg}");
                    }
                }
                last = Some((seg, p));
            }
        }
        let sampled = SampledTrace::new(
            "s",
            Time::from_millis(1.0),
            vec![Power::from_milli_watts(1.0), Power::from_milli_watts(2.0)],
        );
        assert_eq!(
            sampled.segment_of(Time::from_millis(0.25)),
            sampled.segment_of(Time::from_millis(0.75))
        );
        assert_ne!(
            sampled.segment_of(Time::from_millis(0.25)),
            sampled.segment_of(Time::from_millis(1.25))
        );
        let constant = ConstantSource::new(Power::from_milli_watts(1.0));
        assert_eq!(constant.segment_of(Time::from_seconds(9.0)), Some(0));
    }

    #[test]
    fn negative_time_does_not_panic() {
        let s = SourceConfig::preset(TracePreset::RfHome)
            .with_seed(0)
            .build();
        let _ = s.power_at(Time::from_seconds(-1.0));
    }
}
