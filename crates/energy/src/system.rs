//! The combined capacitor + source + monitor state machine.

use crate::{
    Capacitor, CapacitorConfig, EnergyConfigError, EnergySource, MonitorState, VoltageMonitor,
    VoltageThresholds,
};
use ehs_units::{Energy, Frequency, Power, Time, Voltage};

/// Static configuration of the harvesting subsystem.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergySystemConfig {
    /// The energy buffer.
    pub capacitor: CapacitorConfig,
    /// JIT checkpoint / restore thresholds.
    pub thresholds: VoltageThresholds,
    /// Worst-case checkpoint energy the architecture declares; used to verify
    /// the `V_ckpt → V_min` reserve can always fund a checkpoint.
    pub checkpoint_budget: Energy,
    /// Fast-forward granularity while hibernating.
    pub recharge_step: Time,
    /// Safety bound on a single recharge wait. If the source cannot refill
    /// the buffer within this horizon the outage is reported unrecovered.
    pub max_off_time: Time,
}

impl EnergySystemConfig {
    /// The paper's Table II defaults.
    pub fn paper_default() -> Self {
        Self {
            capacitor: CapacitorConfig::paper_default(),
            thresholds: VoltageThresholds::paper_default(),
            checkpoint_budget: Energy::from_nano_joules(400.0),
            recharge_step: Time::from_micros(50.0),
            max_off_time: Time::from_seconds(100.0),
        }
    }

    /// Replaces the capacitor configuration (Fig. 16 sweep).
    #[must_use]
    pub fn with_capacitor(mut self, capacitor: CapacitorConfig) -> Self {
        self.capacitor = capacitor;
        self
    }

    /// Replaces the monitor thresholds.
    #[must_use]
    pub fn with_thresholds(mut self, thresholds: VoltageThresholds) -> Self {
        self.thresholds = thresholds;
        self
    }

    /// Declares the worst-case checkpoint energy for reserve validation.
    #[must_use]
    pub fn with_checkpoint_budget(mut self, budget: Energy) -> Self {
        self.checkpoint_budget = budget;
        self
    }

    /// Validates physical consistency.
    ///
    /// # Errors
    ///
    /// Propagates capacitor and threshold validation errors, and returns
    /// [`EnergyConfigError::InsufficientCheckpointReserve`] if the
    /// `V_ckpt → V_min` band cannot fund `checkpoint_budget`.
    pub fn validate(&self) -> Result<(), EnergyConfigError> {
        self.capacitor.validate()?;
        self.thresholds
            .validate(self.capacitor.v_min, self.capacitor.v_max)?;
        let c = self.capacitor.capacitance;
        let reserve = Energy::in_capacitor(c, self.thresholds.v_ckpt)
            - Energy::in_capacitor(c, self.capacitor.v_min);
        if reserve < self.checkpoint_budget {
            return Err(EnergyConfigError::InsufficientCheckpointReserve {
                reserve,
                required: self.checkpoint_budget,
            });
        }
        Ok(())
    }
}

/// What the voltage monitor reported after a simulation step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepEvent {
    /// Supply healthy; keep executing.
    Running,
    /// Voltage fell through `V_ckpt`: checkpoint *now*, then call
    /// [`EnergySystem::power_off_and_recharge`].
    CheckpointRequested,
    /// Voltage fell through `V_min` while operating — the JIT margin was
    /// violated (mis-configured reserve). Volatile state is lost.
    BrownOut,
}

/// Inputs to [`EnergySystem::step_burst`]: a run of cycles with identical
/// per-cycle load, plus the conditions that end the burst early.
///
/// A burst replays the *exact* per-cycle arithmetic of repeated
/// [`EnergySystem::step`] calls — the capacitor trajectory, statistics and
/// monitor observations are bit-identical to the cycle-accurate loop — and
/// only eliminates redundant work (harvested-power lookups are memoized per
/// source segment, and the caller skips its own per-cycle bookkeeping).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstPlan {
    /// Maximum number of cycles to coalesce (the caller's run-length). Must
    /// be at least 1; at least one cycle always executes.
    pub max_cycles: u64,
    /// Duration of one cycle.
    pub dt: Time,
    /// Load drawn per cycle — identical every cycle of the burst.
    pub load: Energy,
    /// Core clock, used to derive the cycle number exactly as the simulator
    /// does: `(now * frequency) as u64`, evaluated after each cycle.
    pub frequency: Frequency,
    /// Stop (after completing the crossing cycle) once the derived cycle
    /// number reaches this value — a predictor epoch boundary.
    pub wake_at_cycle: Option<u64>,
    /// Stop (after completing the crossing cycle) once the capacitor voltage
    /// drops strictly below this value — an EDBP gating threshold or the
    /// oracle's release guard.
    pub wake_below_voltage: Option<Voltage>,
}

/// Result of riding out one power outage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutageOutcome {
    /// Wall-clock time spent powered off recharging.
    pub off_duration: Time,
    /// Energy harvested into the buffer during the outage.
    pub harvested: Energy,
    /// Whether the buffer recovered to `V_rst` within the safety horizon.
    pub recovered: bool,
}

/// Aggregate bookkeeping across power cycles.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PowerCycleStats {
    /// Number of completed power outages.
    pub outages: u64,
    /// Total time spent executing.
    pub on_time: Time,
    /// Total time spent powered off, recharging.
    pub off_time: Time,
    /// Total energy harvested into the buffer (on and off).
    pub harvested: Energy,
    /// Total energy drawn by the load (execution + checkpoints + leakage).
    pub consumed: Energy,
    /// Harvested energy shed because the buffer was already full.
    pub shed: Energy,
}

impl PowerCycleStats {
    /// Total wall-clock time (on + off).
    pub fn total_time(&self) -> Time {
        self.on_time + self.off_time
    }
}

/// The live harvesting subsystem driven by the full-system simulator.
///
/// The simulator alternates between:
/// 1. [`EnergySystem::step`] — execute for `dt` drawing `load` energy;
/// 2. on [`StepEvent::CheckpointRequested`], draw the checkpoint cost via
///    [`EnergySystem::consume`] and ride out the outage with
///    [`EnergySystem::power_off_and_recharge`].
///
/// See the crate-level example for the full loop.
#[derive(Debug)]
pub struct EnergySystem {
    config: EnergySystemConfig,
    capacitor: Capacitor,
    monitor: VoltageMonitor,
    source: Box<dyn EnergySource>,
    now: Time,
    stats: PowerCycleStats,
    /// `(valid_until, power)` sampled from the source: the power holds for
    /// every instant strictly before `valid_until`. Built from
    /// [`EnergySource::segment_end`], whose contract makes reuse bit-exact.
    power_memo: Option<(Time, Power)>,
    /// Stored-energy images of the voltage thresholds (see
    /// [`max_energy_where`]): comparing `stored` against these is *exactly*
    /// equivalent to deriving the voltage and comparing it, so the per-cycle
    /// monitor checks run without a square root.
    ///
    /// `stored <= e_min` ⟺ `voltage() <= v_min`.
    e_min: Energy,
    /// `stored <= e_ckpt` ⟺ `voltage() <= v_ckpt` (falling edge).
    e_ckpt: Energy,
    /// `stored > e_rst_below` ⟺ `voltage() >= v_rst` (rising edge).
    e_rst_below: Energy,
    /// Memoized stored-energy image of the last distinct
    /// [`BurstPlan::wake_below_voltage`], keyed by the voltage's bits.
    wake_memo: Option<(u64, Energy)>,
}

/// Greatest stored energy in `[0, hi]` whose derived voltage still satisfies
/// `pred` — the stored-energy image of a voltage threshold.
///
/// `pred` must be downward-closed over voltages (true at `v` implies true at
/// every `v' <= v`), which both `v <= threshold` and `v < threshold` are.
/// Because [`Energy::capacitor_voltage`] is monotone non-decreasing in the
/// stored energy (division and square root are correctly rounded), the set
/// of stored energies satisfying `pred` is exactly `[0, result]`, so
/// `stored <= result` reproduces the voltage comparison bit-exactly. Found
/// by bisecting the order-isomorphic bit patterns of non-negative `f64`.
fn max_energy_where(
    c: ehs_units::Capacitance,
    hi: Energy,
    pred: impl Fn(Voltage) -> bool,
) -> Energy {
    let holds = |bits: u64| pred(Energy::from_joules(f64::from_bits(bits)).capacitor_voltage(c));
    let hi_bits = hi.as_joules().max(0.0).to_bits();
    if holds(hi_bits) {
        return Energy::from_joules(f64::from_bits(hi_bits));
    }
    if !holds(0) {
        // Not even an empty buffer satisfies `pred`: return an impossible
        // threshold so `stored <= result` is always false.
        return Energy::from_joules(f64::NEG_INFINITY);
    }
    let (mut lo, mut hi) = (0u64, hi_bits);
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if holds(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Energy::from_joules(f64::from_bits(lo))
}

impl EnergySystem {
    /// Creates a fully-charged system at `t = 0`.
    ///
    /// # Errors
    ///
    /// Returns a [`EnergyConfigError`] if the configuration is inconsistent.
    pub fn new(
        config: EnergySystemConfig,
        source: impl EnergySource + 'static,
    ) -> Result<Self, EnergyConfigError> {
        config.validate()?;
        let capacitor = Capacitor::fully_charged(config.capacitor);
        let c = config.capacitor.capacitance;
        let capacity = capacitor.capacity();
        let (v_min, v_ckpt, v_rst) = (
            config.capacitor.v_min,
            config.thresholds.v_ckpt,
            config.thresholds.v_rst,
        );
        Ok(Self {
            capacitor,
            monitor: VoltageMonitor::new(config.thresholds),
            source: Box::new(source),
            config,
            now: Time::ZERO,
            stats: PowerCycleStats::default(),
            power_memo: None,
            e_min: max_energy_where(c, capacity, |v| v <= v_min),
            e_ckpt: max_energy_where(c, capacity, |v| v <= v_ckpt),
            e_rst_below: max_energy_where(c, capacity, |v| v < v_rst),
            wake_memo: None,
        })
    }

    /// Absolute simulation time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Current capacitor voltage — the signal EDBP taps.
    pub fn voltage(&self) -> Voltage {
        self.capacitor.voltage()
    }

    /// Whether the current voltage is *strictly* below `w`, evaluated in the
    /// energy domain: `stored <= image(w)` with the image bisected once per
    /// distinct `w` (see [`max_energy_where`]). Bit-exactly equivalent to
    /// `self.voltage() < w` with no square root — callers polling a
    /// threshold every cycle should prefer this.
    pub fn voltage_strictly_below(&mut self, w: Voltage) -> bool {
        self.capacitor.stored() <= self.wake_threshold(w)
    }

    /// Current stored energy.
    pub fn stored(&self) -> Energy {
        self.capacitor.stored()
    }

    /// The static configuration.
    pub fn config(&self) -> &EnergySystemConfig {
        &self.config
    }

    /// The harvested-power source.
    pub fn source(&self) -> &dyn EnergySource {
        self.source.as_ref()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &PowerCycleStats {
        &self.stats
    }

    /// Instantaneous harvested power right now.
    pub fn harvest_power(&self) -> Power {
        self.source.power_at(self.now)
    }

    /// Advances execution by `dt`, drawing `load` from the buffer while
    /// harvesting, then samples the voltage monitor.
    ///
    /// `load` must already include every on-chip draw over `dt` (MCU dynamic
    /// power, cache access energy, cache leakage); this method adds the
    /// capacitor's own self-discharge.
    pub fn step(&mut self, dt: Time, load: Energy) -> StepEvent {
        debug_assert!(dt.as_seconds() > 0.0, "step needs positive dt");
        let power = self.sampled_power();
        self.step_cycle(dt, load, power)
    }

    /// Harvested power at `self.now`, memoized per source segment. For
    /// segmented sources this is bit-identical to calling `power_at` (the
    /// power is constant within a segment by contract, and
    /// [`EnergySource::segment_end`] bounds the span it holds for) while
    /// skipping both the per-instant synthesis and the per-instant segment
    /// lookup: the fast path is a single time comparison.
    fn sampled_power(&mut self) -> Power {
        if let Some((until, p)) = self.power_memo {
            if self.now < until {
                return p;
            }
        }
        let p = self.source.power_at(self.now);
        self.power_memo = self.source.segment_end(self.now).map(|end| (end, p));
        p
    }

    /// One execution cycle: the exact arithmetic shared by [`Self::step`]
    /// and [`Self::step_burst`]. `power` must be the source power at
    /// `self.now`.
    #[inline]
    fn step_cycle(&mut self, dt: Time, load: Energy, power: Power) -> StepEvent {
        let harvested = power * dt;
        let absorbed = self.capacitor.charge(harvested);
        self.stats.shed += harvested - absorbed;
        self.stats.harvested += absorbed;

        let draw = load + self.capacitor.leakage() * dt;
        let delivered = self.capacitor.discharge(draw);
        self.stats.consumed += delivered;

        self.now += dt;
        self.stats.on_time += dt;

        // All threshold checks compare stored energy against the bisected
        // images of the voltage thresholds — exactly equivalent to deriving
        // the voltage (see `max_energy_where`), with no per-cycle sqrt. The
        // monitor is only fed on the (rare) cycles where an edge can fire,
        // which is when its answer can differ from "no edge".
        let stored = self.capacitor.stored();
        if stored <= self.e_min {
            // JIT margin violated; force the monitor into hibernation so the
            // subsequent recharge behaves.
            self.monitor.observe(self.capacitor.voltage());
            return StepEvent::BrownOut;
        }
        match self.monitor.state() {
            MonitorState::Operating if stored <= self.e_ckpt => {
                self.monitor.observe(self.capacitor.voltage());
                StepEvent::CheckpointRequested
            }
            MonitorState::Hibernating if stored > self.e_rst_below => {
                // Rising edge while still executing: the monitor flips back
                // to Operating, exactly as feeding it the voltage would.
                self.monitor.observe(self.capacitor.voltage());
                StepEvent::Running
            }
            _ => StepEvent::Running,
        }
    }

    /// Advances up to `plan.max_cycles` identical execution cycles in one
    /// call, stopping early — *after* the crossing cycle completes — when the
    /// monitor fires, the voltage drops below `plan.wake_below_voltage`, or
    /// the derived cycle number reaches `plan.wake_at_cycle`.
    ///
    /// Per cycle, `drawn − plan.load` (clamped at zero) is accumulated into
    /// `overdraw` exactly as the simulator's cycle-accurate loop does with
    /// its capacitor-leakage breakdown bucket: the subtraction uses the
    /// *accumulator* delta of `stats.consumed`, not the per-cycle delivered
    /// energy, so rounding matches the one-step-at-a-time sequence bit for
    /// bit.
    ///
    /// Returns the number of cycles actually executed (always ≥ 1) and the
    /// event observed on the last of them.
    pub fn step_burst(&mut self, plan: &BurstPlan, overdraw: &mut Energy) -> (u64, StepEvent) {
        debug_assert!(plan.max_cycles >= 1, "burst needs at least one cycle");
        debug_assert!(plan.dt.as_seconds() > 0.0, "step needs positive dt");
        let mut cycles = 0u64;
        loop {
            let consumed_before = self.stats.consumed;
            let power = self.sampled_power();
            let event = self.step_cycle(plan.dt, plan.load, power);
            let drawn = self.stats.consumed - consumed_before;
            *overdraw += drawn.saturating_sub(plan.load);
            cycles += 1;
            if event != StepEvent::Running || cycles >= plan.max_cycles {
                return (cycles, event);
            }
            if let Some(w) = plan.wake_below_voltage {
                if self.capacitor.stored() <= self.wake_threshold(w) {
                    return (cycles, StepEvent::Running);
                }
            }
            if let Some(c) = plan.wake_at_cycle {
                if (self.now * plan.frequency) as u64 >= c {
                    return (cycles, StepEvent::Running);
                }
            }
        }
    }

    /// Stored-energy image of a wake-guard voltage: `stored <= result` ⟺
    /// `voltage() < w` (see [`max_energy_where`]). Guard voltages come from
    /// predictor gate thresholds, which rarely change between bursts, so a
    /// one-entry memo keyed by the voltage's bits makes the per-cycle check
    /// a plain comparison.
    fn wake_threshold(&mut self, w: Voltage) -> Energy {
        let bits = w.base().to_bits();
        if let Some((b, e)) = self.wake_memo {
            if b == bits {
                return e;
            }
        }
        let e = max_energy_where(
            self.config.capacitor.capacitance,
            self.capacitor.capacity(),
            |v| v < w,
        );
        self.wake_memo = Some((bits, e));
        e
    }

    /// Draws a one-off energy cost at the current instant (checkpoint or
    /// restore operations). Returns the energy actually delivered.
    pub fn consume(&mut self, e: Energy) -> Energy {
        let delivered = self.capacitor.discharge(e);
        self.stats.consumed += delivered;
        delivered
    }

    /// Advances time *for* a one-off operation whose energy was drawn via
    /// [`EnergySystem::consume`] (e.g. checkpoint latency). No load is drawn
    /// and the monitor is not consulted — the JIT reserve funds this window.
    pub fn elapse_operation(&mut self, dt: Time) {
        let harvested = self.sampled_power() * dt;
        let absorbed = self.capacitor.charge(harvested);
        self.stats.shed += harvested - absorbed;
        self.stats.harvested += absorbed;
        self.now += dt;
        self.stats.on_time += dt;
    }

    /// Rides out a power outage: the MCU is off, only harvesting (and
    /// capacitor self-discharge) happens, until the voltage recovers to
    /// `V_rst` or the safety horizon expires.
    ///
    /// Increments the outage count and returns what happened.
    pub fn power_off_and_recharge(&mut self) -> OutageOutcome {
        let dt = self.config.recharge_step;
        let mut off = Time::ZERO;
        let mut harvested_total = Energy::ZERO;
        let mut recovered = false;
        while off < self.config.max_off_time {
            let harvested = self.sampled_power() * dt;
            let absorbed = self.capacitor.charge(harvested);
            self.stats.shed += harvested - absorbed;
            self.stats.harvested += absorbed;
            harvested_total += absorbed;

            let leak = self.capacitor.leakage() * dt;
            self.stats.consumed += self.capacitor.discharge(leak);

            self.now += dt;
            off += dt;

            let v = self.capacitor.voltage();
            if self.monitor.observe(v) && self.monitor.state() == MonitorState::Operating {
                recovered = true;
                break;
            }
        }
        self.stats.off_time += off;
        self.stats.outages += 1;
        OutageOutcome {
            off_duration: off,
            harvested: harvested_total,
            recovered,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConstantSource, SourceConfig, TracePreset};

    fn mk(source_mw: f64) -> EnergySystem {
        EnergySystem::new(
            EnergySystemConfig::paper_default(),
            ConstantSource::new(Power::from_milli_watts(source_mw)),
        )
        .expect("valid")
    }

    #[test]
    fn validation_catches_undersized_reserve() {
        let cfg = EnergySystemConfig::paper_default()
            .with_checkpoint_budget(Energy::from_micro_joules(100.0));
        assert!(matches!(
            cfg.validate(),
            Err(EnergyConfigError::InsufficientCheckpointReserve { .. })
        ));
    }

    #[test]
    fn heavy_load_triggers_checkpoint_request() {
        let mut sys = mk(0.0);
        let dt = Time::from_micros(10.0);
        let load = Power::from_milli_watts(5.0) * dt;
        let mut fired = false;
        for _ in 0..100_000 {
            match sys.step(dt, load) {
                StepEvent::CheckpointRequested => {
                    fired = true;
                    break;
                }
                StepEvent::BrownOut => panic!("monitor should fire before brown-out"),
                StepEvent::Running => {}
            }
        }
        assert!(fired);
        // Voltage at the trigger is at or just below V_ckpt but above V_min.
        let v = sys.voltage().as_volts();
        assert!(v <= 3.2 && v > 2.8, "v = {v}");
    }

    #[test]
    fn recharge_recovers_to_v_rst() {
        let mut sys = mk(0.0);
        let dt = Time::from_micros(10.0);
        let load = Power::from_milli_watts(5.0) * dt;
        while sys.step(dt, load) != StepEvent::CheckpointRequested {}
        // Re-enable a strong source for the recharge by swapping stats: use a
        // separate system instead (sources are immutable). Here harvesting is
        // zero, so recovery must fail within the horizon.
        let out = sys.power_off_and_recharge();
        assert!(!out.recovered);
        assert_eq!(sys.stats().outages, 1);
    }

    #[test]
    fn full_cycle_with_real_source() {
        let cfg = EnergySystemConfig::paper_default();
        let src = SourceConfig::preset(TracePreset::RfHome)
            .with_seed(11)
            .build();
        let mut sys = EnergySystem::new(cfg, src).expect("valid");
        let dt = Time::from_micros(5.0);
        let load = Power::from_milli_watts(4.0) * dt;
        let mut outages = 0;
        for _ in 0..2_000_000 {
            if sys.step(dt, load) == StepEvent::CheckpointRequested {
                sys.consume(Energy::from_nano_joules(200.0));
                let out = sys.power_off_and_recharge();
                assert!(out.recovered, "RFHome should recover eventually");
                outages += 1;
                if outages >= 5 {
                    break;
                }
            }
        }
        assert!(outages >= 5, "expected frequent outages on RFHome");
        assert!(sys.stats().off_time > Time::ZERO);
        assert!(sys.stats().harvested > Energy::ZERO);
    }

    #[test]
    fn infinite_energy_never_fails() {
        let mut sys = mk(100.0); // 100 mW >> any load
        let dt = Time::from_micros(10.0);
        let load = Power::from_milli_watts(4.0) * dt;
        for _ in 0..100_000 {
            assert_eq!(sys.step(dt, load), StepEvent::Running);
        }
        assert_eq!(sys.stats().outages, 0);
        // Buffer stays pinned at V_max and sheds the excess.
        assert!((sys.voltage().as_volts() - 3.5).abs() < 0.05);
        assert!(sys.stats().shed > Energy::ZERO);
    }

    fn mk_synthetic(seed: u64) -> EnergySystem {
        EnergySystem::new(
            EnergySystemConfig::paper_default(),
            SourceConfig::preset(TracePreset::RfHome)
                .with_seed(seed)
                .build(),
        )
        .expect("valid")
    }

    fn assert_state_identical(a: &EnergySystem, b: &EnergySystem) {
        assert_eq!(
            a.now().as_seconds().to_bits(),
            b.now().as_seconds().to_bits()
        );
        assert_eq!(
            a.voltage().as_volts().to_bits(),
            b.voltage().as_volts().to_bits()
        );
        assert_eq!(a.stored(), b.stored());
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn step_burst_matches_looped_step_bit_for_bit() {
        let dt = Time::from_nanos(40.0);
        let load = Power::from_milli_watts(18.0) * dt;
        let freq = ehs_units::Frequency::from_mega_hertz(25.0);
        for seed in [0, 7, 41] {
            let mut burst = mk_synthetic(seed);
            let mut looped = mk_synthetic(seed);
            let mut overdraw = Energy::ZERO;
            let mut looped_overdraw = Energy::ZERO;
            let mut remaining = 50_000u64;
            while remaining > 0 {
                let n = remaining.min(1000);
                let plan = BurstPlan {
                    max_cycles: n,
                    dt,
                    load,
                    frequency: freq,
                    wake_at_cycle: None,
                    wake_below_voltage: None,
                };
                let (taken, event) = burst.step_burst(&plan, &mut overdraw);
                assert!(taken >= 1 && taken <= n);
                let mut looped_event = StepEvent::Running;
                for _ in 0..taken {
                    let before = looped.stats().consumed;
                    looped_event = looped.step(dt, load);
                    let drawn = looped.stats().consumed - before;
                    looped_overdraw += drawn.saturating_sub(load);
                }
                assert_eq!(event, looped_event);
                assert_state_identical(&burst, &looped);
                assert_eq!(overdraw, looped_overdraw);
                if event != StepEvent::Running {
                    // Ride the outage out identically on both systems.
                    let a = burst.power_off_and_recharge();
                    let b = looped.power_off_and_recharge();
                    assert_eq!(a, b);
                    assert_state_identical(&burst, &looped);
                    if !a.recovered {
                        break;
                    }
                }
                remaining -= taken;
            }
        }
    }

    #[test]
    fn step_burst_stops_below_wake_voltage() {
        let mut sys = mk(0.0); // zero harvest: voltage only falls
        let dt = Time::from_nanos(40.0);
        let load = Power::from_milli_watts(20.0) * dt;
        let guard = Voltage::from_base(3.45);
        let plan = BurstPlan {
            max_cycles: u64::MAX,
            dt,
            load,
            frequency: ehs_units::Frequency::from_mega_hertz(25.0),
            wake_at_cycle: None,
            wake_below_voltage: Some(guard),
        };
        let mut overdraw = Energy::ZERO;
        let (taken, event) = sys.step_burst(&plan, &mut overdraw);
        assert_eq!(event, StepEvent::Running);
        assert!(sys.voltage() < guard, "stopped on the crossing cycle");
        // The crossing is exact: one cycle earlier the voltage was >= guard.
        let mut replay = mk(0.0);
        for _ in 0..taken - 1 {
            let _ = replay.step(dt, load);
        }
        assert!(replay.voltage() >= guard);
    }

    #[test]
    fn step_burst_stops_at_wake_cycle() {
        let mut sys = mk(100.0);
        let dt = Time::from_nanos(40.0);
        let load = Power::from_milli_watts(4.0) * dt;
        let freq = ehs_units::Frequency::from_mega_hertz(25.0);
        let plan = BurstPlan {
            max_cycles: u64::MAX,
            dt,
            load,
            frequency: freq,
            wake_at_cycle: Some(1000),
            wake_below_voltage: None,
        };
        let mut overdraw = Energy::ZERO;
        let (taken, event) = sys.step_burst(&plan, &mut overdraw);
        assert_eq!(event, StepEvent::Running);
        let cycle = (sys.now() * freq) as u64;
        assert!(cycle >= 1000, "cycle {cycle}");
        assert!(taken <= 1001, "overshot the epoch boundary: {taken}");
    }

    #[test]
    fn step_burst_reports_monitor_crossing_cycle() {
        let mut burst = mk(0.0);
        let mut looped = mk(0.0);
        let dt = Time::from_micros(10.0);
        let load = Power::from_milli_watts(5.0) * dt;
        let plan = BurstPlan {
            max_cycles: u64::MAX,
            dt,
            load,
            frequency: ehs_units::Frequency::from_mega_hertz(25.0),
            wake_at_cycle: None,
            wake_below_voltage: None,
        };
        let mut overdraw = Energy::ZERO;
        let (taken, event) = burst.step_burst(&plan, &mut overdraw);
        assert_eq!(event, StepEvent::CheckpointRequested);
        let mut steps = 0u64;
        while looped.step(dt, load) == StepEvent::Running {
            steps += 1;
        }
        assert_eq!(taken, steps + 1, "monitor fired on a different cycle");
        assert_state_identical(&burst, &looped);
    }

    #[test]
    fn consume_draws_from_buffer() {
        let mut sys = mk(0.0);
        let before = sys.stored();
        let taken = sys.consume(Energy::from_nano_joules(100.0));
        assert_eq!(taken, Energy::from_nano_joules(100.0));
        assert!(sys.stored() < before);
    }

    #[test]
    fn elapse_operation_advances_clock_without_monitor() {
        let mut sys = mk(0.0);
        let t0 = sys.now();
        sys.elapse_operation(Time::from_micros(100.0));
        assert!(sys.now() > t0);
        assert_eq!(sys.stats().outages, 0);
    }

    #[test]
    fn stats_time_accounting_is_consistent() {
        let mut sys = mk(0.0);
        let dt = Time::from_micros(10.0);
        let load = Power::from_milli_watts(5.0) * dt;
        while sys.step(dt, load) != StepEvent::CheckpointRequested {}
        let _ = sys.power_off_and_recharge();
        let s = sys.stats();
        assert!(
            (s.total_time().as_seconds() - (s.on_time + s.off_time).as_seconds()).abs() < 1e-12
        );
        assert!((sys.now().as_seconds() - s.total_time().as_seconds()).abs() < 1e-9);
    }
}
