//! The combined capacitor + source + monitor state machine.

use crate::{
    Capacitor, CapacitorConfig, EnergyConfigError, EnergySource, MonitorState, VoltageMonitor,
    VoltageThresholds,
};
use ehs_units::{Energy, Frequency, Power, Time, Voltage};

/// Static configuration of the harvesting subsystem.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergySystemConfig {
    /// The energy buffer.
    pub capacitor: CapacitorConfig,
    /// JIT checkpoint / restore thresholds.
    pub thresholds: VoltageThresholds,
    /// Worst-case checkpoint energy the architecture declares; used to verify
    /// the `V_ckpt → V_min` reserve can always fund a checkpoint.
    pub checkpoint_budget: Energy,
    /// Fast-forward granularity while hibernating.
    pub recharge_step: Time,
    /// Safety bound on a single recharge wait. If the source cannot refill
    /// the buffer within this horizon the outage is reported unrecovered.
    pub max_off_time: Time,
}

impl EnergySystemConfig {
    /// The paper's Table II defaults.
    pub fn paper_default() -> Self {
        Self {
            capacitor: CapacitorConfig::paper_default(),
            thresholds: VoltageThresholds::paper_default(),
            checkpoint_budget: Energy::from_nano_joules(400.0),
            recharge_step: Time::from_micros(50.0),
            max_off_time: Time::from_seconds(100.0),
        }
    }

    /// Replaces the capacitor configuration (Fig. 16 sweep).
    #[must_use]
    pub fn with_capacitor(mut self, capacitor: CapacitorConfig) -> Self {
        self.capacitor = capacitor;
        self
    }

    /// Replaces the monitor thresholds.
    #[must_use]
    pub fn with_thresholds(mut self, thresholds: VoltageThresholds) -> Self {
        self.thresholds = thresholds;
        self
    }

    /// Declares the worst-case checkpoint energy for reserve validation.
    #[must_use]
    pub fn with_checkpoint_budget(mut self, budget: Energy) -> Self {
        self.checkpoint_budget = budget;
        self
    }

    /// Validates physical consistency.
    ///
    /// # Errors
    ///
    /// Propagates capacitor and threshold validation errors, and returns
    /// [`EnergyConfigError::InsufficientCheckpointReserve`] if the
    /// `V_ckpt → V_min` band cannot fund `checkpoint_budget`.
    pub fn validate(&self) -> Result<(), EnergyConfigError> {
        self.capacitor.validate()?;
        self.thresholds
            .validate(self.capacitor.v_min, self.capacitor.v_max)?;
        let c = self.capacitor.capacitance;
        let reserve = Energy::in_capacitor(c, self.thresholds.v_ckpt)
            - Energy::in_capacitor(c, self.capacitor.v_min);
        if reserve < self.checkpoint_budget {
            return Err(EnergyConfigError::InsufficientCheckpointReserve {
                reserve,
                required: self.checkpoint_budget,
            });
        }
        Ok(())
    }
}

/// What the voltage monitor reported after a simulation step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepEvent {
    /// Supply healthy; keep executing.
    Running,
    /// Voltage fell through `V_ckpt`: checkpoint *now*, then call
    /// [`EnergySystem::power_off_and_recharge`].
    CheckpointRequested,
    /// Voltage fell through `V_min` while operating — the JIT margin was
    /// violated (mis-configured reserve). Volatile state is lost.
    BrownOut,
}

/// Inputs to [`EnergySystem::step_burst`]: a run of cycles with identical
/// per-cycle load, plus the conditions that end the burst early.
///
/// A burst replays the *exact* per-cycle arithmetic of repeated
/// [`EnergySystem::step`] calls — the capacitor trajectory, statistics and
/// monitor observations are bit-identical to the cycle-accurate loop — and
/// only eliminates redundant work (harvested-power lookups are memoized per
/// source segment, and the caller skips its own per-cycle bookkeeping).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstPlan {
    /// Maximum number of cycles to coalesce (the caller's run-length). Must
    /// be at least 1; at least one cycle always executes.
    pub max_cycles: u64,
    /// Duration of one cycle.
    pub dt: Time,
    /// Load drawn per cycle — identical every cycle of the burst.
    pub load: Energy,
    /// Core clock, used to derive the cycle number exactly as the simulator
    /// does: `(now * frequency) as u64`, evaluated after each cycle.
    pub frequency: Frequency,
    /// Stop (after completing the crossing cycle) once the derived cycle
    /// number reaches this value — a predictor epoch boundary.
    pub wake_at_cycle: Option<u64>,
    /// Stop (after completing the crossing cycle) once the capacitor voltage
    /// drops strictly below this value — an EDBP gating threshold or the
    /// oracle's release guard.
    pub wake_below_voltage: Option<Voltage>,
}

/// Result of riding out one power outage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutageOutcome {
    /// Wall-clock time spent powered off recharging.
    pub off_duration: Time,
    /// Energy harvested into the buffer during the outage.
    pub harvested: Energy,
    /// Whether the buffer recovered to `V_rst` within the safety horizon.
    pub recovered: bool,
}

/// Aggregate bookkeeping across power cycles.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PowerCycleStats {
    /// Number of completed power outages.
    pub outages: u64,
    /// Total time spent executing.
    pub on_time: Time,
    /// Total time spent powered off, recharging.
    pub off_time: Time,
    /// Total energy harvested into the buffer (on and off).
    pub harvested: Energy,
    /// Total energy drawn by the load (execution + checkpoints + leakage).
    pub consumed: Energy,
    /// Harvested energy shed because the buffer was already full.
    pub shed: Energy,
}

impl PowerCycleStats {
    /// Total wall-clock time (on + off).
    pub fn total_time(&self) -> Time {
        self.on_time + self.off_time
    }
}

/// The live harvesting subsystem driven by the full-system simulator.
///
/// The simulator alternates between:
/// 1. [`EnergySystem::step`] — execute for `dt` drawing `load` energy;
/// 2. on [`StepEvent::CheckpointRequested`], draw the checkpoint cost via
///    [`EnergySystem::consume`] and ride out the outage with
///    [`EnergySystem::power_off_and_recharge`].
///
/// See the crate-level example for the full loop.
#[derive(Debug)]
pub struct EnergySystem {
    config: EnergySystemConfig,
    capacitor: Capacitor,
    monitor: VoltageMonitor,
    source: Box<dyn EnergySource>,
    now: Time,
    stats: PowerCycleStats,
    /// `(valid_until, power)` sampled from the source: the power holds for
    /// every instant strictly before `valid_until`. Built from
    /// [`EnergySource::segment_end`], whose contract makes reuse bit-exact.
    power_memo: Option<(Time, Power)>,
    /// Stored-energy images of the voltage thresholds (see
    /// [`max_energy_where`]): comparing `stored` against these is *exactly*
    /// equivalent to deriving the voltage and comparing it, so the per-cycle
    /// monitor checks run without a square root.
    ///
    /// `stored <= e_min` ⟺ `voltage() <= v_min`.
    e_min: Energy,
    /// `stored <= e_ckpt` ⟺ `voltage() <= v_ckpt` (falling edge).
    e_ckpt: Energy,
    /// `stored > e_rst_below` ⟺ `voltage() >= v_rst` (rising edge).
    e_rst_below: Energy,
    /// Memoized stored-energy image of the last distinct
    /// [`BurstPlan::wake_below_voltage`], keyed by the voltage's bits.
    wake_memo: Option<(u64, Energy)>,
    /// Memoized time image of the last distinct
    /// (`wake_at_cycle`, frequency-bits) pair: the greatest `now` whose
    /// derived cycle number is still below the wake cycle (see
    /// [`Self::wake_cycle_image`]).
    wake_cycle_memo: Option<(u64, u64, Time)>,
    /// Whether the speculative chunked advance is enabled. Initialized from
    /// the process-wide `EHS_NO_SPECULATE` default; overridable per system
    /// via [`Self::set_speculation`]. Either setting produces bit-identical
    /// results — speculation commits only chunks it proves clamp- and
    /// event-free (DESIGN.md §8).
    speculate: bool,
}

/// Process-wide speculation default: `EHS_NO_SPECULATE=1` forces the guarded
/// per-cycle path for every [`EnergySystem`] that does not override it via
/// [`EnergySystem::set_speculation`]. Read once per process, mirroring the
/// `EHS_NO_SIMD` pattern in `ehs_cache::probe`; tests use the per-system
/// override instead of mutating the environment.
fn speculation_default() -> bool {
    static DEFAULT: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *DEFAULT.get_or_init(|| std::env::var_os("EHS_NO_SPECULATE").is_none_or(|v| v != "1"))
}

/// Outcome of one speculative chunk attempt (see DESIGN.md §8).
enum Chunk {
    /// The chunk committed this many cycles; no stop condition could have
    /// fired inside it.
    Advanced(u64),
    /// The chunk was inadmissible or failed its post-check: run this many
    /// guarded per-cycle steps (the replay) before speculating again. A
    /// failed post-check lands here with the attempted chunk length, so the
    /// replay never exceeds the work the kernel just discarded.
    Guarded(u64),
}

/// Greatest stored energy in `[0, hi]` whose derived voltage still satisfies
/// `pred` — the stored-energy image of a voltage threshold.
///
/// `pred` must be downward-closed over voltages (true at `v` implies true at
/// every `v' <= v`), which both `v <= threshold` and `v < threshold` are.
/// Because [`Energy::capacitor_voltage`] is monotone non-decreasing in the
/// stored energy (division and square root are correctly rounded), the set
/// of stored energies satisfying `pred` is exactly `[0, result]`, so
/// `stored <= result` reproduces the voltage comparison bit-exactly. Found
/// by bisecting the order-isomorphic bit patterns of non-negative `f64`.
fn max_energy_where(
    c: ehs_units::Capacitance,
    hi: Energy,
    pred: impl Fn(Voltage) -> bool,
) -> Energy {
    let holds = |bits: u64| pred(Energy::from_joules(f64::from_bits(bits)).capacitor_voltage(c));
    let hi_bits = hi.as_joules().max(0.0).to_bits();
    if holds(hi_bits) {
        return Energy::from_joules(f64::from_bits(hi_bits));
    }
    if !holds(0) {
        // Not even an empty buffer satisfies `pred`: return an impossible
        // threshold so `stored <= result` is always false.
        return Energy::from_joules(f64::NEG_INFINITY);
    }
    let (mut lo, mut hi) = (0u64, hi_bits);
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if holds(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Energy::from_joules(f64::from_bits(lo))
}

impl EnergySystem {
    /// Creates a fully-charged system at `t = 0`.
    ///
    /// # Errors
    ///
    /// Returns a [`EnergyConfigError`] if the configuration is inconsistent.
    pub fn new(
        config: EnergySystemConfig,
        source: impl EnergySource + 'static,
    ) -> Result<Self, EnergyConfigError> {
        config.validate()?;
        let capacitor = Capacitor::fully_charged(config.capacitor);
        let c = config.capacitor.capacitance;
        let capacity = capacitor.capacity();
        let (v_min, v_ckpt, v_rst) = (
            config.capacitor.v_min,
            config.thresholds.v_ckpt,
            config.thresholds.v_rst,
        );
        Ok(Self {
            capacitor,
            monitor: VoltageMonitor::new(config.thresholds),
            source: Box::new(source),
            config,
            now: Time::ZERO,
            stats: PowerCycleStats::default(),
            power_memo: None,
            e_min: max_energy_where(c, capacity, |v| v <= v_min),
            e_ckpt: max_energy_where(c, capacity, |v| v <= v_ckpt),
            e_rst_below: max_energy_where(c, capacity, |v| v < v_rst),
            wake_memo: None,
            wake_cycle_memo: None,
            speculate: speculation_default(),
        })
    }

    /// Absolute simulation time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Current capacitor voltage — the signal EDBP taps.
    pub fn voltage(&self) -> Voltage {
        self.capacitor.voltage()
    }

    /// Whether the current voltage is *strictly* below `w`, evaluated in the
    /// energy domain: `stored <= image(w)` with the image bisected once per
    /// distinct `w` (see [`max_energy_where`]). Bit-exactly equivalent to
    /// `self.voltage() < w` with no square root — callers polling a
    /// threshold every cycle should prefer this.
    pub fn voltage_strictly_below(&mut self, w: Voltage) -> bool {
        self.capacitor.stored() <= self.wake_threshold(w)
    }

    /// Current stored energy.
    pub fn stored(&self) -> Energy {
        self.capacitor.stored()
    }

    /// The static configuration.
    pub fn config(&self) -> &EnergySystemConfig {
        &self.config
    }

    /// The harvested-power source.
    pub fn source(&self) -> &dyn EnergySource {
        self.source.as_ref()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &PowerCycleStats {
        &self.stats
    }

    /// The voltage monitor's current hysteresis state.
    pub fn monitor_state(&self) -> MonitorState {
        self.monitor.state()
    }

    /// Whether the speculative chunked advance is enabled for this system.
    pub fn speculation_enabled(&self) -> bool {
        self.speculate
    }

    /// Overrides the process-wide `EHS_NO_SPECULATE` default for this
    /// system: `false` forces the guarded per-cycle kernel inside every
    /// burst and outage recharge. Results are bit-identical either way —
    /// speculation commits only chunks it proves clamp- and event-free —
    /// and the differential suites run both settings.
    pub fn set_speculation(&mut self, on: bool) {
        self.speculate = on;
    }

    /// Instantaneous harvested power right now.
    pub fn harvest_power(&self) -> Power {
        self.source.power_at(self.now)
    }

    /// Advances execution by `dt`, drawing `load` from the buffer while
    /// harvesting, then samples the voltage monitor.
    ///
    /// `load` must already include every on-chip draw over `dt` (MCU dynamic
    /// power, cache access energy, cache leakage); this method adds the
    /// capacitor's own self-discharge.
    pub fn step(&mut self, dt: Time, load: Energy) -> StepEvent {
        debug_assert!(dt.as_seconds() > 0.0, "step needs positive dt");
        let power = self.sampled_power();
        self.step_cycle(dt, load, power)
    }

    /// Harvested power at `self.now`, memoized per source segment. For
    /// segmented sources this is bit-identical to calling `power_at` (the
    /// power is constant within a segment by contract, and
    /// [`EnergySource::segment_end`] bounds the span it holds for) while
    /// skipping both the per-instant synthesis and the per-instant segment
    /// lookup: the fast path is a single time comparison.
    fn sampled_power(&mut self) -> Power {
        if let Some((until, p)) = self.power_memo {
            if self.now < until {
                return p;
            }
        }
        let p = self.source.power_at(self.now);
        self.power_memo = self.source.segment_end(self.now).map(|end| (end, p));
        p
    }

    /// One execution cycle: the exact arithmetic shared by [`Self::step`]
    /// and [`Self::step_burst`]. `power` must be the source power at
    /// `self.now`.
    #[inline]
    fn step_cycle(&mut self, dt: Time, load: Energy, power: Power) -> StepEvent {
        let harvested = power * dt;
        let absorbed = self.capacitor.charge(harvested);
        self.stats.shed += harvested - absorbed;
        self.stats.harvested += absorbed;

        let draw = load + self.capacitor.leakage() * dt;
        let delivered = self.capacitor.discharge(draw);
        self.stats.consumed += delivered;

        self.now += dt;
        self.stats.on_time += dt;

        // All threshold checks compare stored energy against the bisected
        // images of the voltage thresholds — exactly equivalent to deriving
        // the voltage (see `max_energy_where`), with no per-cycle sqrt. The
        // monitor is only fed on the (rare) cycles where an edge can fire,
        // which is when its answer can differ from "no edge".
        let stored = self.capacitor.stored();
        if stored <= self.e_min {
            // JIT margin violated; force the monitor into hibernation so the
            // subsequent recharge behaves.
            self.monitor.observe(self.capacitor.voltage());
            return StepEvent::BrownOut;
        }
        match self.monitor.state() {
            MonitorState::Operating if stored <= self.e_ckpt => {
                self.monitor.observe(self.capacitor.voltage());
                StepEvent::CheckpointRequested
            }
            MonitorState::Hibernating if stored > self.e_rst_below => {
                // Rising edge while still executing: the monitor flips back
                // to Operating, exactly as feeding it the voltage would.
                self.monitor.observe(self.capacitor.voltage());
                StepEvent::Running
            }
            _ => StepEvent::Running,
        }
    }

    /// Advances up to `plan.max_cycles` identical execution cycles in one
    /// call, stopping early — *after* the crossing cycle completes — when the
    /// monitor fires, the voltage drops below `plan.wake_below_voltage`, or
    /// the derived cycle number reaches `plan.wake_at_cycle`.
    ///
    /// Per cycle, `drawn − plan.load` (clamped at zero) is accumulated into
    /// `overdraw` exactly as the simulator's cycle-accurate loop does with
    /// its capacitor-leakage breakdown bucket: the subtraction uses the
    /// *accumulator* delta of `stats.consumed`, not the per-cycle delivered
    /// energy, so rounding matches the one-step-at-a-time sequence bit for
    /// bit.
    ///
    /// Returns the number of cycles actually executed (always ≥ 1) and the
    /// event observed on the last of them.
    ///
    /// Internally the burst runs through the speculative chunked advance
    /// ([`Self::speculate_burst`]) whenever it is enabled: provably
    /// event-free chunks commit in one branch-free pass, and anything the
    /// chunk post-check cannot certify replays through the guarded per-cycle
    /// path below. `EHS_NO_SPECULATE=1` (or
    /// [`Self::set_speculation`]`(false)`) forces the guarded path for every
    /// cycle; both settings are bit-identical.
    pub fn step_burst(&mut self, plan: &BurstPlan, overdraw: &mut Energy) -> (u64, StepEvent) {
        debug_assert!(plan.max_cycles >= 1, "burst needs at least one cycle");
        debug_assert!(plan.dt.as_seconds() > 0.0, "step needs positive dt");
        // Both stop guards are resolved to their exact images once per
        // burst: the voltage guard to a stored-energy threshold (memoized by
        // voltage bits) and the cycle guard to a time threshold (memoized by
        // (cycle, frequency)), so the per-cycle checks below are plain
        // scalar compares with no bisection, multiply, or cast in the loop.
        let wake_energy = plan.wake_below_voltage.map(|w| self.wake_threshold(w));
        let wake_time = plan
            .wake_at_cycle
            .map(|c| self.wake_cycle_image(c, plan.frequency));
        let mut cycles = 0u64;
        let mut guarded_budget = 0u64;
        loop {
            if guarded_budget == 0 && self.speculate {
                match self.speculate_burst(
                    plan,
                    wake_energy,
                    wake_time,
                    plan.max_cycles - cycles,
                    overdraw,
                ) {
                    Chunk::Advanced(k) => {
                        cycles += k;
                        if cycles >= plan.max_cycles {
                            return (cycles, StepEvent::Running);
                        }
                        continue;
                    }
                    Chunk::Guarded(n) => guarded_budget = n.max(1),
                }
            }
            guarded_budget = guarded_budget.saturating_sub(1);
            // The guarded per-cycle path: the reference arithmetic with
            // every check, also serving as the replay after a failed chunk.
            let consumed_before = self.stats.consumed;
            let power = self.sampled_power();
            let event = self.step_cycle(plan.dt, plan.load, power);
            let drawn = self.stats.consumed - consumed_before;
            *overdraw += drawn.saturating_sub(plan.load);
            cycles += 1;
            if event != StepEvent::Running || cycles >= plan.max_cycles {
                return (cycles, event);
            }
            if let Some(e) = wake_energy {
                if self.capacitor.stored() <= e {
                    return (cycles, StepEvent::Running);
                }
            }
            if let Some(t) = wake_time {
                if self.now > t {
                    return (cycles, StepEvent::Running);
                }
            }
        }
    }

    /// Attempts one speculative chunk of up to `remaining` burst cycles.
    ///
    /// The kernel runs the exact per-cycle f64 operations of the guarded
    /// path on local copies of the five accumulator chains (`stored`,
    /// `harvested`, `consumed`, `on_time`, `now`, plus the caller's
    /// overdraw), under the working assumption that no clamp fires and no
    /// stop condition triggers inside the chunk. The locals *are* the
    /// snapshot: the post-check below either proves the assumption for the
    /// whole chunk — in which case the locals equal the guarded path's state
    /// bit for bit and are committed — or the locals are dropped (the
    /// rewind) and the chunk replays through the guarded loop.
    ///
    /// Why one check after `k` cycles suffices: the per-cycle map on
    /// `stored` is `fl(fl(s + h) − d)` with constant `h` and `d`, and
    /// correctly-rounded add/sub are monotone non-decreasing in each
    /// operand, so the `k + 1` states the kernel visits form a monotone
    /// sequence — every intermediate lies between the first and last. Each
    /// guarded-path clamp/stop condition is itself monotone in `stored` (or
    /// in `now`), so checking the extremes is exact, not conservative: a
    /// pass proves no condition fired on *any* cycle, and a fail means a
    /// real clamp or crossing lies within the chunk for the replay to find.
    fn speculate_burst(
        &mut self,
        plan: &BurstPlan,
        wake_energy: Option<Energy>,
        wake_time: Option<Time>,
        remaining: u64,
        overdraw: &mut Energy,
    ) -> Chunk {
        const MIN_CHUNK: u64 = 2;
        /// Crossing-cycle estimates (plain f64 divides) only pay off above
        /// this chunk size; below it the post-check alone is cheaper.
        const ESTIMATE_ABOVE: u64 = 64;
        /// Hard cap so a single chunk's kernel loop always terminates even
        /// when nothing will ever cross (e.g. harvest exactly balances
        /// draw under an unbounded `max_cycles`).
        const CHUNK_MAX: u64 = 1 << 20;
        if remaining < MIN_CHUNK {
            return Chunk::Guarded(remaining.max(1));
        }
        // Constant-regime admission: a memoized source power valid now (the
        // post-check extends this to every sampled instant of the chunk) and
        // non-negative per-cycle flows.
        let Some((until, power)) = self.power_memo else {
            return Chunk::Guarded(1);
        };
        if self.now >= until {
            return Chunk::Guarded(1);
        }
        let dt = plan.dt;
        let h = power * dt;
        let d = plan.load + self.capacitor.leakage() * dt;
        if h < Energy::ZERO || d < Energy::ZERO {
            // (A NaN flow slips past this test, but every post-check
            // comparison below is false for NaN, so such a chunk can never
            // commit.)
            return Chunk::Guarded(remaining);
        }
        let s0 = self.capacitor.stored();
        let capacity = self.capacitor.capacity();
        // First-cycle admission: the endpoint post-check is only exact if
        // cycle 1 is already clamp-free from `s0`.
        if h > capacity.saturating_sub(s0) || d > s0 + h {
            return Chunk::Guarded(1);
        }
        let mut k = remaining.min(CHUNK_MAX);
        if k > ESTIMATE_ABOVE {
            // Clip the chunk to the estimated next crossing so a failed
            // post-check (and its replay) stays short. Estimates are
            // heuristic — only the post-check is authoritative.
            let net = h.base() - d.base();
            let mut est = k as f64;
            let mut clip = |cycles: f64| {
                if cycles < est {
                    est = cycles;
                }
            };
            // Cycle j samples the source at now + (j-1)·dt.
            clip((until.base() - self.now.base()) / dt.base() + 1.0);
            if let Some(t) = wake_time {
                clip((t.base() - self.now.base()) / dt.base() + 1.0);
            }
            if net > 0.0 {
                clip((capacity.base() - h.base() - s0.base()) / net + 1.0);
                if self.monitor.state() == MonitorState::Hibernating {
                    clip((self.e_rst_below.base() - s0.base()) / net + 1.0);
                }
            } else if net < 0.0 {
                let floor = match self.monitor.state() {
                    MonitorState::Operating => self.e_ckpt,
                    MonitorState::Hibernating => self.e_min,
                };
                let floor = wake_energy.map_or(floor, |w| w.max(floor));
                clip((s0.base() - floor.base()) / -net);
            }
            k = k.min(est.max(1.0) as u64);
            if k < MIN_CHUNK {
                return Chunk::Guarded(1);
            }
        }
        // The branch-free kernel: the same f64 operations in the same
        // dependence order as `k` guarded cycles under "no clamp, no stop".
        // Relative to the guarded body it skips only `shed += h − absorbed`
        // — `absorbed == h` exactly when nothing saturates, and `x + 0.0`
        // is the identity for every `x` that is not `-0.0`, which `shed`
        // (a sum of non-negative terms starting at `+0.0`) never is — and
        // the monitor/wake checks, re-established for the whole chunk by
        // the post-check.
        let mut stored = s0;
        let mut stored_prev = s0;
        let mut now = self.now;
        let mut now_prev = self.now;
        let mut harvested = self.stats.harvested;
        let mut consumed = self.stats.consumed;
        let mut on_time = self.stats.on_time;
        let mut od = *overdraw;
        for _ in 0..k {
            stored_prev = stored;
            now_prev = now;
            stored = (stored + h) - d;
            // The guarded path accumulates `overdraw` from the *accumulator*
            // delta of `stats.consumed`, not from `d`; reproduce that.
            let consumed_next = consumed + d;
            od += (consumed_next - consumed).saturating_sub(plan.load);
            consumed = consumed_next;
            harvested += h;
            on_time += dt;
            now += dt;
        }
        // The post-check. `stored_prev` is the largest pre-charge state when
        // the orbit rises and `s0` when it falls (monotonicity), so the
        // clamp checks evaluate the per-cycle clamp conditions at their
        // extreme operands; the threshold checks bound every post-cycle
        // state by the endpoints. Checking the wake guards on cycle `k`
        // too is at most *stricter* than the guarded loop (which skips them
        // when the burst ends at `max_cycles`); a spurious fail only replays
        // the chunk through the guarded path to the identical state.
        let lo = s0.min(stored);
        let hi = s0.max(stored);
        let ok = now_prev < until
            && h <= capacity.saturating_sub(s0.max(stored_prev))
            && d <= s0.min(stored_prev) + h
            && lo > self.e_min
            && match self.monitor.state() {
                MonitorState::Operating => lo > self.e_ckpt,
                MonitorState::Hibernating => hi <= self.e_rst_below,
            }
            && wake_energy.is_none_or(|e| lo > e)
            && wake_time.is_none_or(|t| now <= t);
        if !ok {
            return Chunk::Guarded(k);
        }
        // Commit: the locals are exactly the guarded path's state after `k`
        // clamp-free, event-free cycles.
        self.capacitor.set_stored(stored);
        self.stats.harvested = harvested;
        self.stats.consumed = consumed;
        self.stats.on_time = on_time;
        self.now = now;
        *overdraw = od;
        Chunk::Advanced(k)
    }

    /// Time image of a wake cycle: the greatest `now` whose derived cycle
    /// number `(now * freq) as u64` is still *below* `c`, so the burst's
    /// epoch-boundary guard becomes the single comparison `now > image`
    /// instead of a float multiply plus saturating cast every cycle.
    ///
    /// The derivation is monotone non-decreasing in `now` for `now >= 0`
    /// (correctly-rounded multiply by a non-negative constant, and `as`
    /// saturates), so the satisfying set is exactly `[0, image]` and the
    /// comparison is bit-exactly equivalent to the original guard; found by
    /// bisecting the order-isomorphic bit patterns of non-negative `f64`,
    /// like [`max_energy_where`]. Wake cycles change once per predictor
    /// epoch, so a one-entry memo keyed by `(cycle, frequency-bits)`
    /// suffices.
    fn wake_cycle_image(&mut self, c: u64, freq: Frequency) -> Time {
        let key = (c, freq.base().to_bits());
        if let Some((kc, kf, t)) = self.wake_cycle_memo {
            if (kc, kf) == key {
                return t;
            }
        }
        let holds = |bits: u64| ((Time::from_base(f64::from_bits(bits)) * freq) as u64) < c;
        let inf = f64::INFINITY.to_bits();
        let t = if !holds(0) {
            // Cycle 0 already reaches `c`: an image below every valid time,
            // so the guard fires on the first check.
            Time::from_base(f64::NEG_INFINITY)
        } else if holds(inf) {
            // No finite time reaches `c` (e.g. a zero frequency): the guard
            // never fires.
            Time::from_base(f64::INFINITY)
        } else {
            let (mut lo, mut hi) = (0u64, inf);
            while hi - lo > 1 {
                let mid = lo + (hi - lo) / 2;
                if holds(mid) {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            Time::from_base(f64::from_bits(lo))
        };
        self.wake_cycle_memo = Some((key.0, key.1, t));
        t
    }

    /// Stored-energy image of a wake-guard voltage: `stored <= result` ⟺
    /// `voltage() < w` (see [`max_energy_where`]). Guard voltages come from
    /// predictor gate thresholds, which rarely change between bursts, so a
    /// one-entry memo keyed by the voltage's bits makes the per-cycle check
    /// a plain comparison.
    fn wake_threshold(&mut self, w: Voltage) -> Energy {
        let bits = w.base().to_bits();
        if let Some((b, e)) = self.wake_memo {
            if b == bits {
                return e;
            }
        }
        let e = max_energy_where(
            self.config.capacitor.capacitance,
            self.capacitor.capacity(),
            |v| v < w,
        );
        self.wake_memo = Some((bits, e));
        e
    }

    /// Draws a one-off energy cost at the current instant (checkpoint or
    /// restore operations). Returns the energy actually delivered.
    pub fn consume(&mut self, e: Energy) -> Energy {
        let delivered = self.capacitor.discharge(e);
        self.stats.consumed += delivered;
        delivered
    }

    /// Advances time *for* a one-off operation whose energy was drawn via
    /// [`EnergySystem::consume`] (e.g. checkpoint latency). No load is drawn
    /// and the monitor is not consulted — the JIT reserve funds this window.
    pub fn elapse_operation(&mut self, dt: Time) {
        let harvested = self.sampled_power() * dt;
        let absorbed = self.capacitor.charge(harvested);
        self.stats.shed += harvested - absorbed;
        self.stats.harvested += absorbed;
        self.now += dt;
        self.stats.on_time += dt;
    }

    /// Rides out a power outage: the MCU is off, only harvesting (and
    /// capacitor self-discharge) happens, until the voltage recovers to
    /// `V_rst` or the safety horizon expires.
    ///
    /// The original reference loop derived a `sqrt` voltage and fed the
    /// monitor on every recharge step. This loop instead compares stored
    /// energy against the bisected threshold images — bit-exactly the
    /// monitor's own edge conditions (see [`max_energy_where`]) — and
    /// consults the monitor only on the cycles where an edge can fire, plus
    /// one catch-up observation on an unrecovered horizon so the monitor's
    /// internals end identical to the per-step-observe reference. Within a
    /// constant regime, [`Self::speculate_recharge`] advances whole chunks
    /// of steps with a single post-check, geometric chunk growth bounding
    /// the replay overhead.
    ///
    /// Increments the outage count and returns what happened.
    pub fn power_off_and_recharge(&mut self) -> OutageOutcome {
        /// Initial speculative chunk length, doubled after every committed
        /// chunk up to [`RECHARGE_CHUNK_MAX`]: total replay work stays
        /// bounded by a constant fraction of committed work.
        const RECHARGE_CHUNK_SEED: u64 = 32;
        const RECHARGE_CHUNK_MAX: u64 = 1 << 20;
        let dt = self.config.recharge_step;
        let max_off = self.config.max_off_time;
        let mut off = Time::ZERO;
        let mut harvested_total = Energy::ZERO;
        let mut recovered = false;
        let mut chunk_cap = RECHARGE_CHUNK_SEED;
        let mut guarded_budget = 0u64;
        while off < max_off {
            if guarded_budget == 0
                && self.speculate
                && self.monitor.state() == MonitorState::Hibernating
            {
                match self.speculate_recharge(
                    dt,
                    max_off,
                    chunk_cap,
                    &mut off,
                    &mut harvested_total,
                ) {
                    Chunk::Advanced(..) => {
                        chunk_cap = (chunk_cap * 2).min(RECHARGE_CHUNK_MAX);
                        continue;
                    }
                    Chunk::Guarded(n) => guarded_budget = n.max(1),
                }
            }
            guarded_budget = guarded_budget.saturating_sub(1);
            // One guarded recharge step — the reference arithmetic.
            let harvested = self.sampled_power() * dt;
            let absorbed = self.capacitor.charge(harvested);
            self.stats.shed += harvested - absorbed;
            self.stats.harvested += absorbed;
            harvested_total += absorbed;

            let leak = self.capacitor.leakage() * dt;
            self.stats.consumed += self.capacitor.discharge(leak);

            self.now += dt;
            off += dt;

            let stored = self.capacitor.stored();
            match self.monitor.state() {
                MonitorState::Hibernating if stored > self.e_rst_below => {
                    // Rising edge: `voltage() >= v_rst`. Feeding the monitor
                    // flips it to Operating, exactly as the per-step observe
                    // did.
                    self.monitor.observe(self.capacitor.voltage());
                    debug_assert_eq!(self.monitor.state(), MonitorState::Operating);
                    recovered = true;
                    break;
                }
                MonitorState::Operating if stored <= self.e_ckpt => {
                    // Falling edge: an outage entered while still Operating
                    // (a brown-out path) hibernates the monitor on the way
                    // down, as the per-step observe did. The loop continues.
                    self.monitor.observe(self.capacitor.voltage());
                }
                _ => {}
            }
        }
        if !recovered && off > Time::ZERO {
            // The reference loop fed the monitor every step; on an
            // unrecovered outage its last observation — the final step's
            // voltage, which cannot be an edge or that step would have
            // recovered or hibernated above — is the only one still visible
            // in the monitor's state. Reproduce it.
            self.monitor.observe(self.capacitor.voltage());
        }
        self.stats.off_time += off;
        self.stats.outages += 1;
        OutageOutcome {
            off_duration: off,
            harvested: harvested_total,
            recovered,
        }
    }

    /// Attempts one speculative chunk of recharge steps while hibernating —
    /// the recharge twin of [`Self::speculate_burst`], with the same
    /// snapshot-as-locals / post-check / rewind contract. The per-step map
    /// on `stored` is `fl(fl(s + h) − L)` with constant harvest `h` and
    /// leakage `L`, so the monotone-orbit argument applies unchanged; the
    /// only stop condition is the rising edge (`stored > e_rst_below`),
    /// checked at the orbit's high endpoint.
    fn speculate_recharge(
        &mut self,
        dt: Time,
        max_off: Time,
        chunk_cap: u64,
        off: &mut Time,
        harvested_total: &mut Energy,
    ) -> Chunk {
        const MIN_CHUNK: u64 = 2;
        let Some((until, power)) = self.power_memo else {
            return Chunk::Guarded(1);
        };
        if self.now >= until {
            return Chunk::Guarded(1);
        }
        let h = power * dt;
        let leak = self.capacitor.leakage() * dt;
        if h < Energy::ZERO || leak < Energy::ZERO {
            return Chunk::Guarded(u64::MAX);
        }
        let s0 = self.capacitor.stored();
        let capacity = self.capacitor.capacity();
        if h > capacity.saturating_sub(s0) || leak > s0 + h {
            return Chunk::Guarded(1);
        }
        // Clip the chunk to the estimated next crossing: the safety
        // horizon, the segment end, and (when charging) the rising edge or
        // saturation. Estimates are heuristic; the post-check is
        // authoritative, and a horizon overshoot replays at most the true
        // remaining steps because the guarded loop re-checks `off < max_off`
        // every iteration.
        let net = h.base() - leak.base();
        let mut est = chunk_cap as f64;
        let mut clip = |steps: f64| {
            if steps < est {
                est = steps;
            }
        };
        clip((max_off.base() - off.base()) / dt.base() + 1.0);
        clip((until.base() - self.now.base()) / dt.base() + 1.0);
        if net > 0.0 {
            clip((self.e_rst_below.base() - s0.base()) / net + 1.0);
            clip((capacity.base() - h.base() - s0.base()) / net + 1.0);
        }
        let k = chunk_cap.min(est.max(1.0) as u64);
        if k < MIN_CHUNK {
            return Chunk::Guarded(1);
        }
        // The kernel: the guarded step's f64 operations on locals, minus
        // the saturation-shed add (`+ 0.0` identity, as in
        // `speculate_burst`) and the monitor edge checks.
        let mut stored = s0;
        let mut stored_prev = s0;
        let mut now = self.now;
        let mut now_prev = self.now;
        let mut off_local = *off;
        let mut off_prev = *off;
        let mut harvested = self.stats.harvested;
        let mut consumed = self.stats.consumed;
        let mut total = *harvested_total;
        for _ in 0..k {
            stored_prev = stored;
            now_prev = now;
            off_prev = off_local;
            stored = (stored + h) - leak;
            harvested += h;
            total += h;
            consumed += leak;
            now += dt;
            off_local += dt;
        }
        let hi = s0.max(stored);
        let ok = now_prev < until
            && off_prev < max_off
            && h <= capacity.saturating_sub(s0.max(stored_prev))
            && leak <= s0.min(stored_prev) + h
            && hi <= self.e_rst_below;
        if !ok {
            return Chunk::Guarded(k);
        }
        self.capacitor.set_stored(stored);
        self.stats.harvested = harvested;
        self.stats.consumed = consumed;
        self.now = now;
        *off = off_local;
        *harvested_total = total;
        Chunk::Advanced(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConstantSource, SourceConfig, TracePreset};

    fn mk(source_mw: f64) -> EnergySystem {
        EnergySystem::new(
            EnergySystemConfig::paper_default(),
            ConstantSource::new(Power::from_milli_watts(source_mw)),
        )
        .expect("valid")
    }

    #[test]
    fn validation_catches_undersized_reserve() {
        let cfg = EnergySystemConfig::paper_default()
            .with_checkpoint_budget(Energy::from_micro_joules(100.0));
        assert!(matches!(
            cfg.validate(),
            Err(EnergyConfigError::InsufficientCheckpointReserve { .. })
        ));
    }

    #[test]
    fn heavy_load_triggers_checkpoint_request() {
        let mut sys = mk(0.0);
        let dt = Time::from_micros(10.0);
        let load = Power::from_milli_watts(5.0) * dt;
        let mut fired = false;
        for _ in 0..100_000 {
            match sys.step(dt, load) {
                StepEvent::CheckpointRequested => {
                    fired = true;
                    break;
                }
                StepEvent::BrownOut => panic!("monitor should fire before brown-out"),
                StepEvent::Running => {}
            }
        }
        assert!(fired);
        // Voltage at the trigger is at or just below V_ckpt but above V_min.
        let v = sys.voltage().as_volts();
        assert!(v <= 3.2 && v > 2.8, "v = {v}");
    }

    #[test]
    fn recharge_recovers_to_v_rst() {
        let mut sys = mk(0.0);
        let dt = Time::from_micros(10.0);
        let load = Power::from_milli_watts(5.0) * dt;
        while sys.step(dt, load) != StepEvent::CheckpointRequested {}
        // Re-enable a strong source for the recharge by swapping stats: use a
        // separate system instead (sources are immutable). Here harvesting is
        // zero, so recovery must fail within the horizon.
        let out = sys.power_off_and_recharge();
        assert!(!out.recovered);
        assert_eq!(sys.stats().outages, 1);
    }

    #[test]
    fn full_cycle_with_real_source() {
        let cfg = EnergySystemConfig::paper_default();
        let src = SourceConfig::preset(TracePreset::RfHome)
            .with_seed(11)
            .build();
        let mut sys = EnergySystem::new(cfg, src).expect("valid");
        let dt = Time::from_micros(5.0);
        let load = Power::from_milli_watts(4.0) * dt;
        let mut outages = 0;
        for _ in 0..2_000_000 {
            if sys.step(dt, load) == StepEvent::CheckpointRequested {
                sys.consume(Energy::from_nano_joules(200.0));
                let out = sys.power_off_and_recharge();
                assert!(out.recovered, "RFHome should recover eventually");
                outages += 1;
                if outages >= 5 {
                    break;
                }
            }
        }
        assert!(outages >= 5, "expected frequent outages on RFHome");
        assert!(sys.stats().off_time > Time::ZERO);
        assert!(sys.stats().harvested > Energy::ZERO);
    }

    #[test]
    fn infinite_energy_never_fails() {
        let mut sys = mk(100.0); // 100 mW >> any load
        let dt = Time::from_micros(10.0);
        let load = Power::from_milli_watts(4.0) * dt;
        for _ in 0..100_000 {
            assert_eq!(sys.step(dt, load), StepEvent::Running);
        }
        assert_eq!(sys.stats().outages, 0);
        // Buffer stays pinned at V_max and sheds the excess.
        assert!((sys.voltage().as_volts() - 3.5).abs() < 0.05);
        assert!(sys.stats().shed > Energy::ZERO);
    }

    fn mk_synthetic(seed: u64) -> EnergySystem {
        EnergySystem::new(
            EnergySystemConfig::paper_default(),
            SourceConfig::preset(TracePreset::RfHome)
                .with_seed(seed)
                .build(),
        )
        .expect("valid")
    }

    fn assert_state_identical(a: &EnergySystem, b: &EnergySystem) {
        assert_eq!(
            a.now().as_seconds().to_bits(),
            b.now().as_seconds().to_bits()
        );
        assert_eq!(
            a.voltage().as_volts().to_bits(),
            b.voltage().as_volts().to_bits()
        );
        assert_eq!(a.stored(), b.stored());
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn step_burst_matches_looped_step_bit_for_bit() {
        let dt = Time::from_nanos(40.0);
        let load = Power::from_milli_watts(18.0) * dt;
        let freq = ehs_units::Frequency::from_mega_hertz(25.0);
        for seed in [0, 7, 41] {
            let mut burst = mk_synthetic(seed);
            let mut looped = mk_synthetic(seed);
            let mut overdraw = Energy::ZERO;
            let mut looped_overdraw = Energy::ZERO;
            let mut remaining = 50_000u64;
            while remaining > 0 {
                let n = remaining.min(1000);
                let plan = BurstPlan {
                    max_cycles: n,
                    dt,
                    load,
                    frequency: freq,
                    wake_at_cycle: None,
                    wake_below_voltage: None,
                };
                let (taken, event) = burst.step_burst(&plan, &mut overdraw);
                assert!(taken >= 1 && taken <= n);
                let mut looped_event = StepEvent::Running;
                for _ in 0..taken {
                    let before = looped.stats().consumed;
                    looped_event = looped.step(dt, load);
                    let drawn = looped.stats().consumed - before;
                    looped_overdraw += drawn.saturating_sub(load);
                }
                assert_eq!(event, looped_event);
                assert_state_identical(&burst, &looped);
                assert_eq!(overdraw, looped_overdraw);
                if event != StepEvent::Running {
                    // Ride the outage out identically on both systems.
                    let a = burst.power_off_and_recharge();
                    let b = looped.power_off_and_recharge();
                    assert_eq!(a, b);
                    assert_state_identical(&burst, &looped);
                    if !a.recovered {
                        break;
                    }
                }
                remaining -= taken;
            }
        }
    }

    #[test]
    fn step_burst_stops_below_wake_voltage() {
        let mut sys = mk(0.0); // zero harvest: voltage only falls
        let dt = Time::from_nanos(40.0);
        let load = Power::from_milli_watts(20.0) * dt;
        let guard = Voltage::from_base(3.45);
        let plan = BurstPlan {
            max_cycles: u64::MAX,
            dt,
            load,
            frequency: ehs_units::Frequency::from_mega_hertz(25.0),
            wake_at_cycle: None,
            wake_below_voltage: Some(guard),
        };
        let mut overdraw = Energy::ZERO;
        let (taken, event) = sys.step_burst(&plan, &mut overdraw);
        assert_eq!(event, StepEvent::Running);
        assert!(sys.voltage() < guard, "stopped on the crossing cycle");
        // The crossing is exact: one cycle earlier the voltage was >= guard.
        let mut replay = mk(0.0);
        for _ in 0..taken - 1 {
            let _ = replay.step(dt, load);
        }
        assert!(replay.voltage() >= guard);
    }

    #[test]
    fn step_burst_stops_at_wake_cycle() {
        let mut sys = mk(100.0);
        let dt = Time::from_nanos(40.0);
        let load = Power::from_milli_watts(4.0) * dt;
        let freq = ehs_units::Frequency::from_mega_hertz(25.0);
        let plan = BurstPlan {
            max_cycles: u64::MAX,
            dt,
            load,
            frequency: freq,
            wake_at_cycle: Some(1000),
            wake_below_voltage: None,
        };
        let mut overdraw = Energy::ZERO;
        let (taken, event) = sys.step_burst(&plan, &mut overdraw);
        assert_eq!(event, StepEvent::Running);
        let cycle = (sys.now() * freq) as u64;
        assert!(cycle >= 1000, "cycle {cycle}");
        assert!(taken <= 1001, "overshot the epoch boundary: {taken}");
    }

    #[test]
    fn step_burst_reports_monitor_crossing_cycle() {
        let mut burst = mk(0.0);
        let mut looped = mk(0.0);
        let dt = Time::from_micros(10.0);
        let load = Power::from_milli_watts(5.0) * dt;
        let plan = BurstPlan {
            max_cycles: u64::MAX,
            dt,
            load,
            frequency: ehs_units::Frequency::from_mega_hertz(25.0),
            wake_at_cycle: None,
            wake_below_voltage: None,
        };
        let mut overdraw = Energy::ZERO;
        let (taken, event) = burst.step_burst(&plan, &mut overdraw);
        assert_eq!(event, StepEvent::CheckpointRequested);
        let mut steps = 0u64;
        while looped.step(dt, load) == StepEvent::Running {
            steps += 1;
        }
        assert_eq!(taken, steps + 1, "monitor fired on a different cycle");
        assert_state_identical(&burst, &looped);
    }

    #[test]
    fn consume_draws_from_buffer() {
        let mut sys = mk(0.0);
        let before = sys.stored();
        let taken = sys.consume(Energy::from_nano_joules(100.0));
        assert_eq!(taken, Energy::from_nano_joules(100.0));
        assert!(sys.stored() < before);
    }

    #[test]
    fn elapse_operation_advances_clock_without_monitor() {
        let mut sys = mk(0.0);
        let t0 = sys.now();
        sys.elapse_operation(Time::from_micros(100.0));
        assert!(sys.now() > t0);
        assert_eq!(sys.stats().outages, 0);
    }

    #[test]
    fn stats_time_accounting_is_consistent() {
        let mut sys = mk(0.0);
        let dt = Time::from_micros(10.0);
        let load = Power::from_milli_watts(5.0) * dt;
        while sys.step(dt, load) != StepEvent::CheckpointRequested {}
        let _ = sys.power_off_and_recharge();
        let s = sys.stats();
        assert!(
            (s.total_time().as_seconds() - (s.on_time + s.off_time).as_seconds()).abs() < 1e-12
        );
        assert!((sys.now().as_seconds() - s.total_time().as_seconds()).abs() < 1e-9);
    }

    /// Verbatim copy of the pre-speculation `power_off_and_recharge` loop —
    /// a `sqrt` voltage derivation and a monitor observation on *every*
    /// recharge step. Kept as the differential oracle for the rewritten
    /// implementation: both simulator regimes share the new code, so the
    /// sim-level divergence gate alone cannot catch a recharge-only bug.
    fn reference_recharge(sys: &mut EnergySystem) -> OutageOutcome {
        let dt = sys.config.recharge_step;
        let mut off = Time::ZERO;
        let mut harvested_total = Energy::ZERO;
        let mut recovered = false;
        while off < sys.config.max_off_time {
            let harvested = sys.sampled_power() * dt;
            let absorbed = sys.capacitor.charge(harvested);
            sys.stats.shed += harvested - absorbed;
            sys.stats.harvested += absorbed;
            harvested_total += absorbed;

            let leak = sys.capacitor.leakage() * dt;
            sys.stats.consumed += sys.capacitor.discharge(leak);

            sys.now += dt;
            off += dt;

            let v = sys.capacitor.voltage();
            if sys.monitor.observe(v) && sys.monitor.state() == MonitorState::Operating {
                recovered = true;
                break;
            }
        }
        sys.stats.off_time += off;
        sys.stats.outages += 1;
        OutageOutcome {
            off_duration: off,
            harvested: harvested_total,
            recovered,
        }
    }

    fn assert_state_and_monitor_identical(a: &EnergySystem, b: &EnergySystem) {
        assert_state_identical(a, b);
        assert_eq!(a.monitor, b.monitor, "monitor internals diverged");
    }

    #[test]
    fn recharge_matches_reference_loop_bit_for_bit() {
        // Short safety horizon so the unrecovered cases stay fast; small
        // enough that the zero-source runs hit the horizon, large enough
        // that the RF runs recover first.
        let mut cfg = EnergySystemConfig::paper_default();
        cfg.max_off_time = Time::from_seconds(0.25);
        fn mk_kind(cfg: &EnergySystemConfig, kind: u32) -> EnergySystem {
            match kind {
                0 => EnergySystem::new(
                    cfg.clone(),
                    ConstantSource::new(Power::from_milli_watts(0.5)),
                ),
                1 => EnergySystem::new(cfg.clone(), ConstantSource::new(Power::ZERO)),
                2 => EnergySystem::new(
                    cfg.clone(),
                    SourceConfig::preset(TracePreset::RfHome)
                        .with_seed(3)
                        .build(),
                ),
                _ => EnergySystem::new(
                    cfg.clone(),
                    SourceConfig::preset(TracePreset::RfOffice)
                        .with_seed(29)
                        .build(),
                ),
            }
            .expect("valid")
        }
        let dt = Time::from_micros(10.0);
        let load = Power::from_milli_watts(5.0) * dt;
        for kind in 0..4 {
            for speculate in [true, false] {
                let mut reference = mk_kind(&cfg, kind);
                let mut rewritten = mk_kind(&cfg, kind);
                rewritten.set_speculation(speculate);
                // Drain both identically into hibernation, then diff the
                // whole outage.
                while reference.step(dt, load) != StepEvent::CheckpointRequested {}
                while rewritten.step(dt, load) != StepEvent::CheckpointRequested {}
                assert_state_and_monitor_identical(&reference, &rewritten);
                let a = reference_recharge(&mut reference);
                let b = rewritten.power_off_and_recharge();
                assert_eq!(a, b);
                assert_state_and_monitor_identical(&reference, &rewritten);
            }
        }
    }

    #[test]
    fn recharge_entered_while_operating_matches_reference() {
        // A brown-out path can start an outage with the monitor still
        // Operating: the falling edge must fire *inside* the recharge loop,
        // then the horizon expires unrecovered (zero source). Exercises the
        // edge-only monitor feeding and the final catch-up observation.
        let mut cfg = EnergySystemConfig::paper_default();
        cfg.max_off_time = Time::from_seconds(0.05);
        for speculate in [true, false] {
            let mut reference =
                EnergySystem::new(cfg.clone(), ConstantSource::new(Power::ZERO)).unwrap();
            let mut rewritten =
                EnergySystem::new(cfg.clone(), ConstantSource::new(Power::ZERO)).unwrap();
            rewritten.set_speculation(speculate);
            assert_eq!(reference.monitor_state(), MonitorState::Operating);
            let a = reference_recharge(&mut reference);
            let b = rewritten.power_off_and_recharge();
            assert_eq!(a, b);
            assert!(!a.recovered);
            assert_state_and_monitor_identical(&reference, &rewritten);
        }
    }

    #[test]
    fn speculative_burst_matches_guarded_bit_for_bit() {
        // Constant regimes where whole bursts commit as single chunks:
        // draining, saturated charging, and slow charging — plus wake
        // guards so chunk post-checks interact with every stop condition.
        let dt = Time::from_nanos(40.0);
        let freq = ehs_units::Frequency::from_mega_hertz(25.0);
        for (source_mw, load_mw) in [(0.0, 6.0), (100.0, 1.0), (2.0, 1.0), (3.0, 3.0)] {
            let mut spec = mk(source_mw);
            let mut guarded = mk(source_mw);
            assert!(spec.speculation_enabled() || std::env::var_os("EHS_NO_SPECULATE").is_some());
            spec.set_speculation(true);
            guarded.set_speculation(false);
            let load = Power::from_milli_watts(load_mw) * dt;
            let mut spec_od = Energy::ZERO;
            let mut guarded_od = Energy::ZERO;
            for round in 0..40u64 {
                let plan = BurstPlan {
                    max_cycles: 1 + (round * 977) % 4096,
                    dt,
                    load,
                    frequency: freq,
                    wake_at_cycle: (round % 3 == 0).then_some((round + 1) * 1500),
                    wake_below_voltage: (round % 4 == 0)
                        .then_some(Voltage::from_volts(3.2 + 0.0001 * round as f64)),
                };
                let a = spec.step_burst(&plan, &mut spec_od);
                let b = guarded.step_burst(&plan, &mut guarded_od);
                assert_eq!(a, b, "source {source_mw} mW round {round}");
                assert_eq!(spec_od, guarded_od);
                assert_state_and_monitor_identical(&spec, &guarded);
                if a.1 != StepEvent::Running {
                    let oa = spec.power_off_and_recharge();
                    let ob = guarded.power_off_and_recharge();
                    assert_eq!(oa, ob);
                    assert_state_and_monitor_identical(&spec, &guarded);
                    if !oa.recovered {
                        break;
                    }
                }
            }
        }
    }

    #[test]
    fn wake_cycle_image_matches_multiply_cast() {
        let mut sys = mk(0.0);
        let freq = ehs_units::Frequency::from_mega_hertz(25.0);
        let dt = Time::from_nanos(40.0);
        for c in [0u64, 1, 999, 1000, 1001, 1 << 40, u64::MAX] {
            let image = sys.wake_cycle_image(c, freq);
            // Probe times straddling the image (and a few fixed points):
            // the hoisted guard must agree with the original multiply+cast
            // at every probed instant.
            let mut probes = vec![
                Time::ZERO,
                dt,
                Time::from_seconds(4e-5),
                Time::from_seconds(1.0),
            ];
            let bits = image.base().to_bits();
            if image.base().is_finite() {
                probes.push(image);
                probes.push(Time::from_base(f64::from_bits(bits + 1)));
                if bits > 0 {
                    probes.push(Time::from_base(f64::from_bits(bits - 1)));
                }
            }
            for t in probes {
                let original = ((t * freq) as u64) >= c;
                let hoisted = t > image;
                assert_eq!(
                    original,
                    hoisted,
                    "c={c} t={}s: original {original}, hoisted {hoisted}",
                    t.base()
                );
            }
        }
        // Zero frequency: no finite time ever reaches cycle 1, so the guard
        // must never fire.
        let image = sys.wake_cycle_image(1, ehs_units::Frequency::from_base(0.0));
        assert!(Time::from_seconds(1e300) <= image);
    }

    #[test]
    fn speculation_override_toggles() {
        let mut sys = mk(0.0);
        sys.set_speculation(false);
        assert!(!sys.speculation_enabled());
        sys.set_speculation(true);
        assert!(sys.speculation_enabled());
    }
}
