//! Energy-harvesting frontend for the EDBP intermittent-computing simulator.
//!
//! This crate models everything between the ambient energy source and the
//! digital logic of an energy-harvesting system (paper Section II):
//!
//! * [`Capacitor`] — the harvested-energy buffer, `E = ½ C V²`.
//! * [`EnergySource`] — harvested power as a function of time, with the four
//!   source presets the paper evaluates ([`TracePreset::RfHome`],
//!   [`TracePreset::RfOffice`], [`TracePreset::Solar`],
//!   [`TracePreset::Thermal`]) plus sampled and constant sources.
//! * [`VoltageMonitor`] — the hysteretic comparator that triggers just-in-time
//!   (JIT) checkpointing when the supply dips below `V_ckpt` and restoration
//!   when it recovers above `V_rst`.
//! * [`EnergySystem`] — ties the three together and exposes the step/outage/
//!   recharge loop the full-system simulator drives, along with
//!   [`PowerCycleStats`] bookkeeping.
//!
//! # Example: watching a power cycle unfold
//!
//! ```
//! use ehs_energy::{EnergySystem, EnergySystemConfig, SourceConfig, StepEvent, TracePreset};
//! use ehs_units::{Power, Time};
//!
//! let config = EnergySystemConfig::paper_default();
//! let source = SourceConfig::preset(TracePreset::RfHome).with_seed(7).build();
//! let mut system = EnergySystem::new(config, source).expect("valid config");
//!
//! // Draw a constant 3 mW load until the voltage monitor fires.
//! let dt = Time::from_micros(10.0);
//! let load = Power::from_milli_watts(3.0) * dt;
//! let mut cycles = 0u32;
//! while cycles == 0 {
//!     if let StepEvent::CheckpointRequested = system.step(dt, load) {
//!         // ... the architecture checkpoints here ...
//!         let outage = system.power_off_and_recharge();
//!         assert!(outage.off_duration > ehs_units::Time::ZERO);
//!         cycles += 1;
//!     }
//! }
//! assert_eq!(system.stats().outages, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod capacitor;
mod error;
mod monitor;
mod system;
mod trace;

pub use capacitor::{voltage_sqrt_count, Capacitor, CapacitorConfig};
pub use error::EnergyConfigError;
pub use monitor::{MonitorState, VoltageMonitor, VoltageThresholds};
pub use system::{
    BurstPlan, EnergySystem, EnergySystemConfig, OutageOutcome, PowerCycleStats, StepEvent,
};
pub use trace::{
    ConstantSource, EnergySource, SampledTrace, SourceConfig, SyntheticTrace, TracePreset,
};
