//! A vendored, dependency-free subset of the `criterion` API.
//!
//! The build environment has no crates.io access, so this crate provides
//! just enough of criterion for the workspace's benches to compile and run:
//! `criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! benchmark groups with throughput annotations, and batched iteration.
//!
//! Statistics are deliberately minimal — each benchmark is timed over
//! `sample_size` batches and the per-iteration mean (plus min) is printed.
//! There is no warm-up analysis, outlier rejection, or HTML report; the
//! numbers are for trend-watching, and `exp_perf_baseline` (which records
//! `BENCH_hotloop.json`) is the canonical throughput measurement.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `Bencher::iter_batched` amortizes setup cost. The shim runs one
/// setup per measured invocation regardless, so the variants only document
/// intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: upstream batches many per allocation.
    SmallInput,
    /// Large inputs: upstream batches few.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Units the timing is normalized by in reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Iterations process this many logical elements each.
    Elements(u64),
    /// Iterations process this many bytes each.
    Bytes(u64),
}

/// Per-invocation timing collector handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Self {
            samples: Vec::with_capacity(sample_size),
            sample_size: sample_size.max(1),
        }
    }

    /// Times `routine` once per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` on a fresh `setup()` input per sample; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, name: &str, throughput: Option<Throughput>) {
        if self.samples.is_empty() {
            println!("{name:<50} (no samples)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = *self.samples.iter().min().expect("nonempty");
        print!("{name:<50} mean {mean:>12.3?}   min {min:>12.3?}");
        match throughput {
            Some(Throughput::Elements(n)) => {
                let per_sec = n as f64 / mean.as_secs_f64();
                print!("   {:>12.0} elem/s", per_sec);
            }
            Some(Throughput::Bytes(n)) => {
                let per_sec = n as f64 / mean.as_secs_f64();
                print!("   {:>12.0} B/s", per_sec);
            }
            None => {}
        }
        println!();
    }
}

/// The top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 1, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        bencher.report(name, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
            sample_size: None,
        }
    }
}

/// A group of benchmarks sharing a name prefix and throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Annotates how much work one iteration performs.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 1, "sample size must be positive");
        self.sample_size = Some(n);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        let mut bencher = Bencher::new(samples);
        f(&mut bencher);
        bencher.report(&format!("{}/{name}", self.name), self.throughput);
        self
    }

    /// Ends the group (upstream flushes reports here; the shim prints
    /// eagerly, so this is a no-op).
    pub fn finish(self) {}
}

/// Declares a group function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        c.bench_function("trivial/add", |b| b.iter(|| black_box(1u64) + 1));
        let mut group = c.benchmark_group("grouped");
        group.throughput(Throughput::Elements(4));
        group.sample_size(3);
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8, 2, 3, 4], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }

    criterion_group!(shim_smoke, trivial);

    #[test]
    fn group_runs_all_targets() {
        shim_smoke();
    }
}
