//! NVSim/CACTI-style analytic circuit models for the EDBP reproduction.
//!
//! The paper models its memories with NVSim \[18\] calibrated for 180 nm
//! technology and CACTI for area. Neither tool is redistributable, so this
//! crate provides analytic models **anchored at the paper's published
//! operating points** (Tables I and II) and interpolated between anchors with
//! standard capacity/associativity scaling laws:
//!
//! * the 4 kB 4-way 16 B-block SRAM data cache: 5.30 ns / 1.05 nJ per access,
//!   1.22 mW leakage;
//! * the 4 kB 4-way 16 B-block ReRAM instruction cache: 19.44 ns / 3.65 nJ
//!   hit, 9.99 ns / 0.9 nJ miss probe, 202.35 ns / 3.55 nJ write, 0.22 mW
//!   leakage;
//! * SRAM leakage vs capacity from Table I (0.09 mW at 256 B to 3.54 mW at
//!   16 kB);
//! * a 16 MB ReRAM main memory, with FeRAM and STTRAM variants ordered per
//!   Section VI-H4 (ReRAM cheapest, STTRAM most expensive).
//!
//! # Example
//!
//! ```
//! use ehs_nvm::{CacheArrayModel, CacheGeometry, MemoryTechnology};
//!
//! // The paper's data cache:
//! let dcache = CacheArrayModel::new(MemoryTechnology::Sram, CacheGeometry::paper_dcache());
//! let c = dcache.characteristics();
//! assert!((c.read_latency.as_nanos() - 5.30).abs() < 1e-9);
//! assert!((c.leakage.as_milli_watts() - 1.22).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod area;
mod cache_model;
mod memory;
mod technology;

pub use area::{AreaModel, CoreAreaBudget};
pub use cache_model::{ArrayCharacteristics, CacheArrayModel, CacheGeometry, GeometryError};
pub use memory::{MainMemoryModel, MemoryCharacteristics};
pub use technology::MemoryTechnology;
