//! Analytic model of cache arrays (latency, energy, leakage).

use crate::MemoryTechnology;
use ehs_units::{Energy, Power, Time};
use std::error::Error;
use std::fmt;

/// Shape of a cache array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheGeometry {
    /// Total capacity in bytes (power of two).
    pub capacity_bytes: u32,
    /// Number of ways (power of two; 1 = direct-mapped).
    pub associativity: u32,
    /// Block (line) size in bytes (power of two).
    pub block_bytes: u32,
}

/// Error returned for geometrically impossible cache shapes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GeometryError {
    /// A field was zero or not a power of two.
    NotPowerOfTwo(&'static str, u32),
    /// capacity < associativity × block size (fewer than one set).
    TooSmall {
        /// Requested capacity.
        capacity_bytes: u32,
        /// Minimum capacity for the requested shape.
        minimum: u32,
    },
}

impl fmt::Display for GeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NotPowerOfTwo(field, v) => {
                write!(f, "{field} must be a nonzero power of two (got {v})")
            }
            Self::TooSmall {
                capacity_bytes,
                minimum,
            } => write!(
                f,
                "capacity {capacity_bytes} B below minimum {minimum} B for this shape"
            ),
        }
    }
}

impl Error for GeometryError {}

impl CacheGeometry {
    /// Creates a geometry, validating power-of-two shape constraints.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError`] if any field is not a nonzero power of two
    /// or the capacity cannot hold even one set.
    pub fn new(
        capacity_bytes: u32,
        associativity: u32,
        block_bytes: u32,
    ) -> Result<Self, GeometryError> {
        for (name, v) in [
            ("capacity_bytes", capacity_bytes),
            ("associativity", associativity),
            ("block_bytes", block_bytes),
        ] {
            if v == 0 || !v.is_power_of_two() {
                return Err(GeometryError::NotPowerOfTwo(name, v));
            }
        }
        let minimum = associativity * block_bytes;
        if capacity_bytes < minimum {
            return Err(GeometryError::TooSmall {
                capacity_bytes,
                minimum,
            });
        }
        Ok(Self {
            capacity_bytes,
            associativity,
            block_bytes,
        })
    }

    /// The paper's default data cache: 4 kB, 4-way, 16 B blocks.
    pub fn paper_dcache() -> Self {
        Self::new(4096, 4, 16).expect("paper geometry is valid")
    }

    /// The paper's default instruction cache: 4 kB, 4-way, 16 B blocks.
    pub fn paper_icache() -> Self {
        Self::new(4096, 4, 16).expect("paper geometry is valid")
    }

    /// Number of sets.
    pub fn sets(&self) -> u32 {
        self.capacity_bytes / (self.associativity * self.block_bytes)
    }

    /// Total number of blocks.
    pub fn blocks(&self) -> u32 {
        self.capacity_bytes / self.block_bytes
    }
}

/// Modelled electrical characteristics of a cache array.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrayCharacteristics {
    /// Latency of a hit (read or write into the array).
    pub read_latency: Time,
    /// Dynamic energy of a hit.
    pub read_energy: Energy,
    /// Latency of installing/writing a full block.
    pub write_latency: Time,
    /// Dynamic energy of installing/writing a full block.
    pub write_energy: Energy,
    /// Latency of a miss probe (tag check that misses).
    pub probe_latency: Time,
    /// Dynamic energy of a miss probe.
    pub probe_energy: Energy,
    /// Static leakage of the whole array with every block powered.
    pub leakage: Power,
}

/// Reference operating points for SRAM leakage vs capacity (paper Table I,
/// with the 4 kB point from Table II). Interpolated log-log.
const SRAM_LEAKAGE_ANCHORS_MW: [(f64, f64); 3] = [(256.0, 0.09), (4096.0, 1.22), (16384.0, 3.54)];

/// Log-log interpolation/extrapolation through anchor points.
fn anchored_power_law(anchors: &[(f64, f64)], x: f64) -> f64 {
    debug_assert!(anchors.len() >= 2);
    // Find the segment containing x (extrapolate from the end segments).
    let mut i = 0;
    while i + 2 < anchors.len() && x > anchors[i + 1].0 {
        i += 1;
    }
    let (x0, y0) = anchors[i];
    let (x1, y1) = anchors[i + 1];
    let alpha = (y1 / y0).ln() / (x1 / x0).ln();
    y0 * (x / x0).powf(alpha)
}

/// Per-technology base costs at the reference geometry (4 kB, 4-way, 16 B).
#[derive(Debug, Clone, Copy)]
struct TechBase {
    read_latency_ns: f64,
    read_energy_nj: f64,
    write_latency_ns: f64,
    write_energy_nj: f64,
    probe_latency_ns: f64,
    probe_energy_nj: f64,
    leakage_mw: f64,
}

fn tech_base(tech: MemoryTechnology) -> TechBase {
    match tech {
        // Table II data cache: symmetric read/write SRAM access.
        MemoryTechnology::Sram => TechBase {
            read_latency_ns: 5.30,
            read_energy_nj: 1.05,
            write_latency_ns: 5.30,
            write_energy_nj: 1.05,
            probe_latency_ns: 2.65,
            probe_energy_nj: 0.35,
            leakage_mw: 1.22,
        },
        // Table II instruction cache (ReRAM): asymmetric read/write.
        MemoryTechnology::ReRam => TechBase {
            read_latency_ns: 19.44,
            read_energy_nj: 3.65,
            write_latency_ns: 202.35,
            write_energy_nj: 3.55,
            probe_latency_ns: 9.99,
            probe_energy_nj: 0.9,
            leakage_mw: 0.22,
        },
        // FeRAM: destructive reads make reads costlier than ReRAM but writes
        // cheaper; overall mid-range (Section VI-H4 ordering).
        MemoryTechnology::FeRam => TechBase {
            read_latency_ns: 28.0,
            read_energy_nj: 4.6,
            write_latency_ns: 160.0,
            write_energy_nj: 4.4,
            probe_latency_ns: 11.5,
            probe_energy_nj: 1.1,
            leakage_mw: 0.25,
        },
        // STTRAM at 180 nm: "much higher access latency and energy".
        MemoryTechnology::SttRam => TechBase {
            read_latency_ns: 36.0,
            read_energy_nj: 5.8,
            write_latency_ns: 260.0,
            write_energy_nj: 6.5,
            probe_latency_ns: 14.0,
            probe_energy_nj: 1.4,
            leakage_mw: 0.28,
        },
    }
}

/// Reference geometry all base costs are anchored at.
const REF_CAPACITY: f64 = 4096.0;
const REF_WAYS: f64 = 4.0;
const REF_BLOCK: f64 = 16.0;

/// NVSim-style analytic model of one cache array.
///
/// At the reference geometry (4 kB, 4-way, 16 B blocks) the model reproduces
/// the paper's Table II exactly; away from it, costs follow power-law scaling
/// in capacity, associativity and block size:
///
/// * latency ∝ capacity^0.18 · ways^0.10 (longer word/bit lines, wider mux)
/// * dynamic energy ∝ capacity^0.15 · ways^0.30 · (block/16) for data moves
/// * leakage ∝ capacity^α piecewise-anchored to Table I (SRAM) and scaled
///   for the NVM peripheries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheArrayModel {
    tech: MemoryTechnology,
    geometry: CacheGeometry,
}

impl CacheArrayModel {
    /// Builds a model for a technology and geometry.
    pub fn new(tech: MemoryTechnology, geometry: CacheGeometry) -> Self {
        Self { tech, geometry }
    }

    /// The modelled technology.
    pub fn technology(&self) -> MemoryTechnology {
        self.tech
    }

    /// The modelled geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// Computes the electrical characteristics for this array.
    pub fn characteristics(&self) -> ArrayCharacteristics {
        let base = tech_base(self.tech);
        let cap = f64::from(self.geometry.capacity_bytes);
        let ways = f64::from(self.geometry.associativity);
        let block = f64::from(self.geometry.block_bytes);

        let lat = (cap / REF_CAPACITY).powf(0.18) * (ways / REF_WAYS).powf(0.10);
        let dyn_scale = (cap / REF_CAPACITY).powf(0.15) * (ways / REF_WAYS).powf(0.30);
        let data_scale = dyn_scale * (block / REF_BLOCK);
        // Probes touch tags only: scale with ways (parallel comparators) but
        // not with block size.
        let probe_scale = (cap / REF_CAPACITY).powf(0.10) * (ways / REF_WAYS).powf(0.5);

        let leakage_mw = match self.tech {
            MemoryTechnology::Sram => anchored_power_law(&SRAM_LEAKAGE_ANCHORS_MW, cap),
            // NVM cells do not leak; the 0.22 mW is periphery, scaling gently
            // with capacity using the same law shape normalized to 4 kB.
            _ => {
                base.leakage_mw * anchored_power_law(&SRAM_LEAKAGE_ANCHORS_MW, cap)
                    / anchored_power_law(&SRAM_LEAKAGE_ANCHORS_MW, REF_CAPACITY)
            }
        };

        ArrayCharacteristics {
            read_latency: Time::from_nanos(base.read_latency_ns * lat),
            read_energy: Energy::from_nano_joules(base.read_energy_nj * dyn_scale),
            write_latency: Time::from_nanos(base.write_latency_ns * lat),
            write_energy: Energy::from_nano_joules(base.write_energy_nj * data_scale),
            probe_latency: Time::from_nanos(base.probe_latency_ns * lat),
            probe_energy: Energy::from_nano_joules(base.probe_energy_nj * probe_scale),
            leakage: Power::from_milli_watts(leakage_mw),
        }
    }

    /// Leakage of a single block; the cache simulator multiplies this by the
    /// number of *active* (non-gated) blocks to integrate static energy.
    pub fn block_leakage(&self) -> Power {
        self.characteristics().leakage / f64::from(self.geometry.blocks())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_validation() {
        assert!(CacheGeometry::new(4096, 4, 16).is_ok());
        assert!(matches!(
            CacheGeometry::new(4095, 4, 16),
            Err(GeometryError::NotPowerOfTwo("capacity_bytes", 4095))
        ));
        assert!(matches!(
            CacheGeometry::new(0, 4, 16),
            Err(GeometryError::NotPowerOfTwo(..))
        ));
        assert!(matches!(
            CacheGeometry::new(32, 4, 16),
            Err(GeometryError::TooSmall { .. })
        ));
    }

    #[test]
    fn paper_dcache_matches_table2() {
        let m = CacheArrayModel::new(MemoryTechnology::Sram, CacheGeometry::paper_dcache());
        let c = m.characteristics();
        assert!((c.read_latency.as_nanos() - 5.30).abs() < 1e-9);
        assert!((c.read_energy.as_nano_joules() - 1.05).abs() < 1e-9);
        assert!((c.leakage.as_milli_watts() - 1.22).abs() < 1e-9);
    }

    #[test]
    fn paper_icache_matches_table2() {
        let m = CacheArrayModel::new(MemoryTechnology::ReRam, CacheGeometry::paper_icache());
        let c = m.characteristics();
        assert!((c.read_latency.as_nanos() - 19.44).abs() < 1e-9);
        assert!((c.read_energy.as_nano_joules() - 3.65).abs() < 1e-9);
        assert!((c.probe_latency.as_nanos() - 9.99).abs() < 1e-9);
        assert!((c.probe_energy.as_nano_joules() - 0.9).abs() < 1e-9);
        assert!((c.write_latency.as_nanos() - 202.35).abs() < 1e-9);
        assert!((c.write_energy.as_nano_joules() - 3.55).abs() < 1e-9);
        assert!((c.leakage.as_milli_watts() - 0.22).abs() < 1e-9);
    }

    #[test]
    fn sram_leakage_matches_table1_anchors() {
        for (bytes, mw) in [(256u32, 0.09), (4096, 1.22), (16384, 3.54)] {
            let g = CacheGeometry::new(bytes, 4, 16).expect("valid");
            let m = CacheArrayModel::new(MemoryTechnology::Sram, g);
            let leak = m.characteristics().leakage.as_milli_watts();
            assert!((leak - mw).abs() < 1e-9, "{bytes} B: {leak} vs {mw}");
        }
    }

    #[test]
    fn sram_leakage_monotonic_in_capacity() {
        let mut prev = 0.0;
        for shift in 8..=14 {
            let g = CacheGeometry::new(1 << shift, 4, 16).expect("valid");
            let leak = CacheArrayModel::new(MemoryTechnology::Sram, g)
                .characteristics()
                .leakage
                .as_milli_watts();
            assert!(leak > prev, "leakage must grow with capacity");
            prev = leak;
        }
    }

    #[test]
    fn higher_associativity_costs_more_energy() {
        let g4 = CacheGeometry::new(4096, 4, 16).expect("valid");
        let g8 = CacheGeometry::new(4096, 8, 16).expect("valid");
        let e4 = CacheArrayModel::new(MemoryTechnology::Sram, g4)
            .characteristics()
            .read_energy;
        let e8 = CacheArrayModel::new(MemoryTechnology::Sram, g8)
            .characteristics()
            .read_energy;
        assert!(e8 > e4, "8-way access must cost more than 4-way");
    }

    #[test]
    fn nvm_cost_ordering_matches_section_6h4() {
        // ReRAM < FeRAM < STTRAM in both read latency and read energy.
        let g = CacheGeometry::paper_icache();
        let cost = |t| {
            let c = CacheArrayModel::new(t, g).characteristics();
            (c.read_latency.as_nanos(), c.read_energy.as_nano_joules())
        };
        let r = cost(MemoryTechnology::ReRam);
        let f = cost(MemoryTechnology::FeRam);
        let s = cost(MemoryTechnology::SttRam);
        assert!(r.0 < f.0 && f.0 < s.0);
        assert!(r.1 < f.1 && f.1 < s.1);
    }

    #[test]
    fn block_leakage_sums_to_array_leakage() {
        let m = CacheArrayModel::new(MemoryTechnology::Sram, CacheGeometry::paper_dcache());
        let total = m.block_leakage() * f64::from(m.geometry().blocks());
        assert!((total.as_milli_watts() - 1.22).abs() < 1e-9);
    }

    #[test]
    fn power_law_interpolation_is_exact_at_anchors() {
        for (x, y) in SRAM_LEAKAGE_ANCHORS_MW {
            assert!((anchored_power_law(&SRAM_LEAKAGE_ANCHORS_MW, x) - y).abs() < 1e-12);
        }
    }
}
