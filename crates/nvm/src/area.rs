//! CACTI-style silicon-area estimates for the hardware-cost analysis
//! (paper Section VI-B).

/// Square millimetres (180 nm process).
pub type SquareMm = f64;

/// The paper's published area budget for the modelled core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreAreaBudget {
    /// Whole core including caches.
    pub core: SquareMm,
    /// 4 kB SRAM data cache.
    pub dcache: SquareMm,
    /// 4 kB ReRAM instruction cache.
    pub icache: SquareMm,
}

impl CoreAreaBudget {
    /// Section VI-B: 3.37 mm² core, 0.80 mm² D$, 0.48 mm² I$.
    pub fn paper_default() -> Self {
        Self {
            core: 3.37,
            dcache: 0.80,
            icache: 0.48,
        }
    }
}

/// Estimates the area overhead of EDBP's added circuitry.
///
/// EDBP adds one comparator per cache block (to check whether the block's
/// recency position falls under the currently-armed threshold), three
/// registers, and a small SRAM deactivation buffer; everything else
/// piggybacks on existing structures (sleep transistors, LRU bits, voltage
/// monitor).
///
/// # Examples
///
/// ```
/// use ehs_nvm::{AreaModel, CoreAreaBudget};
///
/// let model = AreaModel::new(CoreAreaBudget::paper_default());
/// // Paper default: 256 comparators cost ~0.0098% of the core.
/// let pct = model.edbp_overhead_percent(256, 3, 8);
/// assert!((pct - 0.0098).abs() / 0.0098 < 0.35);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaModel {
    budget: CoreAreaBudget,
    /// Area of one small comparator at 180 nm.
    comparator_mm2: SquareMm,
    /// Area of one 32-bit register at 180 nm.
    register_mm2: SquareMm,
    /// Area of one SRAM buffer entry (address-sized) at 180 nm.
    buffer_entry_mm2: SquareMm,
}

impl AreaModel {
    /// Builds the model with 180 nm standard-cell estimates calibrated so the
    /// paper's default configuration (256 comparators, 3 registers, 8-entry
    /// buffer) lands at ≈0.0098% of the 3.37 mm² core.
    pub fn new(budget: CoreAreaBudget) -> Self {
        Self {
            budget,
            comparator_mm2: 1.05e-6,
            register_mm2: 12.0e-6,
            buffer_entry_mm2: 3.0e-6,
        }
    }

    /// The area budget the overhead is measured against.
    pub fn budget(&self) -> CoreAreaBudget {
        self.budget
    }

    /// Absolute EDBP hardware area in mm².
    pub fn edbp_area(&self, comparators: u32, registers: u32, buffer_entries: u32) -> SquareMm {
        f64::from(comparators) * self.comparator_mm2
            + f64::from(registers) * self.register_mm2
            + f64::from(buffer_entries) * self.buffer_entry_mm2
    }

    /// EDBP hardware area as a percentage of the core area.
    pub fn edbp_overhead_percent(
        &self,
        comparators: u32,
        registers: u32,
        buffer_entries: u32,
    ) -> f64 {
        self.edbp_area(comparators, registers, buffer_entries) / self.budget.core * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configuration_overhead_is_tiny() {
        let m = AreaModel::new(CoreAreaBudget::paper_default());
        let pct = m.edbp_overhead_percent(256, 3, 8);
        assert!(pct < 0.02, "overhead {pct}% should be ~0.0098%");
        assert!(pct > 0.005);
    }

    #[test]
    fn overhead_scales_with_comparators() {
        let m = AreaModel::new(CoreAreaBudget::paper_default());
        assert!(m.edbp_area(512, 3, 8) > m.edbp_area(256, 3, 8));
    }

    #[test]
    fn budget_caches_fit_in_core() {
        let b = CoreAreaBudget::paper_default();
        assert!(b.dcache + b.icache < b.core);
    }
}
