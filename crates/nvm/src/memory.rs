//! The nonvolatile main memory model.

use crate::MemoryTechnology;
use ehs_units::{Energy, Power, Time};

/// Modelled costs of one block-sized (16 B) main-memory transfer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryCharacteristics {
    /// Latency of reading one cache block.
    pub read_latency: Time,
    /// Energy of reading one cache block.
    pub read_energy: Energy,
    /// Latency of writing one cache block.
    pub write_latency: Time,
    /// Energy of writing one cache block.
    pub write_energy: Energy,
    /// Standby power of the periphery (NVM cells themselves do not leak).
    pub standby: Power,
}

/// Per-technology base costs at the 16 MB reference capacity, per 16-byte
/// block transfer. ReRAM < FeRAM < STTRAM per Section VI-H4; absolute values
/// chosen so an NVM access is by far the most energy-consuming operation in
/// the processor (Section I), dominating a cache hit by ~an order of
/// magnitude.
fn memory_base(tech: MemoryTechnology) -> (f64, f64, f64, f64, f64) {
    // (read_ns, read_nj, write_ns, write_nj, standby_uw)
    match tech {
        MemoryTechnology::ReRam => (110.0, 9.0, 320.0, 14.0, 40.0),
        MemoryTechnology::FeRam => (150.0, 11.5, 380.0, 17.0, 45.0),
        MemoryTechnology::SttRam => (210.0, 16.0, 520.0, 24.0, 50.0),
        // SRAM main memory is not a meaningful configuration for an
        // energy-harvesting system (volatile, leaky) but is modelled for
        // completeness: fast and cheap dynamically, enormous standby.
        MemoryTechnology::Sram => (40.0, 3.0, 40.0, 3.0, 5000.0),
    }
}

/// Reference capacity the base costs are anchored at.
const REF_CAPACITY_BYTES: f64 = 16.0 * 1024.0 * 1024.0;

/// Analytic model of the nonvolatile main memory.
///
/// Latency and energy grow slowly with capacity (`∝ capacity^0.15`,
/// longer global word/bit lines and deeper decoders), which produces the
/// Fig. 14 sensitivity: bigger memories amplify every cache-miss penalty.
///
/// # Examples
///
/// ```
/// use ehs_nvm::{MainMemoryModel, MemoryTechnology};
///
/// let mem = MainMemoryModel::new(MemoryTechnology::ReRam, 16 * 1024 * 1024);
/// let small = MainMemoryModel::new(MemoryTechnology::ReRam, 2 * 1024 * 1024);
/// assert!(small.characteristics().read_latency < mem.characteristics().read_latency);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MainMemoryModel {
    tech: MemoryTechnology,
    capacity_bytes: u64,
}

impl MainMemoryModel {
    /// Builds a model for a technology and capacity in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_bytes` is zero.
    pub fn new(tech: MemoryTechnology, capacity_bytes: u64) -> Self {
        assert!(capacity_bytes > 0, "memory capacity must be positive");
        Self {
            tech,
            capacity_bytes,
        }
    }

    /// The paper's default: 16 MB ReRAM.
    pub fn paper_default() -> Self {
        Self::new(MemoryTechnology::ReRam, 16 * 1024 * 1024)
    }

    /// The modelled technology.
    pub fn technology(&self) -> MemoryTechnology {
        self.tech
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Computes per-block transfer costs.
    pub fn characteristics(&self) -> MemoryCharacteristics {
        let (r_ns, r_nj, w_ns, w_nj, standby_uw) = memory_base(self.tech);
        let scale = (self.capacity_bytes as f64 / REF_CAPACITY_BYTES).powf(0.15);
        MemoryCharacteristics {
            read_latency: Time::from_nanos(r_ns * scale),
            read_energy: Energy::from_nano_joules(r_nj * scale),
            write_latency: Time::from_nanos(w_ns * scale),
            write_energy: Energy::from_nano_joules(w_nj * scale),
            standby: Power::from_micro_watts(standby_uw * scale),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_capacity_matches_base() {
        let m = MainMemoryModel::paper_default().characteristics();
        assert!((m.read_latency.as_nanos() - 110.0).abs() < 1e-9);
        assert!((m.write_energy.as_nano_joules() - 14.0).abs() < 1e-9);
    }

    #[test]
    fn cost_grows_with_capacity() {
        let sizes = [2u64, 4, 8, 16, 32].map(|mb| mb * 1024 * 1024);
        let mut prev = 0.0;
        for s in sizes {
            let c = MainMemoryModel::new(MemoryTechnology::ReRam, s).characteristics();
            assert!(c.read_latency.as_nanos() > prev);
            prev = c.read_latency.as_nanos();
        }
    }

    #[test]
    fn technology_ordering_holds_for_memory() {
        let cost = |t| {
            MainMemoryModel::new(t, 16 * 1024 * 1024)
                .characteristics()
                .read_energy
        };
        assert!(cost(MemoryTechnology::ReRam) < cost(MemoryTechnology::FeRam));
        assert!(cost(MemoryTechnology::FeRam) < cost(MemoryTechnology::SttRam));
    }

    #[test]
    fn nvm_access_dominates_cache_hit_energy() {
        // Section I: NVM access is the most energy-consuming operation.
        let mem = MainMemoryModel::paper_default().characteristics();
        assert!(mem.read_energy.as_nano_joules() > 5.0 * 1.05);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = MainMemoryModel::new(MemoryTechnology::ReRam, 0);
    }
}
