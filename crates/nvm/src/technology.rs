//! Memory technologies and their 180 nm base parameters.

use std::fmt;

/// A memory technology the paper evaluates (Table II, Section VI-H4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemoryTechnology {
    /// Volatile SRAM: fastest access, but leaks; contents lost on power
    /// failure.
    Sram,
    /// Resistive RAM: the paper's default NVM; lowest NVM access cost.
    ReRam,
    /// Ferroelectric RAM: mid-range NVM cost.
    FeRam,
    /// Spin-transfer-torque RAM: highest access latency/energy in the
    /// paper's 180 nm calibration (Section VI-H4).
    SttRam,
}

impl MemoryTechnology {
    /// All technologies usable as nonvolatile main memory / I-cache.
    pub const NONVOLATILE: [MemoryTechnology; 3] = [
        MemoryTechnology::ReRam,
        MemoryTechnology::FeRam,
        MemoryTechnology::SttRam,
    ];

    /// Whether contents survive a power outage.
    pub fn is_nonvolatile(self) -> bool {
        !matches!(self, MemoryTechnology::Sram)
    }

    /// Canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            MemoryTechnology::Sram => "sram",
            MemoryTechnology::ReRam => "reram",
            MemoryTechnology::FeRam => "feram",
            MemoryTechnology::SttRam => "sttram",
        }
    }
}

impl fmt::Display for MemoryTechnology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volatility_flags() {
        assert!(!MemoryTechnology::Sram.is_nonvolatile());
        for t in MemoryTechnology::NONVOLATILE {
            assert!(t.is_nonvolatile());
        }
    }

    #[test]
    fn names_are_distinct() {
        let names = [
            MemoryTechnology::Sram.name(),
            MemoryTechnology::ReRam.name(),
            MemoryTechnology::FeRam.name(),
            MemoryTechnology::SttRam.name(),
        ];
        for (i, a) in names.iter().enumerate() {
            for b in &names[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
