//! The in-order nonvolatile processor model of the EDBP reproduction.
//!
//! The paper simulates "a 25 MHz single-core in-order nonvolatile processor
//! based on ARM ISA with 16 registers as in NVPsim" on gem5. We substitute a
//! compact mini-RISC ISA (see `DESIGN.md` §4): 16 general-purpose 32-bit
//! registers, single-issue in-order execution, one cycle per instruction plus
//! whatever the memory hierarchy adds. That is exactly the timing model an
//! in-order MCU-class core exhibits, and all this study measures is the
//! interaction of the access stream with caches and power failures — not ARM
//! semantics.
//!
//! The crate deliberately knows nothing about caches or energy: executing an
//! instruction yields an [`Effect`] (compute / load / store / halt) that the
//! full-system simulator services against its memory hierarchy, completing
//! loads with [`Core::finish_load`]. Checkpointing is a [`Core::checkpoint`]
//! snapshot of the architectural state ([`CoreState`]), restored with
//! [`Core::restore`] — the register-file save/restore of JIT checkpointing.
//!
//! # Example
//!
//! ```
//! use ehs_cpu::{Core, Effect, Program, ProgramBuilder, Reg};
//!
//! // r1 = 5; r2 = r1 + r1; halt
//! let mut b = ProgramBuilder::new("double");
//! b.li(Reg::R1, 5);
//! b.add(Reg::R2, Reg::R1, Reg::R1);
//! b.halt();
//! let program: Program = b.build();
//!
//! let mut core = Core::new(&program);
//! while core.step(&program) != Effect::Halted {}
//! assert_eq!(core.reg(Reg::R2), 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod core;
mod isa;
mod taint;

pub use builder::{Label, ProgramBuilder};
pub use core::{Core, CoreState, Effect};
pub use isa::{Instruction, Program, Reg, INSTRUCTION_BYTES};
pub use taint::stream_is_data_independent;
