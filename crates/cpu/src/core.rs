//! The single-issue in-order core.

use crate::isa::{Instruction, Program, Reg};

/// What an instruction needs from the world. The simulator services memory
/// effects against its cache hierarchy and (for loads) completes them with
/// [`Core::finish_load`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effect {
    /// Pure compute (ALU or control flow): one cycle, no memory.
    Compute,
    /// A word load; complete with [`Core::finish_load`].
    Load {
        /// Byte address of the word.
        addr: u32,
        /// Destination register awaiting the value.
        dst: Reg,
    },
    /// A word store; the value is final.
    Store {
        /// Byte address of the word.
        addr: u32,
        /// The value to store.
        value: u32,
    },
    /// The program executed `Halt`.
    Halted,
}

/// The complete architectural state, i.e. what JIT checkpointing must save:
/// the register file and the program counter (paper Section II).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreState {
    /// The sixteen general-purpose registers.
    pub regs: [u32; 16],
    /// The program counter (instruction index).
    pub pc: u32,
    /// Whether the core had halted.
    pub halted: bool,
}

impl CoreState {
    /// Size of the state in bytes (16 × 32-bit registers + 32-bit PC),
    /// which prices the register-file checkpoint.
    pub const BYTES: u32 = 16 * 4 + 4;
}

/// A 25 MHz-class single-issue in-order core over a [`Program`].
///
/// Every [`Core::step`] executes exactly one instruction (the fetch address
/// for the I-cache is [`Core::fetch_addr`]); committed-instruction and
/// load/store counters feed the paper's load/store-ratio analysis (Fig. 7).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Core {
    regs: [u32; 16],
    pc: u32,
    halted: bool,
    committed: u64,
    loads: u64,
    stores: u64,
}

impl Core {
    /// Creates a core reset to the program's entry (pc 0, registers zero).
    pub fn new(_program: &Program) -> Self {
        Self {
            regs: [0; 16],
            pc: 0,
            halted: false,
            committed: 0,
            loads: 0,
            stores: 0,
        }
    }

    /// Reads a register.
    #[inline]
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[r.index()]
    }

    /// Writes a register.
    #[inline]
    pub fn set_reg(&mut self, r: Reg, v: u32) {
        self.regs[r.index()] = v;
    }

    /// The current program counter.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Whether the program has halted.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Committed instruction count.
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// Committed loads.
    pub fn loads(&self) -> u64 {
        self.loads
    }

    /// Committed stores.
    pub fn stores(&self) -> u64 {
        self.stores
    }

    /// Byte address the next instruction is fetched from.
    #[inline]
    pub fn fetch_addr(&self, program: &Program) -> u32 {
        program.fetch_addr(self.pc)
    }

    /// Number of consecutive [`Effect::Compute`] steps guaranteed from the
    /// current `pc`, capped at `max` — the simulator's burst lookahead. Zero
    /// when halted or when the next instruction touches memory. See
    /// [`Program::compute_run_len`] for the scan rules.
    pub fn compute_run_len(&self, program: &Program, max: u32) -> u32 {
        if self.halted {
            return 0;
        }
        program.compute_run_len(self.pc, max)
    }

    /// Executes one instruction and reports its external effect.
    ///
    /// Loads leave the destination register *unchanged* until the simulator
    /// calls [`Core::finish_load`]; in-order single-issue means nothing else
    /// can observe it in between.
    pub fn step(&mut self, program: &Program) -> Effect {
        if self.halted {
            return Effect::Halted;
        }
        let instr = program.fetch(self.pc);
        self.pc += 1;
        self.committed += 1;
        match instr {
            Instruction::Li(rd, imm) => {
                self.regs[rd.index()] = imm;
                Effect::Compute
            }
            Instruction::Addi(rd, rs, imm) => {
                self.regs[rd.index()] = self.regs[rs.index()].wrapping_add(imm as u32);
                Effect::Compute
            }
            Instruction::Add(rd, a, b) => {
                self.regs[rd.index()] = self.regs[a.index()].wrapping_add(self.regs[b.index()]);
                Effect::Compute
            }
            Instruction::Sub(rd, a, b) => {
                self.regs[rd.index()] = self.regs[a.index()].wrapping_sub(self.regs[b.index()]);
                Effect::Compute
            }
            Instruction::Mul(rd, a, b) => {
                self.regs[rd.index()] = self.regs[a.index()].wrapping_mul(self.regs[b.index()]);
                Effect::Compute
            }
            Instruction::Xor(rd, a, b) => {
                self.regs[rd.index()] = self.regs[a.index()] ^ self.regs[b.index()];
                Effect::Compute
            }
            Instruction::And(rd, a, b) => {
                self.regs[rd.index()] = self.regs[a.index()] & self.regs[b.index()];
                Effect::Compute
            }
            Instruction::Or(rd, a, b) => {
                self.regs[rd.index()] = self.regs[a.index()] | self.regs[b.index()];
                Effect::Compute
            }
            Instruction::Shl(rd, rs, amt) => {
                self.regs[rd.index()] = self.regs[rs.index()] << (amt & 31);
                Effect::Compute
            }
            Instruction::Shr(rd, rs, amt) => {
                self.regs[rd.index()] = self.regs[rs.index()] >> (amt & 31);
                Effect::Compute
            }
            Instruction::Load(rd, base, offset) => {
                self.loads += 1;
                Effect::Load {
                    addr: self.regs[base.index()].wrapping_add(offset as u32),
                    dst: rd,
                }
            }
            Instruction::Store(src, base, offset) => {
                self.stores += 1;
                Effect::Store {
                    addr: self.regs[base.index()].wrapping_add(offset as u32),
                    value: self.regs[src.index()],
                }
            }
            Instruction::Bne(a, b, target) => {
                if self.regs[a.index()] != self.regs[b.index()] {
                    self.pc = target;
                }
                Effect::Compute
            }
            Instruction::Beq(a, b, target) => {
                if self.regs[a.index()] == self.regs[b.index()] {
                    self.pc = target;
                }
                Effect::Compute
            }
            Instruction::Blt(a, b, target) => {
                if self.regs[a.index()] < self.regs[b.index()] {
                    self.pc = target;
                }
                Effect::Compute
            }
            Instruction::Jmp(target) => {
                self.pc = target;
                Effect::Compute
            }
            Instruction::Halt => {
                self.halted = true;
                self.pc -= 1; // stay on the halt
                self.committed -= 1; // halt does not commit work
                Effect::Halted
            }
        }
    }

    /// Completes an in-flight load.
    pub fn finish_load(&mut self, dst: Reg, value: u32) {
        self.regs[dst.index()] = value;
    }

    /// Snapshots the architectural state for a JIT checkpoint.
    pub fn checkpoint(&self) -> CoreState {
        CoreState {
            regs: self.regs,
            pc: self.pc,
            halted: self.halted,
        }
    }

    /// Restores a JIT checkpoint after a power outage; statistics counters
    /// survive (they are simulator instrumentation, not architectural state).
    pub fn restore(&mut self, state: &CoreState) {
        self.regs = state.regs;
        self.pc = state.pc;
        self.halted = state.halted;
    }

    /// Adopts an architectural snapshot taken from *another* core together
    /// with this lane's own statistics counters.
    ///
    /// This is the stream-replay catch-up primitive (see `ehs-sim`'s
    /// transposed lockstep): when a program passes
    /// [`crate::stream_is_data_independent`], every register that feeds an
    /// address or branch is identical across cores at the same
    /// architectural position, so adopting the recorder's snapshot is
    /// exact for pc/halted and for all address-forming state; registers
    /// holding load-derived data may differ, but by the same analysis they
    /// can never influence the access stream. Counters are simulator
    /// instrumentation and lane-specific (re-execution after outages
    /// differs per lane), so the caller supplies its own tallies.
    pub fn adopt(&mut self, state: &CoreState, committed: u64, loads: u64, stores: u64) {
        self.regs = state.regs;
        self.pc = state.pc;
        self.halted = state.halted;
        self.committed = committed;
        self.loads = loads;
        self.stores = stores;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProgramBuilder;

    fn run(core: &mut Core, program: &Program, mem: &mut std::collections::HashMap<u32, u32>) {
        loop {
            match core.step(program) {
                Effect::Compute => {}
                Effect::Load { addr, dst } => {
                    let v = mem.get(&addr).copied().unwrap_or(0);
                    core.finish_load(dst, v);
                }
                Effect::Store { addr, value } => {
                    mem.insert(addr, value);
                }
                Effect::Halted => break,
            }
        }
    }

    #[test]
    fn arithmetic_loop_sums_correctly() {
        // sum = Σ i for i in 1..=10
        let mut b = ProgramBuilder::new("sum");
        b.li(Reg::R1, 0); // sum
        b.li(Reg::R2, 1); // i
        b.li(Reg::R3, 11); // bound
        let top = b.label_here();
        b.add(Reg::R1, Reg::R1, Reg::R2);
        b.addi(Reg::R2, Reg::R2, 1);
        b.blt(Reg::R2, Reg::R3, top);
        b.halt();
        let p = b.build();
        let mut core = Core::new(&p);
        run(&mut core, &p, &mut Default::default());
        assert_eq!(core.reg(Reg::R1), 55);
    }

    #[test]
    fn loads_and_stores_round_trip_through_memory() {
        let mut b = ProgramBuilder::new("mem");
        b.li(Reg::R1, 0x1000);
        b.li(Reg::R2, 0xDEAD);
        b.store(Reg::R2, Reg::R1, 4);
        b.load(Reg::R3, Reg::R1, 4);
        b.halt();
        let p = b.build();
        let mut core = Core::new(&p);
        run(&mut core, &p, &mut Default::default());
        assert_eq!(core.reg(Reg::R3), 0xDEAD);
        assert_eq!(core.loads(), 1);
        assert_eq!(core.stores(), 1);
    }

    #[test]
    fn halt_is_sticky_and_does_not_commit() {
        let mut b = ProgramBuilder::new("h");
        b.halt();
        let p = b.build();
        let mut core = Core::new(&p);
        assert_eq!(core.step(&p), Effect::Halted);
        assert_eq!(core.step(&p), Effect::Halted);
        assert_eq!(core.committed(), 0);
        assert!(core.halted());
    }

    #[test]
    fn checkpoint_restore_round_trips_mid_loop() {
        let mut b = ProgramBuilder::new("loop");
        b.li(Reg::R1, 0);
        b.li(Reg::R3, 100);
        let top = b.label_here();
        b.addi(Reg::R1, Reg::R1, 1);
        b.blt(Reg::R1, Reg::R3, top);
        b.halt();
        let p = b.build();

        let mut core = Core::new(&p);
        for _ in 0..50 {
            core.step(&p);
        }
        let ckpt = core.checkpoint();
        let r1_at_ckpt = core.reg(Reg::R1);

        // "Power failure": run a fresh core and restore.
        let mut rebooted = Core::new(&p);
        rebooted.restore(&ckpt);
        assert_eq!(rebooted.reg(Reg::R1), r1_at_ckpt);
        assert_eq!(rebooted.pc(), ckpt.pc);

        // Both finish with the same architectural result.
        run(&mut core, &p, &mut Default::default());
        run(&mut rebooted, &p, &mut Default::default());
        assert_eq!(core.reg(Reg::R1), rebooted.reg(Reg::R1));
    }

    #[test]
    fn fetch_addresses_follow_control_flow() {
        let mut b = ProgramBuilder::new("j");
        let l = b.forward_label();
        b.jmp(l);
        b.halt(); // skipped
        b.place(l);
        b.halt();
        let p = b.build_at(0x8000);
        let mut core = Core::new(&p);
        assert_eq!(core.fetch_addr(&p), 0x8000);
        core.step(&p); // jmp
        assert_eq!(core.fetch_addr(&p), 0x8008);
    }

    #[test]
    fn shift_amounts_are_masked() {
        let mut b = ProgramBuilder::new("s");
        b.li(Reg::R1, 1);
        b.shl(Reg::R2, Reg::R1, 33); // masked to 1
        b.halt();
        let p = b.build();
        let mut core = Core::new(&p);
        run(&mut core, &p, &mut Default::default());
        assert_eq!(core.reg(Reg::R2), 2);
    }

    #[test]
    fn state_bytes_matches_register_file() {
        assert_eq!(CoreState::BYTES, 68);
    }
}
