//! The mini-RISC instruction set.

use std::fmt;

/// One of the sixteen general-purpose 32-bit registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Reg {
    R0,
    R1,
    R2,
    R3,
    R4,
    R5,
    R6,
    R7,
    R8,
    R9,
    R10,
    R11,
    R12,
    R13,
    R14,
    R15,
}

impl Reg {
    /// All sixteen registers in index order.
    pub const ALL: [Reg; 16] = [
        Reg::R0,
        Reg::R1,
        Reg::R2,
        Reg::R3,
        Reg::R4,
        Reg::R5,
        Reg::R6,
        Reg::R7,
        Reg::R8,
        Reg::R9,
        Reg::R10,
        Reg::R11,
        Reg::R12,
        Reg::R13,
        Reg::R14,
        Reg::R15,
    ];

    /// The register's index, 0..16.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.index())
    }
}

/// A mini-RISC instruction. All ALU operations take one cycle; loads and
/// stores additionally pay the memory hierarchy's price.
///
/// `Hash` hashes the full structural content (opcode + operands), which the
/// simulator's persistent result cache uses to fingerprint a program: two
/// workloads hash alike exactly when their instruction streams are
/// identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instruction {
    /// `rd = imm`
    Li(Reg, u32),
    /// `rd = rs + imm` (wrapping)
    Addi(Reg, Reg, i32),
    /// `rd = rs1 + rs2` (wrapping)
    Add(Reg, Reg, Reg),
    /// `rd = rs1 - rs2` (wrapping)
    Sub(Reg, Reg, Reg),
    /// `rd = rs1 * rs2` (wrapping)
    Mul(Reg, Reg, Reg),
    /// `rd = rs1 ^ rs2`
    Xor(Reg, Reg, Reg),
    /// `rd = rs1 & rs2`
    And(Reg, Reg, Reg),
    /// `rd = rs1 | rs2`
    Or(Reg, Reg, Reg),
    /// `rd = rs << amount` (amount masked to 0..32)
    Shl(Reg, Reg, u8),
    /// `rd = rs >> amount` (logical, amount masked to 0..32)
    Shr(Reg, Reg, u8),
    /// `rd = word at [rs + offset]`
    Load(Reg, Reg, i32),
    /// `word at [rbase + offset] = rsrc`
    Store(Reg, Reg, i32),
    /// `if rs1 != rs2 { pc = target }`
    Bne(Reg, Reg, u32),
    /// `if rs1 == rs2 { pc = target }`
    Beq(Reg, Reg, u32),
    /// `if rs1 < rs2 (unsigned) { pc = target }`
    Blt(Reg, Reg, u32),
    /// `pc = target`
    Jmp(u32),
    /// Stop execution.
    Halt,
}

impl Instruction {
    /// True for loads and stores.
    pub fn is_memory(&self) -> bool {
        matches!(self, Instruction::Load(..) | Instruction::Store(..))
    }

    /// True for loads.
    pub fn is_load(&self) -> bool {
        matches!(self, Instruction::Load(..))
    }

    /// True for stores.
    pub fn is_store(&self) -> bool {
        matches!(self, Instruction::Store(..))
    }
}

/// An executable program: a name, the instruction sequence, and the byte
/// address its code is fetched from (for the instruction cache).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    name: String,
    instructions: Vec<Instruction>,
    code_base: u32,
    /// Predecoded full (uncapped) compute-run length starting at each pc,
    /// so [`Program::compute_run_len`] is a table read in the hot loop.
    run_lens: Vec<u32>,
}

/// Bytes per encoded instruction (fixed 32-bit encoding, as on ARM).
pub const INSTRUCTION_BYTES: u32 = 4;

impl Program {
    /// Creates a program from parts.
    ///
    /// # Panics
    ///
    /// Panics if `instructions` is empty or a branch target is out of range.
    pub fn new(name: impl Into<String>, instructions: Vec<Instruction>, code_base: u32) -> Self {
        assert!(!instructions.is_empty(), "program cannot be empty");
        let len = instructions.len() as u32;
        for (pc, instr) in instructions.iter().enumerate() {
            let target = match instr {
                Instruction::Bne(_, _, t)
                | Instruction::Beq(_, _, t)
                | Instruction::Blt(_, _, t)
                | Instruction::Jmp(t) => Some(*t),
                _ => None,
            };
            if let Some(t) = target {
                assert!(t < len, "instruction {pc}: branch target {t} out of range");
            }
        }
        // Predecode compute-run lengths in one backward pass: memory
        // effects and Halt contribute 0 (they stop a scan without being
        // counted), control flow contributes exactly 1 (counted, closes the
        // run), and ALU instructions chain to their successor.
        let mut run_lens = vec![0u32; instructions.len()];
        for (pc, instr) in instructions.iter().enumerate().rev() {
            run_lens[pc] = match instr {
                Instruction::Load(..) | Instruction::Store(..) | Instruction::Halt => 0,
                Instruction::Bne(..)
                | Instruction::Beq(..)
                | Instruction::Blt(..)
                | Instruction::Jmp(_) => 1,
                _ => 1 + run_lens.get(pc + 1).copied().unwrap_or(0),
            };
        }
        Self {
            name: name.into(),
            instructions,
            code_base,
            run_lens,
        }
    }

    /// The program's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of static instructions.
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Always false; construction rejects empty programs.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The instruction at `pc`.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is out of range.
    #[inline]
    pub fn fetch(&self, pc: u32) -> Instruction {
        self.instructions[pc as usize]
    }

    /// Byte address of the instruction at `pc`, for the instruction cache.
    #[inline]
    pub fn fetch_addr(&self, pc: u32) -> u32 {
        self.code_base + pc * INSTRUCTION_BYTES
    }

    /// The full instruction listing.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Length of the pure-compute run starting at `pc`, capped at `max`:
    /// the number of consecutive instructions that are certain to execute as
    /// single-cycle [`crate::Effect::Compute`] steps with straight-line
    /// fetching.
    ///
    /// ALU instructions extend the run. A control-flow instruction may
    /// *close* the run (it executes in one compute cycle, but its successor's
    /// address is data-dependent, so the scan cannot see past it). Loads,
    /// stores, `Halt` and the end of the program stop the scan without being
    /// counted.
    ///
    /// Predecoded at construction ([`Program::new`]); this is a bounds-
    /// checked table read plus a `min`, not a scan.
    #[inline]
    pub fn compute_run_len(&self, pc: u32, max: u32) -> u32 {
        self.run_lens
            .get(pc as usize)
            .map_or(0, |&full| full.min(max))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_indices_are_stable() {
        for (i, r) in Reg::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
        }
        assert_eq!(format!("{}", Reg::R7), "r7");
    }

    #[test]
    fn instruction_classification() {
        assert!(Instruction::Load(Reg::R1, Reg::R2, 0).is_memory());
        assert!(Instruction::Load(Reg::R1, Reg::R2, 0).is_load());
        assert!(Instruction::Store(Reg::R1, Reg::R2, 0).is_store());
        assert!(!Instruction::Add(Reg::R1, Reg::R2, Reg::R3).is_memory());
    }

    #[test]
    fn compute_run_len_scans_to_the_next_memory_effect() {
        use Instruction::*;
        let p = Program::new(
            "t",
            vec![
                Li(Reg::R1, 1),                 // 0: compute
                Add(Reg::R2, Reg::R1, Reg::R1), // 1: compute
                Load(Reg::R3, Reg::R2, 0),      // 2: stops, not counted
                Xor(Reg::R4, Reg::R1, Reg::R2), // 3: compute
                Bne(Reg::R1, Reg::R2, 0),       // 4: counted, closes the run
                Sub(Reg::R5, Reg::R1, Reg::R2), // 5: unreachable by the scan above
                Halt,                           // 6
            ],
            0,
        );
        assert_eq!(p.compute_run_len(0, 16), 2, "stops before the load");
        assert_eq!(p.compute_run_len(2, 16), 0, "load is never counted");
        assert_eq!(p.compute_run_len(3, 16), 2, "branch closes the run");
        assert_eq!(p.compute_run_len(5, 16), 1, "halt is never counted");
        assert_eq!(p.compute_run_len(6, 16), 0);
        assert_eq!(p.compute_run_len(0, 1), 1, "max caps the scan");
        assert_eq!(p.compute_run_len(6, 0), 0);
        // Scanning at the end of the program is safe.
        assert_eq!(p.compute_run_len(7, 16), 0);
    }

    #[test]
    fn predecoded_run_lens_match_reference_scan() {
        use Instruction::*;
        // The pre-predecode implementation, kept as the semantic reference.
        fn scan(p: &Program, pc: u32, max: u32) -> u32 {
            let mut n = 0u32;
            while n < max {
                let Some(instr) = p.instructions().get(pc as usize + n as usize) else {
                    break;
                };
                match instr {
                    Load(..) | Store(..) | Halt => break,
                    Bne(..) | Beq(..) | Blt(..) | Jmp(_) => {
                        n += 1;
                        break;
                    }
                    _ => n += 1,
                }
            }
            n
        }
        let p = Program::new(
            "t",
            vec![
                Li(Reg::R1, 1),
                Add(Reg::R2, Reg::R1, Reg::R1),
                Xor(Reg::R4, Reg::R1, Reg::R2),
                Load(Reg::R3, Reg::R2, 0),
                Sub(Reg::R5, Reg::R1, Reg::R2),
                Jmp(0),
                Store(Reg::R5, Reg::R2, 4),
                And(Reg::R6, Reg::R5, Reg::R1),
                Or(Reg::R7, Reg::R6, Reg::R1),
                Halt,
            ],
            0,
        );
        for pc in 0..=(p.len() as u32 + 1) {
            for max in 0..12u32 {
                assert_eq!(
                    p.compute_run_len(pc, max),
                    scan(&p, pc, max),
                    "pc {pc}, max {max}"
                );
            }
        }
    }

    #[test]
    fn fetch_addr_spaces_by_four() {
        let p = Program::new("t", vec![Instruction::Halt, Instruction::Halt], 0x1000);
        assert_eq!(p.fetch_addr(0), 0x1000);
        assert_eq!(p.fetch_addr(1), 0x1004);
    }

    #[test]
    #[should_panic(expected = "branch target")]
    fn rejects_out_of_range_branch() {
        let _ = Program::new("t", vec![Instruction::Jmp(5)], 0);
    }

    #[test]
    #[should_panic(expected = "cannot be empty")]
    fn rejects_empty_program() {
        let _ = Program::new("t", vec![], 0);
    }
}
